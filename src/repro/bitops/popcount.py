"""Population-count kernels over packed ``uint64`` words.

Two implementations are provided:

- :func:`popcount_u64` uses :func:`numpy.bitwise_count` when available
  (NumPy >= 2.0), which lowers to the hardware ``POPCNT`` instruction.
- :func:`_popcount_u64_lut` is a byte-table fallback, kept both for older
  NumPy and as an independent reference in tests.

Both operate element-wise; :func:`popcount_rows` sums along the last axis to
produce per-row totals (the ``POPC(A)`` terms of the paper's §3.4
compatibility layer).
"""

from __future__ import annotations

import threading

import numpy as np

#: 256-entry byte popcount table (built once at import).
_BYTE_POPCOUNT = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint8
)

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Per-thread scratch for the LUT path: the byte-count intermediate is
#: written into a reused buffer instead of materializing a fresh full-size
#: temporary per call (the old fancy-index path allocated two).
_LUT_SCRATCH = threading.local()


def _lut_scratch(n: int) -> np.ndarray:
    buf = getattr(_LUT_SCRATCH, "buf", None)
    if buf is None or buf.size < n:
        buf = np.empty(n, dtype=np.uint8)
        _LUT_SCRATCH.buf = buf
    return buf[:n]


def _popcount_u64_lut(words: np.ndarray) -> np.ndarray:
    """Byte-LUT popcount of each ``uint64`` element (reference/fallback)."""
    if not (
        isinstance(words, np.ndarray)
        and words.dtype == np.uint64
        and words.flags.c_contiguous
    ):
        words = np.ascontiguousarray(words, dtype=np.uint64)
    as_bytes = words.reshape(-1).view(np.uint8)
    counts = np.take(_BYTE_POPCOUNT, as_bytes, out=_lut_scratch(as_bytes.size))
    return counts.reshape(words.shape + (8,)).sum(axis=-1, dtype=np.int64)


def popcount_u64(words: np.ndarray) -> np.ndarray:
    """Element-wise popcount of a ``uint64`` array.

    Args:
        words: array of dtype ``uint64`` (any shape).

    Returns:
        ``int64`` array of the same shape with the number of set bits per
        element.
    """
    if not (
        isinstance(words, np.ndarray)
        and words.dtype == np.uint64
        and words.flags.c_contiguous
    ):
        # Only copy when we must: the packed-GEMM hot loop feeds freshly
        # materialized contiguous uint64 intermediates, and cloning the
        # largest buffer of the kernel per call was pure allocation churn.
        words = np.ascontiguousarray(words, dtype=np.uint64)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words).astype(np.int64)
    return _popcount_u64_lut(words)


def popcount_rows(words: np.ndarray) -> np.ndarray:
    """Total set bits along the last axis of a packed ``uint64`` array.

    For a ``(R, W)`` packed bit-matrix this returns the ``(R,)`` vector of
    row popcounts.
    """
    return popcount_u64(words).sum(axis=-1, dtype=np.int64)
