"""The paper's ``combine`` routine: pairwise AND of two SNP blocks.

Given the encoded class matrix (``2*M`` genotype bit-plane rows, see §3.1)
and two block offsets, :func:`combine_blocks` ANDs every bit-plane row of the
first block with every bit-plane row of the second, producing the
``4*B^2``-row operand matrices that feed the binary tensor GEMMs
(``wx``, ``yz``, ``wy``, ``xy``, ... in Algorithm 1).

On the real system this runs on the GPU's general-purpose cores (the paper
measures it at ~8.4% of GPU time); here it is a broadcast AND over packed
words.

Row layout of the output: row ``((2*i + gi) * 2*B + (2*j + gj))`` holds the
AND of bit-plane ``gi`` of the ``i``-th SNP of the first block with bit-plane
``gj`` of the ``j``-th SNP of the second block.  Equivalently, reshaping the
output row axis to ``(B, 2, B, 2)`` gives indices ``(i, gi, j, gj)``.
"""

from __future__ import annotations

from repro.bitops.bitmatrix import BitMatrix, words_for_bits


def combined_nbytes(block_size: int, n_bits: int) -> int:
    """Bytes of one combined operand: ``4*B^2`` packed-u64 rows of ``n_bits``.

    This is the device-resident size of a single :func:`combine_blocks`
    output for one class; the round-operand cache and the §3.3 memory model
    both size combined entries with it, so cache accounting cannot drift
    from the actual payload format.
    """
    if block_size <= 0:
        raise ValueError(f"block_size must be > 0, got {block_size}")
    if n_bits <= 0:
        raise ValueError(f"n_bits must be > 0, got {n_bits}")
    return 8 * (4 * block_size * block_size) * words_for_bits(n_bits)


def combine_blocks(
    encoded: BitMatrix, first_offset: int, second_offset: int, block_size: int
) -> BitMatrix:
    """AND-combine two blocks of ``block_size`` SNPs.

    Args:
        encoded: the per-class encoded matrix with ``2*M`` rows (two genotype
            bit-planes per SNP, row ``2*m + g``).
        first_offset: index (in SNPs) of the first block's first SNP.
        second_offset: index (in SNPs) of the second block's first SNP.
        block_size: ``B``, the number of SNPs per block.

    Returns:
        A :class:`BitMatrix` with ``4 * B**2`` rows in the layout documented
        above (``4 * B^2 * N`` bits, matching §3.2).
    """
    if block_size <= 0:
        raise ValueError(f"block_size must be > 0, got {block_size}")
    rows = encoded.n_rows
    for name, off in (("first_offset", first_offset), ("second_offset", second_offset)):
        if off < 0 or 2 * (off + block_size) > rows:
            raise IndexError(
                f"{name}={off} with block_size={block_size} exceeds "
                f"{rows // 2} encoded SNPs"
            )
    first = encoded.data[2 * first_offset : 2 * (first_offset + block_size)]
    second = encoded.data[2 * second_offset : 2 * (second_offset + block_size)]
    # (2B, 1, W) & (1, 2B, W) -> (2B, 2B, W); flatten row axes.
    combined = first[:, None, :] & second[None, :, :]
    out = combined.reshape(4 * block_size * block_size, encoded.data.shape[1])
    return BitMatrix(data=out, n_bits=encoded.n_bits)
