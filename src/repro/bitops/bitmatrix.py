"""Packed bit-matrix: the fundamental operand of the binary tensor engines.

A :class:`BitMatrix` stores ``R`` rows of ``K`` bits each, packed
little-endian into ``uint64`` words (bit ``i`` of word ``j`` is logical bit
``64*j + i``).  Rows play the role of the matrix rows fed to the 1-bit WMMA
fragments in the paper's CUDA kernels; the bit (sample) dimension is the
GEMM ``K`` dimension.

Bits past ``n_bits`` in the last word are guaranteed to be zero; every
operation preserves that invariant so AND-popcounts never see garbage and the
XOR+POPC translation layer stays exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitops.popcount import popcount_rows

#: Bits per packed word.
WORD_BITS = 64


def words_for_bits(n_bits: int) -> int:
    """Number of 64-bit words needed to store ``n_bits`` bits."""
    return (n_bits + WORD_BITS - 1) // WORD_BITS


@dataclass(frozen=True)
class BitMatrix:
    """``R x K`` binary matrix packed into ``(R, W)`` ``uint64`` words."""

    data: np.ndarray
    n_bits: int

    def __post_init__(self) -> None:
        d = np.asarray(self.data)
        if d.ndim != 2 or d.dtype != np.uint64:
            raise ValueError(
                f"data must be a 2-D uint64 array, got shape {d.shape} dtype {d.dtype}"
            )
        if self.n_bits < 0:
            raise ValueError(f"n_bits must be >= 0, got {self.n_bits}")
        if d.shape[1] != words_for_bits(self.n_bits):
            raise ValueError(
                f"{d.shape[1]} words cannot hold exactly {self.n_bits} bits "
                f"(expected {words_for_bits(self.n_bits)})"
            )
        object.__setattr__(self, "data", np.ascontiguousarray(d))

    # ------------------------------------------------------------------ #
    # Construction / conversion

    @classmethod
    def from_bool(cls, rows: np.ndarray) -> "BitMatrix":
        """Pack a ``(R, K)`` boolean (or 0/1) array into a BitMatrix."""
        rows = np.asarray(rows)
        if rows.ndim != 2:
            raise ValueError(f"rows must be 2-D, got shape {rows.shape}")
        r, k = rows.shape
        w = words_for_bits(k)
        packed_bytes = np.packbits(rows.astype(np.uint8), axis=1, bitorder="little")
        padded = np.zeros((r, w * 8), dtype=np.uint8)
        padded[:, : packed_bytes.shape[1]] = packed_bytes
        return cls(data=padded.view(np.uint64), n_bits=k)

    @classmethod
    def zeros(cls, n_rows: int, n_bits: int) -> "BitMatrix":
        """An all-zero bit-matrix."""
        return cls(
            data=np.zeros((n_rows, words_for_bits(n_bits)), dtype=np.uint64),
            n_bits=n_bits,
        )

    @classmethod
    def vstack(cls, matrices: list["BitMatrix"]) -> "BitMatrix":
        """Row-concatenate matrices of identical bit width.

        This is how ``matmul_popcount_batch`` builds the stacked operand of
        a fused launch; the packed layout concatenates without re-packing.
        """
        if not matrices:
            raise ValueError("vstack needs at least one matrix")
        n_bits = matrices[0].n_bits
        for m in matrices[1:]:
            if m.n_bits != n_bits:
                raise ValueError(
                    f"cannot vstack differing bit widths: {m.n_bits} vs {n_bits}"
                )
        if len(matrices) == 1:
            return matrices[0]
        return cls(
            data=np.concatenate([m.data for m in matrices], axis=0),
            n_bits=n_bits,
        )

    def to_bool(self) -> np.ndarray:
        """Unpack to a ``(R, K)`` boolean array."""
        as_bytes = self.data.view(np.uint8)
        bits = np.unpackbits(as_bytes, axis=1, bitorder="little")
        return bits[:, : self.n_bits].astype(np.bool_)

    def to_float32(self) -> np.ndarray:
        """Unpack to ``(R, K)`` float32 0/1 — the dense-GEMM operand form."""
        return self.dense_operand(np.float32)

    def dense_operand(
        self, dtype: np.dtype | type = np.float32, *, memoize: bool = False
    ) -> np.ndarray:
        """Unpacked ``(R, K)`` 0/1 matrix of ``dtype`` — the dense-GEMM
        operand form.

        With ``memoize=True`` the unpacked planes are cached on the instance
        (read-only, one dtype at a time), so repeated GEMMs against the same
        operand — e.g. one ``wx`` against a whole batch of ``yz`` — unpack
        it once.  Callers that memoize are responsible for accounting the
        extra bytes (see :meth:`projected_dense_nbytes`).
        """
        dtype = np.dtype(dtype)
        if memoize:
            memo = getattr(self, "_dense_memo", None)
            if memo is not None and memo[0] == dtype:
                return memo[1]
        dense = self.to_bool().astype(dtype)
        if memoize:
            dense.setflags(write=False)
            # Benign race under threads: both sides compute identical
            # read-only planes and the last assignment wins.
            object.__setattr__(self, "_dense_memo", (dtype, dense))
        return dense

    @property
    def dense_memo_nbytes(self) -> int:
        """Bytes currently held by the memoized dense planes (0 if none)."""
        memo = getattr(self, "_dense_memo", None)
        return int(memo[1].nbytes) if memo is not None else 0

    def projected_dense_nbytes(self, dtype: np.dtype | type = np.float32) -> int:
        """Bytes the dense memo for ``dtype`` would occupy if populated."""
        return self.n_rows * self.n_bits * np.dtype(dtype).itemsize

    # ------------------------------------------------------------------ #
    # Shape

    @property
    def n_rows(self) -> int:
        return int(self.data.shape[0])

    @property
    def n_words(self) -> int:
        return int(self.data.shape[1])

    @property
    def nbytes(self) -> int:
        """Packed storage footprint in bytes."""
        return int(self.data.nbytes)

    # ------------------------------------------------------------------ #
    # Row operations

    def row_popcounts(self) -> np.ndarray:
        """``(R,)`` int64 vector of set-bit counts per row (``POPC(A)``)."""
        return popcount_rows(self.data)

    def select_rows(self, start: int, stop: int) -> "BitMatrix":
        """A view-backed BitMatrix of rows ``[start, stop)``."""
        if not (0 <= start <= stop <= self.n_rows):
            raise IndexError(
                f"row range [{start}, {stop}) out of bounds for {self.n_rows} rows"
            )
        return BitMatrix(data=self.data[start:stop], n_bits=self.n_bits)

    def bitwise_and(self, other: "BitMatrix") -> "BitMatrix":
        """Element-wise AND of two matrices with identical shape."""
        self._check_compatible(other)
        return BitMatrix(data=self.data & other.data, n_bits=self.n_bits)

    def bitwise_xor(self, other: "BitMatrix") -> "BitMatrix":
        """Element-wise XOR of two matrices with identical shape."""
        self._check_compatible(other)
        return BitMatrix(data=self.data ^ other.data, n_bits=self.n_bits)

    def split_bits(self, chunk_bits: int) -> list["BitMatrix"]:
        """Split along the bit (sample) dimension into word-aligned chunks.

        Used by the sample-chunked execution mode (the paper's suggested
        mitigation of the Turing 524288-sample throughput cliff): partial
        contingency tables from each chunk are summed element-wise.

        Args:
            chunk_bits: chunk size in bits; must be a multiple of 64.
        """
        if chunk_bits <= 0 or chunk_bits % WORD_BITS:
            raise ValueError(
                f"chunk_bits must be a positive multiple of {WORD_BITS}, got {chunk_bits}"
            )
        chunks: list[BitMatrix] = []
        words_per_chunk = chunk_bits // WORD_BITS
        for start_word in range(0, self.n_words, words_per_chunk):
            stop_word = min(start_word + words_per_chunk, self.n_words)
            bits_here = min(
                chunk_bits, self.n_bits - start_word * WORD_BITS
            )
            chunks.append(
                BitMatrix(
                    data=self.data[:, start_word:stop_word], n_bits=bits_here
                )
            )
        return chunks

    def _check_compatible(self, other: "BitMatrix") -> None:
        if self.data.shape != other.data.shape or self.n_bits != other.n_bits:
            raise ValueError(
                f"incompatible BitMatrix shapes: {self.data.shape}/{self.n_bits} "
                f"vs {other.data.shape}/{other.n_bits}"
            )

    def __repr__(self) -> str:
        return f"BitMatrix(rows={self.n_rows}, bits={self.n_bits})"
