"""Bit-level substrate: packed bit-matrices, popcount kernels, block combine.

This package provides the data layout the whole system is built on: sample
bit-planes packed into little-endian ``uint64`` words, with rows indexed by
``(SNP, genotype)`` pairs exactly as in the paper's §3.1 memory format.
"""

from repro.bitops.bitmatrix import BitMatrix, WORD_BITS
from repro.bitops.combine import combine_blocks
from repro.bitops.popcount import popcount_u64, popcount_rows

__all__ = [
    "BitMatrix",
    "WORD_BITS",
    "combine_blocks",
    "popcount_rows",
    "popcount_u64",
]
