"""Analytic completion of contingency tables (paper §3.3).

Only the ``AA``/``Aa`` genotype bit-planes are stored, so the tensor GEMMs
yield only the ``{0,1}^k`` corner of each ``(3,)*k`` table.  Every cell with
at least one ``aa`` (code 2) index is derived by inclusion-exclusion: the
answer to "is the genotype ``aa``?" is implied by the answers for ``AA`` and
``Aa``.  Concretely, eliminating one axis at value 2,

    n[..., 2, ...] = marginal_over_that_axis[...] - n[..., 0, ...] - n[..., 1, ...],

where the marginal is the *full* ``(k-1)``-order table of the remaining
SNPs.  Filling axes from last to first makes every right-hand side available
when needed; the fourth-order table thus needs full third-order tables for
all four contained triplets, which in turn need full pairwise tables, which
need per-SNP counts — exactly the dependency chain realised by
``pairwPop``/``indivPop`` and the three-phase ``tensorOp_3way`` calls of
Algorithm 1.

All functions are batched: genotype axes are the trailing axes; any leading
axes (e.g. one per quad of a round) broadcast through.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def complete_tables(
    corner: np.ndarray, marginals: Sequence[np.ndarray], order: int
) -> np.ndarray:
    """Complete a batched ``(3,)*order`` table from its ``{0,1}^order`` corner.

    Args:
        corner: ``(..., 2, 2, ..., 2)`` counts of the all-bit-plane genotypes
            (``order`` trailing axes of size 2).
        marginals: ``marginals[axis]`` is the **full** ``(3,)*(order-1)``
            table of the SNPs with ``axis`` removed, with matching batch
            shape.  (For ``order == 1`` pass a single 0-d/batched total
            count ``N``.)
        order: interaction order ``k >= 1``.

    Returns:
        ``(..., 3, 3, ..., 3)`` int64 completed table.
    """
    corner = np.asarray(corner)
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    if corner.shape[corner.ndim - order :] != (2,) * order:
        raise ValueError(
            f"corner must end in {(2,) * order}, got shape {corner.shape}"
        )
    if len(marginals) != order:
        raise ValueError(f"need {order} marginals, got {len(marginals)}")
    batch = corner.shape[: corner.ndim - order]
    out = np.zeros(batch + (3,) * order, dtype=np.int64)
    out[(...,) + (slice(0, 2),) * order] = corner

    for axis in reversed(range(order)):
        # Axes before `axis` are still restricted to {0,1}; axes after it are
        # already fully populated, so they range over {0,1,2}.
        pre = (slice(0, 2),) * axis
        post = (slice(None),) * (order - axis - 1)
        marg = np.asarray(marginals[axis])
        if order == 1:
            marg_slice = marg
        else:
            want_tail = (3,) * (order - 1)
            if marg.shape[marg.ndim - (order - 1) :] != want_tail:
                raise ValueError(
                    f"marginal for axis {axis} must end in {want_tail}, "
                    f"got shape {marg.shape}"
                )
            marg_slice = marg[(...,) + pre + post]
        out[(...,) + pre + (2,) + post] = (
            marg_slice
            - out[(...,) + pre + (0,) + post]
            - out[(...,) + pre + (1,) + post]
        )
    return out


def complete_single(corner: np.ndarray, n_total: int | np.ndarray) -> np.ndarray:
    """First-order completion: ``(..., 2)`` plane counts -> ``(..., 3)``.

    ``n[2] = N - n[0] - n[1]`` (the ``aa`` count is whatever remains).
    """
    return complete_tables(corner, [np.asarray(n_total)], order=1)


def complete_pair(
    corner: np.ndarray, single_a: np.ndarray, single_b: np.ndarray
) -> np.ndarray:
    """Second-order completion from the ``{0,1}^2`` corner and both singles.

    Args:
        corner: ``(..., 2, 2)`` tensor counts.
        single_a: full ``(..., 3)`` table of the first SNP (marginal when
            axis 0 is removed is the *second* SNP's table, and vice versa —
            this function takes them in SNP order and wires them correctly).
        single_b: full ``(..., 3)`` table of the second SNP.
    """
    return complete_tables(corner, [single_b, single_a], order=2)


def complete_triple(
    corner: np.ndarray,
    pair_ab: np.ndarray,
    pair_ac: np.ndarray,
    pair_bc: np.ndarray,
) -> np.ndarray:
    """Third-order completion from the ``{0,1}^3`` corner and full pair tables.

    Args:
        corner: ``(..., 2, 2, 2)`` tensor counts for SNPs ``(a, b, c)``.
        pair_ab: full ``(..., 3, 3)`` table of ``(a, b)``.
        pair_ac: full ``(..., 3, 3)`` table of ``(a, c)``.
        pair_bc: full ``(..., 3, 3)`` table of ``(b, c)``.
    """
    return complete_tables(corner, [pair_bc, pair_ac, pair_ab], order=3)


def complete_quad(
    corner: np.ndarray,
    triple_wxy: np.ndarray,
    triple_wxz: np.ndarray,
    triple_wyz: np.ndarray,
    triple_xyz: np.ndarray,
) -> np.ndarray:
    """Fourth-order completion from the 16-cell corner and all four triples.

    Args:
        corner: ``(..., 2, 2, 2, 2)`` tensor counts for SNPs ``(w, x, y, z)``
            (the 16 values per quad produced by ``tensorOp_4way``).
        triple_wxy: full ``(..., 3, 3, 3)`` table of ``(w, x, y)``.
        triple_wxz: full table of ``(w, x, z)``.
        triple_wyz: full table of ``(w, y, z)``.
        triple_xyz: full table of ``(x, y, z)``.

    Returns:
        ``(..., 3, 3, 3, 3)`` — the 81 genotype counts per quad, per class.
    """
    return complete_tables(
        corner, [triple_xyz, triple_wyz, triple_wxz, triple_wxy], order=4
    )
