"""Generic helpers for ``(3,)*k`` contingency tables (possibly batched)."""

from __future__ import annotations

import numpy as np


def marginalize(table: np.ndarray, axis: int, order: int) -> np.ndarray:
    """Sum a ``k``-th order table over one SNP axis, giving the ``k-1`` table.

    Args:
        table: array whose last ``order`` axes are the genotype axes
            (each of size 3); leading axes are batch dimensions.
        axis: genotype axis to remove, in ``[0, order)``.
        order: interaction order ``k``.
    """
    if not 0 <= axis < order:
        raise ValueError(f"axis must be in [0, {order}), got {axis}")
    if table.ndim < order:
        raise ValueError(
            f"table has {table.ndim} dims, fewer than order {order}"
        )
    return table.sum(axis=table.ndim - order + axis)


def validate_table(table: np.ndarray, order: int, total: int | None = None) -> None:
    """Sanity-check a contingency table.

    Verifies the genotype axes have size 3, all counts are non-negative and
    (optionally) that the table sums to ``total`` per batch element.

    Raises:
        ValueError: on any violation.
    """
    if table.ndim < order:
        raise ValueError(f"table has {table.ndim} dims, fewer than order {order}")
    if table.shape[table.ndim - order :] != (3,) * order:
        raise ValueError(
            f"last {order} axes must each have size 3, got shape {table.shape}"
        )
    if table.size and table.min() < 0:
        raise ValueError("contingency table has negative counts")
    if total is not None:
        sums = table.sum(axis=tuple(range(table.ndim - order, table.ndim)))
        if not np.all(sums == total):
            raise ValueError(
                f"table sums {np.unique(sums)} do not all equal N={total}"
            )
