"""Contingency tables of interaction orders 1-4.

A ``k``-th order contingency table for one phenotype class is a ``(3,)*k``
integer array: cell ``(g1..gk)`` counts the samples of that class whose
genotypes at the ``k`` SNPs are ``g1..gk``.  The tensor engines produce only
the ``{0,1}^k`` *corner* (the ``AA``/``Aa`` bit-planes are the only ones
stored); :mod:`repro.contingency.complete` derives the remaining cells from
lower-order marginals — the paper's §3.3 cost-reduction scheme.
"""

from repro.contingency.brute_force import (
    best_quad_brute_force,
    contingency_table,
    contingency_tables_by_class,
)
from repro.contingency.complete import (
    complete_pair,
    complete_quad,
    complete_single,
    complete_tables,
    complete_triple,
)
from repro.contingency.tables import marginalize, validate_table

__all__ = [
    "best_quad_brute_force",
    "complete_pair",
    "complete_quad",
    "complete_single",
    "complete_tables",
    "complete_triple",
    "contingency_table",
    "contingency_tables_by_class",
    "marginalize",
    "validate_table",
]
