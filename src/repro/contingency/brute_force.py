"""Reference contingency-table construction and brute-force search.

These implementations are deliberately simple — direct histogramming over
the dense genotype matrix and Python-level combination loops — and serve as
the ground truth the tensor pipeline is tested against.  They are usable for
small problems only.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Sequence

import numpy as np

from repro.datasets.dataset import Dataset


def contingency_table(genotype_rows: np.ndarray) -> np.ndarray:
    """Histogram ``k`` genotype rows into a ``(3,)*k`` table.

    Args:
        genotype_rows: ``(k, n_samples)`` integer array over ``{0, 1, 2}``.

    Returns:
        ``(3,)*k`` int64 table.
    """
    rows = np.asarray(genotype_rows)
    if rows.ndim != 2:
        raise ValueError(f"genotype_rows must be 2-D, got shape {rows.shape}")
    k = rows.shape[0]
    flat = np.ravel_multi_index(tuple(rows), (3,) * k)
    return np.bincount(flat, minlength=3**k).reshape((3,) * k).astype(np.int64)


def contingency_tables_by_class(
    dataset: Dataset, snps: Sequence[int]
) -> tuple[np.ndarray, np.ndarray]:
    """Per-class tables for one SNP tuple.

    Returns:
        ``(controls_table, cases_table)``, each ``(3,)*len(snps)``.
    """
    idx = np.asarray(snps, dtype=np.intp)
    tables = []
    for cls in (0, 1):
        g = dataset.class_genotypes(cls)[idx]
        tables.append(contingency_table(g))
    return tables[0], tables[1]


def best_quad_brute_force(
    dataset: Dataset,
    score_fn: Callable[[np.ndarray, np.ndarray], float],
) -> tuple[tuple[int, int, int, int], float]:
    """Exhaustively score every 4-SNP combination (reference oracle).

    Args:
        dataset: case-control dataset (small ``M`` only — cost is
            ``O(C(M, 4) * N)``).
        score_fn: maps ``(controls_table, cases_table)`` — both ``(3,3,3,3)``
            — to a float score.  Lower is better (K2 convention).

    Returns:
        ``(best_quad, best_score)``; ties are broken toward the
        lexicographically smallest quad, matching the packed-index reduction
        of the tensor pipeline.
    """
    if dataset.n_snps < 4:
        raise ValueError(f"need at least 4 SNPs, got {dataset.n_snps}")
    best_quad: tuple[int, int, int, int] | None = None
    best_score = np.inf
    for quad in combinations(range(dataset.n_snps), 4):
        t0, t1 = contingency_tables_by_class(dataset, quad)
        score = float(score_fn(t0, t1))
        if score < best_score:
            best_score = score
            best_quad = quad
    assert best_quad is not None
    return best_quad, best_score
