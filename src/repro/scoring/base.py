"""Score-function interface."""

from __future__ import annotations

import abc
from typing import Callable

import numpy as np


class ScoreFunction(abc.ABC):
    """Batched association score over per-class contingency tables.

    Subclasses implement :meth:`__call__` over ``(..., 3^k)``-shaped cell
    batches; genotype axes may come in any ``(3,)*k`` arrangement since every
    implemented statistic is cell-permutation invariant.

    Attributes:
        name: registry name.
        higher_is_better: natural direction of the statistic.  The search
            driver normalizes via :func:`normalized_for_minimization`.
    """

    name: str = "abstract"
    higher_is_better: bool = False

    @abc.abstractmethod
    def __call__(
        self,
        controls_table: np.ndarray,
        cases_table: np.ndarray,
        order: int | None = None,
    ) -> np.ndarray:
        """Score batches of tables.

        Args:
            controls_table: ``(..., 3, ..., 3)`` integer counts (controls).
            cases_table: matching-shape counts (cases).
            order: number of trailing genotype axes.  When omitted it is
                inferred as the maximal run of trailing size-3 axes — always
                correct for unbatched tables; batched callers should pass it
                explicitly.

        Returns:
            ``(...)`` float64 scores (scalar for unbatched input).
        """

    @staticmethod
    def _infer_order(table: np.ndarray, order: int | None) -> int:
        if order is not None:
            if order < 1 or table.ndim < order:
                raise ValueError(
                    f"order {order} invalid for table of shape {table.shape}"
                )
            return order
        inferred = 0
        for size in reversed(table.shape):
            if size != 3:
                break
            inferred += 1
        if inferred == 0:
            raise ValueError(
                f"cannot infer interaction order from shape {table.shape}"
            )
        return inferred

    @classmethod
    def _flatten_cells(cls, table: np.ndarray, order: int | None) -> np.ndarray:
        """Collapse the ``order`` trailing genotype axes into one cell axis."""
        table = np.asarray(table)
        k = cls._infer_order(table, order)
        batch = table.shape[: table.ndim - k]
        return table.reshape(batch + (-1,))

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def normalized_for_minimization(
    score_fn: ScoreFunction,
) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    """Wrap a score so that *lower is always better* (reduction convention).

    The tensor pipeline's reduction keeps the minimum; scores whose natural
    direction is "higher is better" are negated.
    """
    if not score_fn.higher_is_better:
        return score_fn

    def negated(
        controls_table: np.ndarray,
        cases_table: np.ndarray,
        order: int | None = None,
    ) -> np.ndarray:
        return -np.asarray(score_fn(controls_table, cases_table, order=order))

    return negated
