"""The Bayesian K2 score (paper §2).

For a case-control dataset the K2 score of a ``k``-th order table is

    K2 = sum_i [ log((r_i + 1)!) - log(r_i1!) - log(r_i0!) ]
       = sum_i [ lgamma(r_i + 2) - lgamma(r_i1 + 1) - lgamma(r_i0 + 1) ],

where ``r_ij`` is the count of genotype cell ``i`` in phenotype class ``j``
and ``r_i = r_i0 + r_i1``.  This is the negative log of the K2
(Cooper-Herskovits) marginal likelihood up to a constant; **lower scores
mean stronger association**.  Following §3.5, the log-factorials are mapped
to the gamma function and served from a precomputed lookup table.
"""

from __future__ import annotations

import numpy as np

from repro.scoring.base import ScoreFunction
from repro.scoring.lgamma_table import LgammaTable


class StagedK2Kernel:
    """Fused K2 evaluation over flat int64 cell batches (paper §3.5).

    Instead of materializing the three float intermediates
    ``lgamma(total + 2)``, ``lgamma(r1 + 1)``, ``lgamma(r0 + 1)`` through
    explicit ``n + k`` index arithmetic, the kernel pre-shifts the lgamma
    table into two read-only views — ``plus2[n] == lgamma(n + 2)`` and
    ``plus1[n] == lgamma(n + 1)`` — and gathers them *directly* on the raw
    count arrays.  The float lookups, the elementwise ``a - b - c`` order
    and the trailing-axis ``sum`` are exactly those of
    :meth:`K2Score.__call__`, so results are bit-identical; only the integer
    index temporaries disappear.
    """

    name = "k2-staged"
    higher_is_better = False

    def __init__(self, table: LgammaTable) -> None:
        self._table = table
        #: ``lgamma(n + 2)`` at index ``n``.
        self._plus2 = table.shifted(2)
        #: ``lgamma(n + 1)`` at index ``n``.
        self._plus1 = table.shifted(1)
        #: Largest per-cell *total* count the views can serve.
        self.max_total = table.max_argument - 2

    @property
    def table(self) -> LgammaTable:
        return self._table

    def score_flat(self, r0_cells: np.ndarray, r1_cells: np.ndarray) -> np.ndarray:
        """Score ``(..., C)`` int64 cell batches; returns ``(...)`` float64.

        The trailing axis holds the ``C = 3^k`` genotype cells of each
        table.  Inputs must already be int64 (the completion pipeline
        produces int64 counts end to end); negative counts or totals beyond
        the table raise ``IndexError`` rather than silently wrapping
        through the fancy gather.
        """
        if r0_cells.shape != r1_cells.shape:
            raise ValueError(
                f"class tables disagree: {r0_cells.shape} vs {r1_cells.shape}"
            )
        total = r0_cells + r1_cells
        if total.size and (
            int(r0_cells.min()) < 0
            or int(r1_cells.min()) < 0
            or int(total.max()) > self.max_total
        ):
            raise IndexError(
                "count out of staged-lgamma range "
                f"[0, {self.max_total}]: r0 min={r0_cells.min()}, "
                f"r1 min={r1_cells.min()}, total max={total.max()}"
            )
        return (
            self._plus2[total] - self._plus1[r1_cells] - self._plus1[r0_cells]
        ).sum(axis=-1)

    def __call__(
        self,
        controls_table: np.ndarray,
        cases_table: np.ndarray,
        order: int | None = None,
    ) -> np.ndarray:
        """Score arbitrary ``(..., 3, ..., 3)`` tables (ScoreFunction shim)."""
        r0 = ScoreFunction._flatten_cells(
            np.asarray(controls_table, dtype=np.int64), order
        )
        r1 = ScoreFunction._flatten_cells(
            np.asarray(cases_table, dtype=np.int64), order
        )
        return self.score_flat(r0, r1)

    def __repr__(self) -> str:
        return f"StagedK2Kernel(max_total={self.max_total})"


class K2Score(ScoreFunction):
    """K2 Bayesian score with an integer-lgamma lookup table.

    Args:
        lgamma_table: a prebuilt table (shared across devices in multi-GPU
            runs, as in the paper).  If omitted, a table is grown lazily to
            fit the largest count seen — convenient for interactive use, but
            search drivers should pass a right-sized table up front.
    """

    name = "k2"
    higher_is_better = False

    def __init__(self, lgamma_table: LgammaTable | None = None) -> None:
        self._table = lgamma_table

    def _table_for(self, max_total: int) -> LgammaTable:
        if self._table is None or self._table.max_argument < max_total + 2:
            self._table = LgammaTable(max(max_total + 2, 1))
        return self._table

    def staged_kernel(self, n_samples: int | None = None) -> StagedK2Kernel:
        """Build the fused :class:`StagedK2Kernel` sharing this score's table.

        Args:
            n_samples: when given, guarantees the backing table covers
                ``lgamma(n_samples + 2)`` (growing it if needed) so the hot
                loop never regrows.  When omitted the current table is used
                as-is and must already be right-sized.
        """
        if n_samples is not None:
            table = self._table_for(int(n_samples))
        elif self._table is not None:
            table = self._table
        else:
            raise ValueError(
                "staged_kernel() needs either a prebuilt table or n_samples"
            )
        return StagedK2Kernel(table)

    def __call__(
        self,
        controls_table: np.ndarray,
        cases_table: np.ndarray,
        order: int | None = None,
    ) -> np.ndarray:
        r0 = self._flatten_cells(np.asarray(controls_table, dtype=np.int64), order)
        r1 = self._flatten_cells(np.asarray(cases_table, dtype=np.int64), order)
        if r0.shape != r1.shape:
            raise ValueError(
                f"class tables disagree: {r0.shape} vs {r1.shape}"
            )
        total = r0 + r1
        lg = self._table_for(int(total.max(initial=0)))
        score = (lg(total + 2) - lg(r1 + 1) - lg(r0 + 1)).sum(axis=-1)
        return score
