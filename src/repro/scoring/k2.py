"""The Bayesian K2 score (paper §2).

For a case-control dataset the K2 score of a ``k``-th order table is

    K2 = sum_i [ log((r_i + 1)!) - log(r_i1!) - log(r_i0!) ]
       = sum_i [ lgamma(r_i + 2) - lgamma(r_i1 + 1) - lgamma(r_i0 + 1) ],

where ``r_ij`` is the count of genotype cell ``i`` in phenotype class ``j``
and ``r_i = r_i0 + r_i1``.  This is the negative log of the K2
(Cooper-Herskovits) marginal likelihood up to a constant; **lower scores
mean stronger association**.  Following §3.5, the log-factorials are mapped
to the gamma function and served from a precomputed lookup table.
"""

from __future__ import annotations

import numpy as np

from repro.scoring.base import ScoreFunction
from repro.scoring.lgamma_table import LgammaTable


class K2Score(ScoreFunction):
    """K2 Bayesian score with an integer-lgamma lookup table.

    Args:
        lgamma_table: a prebuilt table (shared across devices in multi-GPU
            runs, as in the paper).  If omitted, a table is grown lazily to
            fit the largest count seen — convenient for interactive use, but
            search drivers should pass a right-sized table up front.
    """

    name = "k2"
    higher_is_better = False

    def __init__(self, lgamma_table: LgammaTable | None = None) -> None:
        self._table = lgamma_table

    def _table_for(self, max_total: int) -> LgammaTable:
        if self._table is None or self._table.max_argument < max_total + 2:
            self._table = LgammaTable(max(max_total + 2, 1))
        return self._table

    def __call__(
        self,
        controls_table: np.ndarray,
        cases_table: np.ndarray,
        order: int | None = None,
    ) -> np.ndarray:
        r0 = self._flatten_cells(np.asarray(controls_table, dtype=np.int64), order)
        r1 = self._flatten_cells(np.asarray(cases_table, dtype=np.int64), order)
        if r0.shape != r1.shape:
            raise ValueError(
                f"class tables disagree: {r0.shape} vs {r1.shape}"
            )
        total = r0 + r1
        lg = self._table_for(int(total.max(initial=0)))
        score = (lg(total + 2) - lg(r1 + 1) - lg(r0 + 1)).sum(axis=-1)
        return score
