"""Pearson chi-squared association score (extension score)."""

from __future__ import annotations

import numpy as np

from repro.scoring.base import ScoreFunction


class ChiSquaredScore(ScoreFunction):
    """Pearson chi-squared over the ``2 x 3^k`` phenotype-by-genotype table.

    Cells whose expected count is zero (genotype never observed) contribute
    nothing.  Higher values indicate stronger association.
    """

    name = "chi2"
    higher_is_better = True

    def __call__(
        self,
        controls_table: np.ndarray,
        cases_table: np.ndarray,
        order: int | None = None,
    ) -> np.ndarray:
        r0 = self._flatten_cells(np.asarray(controls_table, dtype=np.float64), order)
        r1 = self._flatten_cells(np.asarray(cases_table, dtype=np.float64), order)
        if r0.shape != r1.shape:
            raise ValueError(f"class tables disagree: {r0.shape} vs {r1.shape}")
        cell_totals = r0 + r1
        n0 = r0.sum(axis=-1, keepdims=True)
        n1 = r1.sum(axis=-1, keepdims=True)
        n = n0 + n1
        with np.errstate(divide="ignore", invalid="ignore"):
            e0 = cell_totals * n0 / n
            e1 = cell_totals * n1 / n
            term0 = np.where(e0 > 0, (r0 - e0) ** 2 / e0, 0.0)
            term1 = np.where(e1 > 0, (r1 - e1) ** 2 / e1, 0.0)
        return (term0 + term1).sum(axis=-1)
