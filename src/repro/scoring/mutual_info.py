"""Mutual information between genotype cell and phenotype (extension score)."""

from __future__ import annotations

import numpy as np

from repro.scoring.base import ScoreFunction


class MutualInformationScore(ScoreFunction):
    """``I(genotype; phenotype)`` in nats over the joint cell/class table.

    Higher values indicate stronger association.  Related to the G statistic
    by ``G = 2 * N * I`` — a relation the test suite checks.
    """

    name = "mi"
    higher_is_better = True

    def __call__(
        self,
        controls_table: np.ndarray,
        cases_table: np.ndarray,
        order: int | None = None,
    ) -> np.ndarray:
        r0 = self._flatten_cells(np.asarray(controls_table, dtype=np.float64), order)
        r1 = self._flatten_cells(np.asarray(cases_table, dtype=np.float64), order)
        if r0.shape != r1.shape:
            raise ValueError(f"class tables disagree: {r0.shape} vs {r1.shape}")
        n = (r0 + r1).sum(axis=-1, keepdims=True)
        p0 = r0 / n
        p1 = r1 / n
        p_cell = p0 + p1
        q0 = p0.sum(axis=-1, keepdims=True)
        q1 = p1.sum(axis=-1, keepdims=True)
        with np.errstate(divide="ignore", invalid="ignore"):
            term0 = np.where(p0 > 0, p0 * np.log(p0 / (p_cell * q0)), 0.0)
            term1 = np.where(p1 > 0, p1 * np.log(p1 / (p_cell * q1)), 0.0)
        return (term0 + term1).sum(axis=-1)
