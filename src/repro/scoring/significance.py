"""Permutation-based significance testing for detected interactions.

A raw K2 score has no universal significance scale; epistasis tools
estimate p-values by permuting phenotype labels (which destroys any
genotype-phenotype association while preserving genotype structure) and
comparing the observed statistic against the permutation null.

Two nulls are offered:

- :func:`permutation_pvalue` — per-quad null: how extreme is this quad's
  score for *this* quad under label permutation.  Cheap (the quad's joint
  genotype code is histogrammed per permutation).
- :func:`search_max_statistic_pvalue` — family-wise null: the best score of
  a *full search* per permutation.  Corrects for the multiple testing of
  all ``C(M, 4)`` quads; costs one search per permutation, so it is only
  practical at reduced ``M`` (or after filtering).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.dataset import Dataset
from repro.scoring.base import ScoreFunction, normalized_for_minimization
from repro.scoring.k2 import K2Score


@dataclass(frozen=True)
class PermutationResult:
    """Outcome of a permutation test.

    Attributes:
        observed_score: the statistic on the real labels (lower = stronger,
            minimization-normalized).
        null_scores: statistic per permutation.
        p_value: ``(1 + #{null <= observed}) / (1 + n_permutations)``
            (the add-one estimator — never exactly zero).
    """

    observed_score: float
    null_scores: np.ndarray
    p_value: float


def _joint_code(dataset: Dataset, snps: tuple[int, ...]) -> np.ndarray:
    """Base-3 joint genotype code per sample for the given SNP tuple."""
    idx = np.asarray(snps, dtype=np.intp)
    return np.ravel_multi_index(
        tuple(dataset.genotypes[i] for i in idx), (3,) * len(snps)
    )


def permutation_pvalue(
    dataset: Dataset,
    snps: tuple[int, ...],
    *,
    n_permutations: int = 1000,
    score: ScoreFunction | None = None,
    seed: int | None = None,
) -> PermutationResult:
    """Per-quad (or any-order tuple) permutation p-value.

    Args:
        dataset: the case-control dataset.
        snps: the SNP tuple whose association is being tested.
        n_permutations: permutation count (p-value resolution is
            ``1 / (n_permutations + 1)``).
        score: association score (default K2).
        seed: RNG seed.

    Returns:
        A :class:`PermutationResult`.
    """
    if n_permutations < 1:
        raise ValueError(f"n_permutations must be >= 1, got {n_permutations}")
    if len(set(snps)) != len(snps):
        raise ValueError(f"snps must be distinct, got {snps}")
    order = len(snps)
    score_min = normalized_for_minimization(score or K2Score())
    code = _joint_code(dataset, tuple(snps))
    n_cells = 3**order
    labels = np.asarray(dataset.phenotypes)

    def score_labels(is_case: np.ndarray) -> float:
        t1 = np.bincount(code[is_case], minlength=n_cells)
        t0 = np.bincount(code[~is_case], minlength=n_cells)
        return float(
            score_min(
                t0.reshape((3,) * order), t1.reshape((3,) * order), order=order
            )
        )

    observed = score_labels(labels)
    rng = np.random.default_rng(seed)
    null = np.empty(n_permutations, dtype=np.float64)
    for i in range(n_permutations):
        null[i] = score_labels(rng.permutation(labels))
    p = (1 + int((null <= observed).sum())) / (1 + n_permutations)
    return PermutationResult(
        observed_score=observed, null_scores=null, p_value=p
    )


def search_max_statistic_pvalue(
    dataset: Dataset,
    *,
    n_permutations: int = 20,
    block_size: int = 8,
    score: str | ScoreFunction = "k2",
    seed: int | None = None,
) -> PermutationResult:
    """Family-wise p-value for the best quad of a full search.

    Runs the full Epi4Tensor search once on the real labels and once per
    permuted label vector; the null is the distribution of the *best* score
    over all quads, which controls the family-wise error of the exhaustive
    scan.  Expensive — use after filtering or on small ``M``.
    """
    from repro.core.search import Epi4TensorSearch, SearchConfig

    if n_permutations < 1:
        raise ValueError(f"n_permutations must be >= 1, got {n_permutations}")
    config = SearchConfig(block_size=block_size, score=score)
    observed = Epi4TensorSearch(dataset, config).run().best_score
    rng = np.random.default_rng(seed)
    null = np.empty(n_permutations, dtype=np.float64)
    labels = np.asarray(dataset.phenotypes)
    for i in range(n_permutations):
        permuted = Dataset(
            genotypes=dataset.genotypes.copy(),
            phenotypes=rng.permutation(labels),
            snp_names=dataset.snp_names,
        )
        null[i] = Epi4TensorSearch(permuted, config).run().best_score
    p = (1 + int((null <= observed).sum())) / (1 + n_permutations)
    return PermutationResult(
        observed_score=float(observed), null_scores=null, p_value=p
    )
