"""Admissible lower bounds on the K2 score from tensor corner counts.

The K2 score of a completed 81-cell table is a sum of per-cell terms

    f(a, b) = lgamma(a + b + 2) - lgamma(b + 1) - lgamma(a + 1)
            = log((a + b + 1)! / (a! b!)),

where ``a``/``b`` are the cell's control/case counts.  Every term is
non-negative and monotone in both counts, which yields a cheap *admissible*
(never-overestimating) lower bound on the full score from only the counts
the tensor GEMMs already materialized — before any inclusion–exclusion
completion runs.  Because K2 is a min-search, any quad whose lower bound
exceeds the current top-k threshold provably cannot enter the final top-k,
so the branch-and-bound gate in :func:`repro.core.apply_score.score_round`
can drop it with **bit-identical** results.

Two inequalities make the bound (proofs in :class:`K2BoundKernel`):

1. **Known cells** contribute their exact term ``f(a, b)``.
2. **Unknown cells** with class-wise remainders ``(A, B)`` (the samples not
   in any known cell) contribute at least ``log(A + 1) + log(B + 1)``.

The gate uses the *48-cell* bound: every cell with at most one genotype
index equal to 2 is derivable from the fourth-order corner block (16 cells,
all indices in {0, 1}) plus the four third-order corner slices by
subtraction — e.g. the ``g_z = 2`` fiber is ``corner3_wxy - sum_gz corner4``.
Those 48 cells typically hold the bulk of the samples, so the two-term
remainder gives up little; on the reference bench configuration the bound
prunes ~90% of quads at the final top-10 threshold.

Round elision uses the weaker *16-corner* bound (corner4 only), the only
bound computable before the round's third-order sweeps are staged.
"""

from __future__ import annotations

import numpy as np

from repro.scoring.lgamma_table import LgammaTable

#: Absolute slack subtracted from every prune comparison: a position is
#: pruned only when ``bound > threshold + PRUNE_SLACK``.  The bound is
#: *mathematically* admissible, but it sums table lookups in a different
#: order than the exact scorer, so at mathematical-equality corner cases
#: (empty remainders) floating-point rounding could push the computed
#: bound a few ULPs past the computed exact score.  The slack dwarfs any
#: accumulated rounding (< 1e-9 for realistic table sizes) while being
#: negligible against real bound deficits (O(1) score units), so it costs
#: essentially no pruning power and guarantees ties are never pruned.
PRUNE_SLACK = 1e-6


class K2BoundKernel:
    """Vectorized admissible K2 lower bounds from corner counts.

    Shares the search's :class:`~repro.scoring.lgamma_table.LgammaTable`
    through the same pre-shifted read-only views the staged scorer uses
    (``plus2[n] == lgamma(n + 2)``, ``plus1[n] == lgamma(n + 1)``), so
    evaluating a bound is pure fancy-gather arithmetic with no new tables.

    Admissibility (``bound <= exact`` for every valid table):

    * For a known cell, the bound adds the cell's exact term — and
      ``f(a, b) = log((a+b+1)!/(a! b!)) >= log((a+1)(b+1))`` since
      ``(a+b+1)!/(a! b!) = (a+b+1) * C(a+b, a) >= (a+1)(b+1)`` (expand
      ``C(a+b, a) >= 1`` and check ``a b`` cross terms; equality iff
      ``a == 0`` or ``b == 0``).
    * For the unknown cells with per-cell counts ``(a_i, b_i)`` summing to
      the remainders ``(A, B)``:
      ``sum_i f(a_i, b_i) >= sum_i log((a_i+1)(b_i+1))
      >= log((1 + sum a_i)(1 + sum b_i)) = log(A+1) + log(B+1)``,
      the second step by ``prod (1 + a_i) >= 1 + sum a_i``.

    Every method is *fail-safe* on implausible counts (negative fibers or
    totals beyond the lgamma table): it declines to bound rather than
    fancy-gather garbage, so injected tensor corruption (a negative count
    planted in ``corner4``) flows to the normal validation / degraded
    re-execution path instead of causing a wrong prune.
    """

    def __init__(
        self, table: LgammaTable, n_controls: int, n_cases: int
    ) -> None:
        self._table = table
        #: ``lgamma(n + 2)`` at index ``n``.
        self._plus2 = table.shifted(2)
        #: ``lgamma(n + 1)`` at index ``n``.
        self._plus1 = table.shifted(1)
        #: Largest per-cell total the views can serve.
        self.max_total = table.max_argument - 2
        self.n_controls = int(n_controls)
        self.n_cases = int(n_cases)

    @property
    def table(self) -> LgammaTable:
        return self._table

    def _cell_terms(self, r0: np.ndarray, r1: np.ndarray) -> np.ndarray:
        """Exact per-cell K2 terms ``f(r0, r1)`` (same lookups as the
        staged scorer; trailing axes preserved)."""
        return self._plus2[r0 + r1] - self._plus1[r1] - self._plus1[r0]

    def _log1(self, count: np.ndarray) -> np.ndarray:
        """``log(count + 1)`` via the shifted views:
        ``lgamma(n + 2) - lgamma(n + 1) == log(n + 1)``."""
        return self._plus2[count] - self._plus1[count]

    # ------------------------------------------------------------------ #

    def _gather_48(self, operands, w, x, y, z):
        """Per class: the ``(V, 48)`` known-cell counts of each selected
        position (16 corners + four one-index-is-2 fibers) and the
        ``(V,)`` class remainder.  Returns ``None`` if any derived count
        is implausible (see class docstring)."""
        per_class = []
        for cls, n_class in ((0, self.n_controls), (1, self.n_cases)):
            c4 = np.asarray(
                operands.corner4[cls][w, x, y, z], dtype=np.int64
            )  # (V, 2, 2, 2, 2) over (g_w, g_x, g_y, g_z)
            n = c4.shape[0]
            # One-index-is-2 fibers by marginal subtraction: the 3-way
            # corner marginalizes the missing SNP over all 3 genotypes.
            fibers = (
                operands.corner3_xyz[cls][x, y, z] - c4.sum(axis=1),  # g_w=2
                operands.corner3_wyz[cls][w, y, z] - c4.sum(axis=2),  # g_x=2
                operands.corner3_wxz[cls][w, x, z] - c4.sum(axis=3),  # g_y=2
                operands.corner3_wxy[cls][w, x, y] - c4.sum(axis=4),  # g_z=2
            )
            cells = np.concatenate(
                [c4.reshape(n, 16)]
                + [np.asarray(f, dtype=np.int64).reshape(n, 8) for f in fibers],
                axis=1,
            )  # (V, 48)
            rest = n_class - cells.sum(axis=1)
            if cells.size and (
                int(cells.min()) < 0 or int(rest.min()) < 0
            ):
                return None
            per_class.append((cells, rest))
        cells0, rest0 = per_class[0]
        cells1, rest1 = per_class[1]
        if cells0.size and int((cells0 + cells1).max()) > self.max_total:
            return None
        return cells0, rest0, cells1, rest1

    def quad_bounds(
        self, operands, w, x, y, z
    ) -> np.ndarray | None:
        """48-cell lower bounds for the selected grid positions.

        Args:
            operands: a :class:`~repro.core.apply_score.RoundOperands`.
            w, x, y, z: equal-length integer index arrays selecting
                positions of the round's ``(B, B, B, B)`` grid.

        Returns:
            ``(V,)`` float64 bounds, each ``<= `` the exact K2 score of
            the corresponding completed table (up to summation-order
            rounding, absorbed by :data:`PRUNE_SLACK`) — or ``None`` when
            the counts are implausible and no safe bound exists.
        """
        gathered = self._gather_48(operands, w, x, y, z)
        if gathered is None:
            return None
        cells0, rest0, cells1, rest1 = gathered
        return (
            self._cell_terms(cells0, cells1).sum(axis=1)
            + self._log1(rest0)
            + self._log1(rest1)
        )

    def round_bound(
        self,
        corner4: "tuple[np.ndarray, np.ndarray]",
        mask: np.ndarray,
    ) -> float:
        """Aggregate 16-corner lower bound of one round.

        The minimum, over the round's mask-valid positions, of the
        corner-only bound (16 known cells + remainder terms).  Computable
        from the fused 4-way GEMM output alone — before any third-order
        sweep is staged — so the pipelined loop can elide a whole round
        (and, cache-off, its sweep launches) when even its best possible
        quad cannot beat the threshold.

        Returns:
            The masked minimum bound; ``+inf`` when the round has no
            valid positions (nothing to score — always elidable);
            ``-inf`` when any count is implausible (never elide — let the
            scoring path's validation see the corruption).
        """
        per_class = []
        for cls, n_class in ((0, self.n_controls), (1, self.n_cases)):
            c4 = np.asarray(corner4[cls], dtype=np.int64)
            b = c4.shape[0]
            cells = c4.reshape(b, b, b, b, 16)
            rest = n_class - cells.sum(axis=-1)
            if cells.size and (
                int(cells.min()) < 0 or int(rest.min()) < 0
            ):
                return -np.inf
            per_class.append((cells, rest))
        cells0, rest0 = per_class[0]
        cells1, rest1 = per_class[1]
        if cells0.size and int((cells0 + cells1).max()) > self.max_total:
            return -np.inf
        grid = (
            self._cell_terms(cells0, cells1).sum(axis=-1)
            + self._log1(rest0)
            + self._log1(rest1)
        )
        masked = grid[mask]
        if masked.size == 0:
            return np.inf
        return float(masked.min())

    def __repr__(self) -> str:
        return (
            f"K2BoundKernel(max_total={self.max_total}, "
            f"n_controls={self.n_controls}, n_cases={self.n_cases})"
        )
