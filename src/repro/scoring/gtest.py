"""G-test (log-likelihood ratio) association score (extension score)."""

from __future__ import annotations

import numpy as np

from repro.scoring.base import ScoreFunction


class GTestScore(ScoreFunction):
    """Likelihood-ratio G statistic: ``2 * sum O * ln(O / E)``.

    Zero-observed cells contribute nothing (``0 * ln 0 := 0``).  Higher
    values indicate stronger association.
    """

    name = "gtest"
    higher_is_better = True

    def __call__(
        self,
        controls_table: np.ndarray,
        cases_table: np.ndarray,
        order: int | None = None,
    ) -> np.ndarray:
        r0 = self._flatten_cells(np.asarray(controls_table, dtype=np.float64), order)
        r1 = self._flatten_cells(np.asarray(cases_table, dtype=np.float64), order)
        if r0.shape != r1.shape:
            raise ValueError(f"class tables disagree: {r0.shape} vs {r1.shape}")
        cell_totals = r0 + r1
        n0 = r0.sum(axis=-1, keepdims=True)
        n1 = r1.sum(axis=-1, keepdims=True)
        n = n0 + n1
        with np.errstate(divide="ignore", invalid="ignore"):
            e0 = cell_totals * n0 / n
            e1 = cell_totals * n1 / n
            term0 = np.where(r0 > 0, r0 * np.log(r0 / e0), 0.0)
            term1 = np.where(r1 > 0, r1 * np.log(r1 / e1), 0.0)
        return 2.0 * (term0 + term1).sum(axis=-1)
