"""Integer-argument ``lgamma`` lookup table (paper §3.5).

The K2 score is a sum of log-factorials; using ``Gamma(x) = (x-1)!`` these
become ``lgamma`` evaluations at integer arguments bounded by ``N + 2``.
The paper precomputes "all the lgamma(x) values that can be requested during
the search phase" once at start-up; each GPU keeps a copy.  This class is
that table.
"""

from __future__ import annotations

import numpy as np
from scipy.special import gammaln


class LgammaTable:
    """Precomputed ``lgamma(i)`` for ``i = 0 .. max_argument``.

    ``lgamma(0)`` is ``+inf`` mathematically; it is stored as ``0.0`` because
    the K2 expression only ever indexes arguments ``>= 1`` (counts are offset
    by at least 1) and a finite sentinel keeps vectorized gathers safe.
    """

    def __init__(self, max_argument: int) -> None:
        if max_argument < 1:
            raise ValueError(f"max_argument must be >= 1, got {max_argument}")
        self.max_argument = int(max_argument)
        values = gammaln(np.arange(self.max_argument + 1, dtype=np.float64))
        values[0] = 0.0
        self._values = values

    @classmethod
    def for_samples(cls, n_samples: int) -> "LgammaTable":
        """Table sized for a dataset with ``n_samples`` samples.

        K2 needs ``lgamma(r_i + 2)`` where ``r_i <= N``, so ``N + 2`` is the
        largest argument any search can request.
        """
        return cls(n_samples + 2)

    def shifted(self, shift: int) -> np.ndarray:
        """Read-only view ``V`` with ``V[n] == lgamma(n + shift)``.

        The fused scorer gathers ``lgamma(n + 2)`` / ``lgamma(n + 1)``
        directly on raw int64 count arrays; pre-shifting the table turns
        each of those into a single fancy-index with no ``n + k``
        temporary.  ``V`` indexes ``n = 0 .. max_argument - shift``.
        """
        if not 0 <= shift <= self.max_argument:
            raise ValueError(
                f"shift must be in [0, {self.max_argument}], got {shift}"
            )
        view = self._values[shift:]
        view.flags.writeable = False
        return view

    def __call__(self, arguments: np.ndarray) -> np.ndarray:
        """Vectorized lookup: ``lgamma(arguments)`` for integer arguments."""
        idx = np.asarray(arguments)
        if idx.size and (idx.min() < 0 or idx.max() > self.max_argument):
            raise IndexError(
                f"lgamma argument out of table range [0, {self.max_argument}]: "
                f"min={idx.min()}, max={idx.max()}"
            )
        return self._values[idx]

    @property
    def nbytes(self) -> int:
        """Table footprint in bytes (each device stores one copy)."""
        return int(self._values.nbytes)

    def __repr__(self) -> str:
        return f"LgammaTable(max_argument={self.max_argument})"
