"""Statistical association scores over case/control contingency tables.

The paper evaluates with the Bayesian K2 score (§2, §3.5); because the score
cost is invariant in the sample count, it also notes the choice of test does
not affect performance.  We implement K2 as the default plus three common
alternatives behind the same interface so the claim can be checked.

All scores are *batched*: they accept ``(..., 3, 3, 3, 3)`` (or any order
``k``) tables per class and return ``(...)`` floats.
"""

from repro.scoring.base import ScoreFunction, normalized_for_minimization
from repro.scoring.bounds import PRUNE_SLACK, K2BoundKernel
from repro.scoring.chi2 import ChiSquaredScore
from repro.scoring.gtest import GTestScore
from repro.scoring.k2 import K2Score
from repro.scoring.lgamma_table import LgammaTable
from repro.scoring.mutual_info import MutualInformationScore

#: Registry of score-function factories by name (CLI / config entry point).
SCORE_FUNCTIONS = {
    "k2": K2Score,
    "chi2": ChiSquaredScore,
    "gtest": GTestScore,
    "mi": MutualInformationScore,
}


def make_score(name: str, **kwargs) -> ScoreFunction:
    """Instantiate a score function by registry name."""
    if name not in SCORE_FUNCTIONS:
        raise ValueError(
            f"unknown score {name!r}; available: {sorted(SCORE_FUNCTIONS)}"
        )
    return SCORE_FUNCTIONS[name](**kwargs)


__all__ = [
    "ChiSquaredScore",
    "GTestScore",
    "K2BoundKernel",
    "K2Score",
    "LgammaTable",
    "MutualInformationScore",
    "PRUNE_SLACK",
    "SCORE_FUNCTIONS",
    "ScoreFunction",
    "make_score",
    "normalized_for_minimization",
]
