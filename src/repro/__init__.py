"""Epi4Tensor reproduction: tensor-accelerated fourth-order epistasis detection.

A full-system Python reproduction of *"Tensor-Accelerated Fourth-Order
Epistasis Detection on GPUs"* (Nobre, Santander-Jiménez, Ilic, Sousa — ICPP
2022), with the GPU binary tensor cores simulated by exact AND+POPC /
XOR+POPC GEMM engines and a calibrated device performance model.

Quickstart::

    from repro import generate_random_dataset, search_best_quad

    dataset = generate_random_dataset(n_snps=64, n_samples=512, seed=0)
    result = search_best_quad(dataset, block_size=16)
    print(result.best_quad, result.best_score)

See ``README.md`` for the architecture overview and ``DESIGN.md`` /
``EXPERIMENTS.md`` for the reproduction inventory.
"""

from repro.core.blocks import useful_ratio
from repro.core.solution import Solution
from repro.datasets import (
    Dataset,
    encode_dataset,
    generate_epistatic_dataset,
    generate_random_dataset,
    load_dataset,
    save_dataset,
)
from repro.device.specs import A100_PCIE, A100_SXM4, SYSTEMS, TITAN_RTX
from repro.scoring import K2Score, make_score

__version__ = "1.0.0"

_LAZY_EXPORTS = {
    "Epi4TensorSearch": ("repro.core.search", "Epi4TensorSearch"),
    "SearchConfig": ("repro.core.search", "SearchConfig"),
    "SearchResult": ("repro.core.search", "SearchResult"),
    "search_best_quad": ("repro.core.search", "search_best_quad"),
    "predict_search": ("repro.perfmodel.model", "predict_search"),
    "predict_multi_gpu": ("repro.perfmodel.model", "predict_multi_gpu"),
}


def __getattr__(name: str):
    # Search/perfmodel exports are lazy to keep light imports (datasets,
    # scoring) cheap and cycle-free.
    if name in _LAZY_EXPORTS:
        import importlib

        module_name, attr = _LAZY_EXPORTS[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "A100_PCIE",
    "A100_SXM4",
    "Dataset",
    "Epi4TensorSearch",
    "K2Score",
    "SYSTEMS",
    "SearchConfig",
    "SearchResult",
    "Solution",
    "TITAN_RTX",
    "encode_dataset",
    "generate_epistatic_dataset",
    "generate_random_dataset",
    "load_dataset",
    "make_score",
    "predict_multi_gpu",
    "predict_search",
    "save_dataset",
    "search_best_quad",
    "useful_ratio",
]
