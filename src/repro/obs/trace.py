"""Structured tracing: nested spans over the search execution.

A :class:`Tracer` records a tree of :class:`SpanRecord` objects — one per
``with tracer.span(...)`` block — capturing wall and monotonic times, tags
and the recording thread.  The search driver emits the taxonomy

    encode                                     (construction-time root span)
    run
    ├── prepare                                (schedule + transfer + cache)
    │   └── pairwise                           (indivPop / pairwPop)
    ├── device[d]                              (one per participating device)
    │   └── outer[wi]                          (one per outer iteration)
    │       ├── combine / tensor3              (loop-invariant operands)
    │       └── round[wi,xi,yi,zi]
    │           ├── combine / tensor4          (yz combine + 4-way GEMM)
    │           ├── derive                     (completion + scoring math)
    │           ├── score                      (applyScore accounting)
    │           └── reduce                     (per-round top-k insert)
    └── reduce                                 (final cross-device reduction)

Sharded workers (``repro.dist``) wrap the whole taxonomy in one extra
root: ``shard[index,count]`` encloses ``run`` so a shard's trace is
attributable to its position in the plan.

Every span gets a deterministic **path**: the parent path joined with the
span's label (name plus identity tags) and a per-parent occurrence index,
e.g. ``run#0/device[0]#0/outer[2]#0/round[2,2,3,3]#0/combine#1``.  Paths
make traces canonically sortable, which is what lets golden tests compare
runs byte-for-byte after normalizing the non-deterministic fields
(timestamps, durations, thread ids, span ids).

The default :data:`NULL_TRACER` is a shared no-op whose ``span`` call
returns a singleton null context manager — the instrumented hot paths stay
within noise of the uninstrumented build (see
``benchmarks/bench_obs_overhead.py``).

This module is dependency-free (stdlib only) and knows nothing about
epistasis: :mod:`repro.core.search` wires it to the loop nest.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

__all__ = [
    "SpanRecord",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "trace_lines",
    "normalize_records",
    "span_tree_shape",
]

#: Tag keys that become part of a span's identity label (and therefore its
#: canonical path).  Everything else is carried as metadata only.
_IDENTITY_TAGS = ("device", "wi", "xi", "yi", "zi", "quad", "index", "count")


@dataclass(frozen=True)
class SpanRecord:
    """One finished span.

    Attributes:
        span_id: unique ordinal within the tracer (assignment order is
            racy under threads — use :attr:`path` for stable identity).
        parent_id: ``span_id`` of the enclosing span (``None`` for roots).
        name: span name (``"round"``, ``"combine"``, ...).
        label: name plus identity tags, e.g. ``"round[0,0,1,1]"``.
        path: canonical slash-joined path from the root, with per-parent
            occurrence indices (``"run#0/device[0]#0/..."``).
        depth: nesting depth (roots are 0).
        tags: all tags passed to :meth:`Tracer.span`.
        thread_id: :func:`threading.get_ident` of the recording thread.
        wall_start: ``time.time()`` at entry (epoch seconds).
        start_monotonic: ``time.perf_counter()`` at entry.
        duration: seconds between entry and exit (monotonic clock).
    """

    span_id: int
    parent_id: int | None
    name: str
    label: str
    path: str
    depth: int
    tags: dict[str, Any]
    thread_id: int
    wall_start: float
    start_monotonic: float
    duration: float

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (JSONL export)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "label": self.label,
            "path": self.path,
            "depth": self.depth,
            "tags": dict(sorted(self.tags.items())),
            "thread_id": self.thread_id,
            "wall_start": self.wall_start,
            "start_monotonic": self.start_monotonic,
            "duration": self.duration,
        }


def _label_for(name: str, tags: Mapping[str, Any]) -> str:
    """``name[identity-tag-values]`` — the path component of a span."""
    parts = [str(tags[k]) for k in _IDENTITY_TAGS if k in tags]
    return f"{name}[{','.join(parts)}]" if parts else name


class _ActiveSpan:
    """Span context manager while the span is open (one per ``with``)."""

    __slots__ = (
        "_tracer", "name", "label", "tags", "span_id", "parent_id",
        "path", "depth", "_child_counts", "_wall_start", "_t0", "_parent",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        tags: dict[str, Any],
        parent: "_ActiveSpan | None" = None,
    ):
        self._tracer = tracer
        self.name = name
        self.tags = tags
        self.label = _label_for(name, tags)
        self._child_counts: dict[str, int] = {}
        self._parent = parent

    def set_tag(self, key: str, value: Any) -> None:
        """Attach/overwrite a tag while the span is open."""
        self.tags[key] = value

    def _occurrence(self, label: str) -> int:
        # Under the tracer lock: explicit-parent spans (cross-thread
        # children, e.g. per-worker device spans under the run span) may
        # increment a shared parent's child counter concurrently.
        with self._tracer._lock:
            n = self._child_counts.get(label, 0)
            self._child_counts[label] = n + 1
            return n

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        stack = tracer._stack()
        parent = self._parent if self._parent is not None else (
            stack[-1] if stack else None
        )
        if parent is None:
            self.parent_id = None
            self.depth = 0
            occ = tracer._root_occurrence(self.label)
            self.path = f"{self.label}#{occ}"
        else:
            self.parent_id = parent.span_id
            self.depth = parent.depth + 1
            occ = parent._occurrence(self.label)
            self.path = f"{parent.path}/{self.label}#{occ}"
        self.span_id = tracer._next_id()
        stack.append(self)
        self._wall_start = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        duration = time.perf_counter() - self._t0
        tracer = self._tracer
        stack = tracer._stack()
        assert stack and stack[-1] is self, "span exit out of order"
        stack.pop()
        tracer._record(
            SpanRecord(
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                label=self.label,
                path=self.path,
                depth=self.depth,
                tags=self.tags,
                thread_id=threading.get_ident(),
                wall_start=self._wall_start,
                start_monotonic=self._t0,
                duration=duration,
            )
        )


class Tracer:
    """Thread-safe span recorder with per-thread span stacks."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._records: list[SpanRecord] = []
        self._root_counts: dict[str, int] = {}
        self._id = 0

    # -- internal ------------------------------------------------------- #

    def _stack(self) -> list[_ActiveSpan]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _next_id(self) -> int:
        with self._lock:
            self._id += 1
            return self._id

    def _root_occurrence(self, label: str) -> int:
        with self._lock:
            n = self._root_counts.get(label, 0)
            self._root_counts[label] = n + 1
            return n

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    # -- public --------------------------------------------------------- #

    def span(
        self,
        name: str,
        parent_span: "_ActiveSpan | None" = None,
        **tags: Any,
    ) -> _ActiveSpan:
        """Open a span; use as a context manager.

        ``parent_span`` explicitly parents the span (needed when a child
        opens on a different thread than its parent, e.g. per-worker
        device spans under the run span); by default the innermost open
        span on the current thread is the parent.
        """
        return _ActiveSpan(self, name, tags, parent=parent_span)

    def current(self) -> _ActiveSpan | None:
        """The innermost open span on *this* thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def records(self) -> list[SpanRecord]:
        """Finished spans in canonical (path-sorted) order."""
        with self._lock:
            return sorted(self._records, key=lambda r: r.path)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._root_counts.clear()
            self._id = 0


class _NullSpan:
    """Singleton no-op span (returned by :class:`NullTracer`)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set_tag(self, key: str, value: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer: ``span()`` returns a shared null context manager."""

    enabled = False

    def span(self, name: str, parent_span: Any = None, **tags: Any) -> _NullSpan:
        return _NULL_SPAN

    def current(self) -> None:
        return None

    def records(self) -> list[SpanRecord]:
        return []

    def clear(self) -> None:
        return None


#: Shared default tracer — near-zero overhead on every instrumented path.
NULL_TRACER = NullTracer()


# ---------------------------------------------------------------------- #
# Canonical export / normalization helpers


def normalize_records(records: Iterable[SpanRecord]) -> list[dict[str, Any]]:
    """Strip the non-deterministic fields from span records.

    Timestamps, durations, span/parent/thread ids are zeroed (the *keys*
    are kept so schemas stay checkable); tree structure is preserved
    through ``path``/``depth``.  Two runs of the same deterministic
    workload normalize to identical lists — the golden-trace contract.
    """
    out = []
    for r in sorted(records, key=lambda r: r.path):
        d = r.to_dict()
        d["span_id"] = 0
        d["parent_id"] = 0 if r.parent_id is not None else None
        d["thread_id"] = 0
        d["wall_start"] = 0.0
        d["start_monotonic"] = 0.0
        d["duration"] = 0.0
        out.append(d)
    return out


def trace_lines(
    records: Iterable[SpanRecord], *, normalized: bool = False
) -> list[str]:
    """JSONL lines (canonical key order, path-sorted records)."""
    dicts = (
        normalize_records(records)
        if normalized
        else [r.to_dict() for r in sorted(records, key=lambda r: r.path)]
    )
    return [json.dumps(d, sort_keys=True, separators=(",", ":")) for d in dicts]


def span_tree_shape(records: Iterable[SpanRecord]) -> list[str]:
    """The trace reduced to its shape: sorted span paths only."""
    return [r.path for r in sorted(records, key=lambda r: r.path)]
