"""Deterministic run manifests: the reproducibility contract of a search.

A :class:`RunManifest` captures everything needed to *re-run and verify* a
search — configuration, dataset digest, seeds, software versions, device
model — plus a digest of what came out (the ranked top-k quads with
bit-exact ``float.hex()`` scores).  It deliberately contains **no
timestamps and no timings**: two runs of the same configuration on the
same dataset must serialize to byte-identical JSON, whether they executed
sequentially or across threads, with AND+POPC or XOR+POPC engines, with or
without the operand cache, and with or without injected faults (the
resilience layer only re-executes idempotent work).  Golden tests and the
CI artifact job rely on exactly this property.

The module is duck-typed against the search driver (no imports from
:mod:`repro.core`), so :mod:`repro.core.search` can import it freely.
"""

from __future__ import annotations

import hashlib
import json
import platform
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "RunManifest",
    "build_run_manifest",
    "dataset_digest",
    "encoded_digest",
    "solutions_digest",
]

MANIFEST_SCHEMA_VERSION = 1

#: Keys every manifest must carry (schema contract checked by tests).
REQUIRED_KEYS = (
    "schema_version",
    "kind",
    "config",
    "dataset",
    "execution",
    "versions",
    "results",
)


def dataset_digest(dataset: Any) -> str:
    """SHA-256 over a raw :class:`~repro.datasets.dataset.Dataset`'s
    genotypes + phenotypes (shape-prefixed, C-order bytes)."""
    import numpy as np

    g = np.ascontiguousarray(dataset.genotypes)
    p = np.ascontiguousarray(dataset.phenotypes)
    h = hashlib.sha256()
    h.update(f"genotypes:{g.shape}:{g.dtype}".encode())
    h.update(g.tobytes())
    h.update(f"phenotypes:{p.shape}:{p.dtype}".encode())
    h.update(p.tobytes())
    return h.hexdigest()


def encoded_digest(encoded: Any) -> str:
    """SHA-256 over an :class:`~repro.datasets.encoding.EncodedDataset`'s
    packed bit-planes (both classes, shape-prefixed)."""
    import numpy as np

    h = hashlib.sha256()
    for name in ("controls", "cases"):
        bm = getattr(encoded, name)
        data = np.ascontiguousarray(bm.data)
        h.update(f"{name}:{data.shape}:{bm.n_bits}".encode())
        h.update(data.tobytes())
    return h.hexdigest()


def solutions_digest(solutions: Iterable[Any]) -> str:
    """SHA-256 over ranked solutions, bit-exact.

    Each solution contributes ``w,x,y,z:score.hex()`` — ``float.hex()``
    round-trips the IEEE-754 value exactly, so the digest changes iff any
    ranked quad or any score bit changes.
    """
    lines = []
    for sol in solutions:
        w, x, y, z = sol.quad
        lines.append(f"{w},{x},{y},{z}:{float(sol.score).hex()}")
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


@dataclass(frozen=True)
class RunManifest:
    """An immutable manifest; serialize with :meth:`to_json`."""

    data: dict[str, Any]

    def __post_init__(self) -> None:
        missing = [k for k in REQUIRED_KEYS if k not in self.data]
        if missing:
            raise ValueError(f"manifest missing required keys: {missing}")

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, fixed separators, trailing newline.

        Byte-identical across repeated runs of the same configuration —
        the reproducibility contract (see ``docs/observability.md``).
        """
        return (
            json.dumps(
                self.data, sort_keys=True, separators=(",", ": "), indent=1
            )
            + "\n"
        )

    @property
    def digest(self) -> str:
        """SHA-256 of the canonical JSON."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        return cls(json.loads(text))

    def __getitem__(self, key: str) -> Any:
        return self.data[key]


def _config_dict(config: Any) -> dict[str, Any]:
    """JSON-safe view of a :class:`~repro.core.search.SearchConfig`."""
    import dataclasses

    out: dict[str, Any] = {}
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        if f.name == "score" and not isinstance(value, str):
            value = getattr(value, "name", type(value).__name__)
        if isinstance(value, float) and value != value:  # NaN
            value = "nan"
        elif isinstance(value, float) and value in (float("inf"), float("-inf")):
            value = "inf" if value > 0 else "-inf"
        out[f.name] = value
    return out


def build_run_manifest(
    search: Any,
    result: Any,
    dataset: Any | None = None,
    *,
    extra: Mapping[str, Any] | None = None,
) -> RunManifest:
    """Assemble the manifest for one finished search run.

    Args:
        search: the :class:`~repro.core.search.Epi4TensorSearch` instance
            (source of config, encoded dataset, spec and seeds).
        result: its :class:`~repro.core.search.SearchResult`.
        dataset: the raw dataset, if available — adds a raw-genotype
            digest next to the always-present encoded digest.
        extra: caller-provided deterministic context (e.g. the CLI's
            dataset-generation seed).  Must be JSON-serializable.

    Returns:
        A :class:`RunManifest` whose JSON is byte-stable across repeated
        and re-ordered (sequential vs threaded) executions.
    """
    import numpy as np

    scheme = result.block_scheme
    fault_plan = getattr(search, "_fault_plan", None)
    data: dict[str, Any] = {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "kind": "epi4tensor-search",
        "config": _config_dict(search.config),
        "dataset": {
            "n_snps": scheme.n_real_snps,
            "n_snps_padded": scheme.n_snps,
            "n_samples": result.n_samples,
            "n_controls": search.encoded.n_controls,
            "n_cases": search.encoded.n_cases,
            "encoded_sha256": encoded_digest(search.encoded),
            **(
                {"raw_sha256": dataset_digest(dataset)}
                if dataset is not None
                else {}
            ),
        },
        "execution": {
            "spec": result.spec_name,
            "engine": result.engine_name,
            "n_devices": result.n_devices,
            "partition": search.config.partition,
            "block_size": scheme.block_size,
            "n_blocks": scheme.nb,
            "n_rounds": scheme.n_rounds,
            "unique_quads": int(scheme.unique_quads),
        },
        "seeds": {
            "fault_plan": (
                fault_plan.seed if fault_plan is not None else None
            ),
            "backoff": (
                fault_plan.seed if fault_plan is not None else 0
            ),
        },
        "versions": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "repro": _repro_version(),
        },
        "results": {
            "top_k": len(result.top_solutions),
            "best_quad": list(result.best_quad),
            "best_score_hex": float(result.best_score).hex(),
            "top_k_sha256": solutions_digest(result.top_solutions),
        },
    }
    if extra:
        data["extra"] = dict(sorted(extra.items()))
    return RunManifest(data)


def _repro_version() -> str:
    try:
        import repro

        return getattr(repro, "__version__", "unknown")
    except Exception:  # pragma: no cover - defensive
        return "unknown"
