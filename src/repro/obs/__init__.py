"""Observability layer: tracing, metrics and run manifests.

Three pillars, one per module:

- :mod:`repro.obs.trace` — nested :class:`Span` tracing of the search
  execution (run → device → outer → round → kernel phases), exported as
  canonical JSONL;
- :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of labeled
  counters/gauges/histograms unifying kernel counters, operand-cache
  statistics, resilience incidents and per-device phase times, exported
  as Prometheus text;
- :mod:`repro.obs.manifest` — a deterministic :class:`RunManifest`
  (config, dataset digest, seeds, versions, bit-exact top-k digest) that
  is byte-identical across repeated and re-ordered runs.

The default tracer is the no-op :data:`NULL_TRACER`; instrumentation is
always wired but costs nothing until a real :class:`Tracer` is attached.
"""

from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    build_run_manifest,
    dataset_digest,
    encoded_digest,
    solutions_digest,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    HistogramValue,
    MetricsRegistry,
    normalized_snapshot,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    Tracer,
    normalize_records,
    span_tree_shape,
    trace_lines,
)
from repro.obs.exporters import (
    export_run_artifacts,
    write_manifest,
    write_metrics,
    write_trace,
)

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "RunManifest",
    "build_run_manifest",
    "dataset_digest",
    "encoded_digest",
    "solutions_digest",
    "DEFAULT_BUCKETS",
    "HistogramValue",
    "MetricsRegistry",
    "normalized_snapshot",
    "NULL_TRACER",
    "NullTracer",
    "SpanRecord",
    "Tracer",
    "normalize_records",
    "span_tree_shape",
    "trace_lines",
    "export_run_artifacts",
    "write_manifest",
    "write_metrics",
    "write_trace",
]
