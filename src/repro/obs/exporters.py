"""File exporters for the observability artifacts.

Three machine-checkable artifacts per run:

- **JSONL trace** (``--trace-out``): one span per line, canonical
  (path-sorted) order, schema defined by
  :meth:`repro.obs.trace.SpanRecord.to_dict`.
- **Prometheus text metrics** (``--metrics-out``): the standard text
  exposition format, series sorted, scrape-ready.
- **Run manifest** (``--manifest-out``): canonical JSON, byte-identical
  across repeated runs of the same configuration (the reproducibility
  contract — see :mod:`repro.obs.manifest`).

All writers are atomic and durable (write tmp → ``os.fsync`` →
``os.replace`` → directory fsync) so a crashed run never leaves a
half-written artifact behind and a published artifact survives power
loss.
"""

from __future__ import annotations

import os
from typing import Any, Iterable

from repro.core.checkpoint import fsync_directory
from repro.obs.manifest import RunManifest
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import SpanRecord, Tracer, trace_lines

__all__ = [
    "write_trace",
    "write_metrics",
    "write_manifest",
    "export_run_artifacts",
]


def _atomic_write(path: str | os.PathLike, text: str) -> str:
    path = os.fspath(path)
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8", newline="\n") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    fsync_directory(parent)
    return path


def write_trace(
    path: str | os.PathLike,
    source: Tracer | Iterable[SpanRecord],
    *,
    normalized: bool = False,
) -> str:
    """Write a JSONL trace file; returns the path written."""
    records = source.records() if isinstance(source, Tracer) else list(source)
    lines = trace_lines(records, normalized=normalized)
    return _atomic_write(path, "\n".join(lines) + ("\n" if lines else ""))


def write_metrics(path: str | os.PathLike, registry: MetricsRegistry) -> str:
    """Write Prometheus text-format metrics; returns the path written."""
    return _atomic_write(path, registry.to_prometheus())


def write_manifest(path: str | os.PathLike, manifest: RunManifest) -> str:
    """Write the canonical-JSON manifest; returns the path written."""
    return _atomic_write(path, manifest.to_json())


def export_run_artifacts(
    *,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    manifest: RunManifest | None = None,
    trace_out: str | None = None,
    metrics_out: str | None = None,
    manifest_out: str | None = None,
) -> dict[str, str]:
    """Write whichever artifacts were requested; returns name -> path."""
    written: dict[str, Any] = {}
    if trace_out:
        if tracer is None:
            raise ValueError("trace_out requested but no tracer provided")
        written["trace"] = write_trace(trace_out, tracer)
    if metrics_out:
        if metrics is None:
            raise ValueError("metrics_out requested but no registry provided")
        written["metrics"] = write_metrics(metrics_out, metrics)
    if manifest_out:
        if manifest is None:
            raise ValueError("manifest_out requested but no manifest provided")
        written["manifest"] = write_manifest(manifest_out, manifest)
    return written
