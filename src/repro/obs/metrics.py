"""Unified metrics registry: named counters, gauges and histograms.

One :class:`MetricsRegistry` per search run absorbs every accounting
source that used to live in its own ad-hoc structure —
:class:`~repro.device.virtual_gpu.KernelCounters`, operand-cache
hit/miss/eviction statistics, :class:`~repro.core.resilience.FaultLog`
incident counts and the per-phase wall times — as **labeled series**
(``device="0"``, ``phase="combine"``, ...), so per-device attribution
survives threaded out-of-order completion by construction: a sample is
recorded under its device label at the recording site, never inferred
from completion order.

The catalogue emitted by a search run (all prefixed ``epi4_``):

=============================================  =========  =======================
name                                           type       labels
=============================================  =========  =======================
``epi4_phase_seconds_total``                   counter    ``phase``, ``device``
``epi4_rounds_total``                          counter    ``device``
``epi4_round_seconds``                         histogram  ``device``
``epi4_operand_requests_total``                counter    ``kind``, ``device``
``epi4_operand_executed_total``                counter    ``kind``, ``device``
``epi4_operand_cache_served_total``            counter    ``kind``, ``device``
``epi4_kernel_launches_total``                 counter    ``kernel``, ``device``
``epi4_tensor_ops_total``                      counter    ``form``, ``kernel``, ``device``
``epi4_combine_bit_ops_total``                 counter    ``device``
``epi4_pairwise_ops_total``                    counter    ``device``
``epi4_score_cells_total``                     counter    ``device``
``epi4_transfer_bytes_total``                  counter    ``device``
``epi4_faults_injected_total``                 counter    ``device``
``epi4_cache_lookups_total``                   counter    ``result`` (hit/miss)
``epi4_cache_evictions_total``                 counter    —
``epi4_cache_resident_bytes`` / ``_peak``      gauge      —
``epi4_resilience_attempts_total`` (etc.)      counter    ``device``
``epi4_resilience_incidents_total``            counter    ``action``
``epi4_device_quarantined``                    gauge      ``device``
``epi4_wall_seconds`` / ``epi4_quads_per_second_scaled``  gauge  —
``epi4_shard_index`` / ``epi4_shard_count``    gauge      — (shard workers only)
``epi4_shard_iterations_total``                counter    — (shard workers only)
=============================================  =========  =======================

The ``epi4_shard_*`` series appear only in shard-worker runs
(:mod:`repro.dist`), never in plain single-process runs — golden
fixtures of the plain metric set stay byte-stable.
:func:`merge_shard_snapshots` aggregates per-shard snapshots into one
registry (counters sum, so conservation laws survive the merge).

Invariants the property suite (``tests/test_properties.py``) locks in:
``hits + misses == lookups`` and
``executed + cache_served == requests`` per operand kind.

Export formats: a deterministic snapshot dict and Prometheus text
exposition (sorted series).  Time-valued series are inherently
non-deterministic; :func:`normalized_snapshot` zeroes them and sums over
the ``device`` label so golden tests can compare runs byte-for-byte
across sequential and threaded execution.
"""

from __future__ import annotations

import bisect
import math
import threading
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

__all__ = [
    "MetricsRegistry",
    "HistogramValue",
    "merge_shard_snapshots",
    "normalized_snapshot",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds (seconds-flavoured).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_str(key: _LabelKey) -> str:
    return "{" + ",".join(f'{k}="{v}"' for k, v in key) + "}" if key else ""


def _format_value(value: float) -> str:
    if value != value or math.isinf(value):  # NaN / inf
        return str(value)
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


@dataclass(frozen=True)
class HistogramValue:
    """Snapshot of one histogram series."""

    buckets: tuple[float, ...]
    counts: tuple[int, ...]  # per-bucket (non-cumulative), +Inf bucket last
    total: int
    sum: float


class _Histogram:
    __slots__ = ("buckets", "counts", "total", "sum")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.total += 1
        self.sum += value

    def snapshot(self) -> HistogramValue:
        return HistogramValue(
            buckets=self.buckets,
            counts=tuple(self.counts),
            total=self.total,
            sum=self.sum,
        )


class MetricsRegistry:
    """Thread-safe registry of labeled counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, dict[_LabelKey, float]] = {}
        self._gauges: dict[str, dict[_LabelKey, float]] = {}
        self._hists: dict[str, dict[_LabelKey, _Histogram]] = {}
        self._hist_buckets: dict[str, tuple[float, ...]] = {}

    # -- recording ------------------------------------------------------ #

    def inc(self, name: str, value: float = 1.0, **labels: Any) -> None:
        """Add ``value`` to the counter series ``name{labels}``."""
        if value < 0:
            raise ValueError(f"counter {name} increment must be >= 0, got {value}")
        key = _label_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Set the gauge series ``name{labels}`` to ``value``."""
        with self._lock:
            self._gauges.setdefault(name, {})[_label_key(labels)] = float(value)

    def add_gauge(self, name: str, delta: float, **labels: Any) -> None:
        """Add ``delta`` to the gauge series ``name{labels}`` (read and
        write under one lock hold, so concurrent adders never lose an
        update — used by the shard merge for ``*_total`` gauges)."""
        key = _label_key(labels)
        with self._lock:
            series = self._gauges.setdefault(name, {})
            series[key] = series.get(key, 0.0) + float(delta)

    def max_gauge(self, name: str, value: float, **labels: Any) -> None:
        """Raise the gauge series ``name{labels}`` to ``value`` if it is
        below it (atomic compare-and-set; level gauges such as cache
        peaks take the max over shards)."""
        key = _label_key(labels)
        with self._lock:
            series = self._gauges.setdefault(name, {})
            current = series.get(key)
            if current is None or float(value) > current:
                series[key] = float(value)

    def merge_histogram(
        self,
        name: str,
        labels: Mapping[str, Any],
        buckets: Iterable[float],
        counts: Iterable[int],
        total: int,
        sum_: float,
    ) -> None:
        """Fold one exported histogram series into this registry
        bucket-wise.  Bucket layouts must match any prior observations
        of the same series.

        Raises:
            ValueError: on a bucket-layout mismatch.
        """
        key = _label_key(labels)
        bounds = tuple(float(b) for b in buckets)
        with self._lock:
            series = self._hists.setdefault(name, {})
            hist = series.get(key)
            if hist is None:
                hist = _Histogram(bounds)
                series[key] = hist
            elif hist.buckets != bounds:
                raise ValueError(
                    f"histogram {name}{_label_str(key)} has mismatched "
                    "bucket layouts across shards"
                )
            for i, count in enumerate(counts):
                hist.counts[i] += int(count)
            hist.total += int(total)
            hist.sum += float(sum_)

    def register_histogram(
        self, name: str, buckets: Iterable[float]
    ) -> None:
        """Declare custom bucket bounds for histogram ``name`` (must be
        strictly increasing; call before the first ``observe``)."""
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError(f"buckets must be strictly increasing, got {bounds}")
        with self._lock:
            if name in self._hists:
                raise ValueError(f"histogram {name} already has observations")
            self._hist_buckets[name] = bounds

    def observe(self, name: str, value: float, **labels: Any) -> None:
        """Record ``value`` into the histogram series ``name{labels}``."""
        key = _label_key(labels)
        with self._lock:
            series = self._hists.setdefault(name, {})
            hist = series.get(key)
            if hist is None:
                hist = _Histogram(self._hist_buckets.get(name, DEFAULT_BUCKETS))
                series[key] = hist
            hist.observe(float(value))

    # -- queries -------------------------------------------------------- #

    def value(self, name: str, **labels: Any) -> float:
        """Current value of one counter/gauge series (0.0 if absent)."""
        key = _label_key(labels)
        with self._lock:
            if name in self._counters:
                return self._counters[name].get(key, 0.0)
            if name in self._gauges:
                return self._gauges[name].get(key, 0.0)
        return 0.0

    def series(self, name: str) -> dict[_LabelKey, float]:
        """All label-series of one counter/gauge metric."""
        with self._lock:
            if name in self._counters:
                return dict(self._counters[name])
            if name in self._gauges:
                return dict(self._gauges[name])
        return {}

    def total(self, name: str, **match: Any) -> float:
        """Sum of a metric over all series whose labels match ``match``."""
        want = {k: str(v) for k, v in match.items()}
        out = 0.0
        for key, value in self.series(name).items():
            labels = dict(key)
            if all(labels.get(k) == v for k, v in want.items()):
                out += value
        return out

    def sum_by(self, name: str, label: str) -> dict[str, float]:
        """Sums of a metric grouped by one label's values."""
        out: dict[str, float] = {}
        for key, value in self.series(name).items():
            group = dict(key).get(label, "")
            out[group] = out.get(group, 0.0) + value
        return out

    def histogram(self, name: str, **labels: Any) -> HistogramValue | None:
        with self._lock:
            series = self._hists.get(name, {})
            hist = series.get(_label_key(labels))
            return hist.snapshot() if hist is not None else None

    def names(self) -> list[str]:
        with self._lock:
            return sorted(
                set(self._counters) | set(self._gauges) | set(self._hists)
            )

    # -- export --------------------------------------------------------- #

    def snapshot(self) -> dict[str, Any]:
        """Deterministic nested-dict snapshot (sorted names and series)."""
        with self._lock:
            counters = {
                name: {
                    _label_str(k): v for k, v in sorted(series.items())
                }
                for name, series in sorted(self._counters.items())
            }
            gauges = {
                name: {
                    _label_str(k): v for k, v in sorted(series.items())
                }
                for name, series in sorted(self._gauges.items())
            }
            hists = {
                name: {
                    _label_str(k): {
                        "buckets": list(h.buckets),
                        "counts": list(h.counts),
                        "count": h.total,
                        "sum": h.sum,
                    }
                    for k, h in sorted(series.items())
                }
                for name, series in sorted(self._hists.items())
            }
        return {"counters": counters, "gauges": gauges, "histograms": hists}

    def to_prometheus(self) -> str:
        """Prometheus text exposition (stable ordering), trailing newline."""
        lines: list[str] = []
        with self._lock:
            for name, series in sorted(self._counters.items()):
                lines.append(f"# TYPE {name} counter")
                for key, value in sorted(series.items()):
                    lines.append(f"{name}{_label_str(key)} {_format_value(value)}")
            for name, series in sorted(self._gauges.items()):
                lines.append(f"# TYPE {name} gauge")
                for key, value in sorted(series.items()):
                    lines.append(f"{name}{_label_str(key)} {_format_value(value)}")
            for name, series in sorted(self._hists.items()):
                lines.append(f"# TYPE {name} histogram")
                for key, hist in sorted(series.items()):
                    cumulative = 0
                    for bound, count in zip(hist.buckets, hist.counts):
                        cumulative += count
                        labels = dict(key)
                        labels["le"] = _format_value(bound)
                        lines.append(
                            f"{name}_bucket{_label_str(_label_key(labels))} "
                            f"{cumulative}"
                        )
                    labels = dict(key)
                    labels["le"] = "+Inf"
                    lines.append(
                        f"{name}_bucket{_label_str(_label_key(labels))} "
                        f"{hist.total}"
                    )
                    lines.append(
                        f"{name}_sum{_label_str(key)} {_format_value(hist.sum)}"
                    )
                    lines.append(f"{name}_count{_label_str(key)} {hist.total}")
        return "\n".join(lines) + "\n"

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"MetricsRegistry({len(self._counters)} counters, "
                f"{len(self._gauges)} gauges, {len(self._hists)} histograms)"
            )


# ---------------------------------------------------------------------- #


def _is_time_like(name: str) -> bool:
    return (
        "seconds" in name
        or "per_second" in name
        or name.endswith("_bytes")  # resident/peak depend on eviction timing
        and "transfer" not in name
    )


def normalized_snapshot(registry: MetricsRegistry) -> dict[str, Any]:
    """Deterministic view of a registry for golden comparisons.

    - time-valued series (``*seconds*``, throughput gauges) are zeroed;
    - cache byte gauges are zeroed (they depend on eviction timing);
    - counter/gauge series are **summed over the** ``device`` **label**
      (under the dynamic multi-device schedule, *which* device ran an
      iteration is racy; the totals are not);
    - histograms are reduced to their total observation counts.
    """
    snap = registry.snapshot()
    out: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
    for kind in ("counters", "gauges"):
        for name, series in snap[kind].items():
            agg: dict[str, float] = {}
            for label_str, value in series.items():
                stripped = _strip_device(label_str)
                agg[stripped] = agg.get(stripped, 0.0) + (
                    0.0 if _is_time_like(name) else value
                )
            out[kind][name] = dict(sorted(agg.items()))
    for name, series in snap["histograms"].items():
        total = sum(h["count"] for h in series.values())
        out["histograms"][name] = {"count": total}
    return out


def _strip_device(label_str: str) -> str:
    if not label_str:
        return label_str
    inner = label_str.strip("{}")
    kept = [
        part
        for part in inner.split(",")
        if part and not part.startswith('device="')
    ]
    return "{" + ",".join(kept) + "}" if kept else ""


def _parse_label_str(label_str: str) -> dict[str, str]:
    """Inverse of :func:`_label_str` (labels never contain quotes or
    commas — they are device ids, phase names, kernel names)."""
    if not label_str:
        return {}
    out: dict[str, str] = {}
    for part in label_str.strip("{}").split(","):
        name, _, value = part.partition("=")
        out[name] = value.strip('"')
    return out


#: Per-shard identity gauges that must not survive a cross-shard merge
#: (a merged registry has no single shard index).
_SHARD_IDENTITY_GAUGES = frozenset({"epi4_shard_index"})


def merge_shard_snapshots(snapshots: "Iterable[dict]") -> MetricsRegistry:
    """Aggregate per-shard :meth:`MetricsRegistry.snapshot` dicts into
    one registry — the metrics side of the deterministic shard merge.

    Aggregation rules, by series type:

    - **counters** sum (they are extensive: operand requests, tensor
      ops, commits...).  Every conservation law that held per shard —
      e.g. ``requests == executed + cache_served`` per operand kind —
      therefore still holds on the merged registry.
    - **gauges** sum when the name ends in ``_total`` (totals exported
      through gauges, e.g. the journal counters) and otherwise take the
      max over shards (levels: wall seconds of concurrently running
      shards, cache peaks).  ``epi4_shard_index`` is dropped — a merged
      run has no single index.
    - **histograms** merge bucket-wise; differing bucket layouts for the
      same series are refused.
    """
    merged = MetricsRegistry()
    for snap in snapshots:
        for name, series in snap.get("counters", {}).items():
            for label_str, value in series.items():
                merged.inc(name, float(value), **_parse_label_str(label_str))
        for name, series in snap.get("gauges", {}).items():
            if name in _SHARD_IDENTITY_GAUGES:
                continue
            for label_str, value in series.items():
                labels = _parse_label_str(label_str)
                if name.endswith("_total"):
                    merged.add_gauge(name, float(value), **labels)
                else:
                    merged.max_gauge(name, float(value), **labels)
        for name, series in snap.get("histograms", {}).items():
            for label_str, data in series.items():
                merged.merge_histogram(
                    name,
                    _parse_label_str(label_str),
                    data["buckets"],
                    data["counts"],
                    data["count"],
                    data["sum"],
                )
    return merged
