"""Checkpoint/resume for long searches.

The paper's largest single-GPU run takes ~14.5 hours; production use needs
to survive pre-emption.  The natural checkpoint granularity is the §3.6
work-division unit — one outer (``Wi``) iteration: after each completed
iteration the set of finished iterations plus the current top-k candidates
fully determine the remaining work, because a dropped candidate can never
re-enter a top-k reduction.

The checkpoint is a small JSON file keyed by a configuration fingerprint;
resuming under a different dataset/configuration is refused.

Corruption recovery: every :meth:`SearchCheckpoint.save` first rotates the
previous on-disk checkpoint to ``<path>.bak``, so a crash that truncates or
garbles the main file (the realistic pre-emption failure mode) loses at
most one outer iteration of progress — :meth:`SearchCheckpoint.load` falls
back to the backup, and to a fresh start (with a warning) if both copies
are unreadable.  The schema carries a ``version`` field; files written by a
*newer* schema are refused cleanly rather than misparsed.
"""

from __future__ import annotations

import json
import os
import threading
import warnings
from dataclasses import dataclass, field

from repro.core.reduction import TopKReducer
from repro.core.solution import Solution

def fsync_directory(dirpath: str | os.PathLike) -> None:
    """fsync a directory so renames within it survive power loss.

    Best-effort on platforms whose directory handles refuse fsync
    (Windows, some network filesystems): failures are swallowed — the
    rename itself is still atomic, only the power-loss *ordering*
    guarantee is weakened, matching the previous behaviour there.
    """
    try:
        fd = os.open(os.fspath(dirpath), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


#: Current checkpoint schema version.  Files without a ``version`` field
#: (written before the field existed) are treated as version 1; their
#: payload schema is identical.
CHECKPOINT_VERSION = 2


@dataclass
class SearchCheckpoint:
    """Mutable resume state for one search.

    Thread-safe: :meth:`record` and :meth:`save` serialize on an internal
    lock so concurrent device worker threads can commit finished outer
    iterations without tearing the completed-set/candidate snapshot.

    Attributes:
        fingerprint: dataset + configuration identity string.
        completed: outer iterations already fully processed.
        solutions: current top-k candidates.
    """

    fingerprint: str
    completed: set[int] = field(default_factory=set)
    solutions: list[Solution] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #

    @classmethod
    def load(cls, path: str | os.PathLike, fingerprint: str) -> "SearchCheckpoint":
        """Load a checkpoint, or start fresh if ``path`` does not exist.

        A corrupted (truncated/garbled/missing-field) main file falls back
        to the ``.bak`` copy rotated by the previous :meth:`save`; if that
        is unusable too, the search starts fresh with a warning — already
        *committed* work is only lost as far back as the backup reaches.

        Raises:
            ValueError: if a readable file belongs to a different
                dataset/configuration, or was written by a newer
                checkpoint schema than this code supports.
        """
        path = os.fspath(path)
        candidates = [path, path + ".bak"]
        if not any(os.path.exists(p) for p in candidates):
            return cls(fingerprint=fingerprint)
        for candidate in candidates:
            if not os.path.exists(candidate):
                continue
            payload = cls._read_payload(candidate)
            if payload is None:
                continue  # corrupt: warned inside _read_payload
            version = payload.get("version", 1)
            if not isinstance(version, int) or version > CHECKPOINT_VERSION:
                raise ValueError(
                    f"checkpoint {candidate} has schema version {version!r}, "
                    f"newer than the supported {CHECKPOINT_VERSION}; it was "
                    "written by a newer release — upgrade, or delete the "
                    "checkpoint to restart"
                )
            if payload.get("fingerprint") != fingerprint:
                raise ValueError(
                    f"checkpoint {candidate} belongs to a different search "
                    f"(fingerprint {payload.get('fingerprint')!r}, expected "
                    f"{fingerprint!r}); delete it or change the path"
                )
            try:
                return cls(
                    fingerprint=fingerprint,
                    completed=set(int(i) for i in payload["completed"]),
                    solutions=[
                        Solution(score=float(s), packed=int(p))
                        for s, p in payload["solutions"]
                    ],
                )
            except (KeyError, TypeError, ValueError) as exc:
                warnings.warn(
                    f"checkpoint {candidate} is malformed ({exc!r}); "
                    "trying the next fallback",
                    RuntimeWarning,
                    stacklevel=2,
                )
        warnings.warn(
            f"checkpoint {path} (and its backup) could not be recovered; "
            "starting the search from scratch",
            RuntimeWarning,
            stacklevel=2,
        )
        return cls(fingerprint=fingerprint)

    @staticmethod
    def _read_payload(candidate: str) -> dict | None:
        """Parse one checkpoint file; ``None`` (plus a warning) if it is
        not a JSON object."""
        try:
            with open(candidate, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (json.JSONDecodeError, OSError, UnicodeDecodeError) as exc:
            warnings.warn(
                f"checkpoint {candidate} is corrupted ({exc}); "
                "trying the next fallback",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        if not isinstance(payload, dict):
            warnings.warn(
                f"checkpoint {candidate} does not contain a JSON object; "
                "trying the next fallback",
                RuntimeWarning,
                stacklevel=3,
            )
            return None
        return payload

    def save(self, path: str | os.PathLike) -> None:
        """Atomically write the checkpoint (write-then-rename), rotating
        the previous copy to ``<path>.bak`` first.

        Durability ordering: the temp file is fsynced before any rename,
        and the *directory* is fsynced after the rotation — without the
        directory sync a power loss can persist the data blocks but not
        the rename, leaving neither the primary nor the ``.bak`` entry
        pointing at a complete file.
        """
        path = os.fspath(path)
        with self._lock:
            payload = {
                "version": CHECKPOINT_VERSION,
                "fingerprint": self.fingerprint,
                "completed": sorted(self.completed),
                "solutions": [[s.score, s.packed] for s in self.solutions],
            }
            tmp = path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
                fh.flush()
                os.fsync(fh.fileno())
            if os.path.exists(path):
                os.replace(path, path + ".bak")
            os.replace(tmp, path)
            fsync_directory(os.path.dirname(path) or ".")

    # ------------------------------------------------------------------ #

    def seed_reducer(self, reducer: TopKReducer) -> None:
        """Re-inject saved candidates into a fresh reducer."""
        reducer.seed(self.solutions)

    def record(self, wi: int, reducer: TopKReducer) -> None:
        """Mark one outer iteration finished and snapshot the candidates."""
        snapshot = reducer.result()  # thread-safe on the reducer's lock
        with self._lock:
            self.completed.add(int(wi))
            self.solutions = snapshot


def search_fingerprint(
    n_snps: int,
    n_real_snps: int,
    n_controls: int,
    n_cases: int,
    block_size: int,
    engine_kind: str,
    score_name: str,
    top_k: int,
    partition: str,
    n_gpus: int,
) -> str:
    """Stable identity of a search's dataset shape + configuration.

    Deliberately shape-based (not content-hashed): hashing a multi-GB
    dataset on every resume would defeat the purpose; the guard catches the
    realistic failure mode (resuming with the wrong file or settings).
    """
    return (
        f"M{n_snps}r{n_real_snps}c{n_controls}k{n_cases}B{block_size}"
        f"E{engine_kind}S{score_name}K{top_k}P{partition}G{n_gpus}"
    )


def domain_clause(nb: int, iterations: "list[int] | tuple[int, ...]") -> str:
    """Fingerprint clause identifying a *restricted* outer-iteration domain.

    A sharded run executes only a subset of the ``nb`` outer (``Wi``)
    iterations; its checkpoint/journal must not be confused with another
    shard's (or with a full run's) even when every other configuration
    clause matches.  The clause digests ``nb`` plus the sorted iteration
    list, so any difference in the domain yields a different fingerprint
    and resume from the wrong file is refused with the standard
    fingerprint-mismatch error.

    An unrestricted domain (all ``nb`` iterations) returns ``""`` so that
    full-run fingerprints are unchanged from previous releases.
    """
    import hashlib

    domain = sorted(int(i) for i in iterations)
    if domain == list(range(nb)):
        return ""
    spec = f"{nb}:" + ",".join(str(i) for i in domain)
    return "+W" + hashlib.sha256(spec.encode("ascii")).hexdigest()[:12]
