"""Checkpoint/resume for long searches.

The paper's largest single-GPU run takes ~14.5 hours; production use needs
to survive pre-emption.  The natural checkpoint granularity is the §3.6
work-division unit — one outer (``Wi``) iteration: after each completed
iteration the set of finished iterations plus the current top-k candidates
fully determine the remaining work, because a dropped candidate can never
re-enter a top-k reduction.

The checkpoint is a small JSON file keyed by a configuration fingerprint;
resuming under a different dataset/configuration is refused.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field

from repro.core.reduction import TopKReducer
from repro.core.solution import Solution


@dataclass
class SearchCheckpoint:
    """Mutable resume state for one search.

    Thread-safe: :meth:`record` and :meth:`save` serialize on an internal
    lock so concurrent device worker threads can commit finished outer
    iterations without tearing the completed-set/candidate snapshot.

    Attributes:
        fingerprint: dataset + configuration identity string.
        completed: outer iterations already fully processed.
        solutions: current top-k candidates.
    """

    fingerprint: str
    completed: set[int] = field(default_factory=set)
    solutions: list[Solution] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #

    @classmethod
    def load(cls, path: str | os.PathLike, fingerprint: str) -> "SearchCheckpoint":
        """Load a checkpoint, or start fresh if ``path`` does not exist.

        Raises:
            ValueError: if the file exists but belongs to a different
                dataset/configuration.
        """
        path = os.fspath(path)
        if not os.path.exists(path):
            return cls(fingerprint=fingerprint)
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        if payload.get("fingerprint") != fingerprint:
            raise ValueError(
                f"checkpoint {path} belongs to a different search "
                f"(fingerprint {payload.get('fingerprint')!r}, expected "
                f"{fingerprint!r}); delete it or change the path"
            )
        return cls(
            fingerprint=fingerprint,
            completed=set(int(i) for i in payload["completed"]),
            solutions=[
                Solution(score=float(s), packed=int(p))
                for s, p in payload["solutions"]
            ],
        )

    def save(self, path: str | os.PathLike) -> None:
        """Atomically write the checkpoint (write-then-rename)."""
        path = os.fspath(path)
        with self._lock:
            payload = {
                "fingerprint": self.fingerprint,
                "completed": sorted(self.completed),
                "solutions": [[s.score, s.packed] for s in self.solutions],
            }
            tmp = path + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)

    # ------------------------------------------------------------------ #

    def seed_reducer(self, reducer: TopKReducer) -> None:
        """Re-inject saved candidates into a fresh reducer."""
        seed = TopKReducer(max(reducer.k, 1))
        seed._solutions = list(self.solutions)
        reducer.merge(seed)

    def record(self, wi: int, reducer: TopKReducer) -> None:
        """Mark one outer iteration finished and snapshot the candidates."""
        snapshot = reducer.result()  # thread-safe on the reducer's lock
        with self._lock:
            self.completed.add(int(wi))
            self.solutions = snapshot


def search_fingerprint(
    n_snps: int,
    n_real_snps: int,
    n_controls: int,
    n_cases: int,
    block_size: int,
    engine_kind: str,
    score_name: str,
    top_k: int,
    partition: str,
    n_gpus: int,
) -> str:
    """Stable identity of a search's dataset shape + configuration.

    Deliberately shape-based (not content-hashed): hashing a multi-GB
    dataset on every resume would defeat the purpose; the guard catches the
    realistic failure mode (resuming with the wrong file or settings).
    """
    return (
        f"M{n_snps}r{n_real_snps}c{n_controls}k{n_cases}B{block_size}"
        f"E{engine_kind}S{score_name}K{top_k}P{partition}G{n_gpus}"
    )
