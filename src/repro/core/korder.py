"""Generalized interaction orders: second- and third-order tensor searches.

The paper's related art applies binary tensor cores to second- and
third-order searches [14, 16]; Epi4Tensor extends the scheme to fourth
order, and §6 lists "extending the work to higher-order SNP interactions"
as ongoing work.  This module rounds the system out downwards: exhaustive
second- and third-order searches over the *same* substrate — same encoded
bit-planes, same binary GEMM engines, same completion and scoring —
so the interaction order becomes a parameter of the library rather than a
fixed constant.

Scheme per order:

- **k = 2**: one GEMM of the class bit-planes against themselves per block
  row yields the ``{0,1}^2`` corners of all pairs at once; completion uses
  ``indivPop``.
- **k = 3**: per block pair ``(Wi <= Xi)``, ``combine(W, X)`` then a GEMM
  against the tail planes ``[Xi, M)`` yields the ``{0,1}^3`` corners of all
  ``B^2 x T`` triplets (exactly the paper's ``tensorOp_3way``); completion
  uses ``pairwPop``.

Both searches accept the same device models and reduce with the same
packed-index rule as the fourth-order driver (unused index fields carry a
sentinel so packing stays lexicographic per order).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.blocks import num_blocks
from repro.core.pairwise import indiv_pop, pairw_pop
from repro.core.solution import MAX_SNP_INDEX
from repro.core.threeway import complete_threeway
from repro.contingency.complete import complete_pair
from repro.datasets.dataset import Dataset
from repro.datasets.encoding import EncodedDataset, encode_dataset
from repro.device.specs import A100_PCIE, GPUSpec
from repro.scoring import make_score
from repro.scoring.base import ScoreFunction, normalized_for_minimization
from repro.scoring.k2 import K2Score
from repro.scoring.lgamma_table import LgammaTable
from repro.utils.timing import Timer


@dataclass(frozen=True)
class KOrderResult:
    """Outcome of a second- or third-order search.

    Attributes:
        order: interaction order (2 or 3).
        best_tuple: the winning SNP indices, strictly increasing.
        best_score: its (minimization-normalized) score.
        n_sets_evaluated: unique combinations scored.
        wall_seconds: simulator wall time.
        tensor_ops: fused binary-tensor op volume executed.
    """

    order: int
    best_tuple: tuple[int, ...]
    best_score: float
    n_sets_evaluated: int
    wall_seconds: float
    tensor_ops: int


def _prepare(
    dataset: Dataset | EncodedDataset, block_size: int, order: int
) -> EncodedDataset:
    if isinstance(dataset, Dataset):
        if dataset.n_snps < order:
            raise ValueError(f"need at least {order} SNPs, got {dataset.n_snps}")
        return encode_dataset(dataset, block_size=block_size)
    if dataset.n_snps % block_size:
        raise ValueError(
            f"encoded dataset has {dataset.n_snps} SNPs, not a multiple of "
            f"block_size={block_size}"
        )
    return dataset


def _score_fn(score: str | ScoreFunction, n_samples: int):
    if isinstance(score, str):
        if score == "k2":
            score = K2Score(LgammaTable.for_samples(n_samples))
        else:
            score = make_score(score)
    return normalized_for_minimization(score)


def search_second_order(
    dataset: Dataset | EncodedDataset,
    *,
    block_size: int = 32,
    score: str | ScoreFunction = "k2",
    spec: GPUSpec = A100_PCIE,
    engine_mode: str = "dense",
    n_gpus: int = 1,
) -> KOrderResult:
    """Exhaustive pairwise (BOOST-class) search on the tensor substrate.

    One plane-by-plane GEMM block-row at a time: corners for ``B x M`` pairs
    per launch, completed with ``indivPop`` and scored in bulk.  Multi-GPU
    splits block rows over the devices with the same dynamic rule as the
    higher orders (block-row cost shrinks with the row index).
    """
    from repro.device.cluster import VirtualCluster

    enc = _prepare(dataset, block_size, order=2)
    if enc.n_real_snps < 2:
        raise ValueError(f"need at least 2 SNPs, got {enc.n_real_snps}")
    cluster = VirtualCluster(spec, n_gpus, mode=engine_mode)
    score_min = _score_fn(score, enc.n_samples)
    singles = indiv_pop(enc)
    m, b = enc.n_snps, block_size
    nb = num_blocks(m, b)
    schedule = cluster.schedule(
        [float(2 * (2 * b) * (2 * (m - bi * b)) * enc.n_samples) for bi in range(nb)]
    )
    row_owner = {
        bi: gpu
        for gpu, rows in zip(cluster.gpus, schedule.assignment)
        for bi in rows
    }
    timer = Timer()
    best_score = np.inf
    best_pair = (0, 1)
    with timer:
        for bi in range(nb):
            gpu = row_owner[bi]
            a0 = bi * b
            tables = []
            for cls in (0, 1):
                planes = enc.class_matrix(cls)
                block = planes.select_rows(2 * a0, 2 * (a0 + b))
                tail = planes.select_rows(2 * a0, 2 * m)
                raw = gpu.launch_plane_gemm("tensor2", block, tail)
                t = m - a0
                corner = raw.reshape(b, 2, t, 2).transpose(0, 2, 1, 3)
                full = complete_pair(
                    corner,
                    singles[cls][a0 : a0 + b, None],
                    singles[cls][None, a0:m],
                )
                tables.append(full)
            scores = score_min(tables[0], tables[1], order=2)
            a_idx = np.arange(a0, a0 + b)[:, None]
            t_idx = np.arange(a0, m)[None, :]
            valid = (a_idx < t_idx) & (t_idx < enc.n_real_snps) & (
                a_idx < enc.n_real_snps
            )
            scores = np.where(valid, scores, np.inf)
            pos = int(np.argmin(scores))
            sc = float(scores.flat[pos])
            if sc < best_score:
                i, j = np.unravel_index(pos, scores.shape)
                best_score = sc
                best_pair = (a0 + int(i), a0 + int(j))
    n_sets = enc.n_real_snps * (enc.n_real_snps - 1) // 2
    return KOrderResult(
        order=2,
        best_tuple=best_pair,
        best_score=best_score,
        n_sets_evaluated=n_sets,
        wall_seconds=timer.elapsed,
        tensor_ops=sum(g.counters.total_tensor_ops_raw for g in cluster.gpus),
    )


def third_order_outer_tensor_ops(
    wi: int, nb: int, block_size: int, n_samples: int
) -> int:
    """Tensor-op volume of third-order outer iteration ``Wi = wi``
    (multi-GPU scheduling weight, analogous to the fourth-order one)."""
    if not 0 <= wi < nb:
        raise ValueError(f"wi must be in [0, {nb}), got {wi}")
    b = block_size
    m = nb * b
    return sum(
        2 * (4 * b * b) * (2 * (m - xi * b)) * n_samples
        for xi in range(wi, nb)
    )


def search_third_order(
    dataset: Dataset | EncodedDataset,
    *,
    block_size: int = 16,
    score: str | ScoreFunction = "k2",
    spec: GPUSpec = A100_PCIE,
    engine_mode: str = "dense",
    n_gpus: int = 1,
) -> KOrderResult:
    """Exhaustive third-order search (the [16] scheme on our substrate).

    Per block pair ``(Wi <= Xi)``: ``combine(W, X)`` then one GEMM against
    the tail planes ``[Xi, M)`` — precisely the paper's ``tensorOp_3way``
    primitive — followed by pairwise completion, scoring and reduction.
    Multi-GPU follows §3.6: outer (``Wi``) iterations are dynamically
    scheduled over the devices and local bests reduce at the host.
    """
    from repro.device.cluster import VirtualCluster

    enc = _prepare(dataset, block_size, order=3)
    if enc.n_real_snps < 3:
        raise ValueError(f"need at least 3 SNPs, got {enc.n_real_snps}")
    if enc.n_snps - 1 > MAX_SNP_INDEX:
        raise ValueError("SNP count exceeds the 16-bit index limit")
    cluster = VirtualCluster(spec, n_gpus, mode=engine_mode)
    score_min = _score_fn(score, enc.n_samples)
    low = pairw_pop(enc)
    m, b = enc.n_snps, block_size
    nb = num_blocks(m, b)
    schedule = cluster.schedule(
        [
            float(third_order_outer_tensor_ops(wi, nb, b, enc.n_samples))
            for wi in range(nb)
        ]
    )
    timer = Timer()
    best_score = np.inf
    best_triple = (0, 1, 2)
    with timer:
        for gpu, outer_iters in zip(cluster.gpus, schedule.assignment):
            gpu.transfer_to_device(enc.nbytes)
            for wi in outer_iters:
                wo = wi * b
                for xi in range(wi, nb):
                        xo = xi * b
                        tables = []
                        for cls in (0, 1):
                            planes = enc.class_matrix(cls)
                            wx = gpu.launch_combine(planes, wo, xo, b)
                            corner = gpu.launch_tensor3(wx, planes, xo, m, b)
                            full = complete_threeway(
                                corner,
                                low.pairs[cls],
                                np.arange(wo, wo + b),
                                np.arange(xo, xo + b),
                                np.arange(xo, m),
                            )
                            tables.append(full)
                        scores = score_min(tables[0], tables[1], order=3)
                        w_idx = np.arange(wo, wo + b)[:, None, None]
                        x_idx = np.arange(xo, xo + b)[None, :, None]
                        t_idx = np.arange(xo, m)[None, None, :]
                        valid = (
                            (w_idx < x_idx)
                            & (x_idx < t_idx)
                            & (t_idx < enc.n_real_snps)
                        )
                        scores = np.where(valid, scores, np.inf)
                        pos = int(np.argmin(scores))
                        sc = float(scores.flat[pos])
                        if sc < best_score:
                            i, j, k = np.unravel_index(pos, scores.shape)
                            best_score = sc
                            best_triple = (wo + int(i), xo + int(j), xo + int(k))
    r = enc.n_real_snps
    n_sets = r * (r - 1) * (r - 2) // 6
    return KOrderResult(
        order=3,
        best_tuple=best_triple,
        best_score=best_score,
        n_sets_evaluated=n_sets,
        wall_seconds=timer.elapsed,
        tensor_ops=sum(g.counters.total_tensor_ops_raw for g in cluster.gpus),
    )
