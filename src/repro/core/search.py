"""The Epi4Tensor search driver — Algorithm 1 of the paper.

Single entry point for exhaustive fourth-order epistasis detection over the
simulated tensor-core substrate:

1. binarize (and pad) the dataset, "transfer" it to every device;
2. precompute ``indivPop``/``pairwPop`` and the lgamma lookup table;
3. run the four nested block loops.  Per ``(Wi, Xi)``: combine ``W x X`` and
   sweep the third-order corners for every tail SNP; per ``(Wi, Xi, Yi)``:
   combine/sweep ``W x Y`` and ``X x Y``; per round ``(Wi, Xi, Yi, Zi)``:
   combine ``Y x Z``, run the 4-way tensor GEMM, complete + score + reduce;
4. multi-GPU: outer (``Wi``) iterations are dynamically scheduled over the
   cluster (§3.6) — one host worker thread per device pulls the next
   unprocessed iteration from a shared queue, the Python-level realization
   of the paper's one-thread-per-GPU OpenMP ``schedule(dynamic)``.  Each
   device reduces locally, the host reduces at the end.

Three hot-path optimizations ride on top of the seed algorithm, all exactly
result-preserving:

- a **round-operand cache** (:mod:`repro.core.operand_cache`): the loop
  nest re-requests the same ``(class, off_a, off_b)`` combine outputs and
  third-order sweeps many times (``wy`` recurs across ``Xi``, ``xy``
  across ``Wi``, ``yz`` across every outer pair); with the cache enabled
  the loop-invariant work is hoisted — computed on first use, served from
  a byte-bounded LRU afterwards.  Cache hits skip kernel-launch
  accounting, so :class:`KernelCounters` always reflect executed work.
- a **thread-parallel multi-device executor**: with
  ``host_threads > 1`` the per-GPU loops actually run concurrently
  (NumPy's BLAS and bit-ops release the GIL, so ``dense``-mode rounds
  overlap for a real wall-clock win on multicore hosts).
- a **batched round pipeline**: with ``batch_rounds > 1`` the ``yz``
  combines and 4-way GEMMs of consecutive rounds sharing one
  ``(Wi, Xi)`` pair are fused into wide batched launches (§3.3
  launch-overhead amortization), and with ``overlap`` + ``n_streams > 1``
  a double-buffered operand stager prepares round group ``r+1`` on a
  :class:`~repro.device.streams.HostStream` while group ``r`` scores on
  the calling thread.

The tensor GEMMs run for real (exact integer results); device time is
*accounted*, not emulated — see :mod:`repro.device` and
:mod:`repro.perfmodel`.
"""

from __future__ import annotations

import math
import os
import random
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dist.threshold import ThresholdExchange

import numpy as np

from repro.bitops.bitmatrix import BitMatrix
from repro.core.apply_score import (
    DEFAULT_MAX_CHUNK_CELLS,
    RoundOperands,
    apply_score_dense,
    round_validity_mask,
    score_round,
)
from repro.core.autotune import AutotuneDecision, autotune_applyscore
from repro.core.blocks import BlockScheme
from repro.core.operand_cache import CacheStats, OperandCache
from repro.core.pairwise import LowOrderTables, pairw_pop
from repro.core.pressure import PressureGovernor
from repro.core.reduction import TopKReducer, reduce_solutions
from repro.core.resilience import (
    FaultLog,
    ProbationManager,
    ProbationPolicy,
    ResilientWorkQueue,
    RetryPolicy,
    SearchAbortedError,
)
from repro.core.selfcheck import (
    CorruptOutputError,
    SelfCheckError,
    direct_round_operands,
    validate_round_corners,
    verify_round_best,
)
from repro.core.solution import MAX_SNP_INDEX, Solution
from repro.datasets.dataset import Dataset
from repro.datasets.encoding import EncodedDataset, encode_dataset
from repro.device.cluster import ScheduleResult, VirtualCluster
from repro.core.watchdog import LaunchWatchdog
from repro.device.faults import (
    DeviceFault,
    FaultInjector,
    FaultyGPU,
    parse_fault_spec,
)
from repro.device.memory import DeviceMemoryError
from repro.device.specs import A100_PCIE, GPUSpec
from repro.device.streams import HostStream, stage_lookahead
from repro.device.virtual_gpu import KernelCounters, VirtualGPU
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.perfmodel.workload import outer_iteration_tensor_ops
from repro.scoring import make_score
from repro.tensor.and_popc import dense_acc_dtype
from repro.scoring.base import ScoreFunction, normalized_for_minimization
from repro.scoring.bounds import PRUNE_SLACK, K2BoundKernel
from repro.scoring.k2 import K2Score
from repro.scoring.lgamma_table import LgammaTable
from repro.utils.timing import Timer


@dataclass(frozen=True)
class SearchConfig:
    """Tunables of one search run.

    Attributes:
        block_size: ``B``, SNPs per block (paper default 32; smaller values
            are appropriate for CPU-simulated runs).
        engine_kind: ``"and_popc"``, ``"xor_popc"`` or ``None`` (pick the
            device's native kind).
        engine_mode: ``"dense"`` (BLAS path) or ``"packed"`` (bitwise path).
        score: a :class:`~repro.scoring.ScoreFunction` or registry name.
        n_streams: concurrent evaluation rounds per device.  Always feeds
            the §4.4 stream model on the projected-time side; with
            ``overlap`` enabled it is also a real execution knob —
            ``n_streams - 1`` round groups are staged ahead on a host
            stream while the current group scores.  Results are identical
            for any value.
        sample_chunk_bits: if set, split every tensor GEMM's sample (K)
            dimension into chunks of this many bits and sum the partial
            corners — the paper's mitigation for the Turing large-``N``
            cliff.  Must be a multiple of 64.
        max_chunk_cells: peak materialized table cells in ``applyScore``.
        top_k: number of ranked solutions to report (1 = the paper's
            single-best reduction).
        selfcheck: re-derive every round's best quad through an independent
            bitwise path and abort on any disagreement (paranoia mode for
            long production runs; see :mod:`repro.core.selfcheck`).
        partition: multi-GPU work division. ``"outer"`` is the paper's
            scheme (outer-loop iterations, dynamic schedule, no inter-GPU
            communication).  ``"samples"`` is the §4.6 alternative the
            authors evaluated and rejected: every GPU processes *all*
            rounds over its own sample range and the partial contingency
            corners are summed before scoring — functionally identical,
            but each GPU's GEMMs shrink along K, which is why it loses.
        cache_mb: round-operand cache budget in megabytes.  ``None`` or
            ``0`` disables caching (the seed behaviour); ``float("inf")``
            is unbounded (charged to the memory model at the full working
            set).  Results are bit-identical either way — the cache only
            changes which launches execute.
        host_threads: host worker threads driving the devices.  ``None``
            picks ``min(n_gpus, cpu_count)``; ``1`` forces the sequential
            seed path; values above the device count are capped (the
            model is one thread per GPU, §3.6).  Ignored by the
            ``"samples"`` partition, whose devices cooperate per round.
        max_retries: additional attempts a failed outer iteration gets on
            the same device before it is requeued to surviving devices
            (see :mod:`repro.core.resilience`).
        backoff_base_ms: base wait of the capped exponential retry
            backoff (doubles per retry, jittered).
        quarantine_after: consecutive exhausted iterations before a
            device is quarantined and takes no further work.
        inject_faults: fault-injection spec string (see
            :func:`repro.device.faults.parse_fault_spec`); ``None`` runs
            fault-free.  Results are bit-identical either way — the
            resilience layer only re-executes idempotent work.
        score_path: ``"fused"`` (mask-first compacted completion + staged
            scorer, the default) or ``"dense"`` (the legacy full-grid
            reference, kept for ablation).  Bit-identical scores either
            way; only executed score-cell accounting differs.
        cache_triplets: store fully-completed third-order tables in the
            round-operand cache under ``("full3", cls, a, b, c)`` keys so
            each block triple is completed once per sweep instead of once
            per round.  Only effective when ``cache_mb`` enables the
            cache; results are bit-identical either way.
        autotune: run a short calibration pass before the search proper
            and adopt the fastest ``max_chunk_cells`` (and, in packed
            mode, packed-GEMM ``block_bytes``; with ``batch_rounds > 1``,
            the round batch size) it finds.  Result-neutral: every
            candidate produces bit-identical scores.
        batch_rounds: evaluation rounds fused per tensor-GEMM launch
            group.  ``1`` reproduces the seed loop launch-for-launch;
            larger values stack the ``yz`` operands of consecutive rounds
            sharing one ``(Wi, Xi)`` pair into a single wide GEMM, so
            per-launch overhead is amortized over the group (§3.3).
            Results are bit-identical for any value — integer corner
            counts do not depend on GEMM blocking.
        overlap: let the operand stager prepare the next round group on
            an in-order host stream while the current group scores
            (double buffering; active only when ``n_streams > 1``).
            Results are bit-identical either way — staging is strictly
            in submission order.
        deadline_ms: per-launch hang watchdog deadline in milliseconds
            (``None`` disarms the watchdog, the default).  A launch that
            exceeds the deadline is cancelled and surfaces as a
            ``hang`` :class:`~repro.device.faults.DeviceFault`, feeding
            the normal retry/requeue/quarantine path.  Required whenever
            the fault spec contains ``hang`` rules (an injected stall
            without a watchdog would never return).
        pressure: enable the memory-pressure governor (see
            :mod:`repro.core.pressure`): every
            :class:`~repro.device.memory.DeviceMemoryError` steps a
            deterministic degradation ladder (cache budget →
            batch_rounds → chunk cells → triplet cache) and retries at
            the reduced footprint instead of aborting.  Every ladder
            knob is result-neutral, so results stay bit-identical.
        pressure_relax_rounds: consecutive clean rounds before the
            governor re-expands one pressure level.
        probation_rounds: cooldown (in committed outer iterations)
            before a quarantined device runs a readmission canary; on
            canary success the device returns to service, on failure it
            re-quarantines with exponentially increased cooldown.
            ``None`` (the default) keeps quarantine permanent for the
            run.  Only the thread-parallel executor parks and readmits
            workers; the sequential replay ignores probation.
        prune: enable the admissible branch-and-bound gate (see
            :mod:`repro.scoring.bounds`): quads — and, in the pipelined
            loop, whole rounds — whose K2 lower bound exceeds the current
            top-k threshold are dropped before completion and scoring.
            The bound never overestimates and ties are never pruned, so
            results stay **bit-identical** to the exhaustive run; only
            the executed score-cell accounting shrinks.  Effective only
            on the fused K2 scoring path (other score functions have no
            admissible corner bound and run exhaustively regardless).
        prune_sync_rounds: with an attached
            :class:`~repro.dist.threshold.ThresholdExchange`, publish
            this shard's top-k and refresh the peer-shard threshold
            every this many completed rounds, so late shards inherit
            tight bounds.  ``None`` (the default) disables the exchange;
            peer candidates only tighten pruning decisions and never
            enter this shard's own results, so shard artifacts are
            unchanged either way.
    """

    block_size: int = 16
    engine_kind: str | None = None
    engine_mode: str = "dense"
    score: str | ScoreFunction = "k2"
    n_streams: int = 1
    sample_chunk_bits: int | None = None
    max_chunk_cells: int = DEFAULT_MAX_CHUNK_CELLS
    top_k: int = 1
    partition: str = "outer"
    selfcheck: bool = False
    cache_mb: float | None = None
    host_threads: int | None = None
    max_retries: int = 2
    backoff_base_ms: float = 10.0
    quarantine_after: int = 2
    inject_faults: str | None = None
    score_path: str = "fused"
    cache_triplets: bool = True
    autotune: bool = False
    batch_rounds: int = 1
    overlap: bool = True
    deadline_ms: float | None = None
    pressure: bool = True
    pressure_relax_rounds: int = 64
    probation_rounds: int | None = None
    prune: bool = True
    prune_sync_rounds: int | None = None

    def __post_init__(self) -> None:
        if self.score_path not in ("fused", "dense"):
            raise ValueError(
                f"score_path must be 'fused' or 'dense', got {self.score_path!r}"
            )
        if self.block_size < 2:
            raise ValueError(f"block_size must be >= 2, got {self.block_size}")
        if self.n_streams < 1:
            raise ValueError(f"n_streams must be >= 1, got {self.n_streams}")
        if self.batch_rounds < 1:
            raise ValueError(
                f"batch_rounds must be >= 1, got {self.batch_rounds}"
            )
        if self.sample_chunk_bits is not None and (
            self.sample_chunk_bits <= 0 or self.sample_chunk_bits % 64
        ):
            raise ValueError(
                "sample_chunk_bits must be a positive multiple of 64, "
                f"got {self.sample_chunk_bits}"
            )
        if self.top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {self.top_k}")
        if self.partition not in ("outer", "samples"):
            raise ValueError(
                f"partition must be 'outer' or 'samples', got {self.partition!r}"
            )
        if self.cache_mb is not None and (
            math.isnan(self.cache_mb) or self.cache_mb < 0
        ):
            raise ValueError(
                f"cache_mb must be >= 0 (or inf/None), got {self.cache_mb}"
            )
        if self.host_threads is not None and self.host_threads < 1:
            raise ValueError(
                f"host_threads must be >= 1, got {self.host_threads}"
            )
        if self.deadline_ms is not None and not self.deadline_ms > 0:
            raise ValueError(
                f"deadline_ms must be > 0, got {self.deadline_ms}"
            )
        if self.pressure_relax_rounds < 1:
            raise ValueError(
                "pressure_relax_rounds must be >= 1, "
                f"got {self.pressure_relax_rounds}"
            )
        if self.probation_rounds is not None and self.probation_rounds < 1:
            raise ValueError(
                f"probation_rounds must be >= 1, got {self.probation_rounds}"
            )
        if self.prune_sync_rounds is not None and self.prune_sync_rounds < 1:
            raise ValueError(
                f"prune_sync_rounds must be >= 1, got {self.prune_sync_rounds}"
            )
        # Delegate retry-knob validation to RetryPolicy (and fail fast on a
        # malformed fault spec rather than mid-search).
        self.retry_policy
        if self.inject_faults is not None:
            plan = parse_fault_spec(self.inject_faults)
            if plan.has_hang and self.deadline_ms is None:
                raise ValueError(
                    "fault spec injects 'hang' faults but no watchdog is "
                    "armed; set deadline_ms (--deadline-ms) so stalled "
                    "launches can be cancelled"
                )

    @property
    def retry_policy(self) -> RetryPolicy:
        """The resilience policy resolved from this configuration."""
        return RetryPolicy(
            max_retries=self.max_retries,
            backoff_base_ms=self.backoff_base_ms,
            backoff_cap_ms=max(5000.0, self.backoff_base_ms),
            quarantine_after=self.quarantine_after,
        )

    @property
    def cache_budget_bytes(self) -> float:
        """Configured cache budget in bytes (0 when disabled, may be inf)."""
        if self.cache_mb is None or self.cache_mb <= 0:
            return 0
        if math.isinf(self.cache_mb):
            return math.inf
        return self.cache_mb * 1e6


@dataclass
class SearchResult:
    """Outcome of a search: the best quad plus full execution accounting.

    Attributes:
        solution: best quad + score (lower is better after normalization).
        top_solutions: the ``config.top_k`` best quads, ranked (best first).
        block_scheme: resolved block layout (incl. useful-work ratio).
        counters: merged kernel counters over all devices (cache hit/miss/
            eviction totals included).
        per_device_counters: one :class:`KernelCounters` per device.
        schedule: the modelled multi-GPU outer-loop schedule (also set for
            1 GPU).  Under the thread-parallel executor the *actual*
            device assignment is dynamic; see ``executed_assignment``.
        executed_assignment: outer iterations actually run per device, in
            completion-commit order (equals ``schedule.assignment`` for
            the sequential replay path).
        phase_seconds: wall time by phase (``combine``, ``tensor3``,
            ``tensor4``, ``score``, ``pairwise``, ``encode``).  With
            ``host_threads > 1`` these are busy seconds summed over
            workers and may exceed ``wall_seconds``.
        wall_seconds: end-to-end wall time of :meth:`Epi4TensorSearch.run`.
        n_samples: ``N`` used for the scaled-quads metric.
        cache_stats: round-operand cache snapshot (``None`` = cache off).
        fault_log: per-device resilience accounting (attempts, retries,
            backoff, requeues, quarantines, degraded rounds).  All-zero
            on a healthy run.
        spec_name / engine_name / n_devices: provenance.
    """

    solution: Solution
    top_solutions: list[Solution]
    block_scheme: BlockScheme
    counters: KernelCounters
    per_device_counters: list[KernelCounters]
    schedule: ScheduleResult
    phase_seconds: dict[str, float]
    wall_seconds: float
    n_samples: int
    spec_name: str
    engine_name: str
    n_devices: int
    cache_stats: CacheStats | None = None
    executed_assignment: list[list[int]] = field(default_factory=list)
    fault_log: FaultLog | None = None
    metrics: MetricsRegistry | None = None

    @property
    def best_quad(self) -> tuple[int, int, int, int]:
        return self.solution.quad

    @property
    def phase_seconds_by_device(self) -> dict[str, dict[str, float]]:
        """``{phase: {device_label: seconds}}`` from the labeled metrics
        series — per-device attribution that survives threaded workers
        finishing out of order (empty when no registry was attached)."""
        if self.metrics is None:
            return {}
        out: dict[str, dict[str, float]] = {}
        for key, value in self.metrics.series(
            "epi4_phase_seconds_total"
        ).items():
            labels = dict(key)
            phase = labels.get("phase", "")
            out.setdefault(phase, {})[labels.get("device", "")] = value
        return out

    @property
    def best_score(self) -> float:
        return self.solution.score

    @property
    def quads_per_second_scaled(self) -> float:
        """Measured unique quads x samples per wall second (the paper's
        headline metric, computed on the *simulator's* wall clock).

        Returns ``0.0`` for degenerate zero-duration runs — ``inf`` would
        poison downstream benchmark JSON aggregation.
        """
        if self.wall_seconds <= 0:
            return 0.0
        return self.block_scheme.unique_quads * self.n_samples / self.wall_seconds


class Epi4TensorSearch:
    """Exhaustive fourth-order search on a (simulated) GPU system.

    Args:
        dataset: a raw :class:`Dataset` (it will be encoded and padded) or a
            pre-encoded :class:`EncodedDataset` whose SNP count is already a
            multiple of the block size.
        config: search tunables.
        spec: GPU model to account against (default: A100 PCIe, system S2).
        n_gpus: devices in the simulated system.
    """

    def __init__(
        self,
        dataset: Dataset | EncodedDataset,
        config: SearchConfig | None = None,
        *,
        spec: GPUSpec = A100_PCIE,
        n_gpus: int = 1,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config or SearchConfig()
        self.spec = spec
        #: Observability sinks.  The default no-op tracer keeps the
        #: instrumented hot paths within noise of an uninstrumented
        #: build; pass a real :class:`~repro.obs.trace.Tracer` to record
        #: the span tree.  ``metrics`` defaults to a fresh registry per
        #: :meth:`run` (a caller-supplied registry accumulates across
        #: runs instead).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._user_metrics = metrics
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        encode_timer = Timer()
        if isinstance(dataset, Dataset):
            if dataset.n_snps < 4:
                raise ValueError(f"need at least 4 SNPs, got {dataset.n_snps}")
            with encode_timer, self.tracer.span("encode", dev="host"):
                encoded = encode_dataset(dataset, block_size=self.config.block_size)
        else:
            encoded = dataset
            if encoded.n_snps % self.config.block_size:
                raise ValueError(
                    f"encoded dataset has {encoded.n_snps} SNPs, not a multiple "
                    f"of block_size={self.config.block_size}; encode with padding"
                )
        if encoded.n_snps - 1 > MAX_SNP_INDEX:
            raise ValueError(
                f"{encoded.n_snps} SNPs exceed the 16-bit index limit "
                f"({MAX_SNP_INDEX + 1})"
            )
        self.encoded = encoded
        self.scheme = BlockScheme(
            n_snps=encoded.n_snps,
            n_real_snps=encoded.n_real_snps,
            block_size=self.config.block_size,
        )
        kind = self.config.engine_kind or spec.native_engine_kind
        if kind == "and_popc" and not spec.supports_and_popc:
            raise ValueError(
                f"{spec.name} does not support AND+POPC; use engine_kind='xor_popc'"
            )
        # §3.3's design constraint, enforced up front: the configured search
        # must fit the modelled device's memory — the round-operand cache
        # budget is a first-class component of that footprint.
        from repro.device.memory import check_fits, estimate_search_memory

        self.memory_estimate = estimate_search_memory(
            encoded.n_snps,
            encoded.n_controls,
            encoded.n_cases,
            self.config.block_size,
            max_chunk_cells=self.config.max_chunk_cells,
            cache_budget_bytes=self.config.cache_budget_bytes,
            cache_triplets=(
                self.config.cache_triplets and self.config.score_path == "fused"
            ),
            batch_rounds=self.config.batch_rounds,
        )
        check_fits(spec, self.memory_estimate)
        self.cluster = VirtualCluster(
            spec, n_gpus, mode=self.config.engine_mode, engine_kind=kind
        )
        score = self.config.score
        if isinstance(score, str):
            if score == "k2":
                score = K2Score(LgammaTable.for_samples(encoded.n_samples))
            else:
                score = make_score(score)
        self._score_min = normalized_for_minimization(score)
        self._score_name = score.name
        #: Fused staged-lgamma kernel (K2 only) — bit-identical to
        #: ``_score_min`` by construction; ``None`` falls back to the
        #: generic score callable inside :func:`score_round`.
        self._staged = (
            score.staged_kernel(encoded.n_samples)
            if isinstance(score, K2Score)
            else None
        )
        #: Admissible K2 bound kernel for branch-and-bound pruning; shares
        #: the staged kernel's lgamma table (K2-only, like the kernel).
        self._bound_kernel = (
            K2BoundKernel(
                self._staged.table, encoded.n_controls, encoded.n_cases
            )
            if self._staged is not None
            else None
        )
        #: ``max_chunk_cells`` actually used by the hot loop; the autotune
        #: calibration pass may override the configured value per run.
        self._tuned_chunk_cells = self.config.max_chunk_cells
        #: Round batch size actually used by the hot loop; when batching
        #: is requested (``batch_rounds > 1``) the autotune pass may
        #: calibrate a different group size.
        self._tuned_batch_rounds = self.config.batch_rounds
        #: Last calibration outcome (``None`` when ``autotune`` is off).
        self.autotune_decision: AutotuneDecision | None = None
        #: Canonical phase names reported in ``SearchResult.phase_seconds``.
        #: Per-(phase, device) attribution lives in the metrics registry
        #: as ``epi4_phase_seconds_total{phase=..., device=...}`` — the
        #: labeled replacement for the former shared ``Timer`` dict, which
        #: lost per-device attribution when threaded workers finished out
        #: of order.
        self._phase_names = (
            "encode", "pairwise", "combine", "tensor3", "tensor4", "score",
            "autotune",
        )
        self._encode_seconds = encode_timer.elapsed
        self._run_span = None
        self._low: LowOrderTables | None = None
        self._progress_callback = None
        self._progress_lock = threading.Lock()
        self._rounds_done = 0
        self._best_seen = Solution.worst()
        self._global_reducer = TopKReducer(self.config.top_k)
        self._cache: OperandCache | None = None
        # Resilience state (reset per run; see _reset_resilience).
        self._fault_plan = (
            parse_fault_spec(self.config.inject_faults)
            if self.config.inject_faults
            else None
        )
        self._retry_policy = self.config.retry_policy
        self._injector: FaultInjector | None = None
        self._backoff_rng = random.Random(0)
        self.fault_log = FaultLog.for_devices(self.cluster.n_gpus)
        self._watchdog: LaunchWatchdog | None = None
        self._pressure: PressureGovernor | None = None
        self._probation: ProbationManager | None = None
        # Cross-shard threshold sharing (see repro.dist.threshold): peer
        # candidates live in a separate reducer consulted only by the
        # prune threshold — they never enter this run's own results.
        self._threshold_exchange = None
        self._sync_reducer: TopKReducer | None = None
        self._sync_lock = threading.Lock()
        self._sync_counter = 0

    # ------------------------------------------------------------------ #
    # Observability plumbing

    @contextmanager
    def _phase_scope(self, phase: str, device: int | str, span: str | None = None):
        """Time one phase block: opens a trace span (named ``span``, or the
        phase name) and charges the elapsed seconds to the labeled
        ``epi4_phase_seconds_total{phase=..., device=...}`` series.

        Recording at the *call site* under the executing device's label is
        what makes per-device attribution immune to threaded workers
        finishing out of order — aggregation over devices happens in the
        registry, never by summing shared mutable timers.

        The device is recorded as the non-identity ``dev`` tag so phase
        spans keep their plain documented labels (``combine``, not
        ``combine[0]``) — the enclosing ``device[d]`` span already carries
        the identity.
        """
        with self.tracer.span(span or phase, dev=device):
            t0 = time.perf_counter()
            try:
                yield
            finally:
                self.metrics.inc(
                    "epi4_phase_seconds_total",
                    time.perf_counter() - t0,
                    phase=phase,
                    device=str(device),
                )

    def phase_seconds_totals(self) -> dict[str, float]:
        """Phase wall/busy seconds summed over devices (canonical keys
        always present)."""
        by_phase = self.metrics.sum_by("epi4_phase_seconds_total", "phase")
        return {name: by_phase.get(name, 0.0) for name in self._phase_names}

    # ------------------------------------------------------------------ #

    def host_worker_count(self) -> int:
        """Resolved host worker threads: ``host_threads`` capped at the
        device count; ``None`` auto-sizes to ``min(n_gpus, cpu_count)``."""
        n_gpus = self.cluster.n_gpus
        requested = self.config.host_threads
        if requested is None:
            requested = min(n_gpus, os.cpu_count() or 1)
        return max(1, min(requested, n_gpus))

    def fingerprint(self, outer_iterations: Iterable[int] | None = None) -> str:
        """Identity string guarding checkpoint/journal resume.

        With ``outer_iterations`` (a restricted ``Wi`` sub-domain, e.g. one
        shard of a distributed run) the fingerprint gains a domain clause
        (see :func:`~repro.core.checkpoint.domain_clause`), so one shard's
        resume files can never be mistaken for another's — or for a full
        run's — even on the same dataset and configuration.
        """
        from repro.core.checkpoint import domain_clause, search_fingerprint

        base = search_fingerprint(
            self.scheme.n_snps,
            self.scheme.n_real_snps,
            self.encoded.n_controls,
            self.encoded.n_cases,
            self.config.block_size,
            self.cluster.gpus[0].engine.name,
            self._score_name,
            self.config.top_k,
            self.config.partition,
            self.cluster.n_gpus,
        )
        if outer_iterations is not None:
            base += domain_clause(self.scheme.nb, outer_iterations)
        return base

    def _validate_domain(self, outer_iterations) -> list[int]:
        """Validate a restricted outer-iteration domain: ints within
        ``[0, nb)``, non-empty, no duplicates.  Returns the domain as a
        sorted list."""
        domain = [int(wi) for wi in outer_iterations]
        if not domain:
            raise ValueError("outer_iterations must not be empty")
        seen: set[int] = set()
        for wi in domain:
            if not 0 <= wi < self.scheme.nb:
                raise ValueError(
                    f"outer iteration {wi} outside [0, {self.scheme.nb})"
                )
            if wi in seen:
                raise ValueError(f"outer iteration {wi} listed twice")
            seen.add(wi)
        return sorted(domain)

    def run(
        self,
        progress_callback: Callable[[int, int, Solution], None] | None = None,
        checkpoint_path: str | os.PathLike | None = None,
        journal_path: str | os.PathLike | None = None,
        outer_iterations: Iterable[int] | None = None,
    ) -> SearchResult:
        """Execute the full search and return the globally best quad.

        Args:
            progress_callback: optional ``fn(completed_rounds, total_rounds,
                best_so_far)`` invoked after every evaluation round —
                multi-hour searches can report status or feed a UI.  Under
                the thread-parallel executor the callback is serialized
                (called under a lock) and ``best_so_far`` is the global
                minimum over everything scored so far.
            checkpoint_path: optional path; resume state is loaded from it
                (if present and matching this configuration) and re-saved
                after every completed outer iteration.  A resumed run skips
                finished iterations; its counters/timers cover only the
                work actually re-executed.
            journal_path: optional path to a crash-safe round journal (see
                :mod:`repro.core.journal`): every committed outer iteration
                appends one fsynced CRC frame, so a process killed at any
                byte offset resumes exactly-once with a bit-identical
                top-k.  Composable with ``checkpoint_path``; the union of
                both completed sets is skipped on resume.
            outer_iterations: optional restricted ``Wi`` domain — the
                communication-free shard decomposition of §3.6/§4.4.  Only
                the listed outer iterations are scheduled and executed; the
                result's top-k is this shard's local reduction, to be
                merged across shards by :mod:`repro.dist`.  The resume
                fingerprint gains a domain clause so per-shard
                checkpoint/journal files cannot cross-contaminate.
        """
        from repro.core.checkpoint import SearchCheckpoint
        from repro.core.journal import RoundJournal

        self._progress_callback = progress_callback
        self._rounds_done = 0
        self._best_seen = Solution.worst()
        domain: list[int] | None = None
        if outer_iterations is not None:
            domain = self._validate_domain(outer_iterations)
        self._outer_iterations = domain
        fingerprint = self.fingerprint(domain)
        checkpoint: SearchCheckpoint | None = None
        if checkpoint_path is not None:
            checkpoint = SearchCheckpoint.load(checkpoint_path, fingerprint)
        journal: RoundJournal | None = None
        if journal_path is not None:
            journal = RoundJournal.open(journal_path, fingerprint)

        if self._user_metrics is None:
            # Fresh registry per run: repeat run() calls stay independent.
            self.metrics = MetricsRegistry()
        self.metrics.inc(
            "epi4_phase_seconds_total",
            self._encode_seconds,
            phase="encode",
            device="host",
        )
        # Pruning series exist (zero-valued) even when nothing prunes —
        # prune-off runs, non-K2 scores, dense path — so dashboards,
        # golden fixtures and shard merges see a stable metric schema.
        for name in ("epi4_prune_quads_total", "epi4_prune_rounds_total"):
            self.metrics.inc(name, 0, device="0")
        self.metrics.inc("epi4_prune_sync_total", 0)
        total_timer = Timer()
        run_span = self.tracer.span(
            "run",
            engine=self.cluster.gpus[0].engine.name,
            n_devices=self.cluster.n_gpus,
            partition=self.config.partition,
        )
        # Kept for explicit cross-thread parenting: the parallel path's
        # per-worker device spans open on worker threads whose span stacks
        # are empty, so they name this span as their parent directly.
        self._run_span = run_span
        with self._run_cleanup(journal), total_timer, run_span:
            with self.tracer.span("prepare"):
                self._reset_resilience()
                schedule = self._make_schedule()
                self._prepare_devices()
                self._cache = OperandCache.create(self.config.cache_mb)
                if self._pressure is not None:
                    self._pressure.attach_cache(self._cache)
                self._tuned_chunk_cells = self.config.max_chunk_cells
                self._tuned_batch_rounds = self.config.batch_rounds
                self.autotune_decision = None
                if self.config.autotune:
                    self._run_autotune()
                # Dense bit-plane unpacking is memoized only when batching
                # makes reuse likely (the same cached combine operand
                # recurs across fused launches); the memo bytes are
                # charged to the operand-cache budget in combine().
                dense_memo = (
                    self.cluster.gpus[0].engine.mode == "dense"
                    and self._tuned_batch_rounds > 1
                )
                for gpu in self.cluster.gpus:
                    gpu.engine.memoize_dense = dense_memo
            reducer = TopKReducer(self.config.top_k)
            self._global_reducer = reducer
            self._sync_reducer = None
            self._sync_counter = 0
            done: set[int] = set()
            if checkpoint is not None:
                checkpoint.seed_reducer(reducer)
                done = set(checkpoint.completed)
            if journal is not None:
                journal.seed_reducer(reducer)
                done |= journal.completed
            if done:
                self._best_seen = reducer.best
            if domain is not None:
                # Out-of-domain iterations are another shard's work: mark
                # them done so every execution path (sequential, parallel,
                # samples) skips them without further branching.
                done |= set(range(self.scheme.nb)) - set(domain)
            executed: list[list[int]] = [[] for _ in self.cluster.gpus]
            commit_lock = threading.Lock()

            def run_iteration(executor: "_KernelExecutor", wi: int) -> None:
                outer_span = self.tracer.span(
                    "outer", wi=wi, dev=executor.device_id
                )
                with outer_span:
                    # The outer span is handed down explicitly so stage
                    # spans opened on the stager thread (empty span stack)
                    # parent correctly.
                    local = self._run_rounds(
                        executor, [wi], parent_span=outer_span
                    )
                with commit_lock:
                    reducer.merge(local)
                    executed[executor.device_id].append(wi)
                    if checkpoint is not None:
                        checkpoint.record(wi, reducer)
                        checkpoint.save(checkpoint_path)
                    if journal is not None:
                        # Durable (fsynced) before the commit counts; a
                        # crash after this line re-runs nothing.
                        journal.commit(wi, reducer.result())

            if self._sync_enabled():
                # Warm start: inherit whatever thresholds peer shards have
                # already published (a late shard starts tight).
                self._sync_thresholds()
            if self.config.partition == "samples" and self.cluster.n_gpus > 1:
                self._run_samples_partition(done, run_iteration)
            else:
                n_workers = self.host_worker_count()
                if n_workers <= 1:
                    self._run_sequential(schedule, done, run_iteration)
                else:
                    self._run_parallel(n_workers, done, run_iteration)
            with self.tracer.span("reduce"):
                top = reducer.result()
            solution = top[0] if top else reduce_solutions([])
            if self._sync_enabled():
                # Final beat: still-running peers inherit this shard's
                # finished top-k immediately.
                self._sync_thresholds()

        merged = KernelCounters()
        for gpu in self.cluster.gpus:
            merged.merge(gpu.counters)
        # Absorb every accounting source into the unified registry as
        # device-labeled series (the final, deterministic snapshot).
        self.cluster.export_metrics(self.metrics)
        if self._cache is not None:
            self._cache.stats.export_metrics(self.metrics)
        self.fault_log.export_metrics(self.metrics)
        if self._pressure is not None:
            self._pressure.export_metrics(self.metrics)
        if journal is not None:
            journal.export_metrics(self.metrics)
        positions = self.metrics.total("epi4_applyscore_positions_total")
        if positions:
            # Mask-valid fraction of grid positions: pruned quads were
            # mask-valid too, so the ratio keeps its meaning (and its
            # prune-off value) whether or not the gate then dropped them.
            self.metrics.set_gauge(
                "epi4_applyscore_compaction_ratio",
                (
                    self.metrics.total("epi4_applyscore_valid_total")
                    + self.metrics.total("epi4_prune_quads_total")
                )
                / positions,
            )
        self.metrics.set_gauge("epi4_wall_seconds", total_timer.elapsed)
        result = SearchResult(
            solution=solution,
            top_solutions=top,
            block_scheme=self.scheme,
            counters=merged,
            per_device_counters=[gpu.counters for gpu in self.cluster.gpus],
            schedule=schedule,
            executed_assignment=executed,
            phase_seconds=self.phase_seconds_totals(),
            wall_seconds=total_timer.elapsed,
            n_samples=self.encoded.n_samples,
            cache_stats=self._cache.stats if self._cache is not None else None,
            fault_log=self.fault_log,
            spec_name=self.spec.name,
            engine_name=self.cluster.gpus[0].engine.name,
            n_devices=self.cluster.n_gpus,
            metrics=self.metrics,
        )
        self.metrics.set_gauge(
            "epi4_quads_per_second_scaled", result.quads_per_second_scaled
        )
        return result

    # ------------------------------------------------------------------ #
    # Phases

    @contextmanager
    def _run_cleanup(self, journal):
        """Release run-scoped resilience resources on any exit path: the
        watchdog's monitor thread and the journal's append handle."""
        try:
            yield
        finally:
            if self._watchdog is not None:
                self._watchdog.close()
                self._watchdog = None
            if journal is not None:
                journal.close()

    def _reset_resilience(self) -> None:
        """Fresh fault log / injector / backoff PRNG / watchdog / governor
        for one run — repeat :meth:`run` calls are independently
        deterministic."""
        self.fault_log = FaultLog.for_devices(self.cluster.n_gpus)
        self.cluster.reset_quarantine()
        seed = self._fault_plan.seed if self._fault_plan is not None else 0
        self._backoff_rng = random.Random(seed)
        self._injector = (
            FaultInjector(self._fault_plan) if self._fault_plan is not None else None
        )
        if self._watchdog is not None:
            self._watchdog.close()
        self._watchdog = (
            LaunchWatchdog(
                self.config.deadline_ms,
                # Late-bound so trips land in *this* run's fault log.
                on_trip=lambda dev, op: self.fault_log.record_watchdog_trip(
                    dev, op
                ),
            )
            if self.config.deadline_ms is not None
            else None
        )
        self._pressure = (
            PressureGovernor(relax_after=self.config.pressure_relax_rounds)
            if self.config.pressure
            else None
        )
        self._probation = (
            ProbationManager(
                ProbationPolicy(cooldown_rounds=self.config.probation_rounds)
            )
            if self.config.probation_rounds is not None
            else None
        )

    def _wrap_gpu(self, gpu: VirtualGPU):
        """Route a device's launches through the fault injector and hang
        watchdog (no-op wrapper-free passthrough when both are off)."""
        if self._injector is None and self._watchdog is None:
            return gpu
        return FaultyGPU(gpu, self._injector, self._watchdog)

    def _with_retries(
        self, device_id: int, wi: int | None, attempt_fn: Callable[[], None]
    ) -> DeviceFault | None:
        """Run one idempotent unit with the retry/backoff policy.

        Returns ``None`` on success, or the last :class:`DeviceFault`
        once the policy is exhausted (the caller decides between requeue,
        quarantine and abort).

        A :class:`DeviceMemoryError` is not a device *fault*: it steps the
        pressure governor's ladder and retries at the reduced footprint
        without consuming the retry budget (the loop is bounded by the
        ladder depth, after which the error propagates).
        """
        policy = self._retry_policy
        last: DeviceFault | None = None
        attempt = 0
        while attempt < policy.max_attempts:
            self.fault_log.record_attempt(device_id)
            if self._injector is not None:
                self._injector.begin_iteration(device_id, wi)
            try:
                attempt_fn()
            except DeviceMemoryError:
                if self._pressure is None or not self._escalate_pressure(
                    device_id, wi
                ):
                    raise  # no governor / ladder exhausted: nothing to give
                continue
            except DeviceFault as fault:
                last = fault
                self.fault_log.record_failure(device_id, wi, fault.op, fault.kind)
                attempt += 1
                if attempt < policy.max_attempts:
                    wait = policy.backoff_seconds(attempt - 1, self._backoff_rng)
                    self.fault_log.record_retry(
                        device_id, wi, fault.op, fault.kind, wait
                    )
                    if wait > 0:
                        time.sleep(wait)
            else:
                self.fault_log.record_success(device_id)
                return None
            finally:
                if self._injector is not None:
                    self._injector.begin_iteration(device_id, None)
        return last

    def _escalate_pressure(self, device_id: int, wi: int | None) -> bool:
        """One ladder step down after a :class:`DeviceMemoryError`.

        Returns ``True`` when a step was applied (retry at the reduced
        footprint), ``False`` when the ladder is exhausted."""
        governor = self._pressure
        step = governor.escalate()
        if step is None:
            return False
        level = governor.level
        self.fault_log.record_pressure(device_id, wi, level, step, "degrade")
        with self.tracer.span(
            "pressure",
            parent_span=self._run_span,
            dev=device_id,
            level=level,
            step=step,
        ):
            pass
        return True

    def _note_exhausted(
        self, device_id: int, wi: int, fault: DeviceFault
    ) -> bool:
        """Record an iteration that failed all local retries; quarantine
        the device when the policy says so.  Returns True if quarantined."""
        exhausted = self.fault_log.record_requeue(
            device_id, wi, fault.op, fault.kind
        )
        if exhausted >= self._retry_policy.quarantine_after:
            self.fault_log.record_quarantine(device_id, wi)
            self.cluster.quarantine(device_id)
            return True
        return False

    def _run_sequential(
        self, schedule: ScheduleResult, done: set[int], run_iteration
    ) -> None:
        """Sequential replay of the modelled dynamic schedule (the seed
        path — also the deterministic per-device accounting baseline).

        Under faults, each iteration is retried on its assigned device;
        exhausted iterations are deferred and re-driven through the
        surviving devices in a second pass (mirroring the parallel
        executor's requeue, at the cost of schedule fidelity — which a
        faulty run has already lost anyway)."""
        executors = {
            gpu.device_id: _SingleDeviceExecutor(
                self, self._wrap_gpu(gpu), self._cache
            )
            for gpu in self.cluster.gpus
        }
        deferred: list[int] = []
        for gpu, outer_iters in zip(self.cluster.gpus, schedule.assignment):
            with self.tracer.span("device", device=gpu.device_id):
                for wi in outer_iters:
                    if wi in done:
                        continue
                    if gpu.device_id in self.cluster.quarantined:
                        deferred.append(wi)
                        continue
                    fault = self._with_retries(
                        gpu.device_id,
                        wi,
                        lambda e=executors[gpu.device_id], w=wi: run_iteration(e, w),
                    )
                    if fault is not None:
                        self._note_exhausted(gpu.device_id, wi, fault)
                        deferred.append(wi)
        for wi in deferred:
            committed = False
            last: DeviceFault | None = None
            for gpu in self.cluster.gpus:
                if gpu.device_id in self.cluster.quarantined:
                    continue
                with self.tracer.span("device", device=gpu.device_id):
                    fault = self._with_retries(
                        gpu.device_id,
                        wi,
                        lambda e=executors[gpu.device_id], w=wi: run_iteration(e, w),
                    )
                if fault is None:
                    committed = True
                    break
                last = fault
                self._note_exhausted(gpu.device_id, wi, fault)
            if not committed:
                raise SearchAbortedError(
                    f"outer iteration {wi} failed on every available device "
                    f"(last fault: {last}); search cannot complete"
                )

    def _run_samples_partition(self, done: set[int], run_iteration) -> None:
        """§4.6 alternative scheme: every device runs every round over its
        own sample range; one pass, merged corners.  Devices cooperate
        within a round, so the host drives them from a single thread —
        and a persistently failing device cannot be routed around (its
        sample chunk is irreplaceable): exhausted retries abort."""
        executor = _SamplePartitionExecutor(
            self,
            [self._wrap_gpu(gpu) for gpu in self.cluster.gpus],
            self._cache,
        )
        with self.tracer.span("device", device=executor.device_id):
            for wi in range(self.scheme.nb):
                if wi in done:
                    continue
                fault = self._with_retries(
                    executor.device_id, wi, lambda w=wi: run_iteration(executor, w)
                )
                if fault is not None:
                    raise SearchAbortedError(
                        f"outer iteration {wi} exhausted its retries under the "
                        f"'samples' partition ({fault}); every device's sample "
                        "chunk is required per round, so no requeue is possible"
                    )

    def _run_parallel(self, n_workers: int, done: set[int], run_iteration) -> None:
        """One worker thread per device, pulling outer iterations from a
        shared fault-tolerant queue — the host-side realization of OpenMP
        ``schedule(dynamic)`` over the ``Wi`` loop (§3.6).

        A worker that exhausts its retries on an iteration requeues it
        for the surviving devices (the queue excludes the surrendering
        device); after ``quarantine_after`` consecutive exhausted
        iterations the device is quarantined.  Without probation its
        worker exits for good; with ``probation_rounds`` set the worker
        parks, waits out the cooldown (in cluster-wide commits), then
        runs a readmission canary (see :meth:`_probation_cycle`).  The
        queue raises :class:`SearchAbortedError` if work remains that no
        surviving device may run."""
        queue = ResilientWorkQueue(
            wi for wi in range(self.scheme.nb) if wi not in done
        )

        def device_worker(gpu: VirtualGPU) -> None:
            executor = _SingleDeviceExecutor(
                self, self._wrap_gpu(gpu), self._cache
            )
            dev = gpu.device_id
            queue.register(dev)
            try:
                with self.tracer.span(
                    "device", parent_span=self._run_span, device=dev
                ):
                    while True:
                        wi = queue.get(dev)
                        if wi is None:
                            return
                        fault = self._with_retries(
                            dev, wi, lambda w=wi: run_iteration(executor, w)
                        )
                        if fault is None:
                            queue.done(wi)
                            continue
                        queue.requeue(wi, dev)
                        if self._note_exhausted(dev, wi, fault):
                            if self._probation is None:
                                return  # quarantined for the rest of the run
                            if not self._probation_cycle(
                                dev, queue, executor, run_iteration
                            ):
                                return  # probation retired the device
                            # Readmitted: back to normal work.
            finally:
                queue.unregister(dev)

        workers = [
            gpu
            for gpu in self.cluster.gpus
            if gpu.device_id not in self.cluster.quarantined
        ][:n_workers]
        if not workers:
            raise SearchAbortedError(
                "every device was quarantined before the search loop started"
            )
        with ThreadPoolExecutor(
            max_workers=len(workers), thread_name_prefix="epi4-device"
        ) as pool:
            futures = [pool.submit(device_worker, gpu) for gpu in workers]
            for future in futures:
                future.result()  # re-raise the first worker failure
        if queue.unfinished:
            # Every worker retired (probation gave up on the whole fleet)
            # with work still pending — fail loudly, never silently drop
            # iterations from the exhaustive search.
            raise SearchAbortedError(
                "work remains but every device retired from probation; "
                "search cannot complete"
            )

    def _probation_cycle(
        self, dev: int, queue: ResilientWorkQueue, executor, run_iteration
    ) -> bool:
        """Park a freshly quarantined device until its canary is due, then
        probe for readmission.  Returns ``True`` when the device earned
        its way back into service, ``False`` when probation retired it
        (or the search finished without it).

        The parked worker unregisters so the queue's abort/emergency
        calculus ignores it; an ``"emergency"`` wake (whole fleet parked,
        work pending) runs the canary immediately, cooldown
        notwithstanding — the alternative is a search that can never
        finish."""
        probation = self._probation
        probation.on_quarantine(dev, queue.committed)
        queue.unregister(dev)
        while True:
            if not probation.may_probe(dev):
                return False
            state = queue.wait_probation(probation.due_at(dev))
            if state == "drained":
                return False
            # "due" or "emergency": run one single-attempt canary.
            queue.register(dev)
            wi = queue.get(dev)
            if wi is None:
                queue.unregister(dev)
                return False
            if self._run_canary(dev, wi, executor, run_iteration):
                queue.done(wi)
                self.cluster.unquarantine(dev)
                self.fault_log.record_readmit(dev)
                probation.on_canary_success(dev)
                return True
            queue.requeue(wi, dev)
            queue.unregister(dev)
            if not probation.on_canary_failure(dev, queue.committed):
                return False

    def _run_canary(
        self, dev: int, wi: int, executor, run_iteration
    ) -> bool:
        """One probation canary: a single attempt, no retries — a device
        asking back into service must complete an iteration cleanly."""
        self.fault_log.record_attempt(dev)
        if self._injector is not None:
            self._injector.begin_iteration(dev, wi)
        try:
            with self.tracer.span(
                "canary", parent_span=self._run_span, dev=dev, wi=wi
            ):
                run_iteration(executor, wi)
        except DeviceFault as fault:
            self.fault_log.record_failure(dev, wi, fault.op, fault.kind)
            self.fault_log.record_canary(dev, wi, False)
            return False
        except DeviceMemoryError:
            # A canary gets no pressure retry: failing it closed is safe
            # (the iteration requeues; healthy devices carry the ladder).
            self.fault_log.record_failure(dev, wi, "canary", "oom")
            self.fault_log.record_canary(dev, wi, False)
            return False
        else:
            self.fault_log.record_success(dev)
            self.fault_log.record_canary(dev, wi, True)
            return True
        finally:
            if self._injector is not None:
                self._injector.begin_iteration(dev, None)

    def _make_schedule(self) -> ScheduleResult:
        costs = [
            float(
                outer_iteration_tensor_ops(
                    wi, self.scheme.nb, self.scheme.block_size, self.encoded.n_samples
                )
            )
            for wi in range(self.scheme.nb)
        ]
        domain = getattr(self, "_outer_iterations", None)
        return self.cluster.schedule(costs, domain)

    def _prepare_devices(self) -> None:
        """Dataset transfer + low-order precomputation (indivPop/pairwPop).

        As in §3.6, every device receives the full dataset and a full copy
        of the lgamma table and low-order tables; the precomputation itself
        is done once (its cost is accounted on every device).

        Transfer faults are retried per the policy; a device that cannot
        even receive the dataset is quarantined up front (the search
        proceeds on the survivors, or aborts if none remain).
        """
        with self._phase_scope("pairwise", "host"):
            self._low = pairw_pop(self.encoded)
        m, n = self.encoded.n_snps, self.encoded.n_samples

        for gpu in self.cluster.gpus:
            target = self._wrap_gpu(gpu)

            def prepare() -> None:
                target.transfer_to_device(self.encoded.nbytes)
                target.launch_pairwise(2 * (2 * m) * (2 * m) * n)

            fault = self._with_retries(gpu.device_id, None, prepare)
            if fault is not None:
                self.fault_log.record_quarantine(gpu.device_id)
                self.cluster.quarantine(gpu.device_id)
        if len(self.cluster.quarantined) == self.cluster.n_gpus:
            raise SearchAbortedError(
                "no device survived dataset transfer; search cannot start"
            )

    def _run_autotune(self) -> None:
        """Calibrate the applyScore knobs on the live dataset (result-
        neutral; see :mod:`repro.core.autotune`) and adopt the decision:
        ``max_chunk_cells`` for the fused scorer, — in packed mode — the
        packed-GEMM tiling budget on every device's engine, and — when
        batching is enabled — the round batch size."""
        assert self._low is not None, "_prepare_devices must run first"
        with self._phase_scope("autotune", "host"):
            decision = autotune_applyscore(
                self.encoded,
                self._low.pairs,
                self._score_min,
                block_size=self.scheme.block_size,
                n_real_snps=self.scheme.n_real_snps,
                staged_kernel=self._staged,
                engine=self.cluster.gpus[0].engine,
                calibrate_batch=self.config.batch_rounds > 1,
            )
        self._tuned_chunk_cells = decision.max_chunk_cells
        if decision.block_bytes is not None:
            for gpu in self.cluster.gpus:
                gpu.engine.block_bytes = decision.block_bytes
        if decision.batch_rounds is not None:
            self._tuned_batch_rounds = decision.batch_rounds
        decision.export_metrics(self.metrics)
        self.autotune_decision = decision

    def _run_rounds(
        self,
        executor: "_KernelExecutor",
        outer_iters: Iterable[int],
        parent_span=None,
    ) -> TopKReducer:
        """The Algorithm 1 loop nest over one executor's kernel primitives.

        Loop-invariant operands are requested through the executor's
        ``combine``/``sweep3`` primitives: with the round-operand cache
        enabled, the per-``Yi`` ``wy``/``xy`` combine+sweep is computed
        once and served from the cache across outer pairs, and the ``yz``
        combines are shared across every enclosing ``(Wi, Xi)``; with the
        cache disabled every request recomputes, reproducing the seed
        driver launch-for-launch.

        Dispatch: at ``batch_rounds == 1`` with overlap inactive the seed
        loop runs verbatim (:meth:`_run_rounds_serial`); otherwise rounds
        are grouped and their ``yz``/4-way launches fused
        (:meth:`_run_rounds_pipelined`), optionally double-buffered on a
        host stream.  All three paths are bit-identical.
        """
        assert self._low is not None, "_prepare_devices must run first"
        batch = max(1, self._tuned_batch_rounds)
        if self._pressure is not None:
            batch = self._pressure.effective_batch_rounds(batch)
        depth = (
            stage_lookahead(self.config.n_streams)
            if self.config.overlap
            else 0
        )
        if batch == 1 and depth == 0:
            return self._run_rounds_serial(executor, outer_iters)
        return self._run_rounds_pipelined(
            executor, outer_iters, batch, depth, parent_span
        )

    def _run_rounds_serial(
        self, executor: "_KernelExecutor", outer_iters: Iterable[int]
    ) -> TopKReducer:
        """The seed loop nest: one launch per combine/sweep/GEMM request."""
        b = self.scheme.block_size
        nb = self.scheme.nb
        reducer = TopKReducer(self.config.top_k)

        for wi in outer_iters:
            wo = wi * b
            for xi in range(wi, nb):
                xo = xi * b
                wx = [executor.combine(c, wo, xo) for c in (0, 1)]
                sweep_wx = [
                    executor.sweep3(c, wo, xo, combined=wx[c]) for c in (0, 1)
                ]
                for yi in range(xi, nb):
                    yo = yi * b
                    sweep_wy = [executor.sweep3(c, wo, yo) for c in (0, 1)]
                    sweep_xy = [executor.sweep3(c, xo, yo) for c in (0, 1)]
                    for zi in range(yi, nb):
                        zo = zi * b
                        round_t0 = time.perf_counter()
                        with self.tracer.span(
                            "round", wi=wi, xi=xi, yi=yi, zi=zi
                        ):
                            yz = [executor.combine(c, yo, zo) for c in (0, 1)]
                            corner4 = [
                                executor.gemm4(wx[c], yz[c], c) for c in (0, 1)
                            ]
                            operands = RoundOperands(
                                corner4=(corner4[0], corner4[1]),
                                corner3_wxy=tuple(
                                    s[:, :, yo - xo : yo - xo + b]
                                    for s in sweep_wx
                                ),
                                corner3_wxz=tuple(
                                    s[:, :, zo - xo : zo - xo + b]
                                    for s in sweep_wx
                                ),
                                corner3_wyz=tuple(
                                    s[:, :, zo - yo : zo - yo + b]
                                    for s in sweep_wy
                                ),
                                corner3_xyz=tuple(
                                    s[:, :, zo - yo : zo - yo + b]
                                    for s in sweep_xy
                                ),
                                offsets=(wo, xo, yo, zo),
                                block_size=b,
                            )
                            self._score_and_reduce(executor, reducer, operands)
                        self._note_round_done(executor, reducer, round_t0)
        return reducer

    # -- batched round pipeline ----------------------------------------- #

    def _run_rounds_pipelined(
        self,
        executor: "_KernelExecutor",
        outer_iters: Iterable[int],
        batch: int,
        depth: int,
        parent_span,
    ) -> TopKReducer:
        """Grouped-launch loop nest with optional stage/score overlap.

        Rounds sharing one ``(Wi, Xi)`` pair are chunked into groups of
        ``batch``; each group's ``yz`` combines and 4-way GEMMs issue as
        fused batched launches.  With ``depth > 0`` up to ``depth + 1``
        groups are in flight on an in-order :class:`HostStream` — the
        stager thread runs *all* device launches (so kernel accounting
        never races the scoring thread) while the calling thread scores.
        """
        reducer = TopKReducer(self.config.top_k)
        tasks: list[Callable[[], _StagedGroup]] = []
        nb = self.scheme.nb
        for wi in outer_iters:
            for xi in range(wi, nb):
                rounds = [
                    (yi, zi)
                    for yi in range(xi, nb)
                    for zi in range(yi, nb)
                ]
                # Per-(wi, xi) operands shared across the pair's groups;
                # mutated only by the (single, in-order) stager thread.
                shared: dict = {}
                for start in range(0, len(rounds), batch):
                    tasks.append(
                        self._make_stage_task(
                            executor,
                            wi,
                            xi,
                            rounds[start : start + batch],
                            shared,
                            parent_span,
                            reducer,
                        )
                    )
        if depth == 0:
            for task in tasks:
                self._score_staged_group(executor, reducer, task())
            return reducer

        stream = HostStream(f"epi4-stage-{executor.device_id}")
        pending: deque = deque()
        idx = 0
        try:
            while idx < len(tasks) or pending:
                while idx < len(tasks) and len(pending) < depth + 1:
                    pending.append(stream.submit(tasks[idx]))
                    idx += 1
                future = pending.popleft()
                wait_t0 = time.perf_counter()
                staged = future.result()
                wait_s = time.perf_counter() - wait_t0
                # Stage time the scoring thread did NOT wait for = real
                # overlap won by the stream.
                self.metrics.inc(
                    "epi4_stage_overlap_seconds_total",
                    max(0.0, staged.stage_seconds - wait_s),
                    device=str(executor.device_id),
                )
                self._score_staged_group(executor, reducer, staged)
        finally:
            # Drain in-flight stage work before this (possibly retried)
            # iteration returns: the fault injector's per-device context
            # is reset by _with_retries right after, and no launch may
            # outlive its iteration.  A primary exception wins over any
            # secondary stager failure.
            for future in pending:
                try:
                    future.result()
                except BaseException:
                    pass
            stream.close()
        return reducer

    def _make_stage_task(
        self,
        executor: "_KernelExecutor",
        wi: int,
        xi: int,
        group: list[tuple[int, int]],
        shared: dict,
        parent_span,
        reducer: TopKReducer,
    ) -> Callable[[], "_StagedGroup"]:
        """Build the (idempotent) stage closure for one round group: all
        combines, sweeps and fused tensor launches the group's rounds
        need, returning host-resident operands ready to score.

        With pruning inactive the stage issues its launches in the exact
        historical order (combine+sweep, per-``Yi`` sweeps, ``yz``
        combines, fused 4-way GEMM).  With pruning active the third-order
        sweeps are staged *lazily*: the fused GEMM runs first, each
        round's aggregate 16-corner bound (:meth:`K2BoundKernel.round_bound`)
        is compared against the current threshold, and sweeps are staged
        only for rounds that survive — an elided round skips its sweep
        launches entirely when the operand cache is off.  An implausible
        (fault-corrupted) corner block bounds to ``-inf`` and is never
        elided, so it still reaches the scoring path's validation.
        """
        b = self.scheme.block_size
        prune = self._prune_active()

        def stage() -> _StagedGroup:
            wo, xo = wi * b, xi * b
            t0 = time.perf_counter()
            with self.tracer.span(
                "stage",
                parent_span=parent_span,
                wi=wi,
                xi=xi,
                dev=executor.device_id,
            ):
                if "wx" not in shared:
                    wx = [executor.combine(c, wo, xo) for c in (0, 1)]
                    shared["wx"] = wx
                    if not prune:
                        shared["sweep_wx"] = [
                            executor.sweep3(c, wo, xo, combined=wx[c])
                            for c in (0, 1)
                        ]
                    shared["sweeps"] = {}
                wx = shared["wx"]
                if not prune:
                    for yi, _zi in group:
                        if yi not in shared["sweeps"]:
                            shared["sweeps"][yi] = self._yi_sweeps(
                                executor, wo, xo, yi * b
                            )
                yz_by_round = [
                    [executor.combine(c, yi * b, zi * b) for c in (0, 1)]
                    for yi, zi in group
                ]
                corner4_by_class = [
                    executor.gemm4_batch(
                        wx[c], [yz[c] for yz in yz_by_round], c
                    )
                    for c in (0, 1)
                ]
                rounds = []
                if prune:
                    threshold = self._prune_threshold(reducer)
                    survivors: list[int] = []
                    for k, (yi, zi) in enumerate(group):
                        corner4 = (
                            corner4_by_class[0][k],
                            corner4_by_class[1][k],
                        )
                        elided = False
                        n_masked = 0
                        if np.isfinite(threshold):
                            mask = round_validity_mask(
                                (wo, xo, yi * b, zi * b),
                                b,
                                self.scheme.n_real_snps,
                            )
                            bound = self._bound_kernel.round_bound(
                                corner4, mask
                            )
                            if bound > threshold + PRUNE_SLACK:
                                elided = True
                                n_masked = int(mask.sum())
                        rounds.append((yi, zi, corner4, elided, n_masked))
                        if not elided and yi not in survivors:
                            survivors.append(yi)
                    if survivors and "sweep_wx" not in shared:
                        shared["sweep_wx"] = [
                            executor.sweep3(c, wo, xo, combined=wx[c])
                            for c in (0, 1)
                        ]
                    for yi in survivors:
                        if yi not in shared["sweeps"]:
                            shared["sweeps"][yi] = self._yi_sweeps(
                                executor, wo, xo, yi * b
                            )
                else:
                    rounds = [
                        (
                            yi,
                            zi,
                            (corner4_by_class[0][k], corner4_by_class[1][k]),
                            False,
                            0,
                        )
                        for k, (yi, zi) in enumerate(group)
                    ]
            return _StagedGroup(
                wi=wi,
                xi=xi,
                sweep_wx=shared.get("sweep_wx"),
                yi_sweeps={
                    yi: shared["sweeps"][yi]
                    for yi, _ in group
                    if yi in shared["sweeps"]
                },
                rounds=rounds,
                stage_seconds=time.perf_counter() - t0,
            )

        return stage

    def _yi_sweeps(
        self, executor: "_KernelExecutor", wo: int, xo: int, yo: int
    ):
        """The Y-level ``wy``/``xy`` sweeps for one staged pair.

        With the operand cache off on a plain single-device executor the
        two sweeps share their tail, so their per-class tensor3 launches
        fuse (``sweep3_pair``); every other configuration routes through
        the ordinary cached ``sweep3`` requests.
        """
        if (
            self._cache is None
            and self.config.sample_chunk_bits is None
            and isinstance(executor, _SingleDeviceExecutor)
        ):
            return executor.sweep3_pair(wo, xo, yo)
        return (
            [executor.sweep3(c, wo, yo) for c in (0, 1)],
            [executor.sweep3(c, xo, yo) for c in (0, 1)],
        )

    def _score_staged_group(
        self,
        executor: "_KernelExecutor",
        reducer: TopKReducer,
        staged: "_StagedGroup",
    ) -> None:
        """Score every round of a staged group (host math only — all
        device launches already happened in the stage task).

        A round the stage task elided is only accounted: its mask-valid
        positions count as pruned (keeping the conservation law
        ``valid + pruned == mask-valid`` exact), the round still ticks
        the per-round bookkeeping, and no completion or scoring runs.
        """
        b = self.scheme.block_size
        wo, xo = staged.wi * b, staged.xi * b
        dev = str(executor.device_id)
        for yi, zi, corner4, elided, n_masked in staged.rounds:
            yo, zo = yi * b, zi * b
            if elided:
                round_t0 = time.perf_counter()
                with self.tracer.span(
                    "round",
                    wi=staged.wi,
                    xi=staged.xi,
                    yi=yi,
                    zi=zi,
                    elided=1,
                ):
                    self.metrics.inc(
                        "epi4_applyscore_positions_total", b ** 4, device=dev
                    )
                    self.metrics.inc(
                        "epi4_prune_quads_total", n_masked, device=dev
                    )
                    self.metrics.inc("epi4_prune_rounds_total", device=dev)
                self._note_round_done(executor, reducer, round_t0)
                continue
            sweep_wy, sweep_xy = staged.yi_sweeps[yi]
            round_t0 = time.perf_counter()
            with self.tracer.span(
                "round", wi=staged.wi, xi=staged.xi, yi=yi, zi=zi
            ):
                operands = RoundOperands(
                    corner4=(corner4[0], corner4[1]),
                    corner3_wxy=tuple(
                        s[:, :, yo - xo : yo - xo + b]
                        for s in staged.sweep_wx
                    ),
                    corner3_wxz=tuple(
                        s[:, :, zo - xo : zo - xo + b]
                        for s in staged.sweep_wx
                    ),
                    corner3_wyz=tuple(
                        s[:, :, zo - yo : zo - yo + b] for s in sweep_wy
                    ),
                    corner3_xyz=tuple(
                        s[:, :, zo - yo : zo - yo + b] for s in sweep_xy
                    ),
                    offsets=(wo, xo, yo, zo),
                    block_size=b,
                )
                self._score_and_reduce(executor, reducer, operands)
            self._note_round_done(executor, reducer, round_t0)

    def _score_and_reduce(
        self,
        executor: "_KernelExecutor",
        reducer: TopKReducer,
        operands: RoundOperands,
    ) -> None:
        """Shared per-round tail: score, account, reduce."""
        scores, score_cells = self._score_round(executor, operands, reducer)
        with self._phase_scope("score", executor.device_id, span="score"):
            executor.account_score(score_cells)
        with self._phase_scope("score", executor.device_id, span="reduce"):
            reducer.add_round(scores, operands.offsets)

    def _note_round_done(
        self,
        executor: "_KernelExecutor",
        reducer: TopKReducer,
        round_t0: float,
    ) -> None:
        """Per-round bookkeeping shared by both loop paths."""
        dev = str(executor.device_id)
        self.metrics.inc("epi4_rounds_total", device=dev)
        self.metrics.observe(
            "epi4_round_seconds", time.perf_counter() - round_t0, device=dev
        )
        if self._pressure is not None:
            step = self._pressure.note_clean_round()
            if step is not None:
                self.fault_log.record_pressure(
                    executor.device_id,
                    None,
                    self._pressure.level,
                    step,
                    "expand",
                )
        if self._sync_enabled():
            due = False
            with self._sync_lock:
                self._sync_counter += 1
                if self._sync_counter % self.config.prune_sync_rounds == 0:
                    due = True
            if due:
                self._sync_thresholds()
        if self._progress_callback is not None:
            with self._progress_lock:
                self._rounds_done += 1
                self._best_seen = min(self._best_seen, reducer.best)
                self._progress_callback(
                    self._rounds_done, self.scheme.n_rounds, self._best_seen
                )

    def _triplets_active(self) -> bool:
        """Whether cross-round triplet caching is on right now: the
        configured switch, possibly overridden by pressure level 4."""
        if not self.config.cache_triplets:
            return False
        if self._pressure is not None:
            return self._pressure.triplets_enabled(True)
        return True

    # ------------------------------------------------------------------ #
    # Branch-and-bound pruning (see repro.scoring.bounds)

    def attach_threshold_exchange(self, exchange: "ThresholdExchange") -> None:
        """Attach a :class:`~repro.dist.threshold.ThresholdExchange`.

        Every ``config.prune_sync_rounds`` completed rounds (plus once at
        run start and once at the end) this search publishes its global
        top-k and refreshes the peer-shard threshold reducer.  Peer
        candidates feed *only* the prune threshold — they never enter
        this run's own reduction, so shard artifacts are byte-identical
        with or without an exchange."""
        self._threshold_exchange = exchange

    def _prune_active(self) -> bool:
        """Whether the bound-first gate runs: configured on, fused path,
        and a K2 bound kernel available (other score functions have no
        admissible corner bound)."""
        return (
            self.config.prune
            and self.config.score_path == "fused"
            and self._bound_kernel is not None
        )

    def _prune_threshold(self, reducer: TopKReducer) -> float:
        """Tightest currently-safe prune threshold.

        The minimum over the per-iteration reducer, the run-global
        reducer and — when a threshold exchange is attached — the
        peer-shard reducer.  Each contributor's ``kth_score`` is the
        k-th best of a *subset* of the final candidate set, hence
        ``>=`` the final k-th best; pruning strictly above the minimum
        can therefore never drop a final top-k member.  ``+inf`` (all
        contributors under-filled) disables pruning."""
        threshold = min(
            reducer.kth_score(), self._global_reducer.kth_score()
        )
        sync = self._sync_reducer
        if sync is not None:
            threshold = min(threshold, sync.kth_score())
        return threshold

    def _sync_enabled(self) -> bool:
        return (
            self._threshold_exchange is not None
            and self.config.prune_sync_rounds is not None
        )

    def _sync_thresholds(self) -> None:
        """One threshold-exchange beat: publish this run's global top-k,
        then rebuild the peer-shard reducer from every peer's latest
        published candidates."""
        exchange = self._threshold_exchange
        if exchange is None:
            return
        with self.tracer.span("prune_sync", dev="host"):
            exchange.publish(self._global_reducer.result())
            peers = exchange.peer_solutions()
            if peers:
                self._sync_reducer = TopKReducer.from_solutions(
                    self.config.top_k, peers
                )
        self.metrics.inc("epi4_prune_sync_total")

    # ------------------------------------------------------------------ #
    # Scoring with graceful degradation

    def _apply_score_path(
        self,
        executor: "_KernelExecutor",
        operands: RoundOperands,
        *,
        triplet_cache: bool = True,
        reducer: TopKReducer | None = None,
    ) -> tuple[np.ndarray, int]:
        """Run the configured completion+scoring path on one round.

        Returns ``(scores, executed_score_cells)``.  The fused path scores
        only the mask-compacted positions (and accounts exactly those),
        serves completed triplets through the executor's ``full3`` hook,
        and records the ``epi4_applyscore_*`` series; the dense ablation
        path reproduces the legacy full-grid behaviour.  With a reducer
        and pruning active, the bound-first gate drops positions that
        provably cannot enter the top-k before completion runs.
        """
        chunk_cells = self._tuned_chunk_cells
        if self._pressure is not None:
            chunk_cells = self._pressure.effective_chunk_cells(chunk_cells)
        if self.config.score_path == "dense":
            scores = apply_score_dense(
                operands,
                self._low.pairs,
                self._score_min,
                self.scheme.n_real_snps,
                max_chunk_cells=chunk_cells,
            )
            return scores, operands.block_size ** 4 * 81 * 2
        prune = reducer is not None and self._prune_active()
        scores, stats = score_round(
            operands,
            self._low.pairs,
            self._score_min,
            self.scheme.n_real_snps,
            max_chunk_cells=chunk_cells,
            staged_kernel=self._staged,
            full3_provider=executor.full3 if triplet_cache else None,
            bound_kernel=self._bound_kernel if prune else None,
            prune_threshold=(
                (lambda: self._prune_threshold(reducer)) if prune else None
            ),
        )
        dev = str(executor.device_id)
        self.metrics.inc(
            "epi4_applyscore_positions_total", stats.positions, device=dev
        )
        self.metrics.inc(
            "epi4_applyscore_valid_total", stats.valid, device=dev
        )
        self.metrics.inc(
            "epi4_applyscore_chunks_total", stats.chunks, device=dev
        )
        if stats.pruned:
            self.metrics.inc(
                "epi4_prune_quads_total", stats.pruned, device=dev
            )
        return scores, stats.valid * 81 * 2

    def _score_round(
        self,
        executor: "_KernelExecutor",
        operands: RoundOperands,
        reducer: TopKReducer | None = None,
    ) -> tuple[np.ndarray, int]:
        """Score one round, degrading to the independent bitwise path on
        detected corruption instead of aborting.

        Detection is two-layered: a cheap count-plausibility validation
        of the tensor outputs (active whenever fault injection is
        configured) and the full per-round self-check (when
        ``config.selfcheck`` is on).  Either failure re-executes the
        round from :func:`~repro.core.selfcheck.direct_round_operands` —
        exact integer corners through the *same* completion + scoring
        code — so the degraded round is bit-identical to an uncorrupted
        one.  A round that fails its self-check even on the bitwise path
        indicates host-side corruption and still aborts.

        Returns ``(scores, executed_score_cells)``.
        """
        try:
            if self._fault_plan is not None:
                validate_round_corners(
                    operands, self.encoded.n_controls, self.encoded.n_cases
                )
            with self._phase_scope("score", executor.device_id, span="derive"):
                scores, cells = self._apply_score_path(
                    executor, operands, reducer=reducer
                )
            if self.config.selfcheck:
                verify_round_best(
                    self.encoded, scores, operands.offsets, self._score_min
                )
            return scores, cells
        except SelfCheckError as err:
            return self._degraded_round(executor, operands, err, reducer)

    def _purge_round_triplets(self, offsets: tuple[int, int, int, int]) -> None:
        """Invalidate a round's completed-triplet cache entries.

        Injected corruption is tensor4-only by construction, but a failed
        self-check means *something* in the pipeline lied — defense in
        depth drops every ``full3`` entry the round may have admitted so
        the degraded re-execution (and every later consumer) starts from
        trusted inputs.
        """
        if self._cache is None:
            return
        wo, xo, yo, zo = offsets
        triples = {(wo, xo, yo), (wo, xo, zo), (wo, yo, zo), (xo, yo, zo)}
        for cls in (0, 1):
            for triple in triples:
                self._cache.invalidate(("full3", cls, *triple))

    def _degraded_round(
        self,
        executor: "_KernelExecutor",
        operands: RoundOperands,
        err: SelfCheckError,
        reducer: TopKReducer | None = None,
    ) -> tuple[np.ndarray, int]:
        reason = "corrupt" if isinstance(err, CorruptOutputError) else "selfcheck"
        self._purge_round_triplets(operands.offsets)
        safe = direct_round_operands(
            self.encoded, operands.offsets, operands.block_size
        )
        with self._phase_scope("score", executor.device_id, span="derive"):
            # The degraded pass bypasses the triplet cache entirely: its
            # completions come from the independent corners, unshared.
            # The bound gate stays active — the independent corners are
            # exact, so the bound is just as admissible on them.
            scores, cells = self._apply_score_path(
                executor, safe, triplet_cache=False, reducer=reducer
            )
        if self.config.selfcheck:
            # Still wrong on the independent path => the corruption is not
            # in the tensor pipeline; nothing left to fall back to.
            verify_round_best(
                self.encoded, scores, operands.offsets, self._score_min
            )
        wi = operands.offsets[0] // operands.block_size
        self.fault_log.record_degraded_round(executor.device_id, wi, reason)
        return scores, cells


@dataclass
class _StagedGroup:
    """Host-resident operands of one staged round group.

    Produced by a stage task (all device launches done), consumed by
    :meth:`Epi4TensorSearch._score_staged_group` (host math only).
    """

    wi: int
    xi: int
    #: Per-class ``wx`` third-order sweeps (shared across the pair's
    #: groups); ``None`` when bound pruning elided every round that
    #: would have needed them.
    sweep_wx: list | None
    #: ``{yi: (sweep_wy_per_class, sweep_xy_per_class)}`` for the group's
    #: surviving (non-elided) rounds.
    yi_sweeps: dict
    #: ``(yi, zi, per_class_corner4, elided, n_masked)`` per round, in
    #: round order; ``n_masked`` is the mask-valid position count of an
    #: elided round (0 otherwise).
    rounds: list
    #: Wall seconds the stage task spent (for the overlap metric).
    stage_seconds: float


def _full3_lookup(
    search: "Epi4TensorSearch",
    counters: KernelCounters,
    device_id: int,
    cache: OperandCache | None,
    cls: int,
    triple: tuple[int, int, int],
    factory: Callable[[], np.ndarray],
) -> tuple[np.ndarray, bool]:
    """Shared completed-triplet (``full3``) cache hook for both executors.

    The completed 27-cell table of a block triple is a pure function of
    its (non-decreasing) block offsets — the corner slice is the same
    sweep output and the completion gathers the same global pair tables
    whichever round-role the triple plays — so the factory is
    key-determined *in value* and the single-flight admission works
    exactly like the combine/sweep entries.  The factory runs host-side
    completion arithmetic (no device launch), so no launch accounting can
    be perturbed by which concurrent request computes.
    """
    metrics = search.metrics
    dev = str(device_id)
    metrics.inc("epi4_operand_requests_total", kind="full3", device=dev)
    if cache is None or not search._triplets_active():
        metrics.inc(
            "epi4_operand_executed_total", kind="full3", device=dev
        )
        return factory(), False
    value, hit, evicted = cache.get_or_compute(
        ("full3", cls, *triple), factory
    )
    counters.record_cache(hit, evicted)
    metrics.inc(
        "epi4_operand_cache_served_total"
        if hit
        else "epi4_operand_executed_total",
        kind="full3",
        device=dev,
    )
    return value, hit


class _SingleDeviceExecutor:
    """Kernel launches on one device (the paper's outer-partition scheme).

    Operand handles are plain :class:`BitMatrix` objects; when
    ``sample_chunk_bits`` is configured, every tensor GEMM is split along
    the sample (K) dimension and the partial corners summed (§4.5's Turing
    large-N mitigation).

    With an :class:`OperandCache` attached, ``combine`` and ``sweep3``
    results are served from the cache when possible; a hit records
    ``cache_hits`` on this device's counters and skips the launch (and its
    work accounting) entirely.
    """

    def __init__(
        self,
        search: "Epi4TensorSearch",
        gpu: VirtualGPU,
        cache: OperandCache | None = None,
    ) -> None:
        self._search = search
        self._gpu = gpu
        self._cache = cache
        self._planes = [search.encoded.class_matrix(cls) for cls in (0, 1)]

    @property
    def device_id(self) -> int:
        return self._gpu.device_id

    # -- combine -------------------------------------------------------- #

    def combine(self, cls: int, off_a: int, off_b: int) -> BitMatrix:
        metrics = self._search.metrics
        dev = str(self.device_id)
        metrics.inc("epi4_operand_requests_total", kind="combine", device=dev)
        if self._cache is None:
            metrics.inc(
                "epi4_operand_executed_total", kind="combine", device=dev
            )
            return self._combine_cold(cls, off_a, off_b)
        value, hit, evicted = self._cache.get_or_compute(
            ("combine", cls, off_a, off_b),
            lambda: self._combine_cold(cls, off_a, off_b),
            # When the engine memoizes dense unpacking, a cached combine
            # pins its (lazily built) float operand too — charge the
            # budget for it up front so admission stays deterministic.
            nbytes=lambda bm: bm.nbytes
            + (
                bm.projected_dense_nbytes(dense_acc_dtype(bm.n_bits))
                if self._gpu.engine.memoize_dense
                else 0
            ),
        )
        self._gpu.counters.record_cache(hit, evicted)
        metrics.inc(
            "epi4_operand_cache_served_total"
            if hit
            else "epi4_operand_executed_total",
            kind="combine",
            device=dev,
        )
        return value

    def _combine_cold(self, cls: int, off_a: int, off_b: int) -> BitMatrix:
        with self._search._phase_scope("combine", self.device_id):
            return self._gpu.launch_combine(
                self._planes[cls], off_a, off_b, self._search.scheme.block_size
            )

    # -- third-order sweep ---------------------------------------------- #

    def sweep3(
        self, cls: int, off_a: int, off_b: int, combined: BitMatrix | None = None
    ) -> np.ndarray:
        """Third-order corner sweep of the ``(off_a, off_b)`` pair over the
        tail ``[off_b, M)`` (the tail always starts at the second block —
        what makes the sweep cacheable by pair alone)."""
        metrics = self._search.metrics
        dev = str(self.device_id)
        metrics.inc("epi4_operand_requests_total", kind="sweep", device=dev)
        if self._cache is None:
            metrics.inc(
                "epi4_operand_executed_total", kind="sweep", device=dev
            )
            if combined is None:
                combined = self._combine_cold(cls, off_a, off_b)
            return self._gemm3(combined, cls, off_b)
        # The factory deliberately ignores the in-hand ``combined``
        # operand and resolves the pair through the cache instead: its
        # work must be a function of the *key* alone.  Were it to depend
        # on whether the caller happened to pass ``combined``, the
        # executed combine volume (and the cache hit/miss totals) would
        # depend on which concurrent request wins the single-flight miss
        # — breaking the order-invariance the golden metrics comparison
        # (sequential vs threaded) relies on.
        value, hit, evicted = self._cache.get_or_compute(
            ("sweep", cls, off_a, off_b),
            lambda: self._gemm3(
                self.combine(cls, off_a, off_b), cls, off_b
            ),
        )
        self._gpu.counters.record_cache(hit, evicted)
        metrics.inc(
            "epi4_operand_cache_served_total"
            if hit
            else "epi4_operand_executed_total",
            kind="sweep",
            device=dev,
        )
        return value

    def _gemm3(self, combined: BitMatrix, cls: int, t_start: int) -> np.ndarray:
        b = self._search.scheme.block_size
        t_stop = self._search.scheme.n_snps
        chunk = self._search.config.sample_chunk_bits
        planes = self._planes[cls]
        with self._search._phase_scope("tensor3", self.device_id):
            if chunk is None or chunk >= combined.n_bits:
                return self._gpu.launch_tensor3(
                    combined, planes, t_start, t_stop, b
                )
            total: np.ndarray | None = None
            for combined_part, planes_part in zip(
                combined.split_bits(chunk), planes.split_bits(chunk)
            ):
                part = self._gpu.launch_tensor3(
                    combined_part, planes_part, t_start, t_stop, b
                )
                total = part if total is None else total + part
            assert total is not None
            return total

    # -- fourth-order GEMM ---------------------------------------------- #

    def gemm4(self, wx: BitMatrix, yz: BitMatrix, cls: int) -> np.ndarray:
        b = self._search.scheme.block_size
        chunk = self._search.config.sample_chunk_bits
        with self._search._phase_scope("tensor4", self.device_id):
            if chunk is None or chunk >= wx.n_bits:
                return self._gpu.launch_tensor4(wx, yz, b)
            total: np.ndarray | None = None
            for wx_part, yz_part in zip(
                wx.split_bits(chunk), yz.split_bits(chunk)
            ):
                part = self._gpu.launch_tensor4(wx_part, yz_part, b)
                total = part if total is None else total + part
            assert total is not None
            return total

    def gemm4_batch(
        self, wx: BitMatrix, yz_list: list[BitMatrix], cls: int
    ) -> list[np.ndarray]:
        """4-way corners for a round group sharing ``wx`` — one fused
        launch (sample-chunked configurations fall back to per-round
        GEMMs, which already split along K)."""
        if len(yz_list) == 1 or self._search.config.sample_chunk_bits is not None:
            return [self.gemm4(wx, yz, cls) for yz in yz_list]
        b = self._search.scheme.block_size
        with self._search._phase_scope("tensor4", self.device_id, span="batch"):
            return self._gpu.launch_tensor4_batch(wx, yz_list, b)

    def sweep3_pair(
        self, wo: int, xo: int, yo: int
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Both Y-level sweeps (``wy`` and ``xy``) over their shared tail,
        with the per-class tensor3 launches fused.

        Cache-off fast path for the batched pipeline: request/executed
        accounting mirrors two plain ``sweep3`` calls (4 sweep requests,
        4 executed, 4 combine launches) — only the tensor3 launch count
        halves, which is exactly what batching is allowed to change.
        """
        search = self._search
        metrics = search.metrics
        dev = str(self.device_id)
        metrics.inc("epi4_operand_requests_total", 4, kind="sweep", device=dev)
        metrics.inc("epi4_operand_executed_total", 4, kind="sweep", device=dev)
        b = search.scheme.block_size
        t_stop = search.scheme.n_snps
        out_wy: list[np.ndarray] = []
        out_xy: list[np.ndarray] = []
        for cls in (0, 1):
            wy = self._combine_cold(cls, wo, yo)
            xy = self._combine_cold(cls, xo, yo)
            with search._phase_scope("tensor3", self.device_id, span="batch"):
                swy, sxy = self._gpu.launch_tensor3_batch(
                    [wy, xy], self._planes[cls], yo, t_stop, b
                )
            out_wy.append(swy)
            out_xy.append(sxy)
        return out_wy, out_xy

    def account_score(self, n_cells: int) -> None:
        self._gpu.account_score_cells(n_cells)

    # -- completed-triplet reuse ---------------------------------------- #

    def full3(
        self,
        cls: int,
        triple: tuple[int, int, int],
        factory: Callable[[], np.ndarray],
    ) -> tuple[np.ndarray, bool]:
        """Completed third-order table for a block triple (see
        :func:`_full3_lookup`)."""
        return _full3_lookup(
            self._search,
            self._gpu.counters,
            self.device_id,
            self._cache,
            cls,
            triple,
            factory,
        )


class _SamplePartitionExecutor:
    """Kernel launches fanned across devices by sample range (§4.6's
    alternative parallelization scheme).

    Every device runs every round over its own word-aligned sample chunk;
    partial corners are summed ("combining the frequency counts for each
    genotype configuration between GPUs").  Operand handles are per-device
    lists of combined chunks.  The round-operand cache composes: combined
    chunk-lists and *merged* sweeps are cached under the same keys as the
    single-device executor (hits are accounted on device 0, which also
    hosts the merged-table scoring).
    """

    def __init__(
        self,
        search: "Epi4TensorSearch",
        gpus: list[VirtualGPU],
        cache: OperandCache | None = None,
    ) -> None:
        self._search = search
        self._gpus = gpus
        self._cache = cache
        self._plane_chunks: list[list[BitMatrix]] = []
        for cls in (0, 1):
            planes = search.encoded.class_matrix(cls)
            chunk_words = max(1, -(-planes.n_words // len(gpus)))
            self._plane_chunks.append(planes.split_bits(chunk_words * 64))

    @property
    def device_id(self) -> int:
        return self._gpus[0].device_id

    def _active(self, cls: int) -> list[tuple[VirtualGPU, BitMatrix]]:
        # Narrow sample counts can yield fewer chunks than devices; the
        # surplus devices simply idle for that class.
        chunks = self._plane_chunks[cls]
        return list(zip(self._gpus, chunks))

    def combine(self, cls: int, off_a: int, off_b: int) -> list[BitMatrix]:
        metrics = self._search.metrics
        dev = str(self.device_id)
        metrics.inc("epi4_operand_requests_total", kind="combine", device=dev)
        if self._cache is None:
            metrics.inc(
                "epi4_operand_executed_total", kind="combine", device=dev
            )
            return self._combine_cold(cls, off_a, off_b)
        value, hit, evicted = self._cache.get_or_compute(
            ("combine", cls, off_a, off_b),
            lambda: self._combine_cold(cls, off_a, off_b),
            nbytes=lambda chunks: sum(c.nbytes for c in chunks),
        )
        self._gpus[0].counters.record_cache(hit, evicted)
        metrics.inc(
            "epi4_operand_cache_served_total"
            if hit
            else "epi4_operand_executed_total",
            kind="combine",
            device=dev,
        )
        return value

    def _combine_cold(self, cls: int, off_a: int, off_b: int) -> list[BitMatrix]:
        b = self._search.scheme.block_size
        with self._search._phase_scope("combine", self.device_id):
            return [
                gpu.launch_combine(chunk, off_a, off_b, b)
                for gpu, chunk in self._active(cls)
            ]

    def sweep3(
        self,
        cls: int,
        off_a: int,
        off_b: int,
        combined: list[BitMatrix] | None = None,
    ) -> np.ndarray:
        metrics = self._search.metrics
        dev = str(self.device_id)
        metrics.inc("epi4_operand_requests_total", kind="sweep", device=dev)
        if self._cache is None:
            metrics.inc(
                "epi4_operand_executed_total", kind="sweep", device=dev
            )
            if combined is None:
                combined = self._combine_cold(cls, off_a, off_b)
            return self._gemm3(combined, cls, off_b)
        # Key-determined factory (in-hand ``combined`` ignored) — keeps
        # lookup/launch totals order-invariant; see the single-device
        # executor for the full rationale.
        value, hit, evicted = self._cache.get_or_compute(
            ("sweep", cls, off_a, off_b),
            lambda: self._gemm3(
                self.combine(cls, off_a, off_b), cls, off_b
            ),
        )
        self._gpus[0].counters.record_cache(hit, evicted)
        metrics.inc(
            "epi4_operand_cache_served_total"
            if hit
            else "epi4_operand_executed_total",
            kind="sweep",
            device=dev,
        )
        return value

    def _gemm3(
        self, combined: list[BitMatrix], cls: int, t_start: int
    ) -> np.ndarray:
        b = self._search.scheme.block_size
        t_stop = self._search.scheme.n_snps
        with self._search._phase_scope("tensor3", self.device_id):
            total: np.ndarray | None = None
            for (gpu, planes_chunk), combined_chunk in zip(
                self._active(cls), combined
            ):
                part = gpu.launch_tensor3(
                    combined_chunk, planes_chunk, t_start, t_stop, b
                )
                total = part if total is None else total + part
            assert total is not None
            return total

    def gemm4(
        self, wx: list[BitMatrix], yz: list[BitMatrix], cls: int
    ) -> np.ndarray:
        b = self._search.scheme.block_size
        with self._search._phase_scope("tensor4", self.device_id):
            total: np.ndarray | None = None
            for (gpu, _), wx_chunk, yz_chunk in zip(self._active(cls), wx, yz):
                part = gpu.launch_tensor4(wx_chunk, yz_chunk, b)
                total = part if total is None else total + part
            assert total is not None
            return total

    def gemm4_batch(
        self, wx: list[BitMatrix], yz_list: list[list[BitMatrix]], cls: int
    ) -> list[np.ndarray]:
        """4-way corners for a round group: each device fuses the group's
        GEMMs over its own sample chunk; per-round partial corners are
        summed across devices as in :meth:`gemm4`."""
        if len(yz_list) == 1:
            return [self.gemm4(wx, yz, cls) for yz in yz_list]
        b = self._search.scheme.block_size
        with self._search._phase_scope("tensor4", self.device_id, span="batch"):
            totals: list[np.ndarray | None] = [None] * len(yz_list)
            for d, (gpu, _) in enumerate(self._active(cls)):
                parts = gpu.launch_tensor4_batch(
                    wx[d], [yz[d] for yz in yz_list], b
                )
                for k, part in enumerate(parts):
                    totals[k] = part if totals[k] is None else totals[k] + part
            assert all(t is not None for t in totals)
            return totals  # type: ignore[return-value]

    def account_score(self, n_cells: int) -> None:
        # Scoring of the merged tables runs on the first device.
        self._gpus[0].account_score_cells(n_cells)

    def full3(
        self,
        cls: int,
        triple: tuple[int, int, int],
        factory: Callable[[], np.ndarray],
    ) -> tuple[np.ndarray, bool]:
        """Completed third-order table for a block triple; completion of
        the merged corners runs on the first device (like scoring)."""
        return _full3_lookup(
            self._search,
            self._gpus[0].counters,
            self.device_id,
            self._cache,
            cls,
            triple,
            factory,
        )


def search_best_quad(
    dataset: Dataset,
    *,
    block_size: int = 16,
    score: str | ScoreFunction = "k2",
    spec: GPUSpec = A100_PCIE,
    n_gpus: int = 1,
    engine_kind: str | None = None,
    prune: bool = True,
) -> SearchResult:
    """One-call convenience wrapper around :class:`Epi4TensorSearch`."""
    config = SearchConfig(
        block_size=block_size, score=score, engine_kind=engine_kind, prune=prune
    )
    return Epi4TensorSearch(dataset, config, spec=spec, n_gpus=n_gpus).run()
