"""The Epi4Tensor search driver — Algorithm 1 of the paper.

Single entry point for exhaustive fourth-order epistasis detection over the
simulated tensor-core substrate:

1. binarize (and pad) the dataset, "transfer" it to every device;
2. precompute ``indivPop``/``pairwPop`` and the lgamma lookup table;
3. run the four nested block loops.  Per ``(Wi, Xi)``: combine ``W x X`` and
   sweep the third-order corners for every tail SNP; per ``(Wi, Xi, Yi)``:
   combine/sweep ``W x Y`` and ``X x Y``; per round ``(Wi, Xi, Yi, Zi)``:
   combine ``Y x Z``, run the 4-way tensor GEMM, complete + score + reduce;
4. multi-GPU: outer (``Wi``) iterations are dynamically scheduled over the
   cluster (§3.6); each device reduces locally, the host reduces at the end.

The tensor GEMMs run for real (exact integer results); device time is
*accounted*, not emulated — see :mod:`repro.device` and
:mod:`repro.perfmodel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.bitops.bitmatrix import BitMatrix
from repro.core.apply_score import (
    DEFAULT_MAX_CHUNK_CELLS,
    RoundOperands,
    apply_score,
)
from repro.core.blocks import BlockScheme
from repro.core.pairwise import LowOrderTables, pairw_pop
from repro.core.reduction import TopKReducer, reduce_solutions
from repro.core.solution import MAX_SNP_INDEX, Solution
from repro.datasets.dataset import Dataset
from repro.datasets.encoding import EncodedDataset, encode_dataset
from repro.device.cluster import ScheduleResult, VirtualCluster
from repro.device.specs import A100_PCIE, GPUSpec
from repro.device.virtual_gpu import KernelCounters, VirtualGPU
from repro.perfmodel.workload import outer_iteration_tensor_ops
from repro.scoring import make_score
from repro.scoring.base import ScoreFunction, normalized_for_minimization
from repro.scoring.k2 import K2Score
from repro.scoring.lgamma_table import LgammaTable
from repro.utils.timing import Timer


@dataclass(frozen=True)
class SearchConfig:
    """Tunables of one search run.

    Attributes:
        block_size: ``B``, SNPs per block (paper default 32; smaller values
            are appropriate for CPU-simulated runs).
        engine_kind: ``"and_popc"``, ``"xor_popc"`` or ``None`` (pick the
            device's native kind).
        engine_mode: ``"dense"`` (BLAS path) or ``"packed"`` (bitwise path).
        score: a :class:`~repro.scoring.ScoreFunction` or registry name.
        n_streams: concurrent evaluation rounds modelled per device (affects
            projected time only; results are identical).
        sample_chunk_bits: if set, split every tensor GEMM's sample (K)
            dimension into chunks of this many bits and sum the partial
            corners — the paper's mitigation for the Turing large-``N``
            cliff.  Must be a multiple of 64.
        max_chunk_cells: peak materialized table cells in ``applyScore``.
        top_k: number of ranked solutions to report (1 = the paper's
            single-best reduction).
        selfcheck: re-derive every round's best quad through an independent
            bitwise path and abort on any disagreement (paranoia mode for
            long production runs; see :mod:`repro.core.selfcheck`).
        partition: multi-GPU work division. ``"outer"`` is the paper's
            scheme (outer-loop iterations, dynamic schedule, no inter-GPU
            communication).  ``"samples"`` is the §4.6 alternative the
            authors evaluated and rejected: every GPU processes *all*
            rounds over its own sample range and the partial contingency
            corners are summed before scoring — functionally identical,
            but each GPU's GEMMs shrink along K, which is why it loses.
    """

    block_size: int = 16
    engine_kind: str | None = None
    engine_mode: str = "dense"
    score: str | ScoreFunction = "k2"
    n_streams: int = 1
    sample_chunk_bits: int | None = None
    max_chunk_cells: int = DEFAULT_MAX_CHUNK_CELLS
    top_k: int = 1
    partition: str = "outer"
    selfcheck: bool = False

    def __post_init__(self) -> None:
        if self.block_size < 2:
            raise ValueError(f"block_size must be >= 2, got {self.block_size}")
        if self.n_streams < 1:
            raise ValueError(f"n_streams must be >= 1, got {self.n_streams}")
        if self.sample_chunk_bits is not None and (
            self.sample_chunk_bits <= 0 or self.sample_chunk_bits % 64
        ):
            raise ValueError(
                "sample_chunk_bits must be a positive multiple of 64, "
                f"got {self.sample_chunk_bits}"
            )
        if self.top_k < 1:
            raise ValueError(f"top_k must be >= 1, got {self.top_k}")
        if self.partition not in ("outer", "samples"):
            raise ValueError(
                f"partition must be 'outer' or 'samples', got {self.partition!r}"
            )


@dataclass
class SearchResult:
    """Outcome of a search: the best quad plus full execution accounting.

    Attributes:
        solution: best quad + score (lower is better after normalization).
        top_solutions: the ``config.top_k`` best quads, ranked (best first).
        block_scheme: resolved block layout (incl. useful-work ratio).
        counters: merged kernel counters over all devices.
        per_device_counters: one :class:`KernelCounters` per device.
        schedule: the multi-GPU outer-loop schedule (also set for 1 GPU).
        phase_seconds: wall time by phase (``combine``, ``tensor3``,
            ``tensor4``, ``score``, ``pairwise``, ``encode``).
        wall_seconds: end-to-end wall time of :meth:`Epi4TensorSearch.run`.
        n_samples: ``N`` used for the scaled-quads metric.
        spec_name / engine_name / n_devices: provenance.
    """

    solution: Solution
    top_solutions: list[Solution]
    block_scheme: BlockScheme
    counters: KernelCounters
    per_device_counters: list[KernelCounters]
    schedule: ScheduleResult
    phase_seconds: dict[str, float]
    wall_seconds: float
    n_samples: int
    spec_name: str
    engine_name: str
    n_devices: int

    @property
    def best_quad(self) -> tuple[int, int, int, int]:
        return self.solution.quad

    @property
    def best_score(self) -> float:
        return self.solution.score

    @property
    def quads_per_second_scaled(self) -> float:
        """Measured unique quads x samples per wall second (the paper's
        headline metric, computed on the *simulator's* wall clock)."""
        if self.wall_seconds <= 0:
            return float("inf")
        return self.block_scheme.unique_quads * self.n_samples / self.wall_seconds


class Epi4TensorSearch:
    """Exhaustive fourth-order search on a (simulated) GPU system.

    Args:
        dataset: a raw :class:`Dataset` (it will be encoded and padded) or a
            pre-encoded :class:`EncodedDataset` whose SNP count is already a
            multiple of the block size.
        config: search tunables.
        spec: GPU model to account against (default: A100 PCIe, system S2).
        n_gpus: devices in the simulated system.
    """

    def __init__(
        self,
        dataset: Dataset | EncodedDataset,
        config: SearchConfig | None = None,
        *,
        spec: GPUSpec = A100_PCIE,
        n_gpus: int = 1,
    ) -> None:
        self.config = config or SearchConfig()
        self.spec = spec
        encode_timer = Timer()
        if isinstance(dataset, Dataset):
            if dataset.n_snps < 4:
                raise ValueError(f"need at least 4 SNPs, got {dataset.n_snps}")
            with encode_timer:
                encoded = encode_dataset(dataset, block_size=self.config.block_size)
        else:
            encoded = dataset
            if encoded.n_snps % self.config.block_size:
                raise ValueError(
                    f"encoded dataset has {encoded.n_snps} SNPs, not a multiple "
                    f"of block_size={self.config.block_size}; encode with padding"
                )
        if encoded.n_snps - 1 > MAX_SNP_INDEX:
            raise ValueError(
                f"{encoded.n_snps} SNPs exceed the 16-bit index limit "
                f"({MAX_SNP_INDEX + 1})"
            )
        self.encoded = encoded
        self.scheme = BlockScheme(
            n_snps=encoded.n_snps,
            n_real_snps=encoded.n_real_snps,
            block_size=self.config.block_size,
        )
        kind = self.config.engine_kind or spec.native_engine_kind
        if kind == "and_popc" and not spec.supports_and_popc:
            raise ValueError(
                f"{spec.name} does not support AND+POPC; use engine_kind='xor_popc'"
            )
        # §3.3's design constraint, enforced up front: the configured search
        # must fit the modelled device's memory.
        from repro.device.memory import check_fits, estimate_search_memory

        self.memory_estimate = estimate_search_memory(
            encoded.n_snps,
            encoded.n_controls,
            encoded.n_cases,
            self.config.block_size,
            max_chunk_cells=self.config.max_chunk_cells,
        )
        check_fits(spec, self.memory_estimate)
        self.cluster = VirtualCluster(
            spec, n_gpus, mode=self.config.engine_mode, engine_kind=kind
        )
        score = self.config.score
        if isinstance(score, str):
            if score == "k2":
                score = K2Score(LgammaTable.for_samples(encoded.n_samples))
            else:
                score = make_score(score)
        self._score_min = normalized_for_minimization(score)
        self._score_name = score.name
        self._phase = {
            name: Timer()
            for name in ("encode", "pairwise", "combine", "tensor3", "tensor4", "score")
        }
        self._phase["encode"].elapsed = encode_timer.elapsed
        self._low: LowOrderTables | None = None
        self._progress_callback = None
        self._rounds_done = 0
        self._global_reducer = TopKReducer(self.config.top_k)

    # ------------------------------------------------------------------ #

    def run(self, progress_callback=None, checkpoint_path=None) -> SearchResult:
        """Execute the full search and return the globally best quad.

        Args:
            progress_callback: optional ``fn(completed_rounds, total_rounds,
                best_so_far)`` invoked after every evaluation round —
                multi-hour searches can report status or feed a UI.
            checkpoint_path: optional path; resume state is loaded from it
                (if present and matching this configuration) and re-saved
                after every completed outer iteration.  A resumed run skips
                finished iterations; its counters/timers cover only the
                work actually re-executed.
        """
        from repro.core.checkpoint import SearchCheckpoint, search_fingerprint

        self._progress_callback = progress_callback
        self._rounds_done = 0
        checkpoint: SearchCheckpoint | None = None
        if checkpoint_path is not None:
            checkpoint = SearchCheckpoint.load(
                checkpoint_path,
                search_fingerprint(
                    self.scheme.n_snps,
                    self.scheme.n_real_snps,
                    self.encoded.n_controls,
                    self.encoded.n_cases,
                    self.config.block_size,
                    self.cluster.gpus[0].engine.name,
                    self._score_name,
                    self.config.top_k,
                    self.config.partition,
                    self.cluster.n_gpus,
                ),
            )

        total_timer = Timer()
        with total_timer:
            schedule = self._make_schedule()
            self._prepare_devices()
            reducer = TopKReducer(self.config.top_k)
            self._global_reducer = reducer
            done: set[int] = set()
            if checkpoint is not None:
                checkpoint.seed_reducer(reducer)
                done = set(checkpoint.completed)

            def run_iteration(executor, wi: int) -> None:
                reducer.merge(self._run_rounds(executor, [wi]))
                if checkpoint is not None:
                    checkpoint.record(wi, reducer)
                    checkpoint.save(checkpoint_path)

            if self.config.partition == "samples" and self.cluster.n_gpus > 1:
                # §4.6 alternative scheme: every device runs every round
                # over its own sample range; one pass, merged corners.
                executor = _SamplePartitionExecutor(self, self.cluster.gpus)
                for wi in range(self.scheme.nb):
                    if wi not in done:
                        run_iteration(executor, wi)
            else:
                for gpu, outer_iters in zip(
                    self.cluster.gpus, schedule.assignment
                ):
                    executor = _SingleDeviceExecutor(self, gpu)
                    for wi in outer_iters:
                        if wi not in done:
                            run_iteration(executor, wi)
            top = reducer.result()
            solution = top[0] if top else reduce_solutions([])

        merged = KernelCounters()
        for gpu in self.cluster.gpus:
            merged.merge(gpu.counters)
        return SearchResult(
            solution=solution,
            top_solutions=top,
            block_scheme=self.scheme,
            counters=merged,
            per_device_counters=[gpu.counters for gpu in self.cluster.gpus],
            schedule=schedule,
            phase_seconds={name: t.elapsed for name, t in self._phase.items()},
            wall_seconds=total_timer.elapsed,
            n_samples=self.encoded.n_samples,
            spec_name=self.spec.name,
            engine_name=self.cluster.gpus[0].engine.name,
            n_devices=self.cluster.n_gpus,
        )

    # ------------------------------------------------------------------ #
    # Phases

    def _make_schedule(self) -> ScheduleResult:
        costs = [
            float(
                outer_iteration_tensor_ops(
                    wi, self.scheme.nb, self.scheme.block_size, self.encoded.n_samples
                )
            )
            for wi in range(self.scheme.nb)
        ]
        return self.cluster.schedule(costs)

    def _prepare_devices(self) -> None:
        """Dataset transfer + low-order precomputation (indivPop/pairwPop).

        As in §3.6, every device receives the full dataset and a full copy
        of the lgamma table and low-order tables; the precomputation itself
        is done once (its cost is accounted on every device).
        """
        with self._phase["pairwise"]:
            self._low = pairw_pop(self.encoded)
        m, n = self.encoded.n_snps, self.encoded.n_samples
        for gpu in self.cluster.gpus:
            gpu.transfer_to_device(self.encoded.nbytes)
            gpu.launch_pairwise(2 * (2 * m) * (2 * m) * n)

    def _run_device(self, gpu: VirtualGPU, outer_iters: Iterable[int]) -> TopKReducer:
        """Run all assigned outer (``Wi``) iterations on one device.

        Returns the device-local reduction (§3.6: "Locally best scores are
        reduced inside each GPU").
        """
        executor = _SingleDeviceExecutor(self, gpu)
        return self._run_rounds(executor, outer_iters)

    def _run_rounds(
        self, executor: "_KernelExecutor", outer_iters: Iterable[int]
    ) -> TopKReducer:
        """The Algorithm 1 loop nest over one executor's kernel primitives."""
        assert self._low is not None, "_prepare_devices must run first"
        b = self.scheme.block_size
        nb = self.scheme.nb
        m = self.scheme.n_snps
        reducer = TopKReducer(self.config.top_k)

        for wi in outer_iters:
            wo = wi * b
            for xi in range(wi, nb):
                xo = xi * b
                wx = [executor.combine(c, wo, xo) for c in (0, 1)]
                sweep_wx = [executor.gemm3(wx[c], c, xo, m) for c in (0, 1)]
                for yi in range(xi, nb):
                    yo = yi * b
                    wy = [executor.combine(c, wo, yo) for c in (0, 1)]
                    xy = [executor.combine(c, xo, yo) for c in (0, 1)]
                    sweep_wy = [
                        executor.gemm3(wy[c], c, yo, m) for c in (0, 1)
                    ]
                    sweep_xy = [
                        executor.gemm3(xy[c], c, yo, m) for c in (0, 1)
                    ]
                    for zi in range(yi, nb):
                        zo = zi * b
                        yz = [executor.combine(c, yo, zo) for c in (0, 1)]
                        corner4 = [
                            executor.gemm4(wx[c], yz[c], c) for c in (0, 1)
                        ]
                        operands = RoundOperands(
                            corner4=(corner4[0], corner4[1]),
                            corner3_wxy=tuple(
                                s[:, :, yo - xo : yo - xo + b] for s in sweep_wx
                            ),
                            corner3_wxz=tuple(
                                s[:, :, zo - xo : zo - xo + b] for s in sweep_wx
                            ),
                            corner3_wyz=tuple(
                                s[:, :, zo - yo : zo - yo + b] for s in sweep_wy
                            ),
                            corner3_xyz=tuple(
                                s[:, :, zo - yo : zo - yo + b] for s in sweep_xy
                            ),
                            offsets=(wo, xo, yo, zo),
                            block_size=b,
                        )
                        with self._phase["score"]:
                            scores = apply_score(
                                operands,
                                self._low.pairs,
                                self._score_min,
                                self.scheme.n_real_snps,
                                max_chunk_cells=self.config.max_chunk_cells,
                            )
                            executor.account_score(b**4 * 81 * 2)
                            reducer.add_round(scores, operands.offsets)
                        if self.config.selfcheck:
                            from repro.core.selfcheck import verify_round_best

                            verify_round_best(
                                self.encoded,
                                scores,
                                operands.offsets,
                                self._score_min,
                            )
                        if self._progress_callback is not None:
                            self._rounds_done += 1
                            best_so_far = min(
                                reducer.best, self._global_reducer.best
                            )
                            self._progress_callback(
                                self._rounds_done,
                                self.scheme.n_rounds,
                                best_so_far,
                            )
        return reducer


class _SingleDeviceExecutor:
    """Kernel launches on one device (the paper's outer-partition scheme).

    Operand handles are plain :class:`BitMatrix` objects; when
    ``sample_chunk_bits`` is configured, every tensor GEMM is split along
    the sample (K) dimension and the partial corners summed (§4.5's Turing
    large-N mitigation).
    """

    def __init__(self, search: "Epi4TensorSearch", gpu: VirtualGPU) -> None:
        self._search = search
        self._gpu = gpu
        self._planes = [search.encoded.class_matrix(cls) for cls in (0, 1)]

    def combine(self, cls: int, off_a: int, off_b: int) -> BitMatrix:
        with self._search._phase["combine"]:
            return self._gpu.launch_combine(
                self._planes[cls], off_a, off_b, self._search.scheme.block_size
            )

    def gemm3(
        self, combined: BitMatrix, cls: int, t_start: int, t_stop: int
    ) -> np.ndarray:
        b = self._search.scheme.block_size
        chunk = self._search.config.sample_chunk_bits
        planes = self._planes[cls]
        with self._search._phase["tensor3"]:
            if chunk is None or chunk >= combined.n_bits:
                return self._gpu.launch_tensor3(
                    combined, planes, t_start, t_stop, b
                )
            total: np.ndarray | None = None
            for combined_part, planes_part in zip(
                combined.split_bits(chunk), planes.split_bits(chunk)
            ):
                part = self._gpu.launch_tensor3(
                    combined_part, planes_part, t_start, t_stop, b
                )
                total = part if total is None else total + part
            assert total is not None
            return total

    def gemm4(self, wx: BitMatrix, yz: BitMatrix, cls: int) -> np.ndarray:
        b = self._search.scheme.block_size
        chunk = self._search.config.sample_chunk_bits
        with self._search._phase["tensor4"]:
            if chunk is None or chunk >= wx.n_bits:
                return self._gpu.launch_tensor4(wx, yz, b)
            total: np.ndarray | None = None
            for wx_part, yz_part in zip(
                wx.split_bits(chunk), yz.split_bits(chunk)
            ):
                part = self._gpu.launch_tensor4(wx_part, yz_part, b)
                total = part if total is None else total + part
            assert total is not None
            return total

    def account_score(self, n_cells: int) -> None:
        self._gpu.account_score_cells(n_cells)


class _SamplePartitionExecutor:
    """Kernel launches fanned across devices by sample range (§4.6's
    alternative parallelization scheme).

    Every device runs every round over its own word-aligned sample chunk;
    partial corners are summed ("combining the frequency counts for each
    genotype configuration between GPUs").  Operand handles are per-device
    lists of combined chunks.
    """

    def __init__(
        self, search: "Epi4TensorSearch", gpus: list[VirtualGPU]
    ) -> None:
        self._search = search
        self._gpus = gpus
        self._plane_chunks: list[list[BitMatrix]] = []
        for cls in (0, 1):
            planes = search.encoded.class_matrix(cls)
            chunk_words = max(1, -(-planes.n_words // len(gpus)))
            self._plane_chunks.append(planes.split_bits(chunk_words * 64))

    def _active(self, cls: int) -> list[tuple[VirtualGPU, BitMatrix]]:
        # Narrow sample counts can yield fewer chunks than devices; the
        # surplus devices simply idle for that class.
        chunks = self._plane_chunks[cls]
        return list(zip(self._gpus, chunks))

    def combine(self, cls: int, off_a: int, off_b: int) -> list[BitMatrix]:
        b = self._search.scheme.block_size
        with self._search._phase["combine"]:
            return [
                gpu.launch_combine(chunk, off_a, off_b, b)
                for gpu, chunk in self._active(cls)
            ]

    def gemm3(
        self, combined: list[BitMatrix], cls: int, t_start: int, t_stop: int
    ) -> np.ndarray:
        b = self._search.scheme.block_size
        with self._search._phase["tensor3"]:
            total: np.ndarray | None = None
            for (gpu, planes_chunk), combined_chunk in zip(
                self._active(cls), combined
            ):
                part = gpu.launch_tensor3(
                    combined_chunk, planes_chunk, t_start, t_stop, b
                )
                total = part if total is None else total + part
            assert total is not None
            return total

    def gemm4(
        self, wx: list[BitMatrix], yz: list[BitMatrix], cls: int
    ) -> np.ndarray:
        b = self._search.scheme.block_size
        with self._search._phase["tensor4"]:
            total: np.ndarray | None = None
            for (gpu, _), wx_chunk, yz_chunk in zip(self._active(cls), wx, yz):
                part = gpu.launch_tensor4(wx_chunk, yz_chunk, b)
                total = part if total is None else total + part
            assert total is not None
            return total

    def account_score(self, n_cells: int) -> None:
        # Scoring of the merged tables runs on the first device.
        self._gpus[0].account_score_cells(n_cells)


def search_best_quad(
    dataset: Dataset,
    *,
    block_size: int = 16,
    score: str | ScoreFunction = "k2",
    spec: GPUSpec = A100_PCIE,
    n_gpus: int = 1,
    engine_kind: str | None = None,
) -> SearchResult:
    """One-call convenience wrapper around :class:`Epi4TensorSearch`."""
    config = SearchConfig(block_size=block_size, score=score, engine_kind=engine_kind)
    return Epi4TensorSearch(dataset, config, spec=spec, n_gpus=n_gpus).run()
