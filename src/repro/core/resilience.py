"""Retry/backoff, device quarantine and failure observability.

The recovery half of the resilience story (the fault *injection* half is
:mod:`repro.device.faults`).  The search treats one outer (``Wi``)
iteration as its unit of recovery — the same unit §3.6 uses for
multi-GPU work division and :mod:`repro.core.checkpoint` uses for
resume.  A ``Wi`` iteration is idempotent (it reads immutable operands
and produces a candidate list) and the global reducer is merge-only, so
re-executing a failed iteration — on the same device or any other —
cannot change the final result: fault-tolerant runs stay **bit-identical**
to fault-free ones.

State machine per device::

    healthy --fault--> retrying --(success)--> healthy
                 |         |
                 |         +--(retries exhausted)--> iteration requeued
                 |                                   to surviving devices
                 +--(quarantine_after consecutive
                     exhausted iterations)---------> quarantined (worker
                                                     exits; device takes
                                                     no further work)

A search aborts (:class:`SearchAbortedError`) only when an iteration has
been requeued past every device still alive — i.e. no healthy device can
make progress.

This module is deliberately search-agnostic: :class:`RetryPolicy`,
:class:`FaultLog` and :class:`ResilientWorkQueue` know nothing about
epistasis; :mod:`repro.core.search` wires them to the device loop.
"""

from __future__ import annotations

import random
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry


class SearchAbortedError(RuntimeError):
    """No healthy device can make further progress on the search."""


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    Attributes:
        max_retries: additional attempts after the first failure of an
            iteration *on the same device* (0 = fail fast to requeue).
        backoff_base_ms: wait before the first retry; doubles per retry.
        backoff_cap_ms: upper bound on any single wait.
        jitter: fractional jitter; each wait is scaled by a factor drawn
            uniformly from ``[1 - jitter, 1 + jitter]`` (seeded PRNG, so
            runs are reproducible).
        quarantine_after: consecutive *exhausted* iterations (failed all
            retries) before the device is quarantined.
    """

    max_retries: int = 2
    backoff_base_ms: float = 10.0
    backoff_cap_ms: float = 5000.0
    jitter: float = 0.1
    quarantine_after: int = 2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_ms < 0:
            raise ValueError(
                f"backoff_base_ms must be >= 0, got {self.backoff_base_ms}"
            )
        if self.backoff_cap_ms < self.backoff_base_ms:
            raise ValueError(
                f"backoff_cap_ms ({self.backoff_cap_ms}) must be >= "
                f"backoff_base_ms ({self.backoff_base_ms})"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.quarantine_after < 1:
            raise ValueError(
                f"quarantine_after must be >= 1, got {self.quarantine_after}"
            )

    @property
    def max_attempts(self) -> int:
        """Total attempts per iteration per device (first try + retries)."""
        return self.max_retries + 1

    def backoff_seconds(self, attempt: int, rng: random.Random) -> float:
        """Wait before retry ``attempt`` (0-based): capped exponential
        ``base * 2^attempt``, jittered by ``rng``."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        base = min(self.backoff_base_ms * (2.0 ** attempt), self.backoff_cap_ms)
        if self.jitter:
            base *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return base / 1000.0


@dataclass
class FaultIncident:
    """One observed failure/recovery event (for the per-run audit trail).

    Attributes:
        device_id: device involved.
        wi: outer iteration (``None`` for pre-loop faults, e.g. transfer).
        op: failing kernel (``"round"`` for degraded re-executions).
        kind: fault kind as reported by the exception / detector.
        action: what the resilience layer did — ``"retry"``,
            ``"requeue"``, ``"quarantine"``, ``"degraded"``,
            ``"watchdog"`` (a launch cancelled by deadline),
            ``"degrade"`` / ``"expand"`` (memory-pressure ladder moves),
            ``"canary"`` / ``"readmit"`` (quarantine probation) or
            ``"abort"``.
        wait_seconds: backoff wait preceding a retry (0 otherwise).
    """

    device_id: int
    wi: int | None
    op: str
    kind: str
    action: str
    wait_seconds: float = 0.0


@dataclass
class DeviceFaultLog:
    """Per-device resilience counters.

    Attributes:
        device_id: which device.
        attempts: iteration attempts started.
        failures: attempts that raised a device fault.
        retries: failed attempts retried on this device.
        requeues: iterations surrendered to other devices after
            exhausting local retries.
        backoff_waits: number of backoff sleeps.
        backoff_seconds: total time spent in backoff.
        degraded_rounds: rounds re-executed through the independent
            bitwise path after corruption / self-check failure.
        quarantined: whether the device is *currently* quarantined
            (probation readmission clears it).
        consecutive_exhausted: current run of exhausted iterations
            (internal quarantine trigger state).
        failures_by_kind: failure count per fault kind (``transient``,
            ``hang``, ...) — the watchdog conservation law compares the
            ``hang`` entry against trip counts.
        watchdog_trips: launches on this device cancelled by deadline.
        pressure_degrades: memory-pressure ladder steps this device's
            ``DeviceMemoryError`` triggered.
        pressure_expands: ladder releases credited to this device's
            clean rounds.
        canaries: probation canary iterations run on this device.
        readmits: times the device was readmitted from quarantine.
    """

    device_id: int
    attempts: int = 0
    failures: int = 0
    retries: int = 0
    requeues: int = 0
    backoff_waits: int = 0
    backoff_seconds: float = 0.0
    degraded_rounds: int = 0
    quarantined: bool = False
    consecutive_exhausted: int = 0
    failures_by_kind: dict = field(default_factory=dict)
    watchdog_trips: int = 0
    pressure_degrades: int = 0
    pressure_expands: int = 0
    canaries: int = 0
    readmits: int = 0


@dataclass
class FaultLog:
    """Thread-safe, per-device failure observability for one search run.

    Surfaces in :class:`~repro.core.search.SearchResult.fault_log` and in
    the CLI/text report.  ``injected faults == observed handling`` checks
    compare :class:`~repro.device.faults.InjectionStats` against
    :attr:`total_failures` + :attr:`total_degraded_rounds` (every injected
    launch fault surfaces as exactly one failed iteration attempt; every
    injected corruption as exactly one degraded round).
    """

    devices: list[DeviceFaultLog]
    incidents: list[FaultIncident] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    @classmethod
    def for_devices(cls, n_devices: int) -> "FaultLog":
        return cls(devices=[DeviceFaultLog(i) for i in range(n_devices)])

    # ------------------------------------------------------------------ #
    # Recording

    def record_attempt(self, device_id: int) -> None:
        with self._lock:
            self.devices[device_id].attempts += 1

    def record_failure(
        self, device_id: int, wi: int | None, op: str, kind: str
    ) -> None:
        with self._lock:
            dev = self.devices[device_id]
            dev.failures += 1
            dev.failures_by_kind[kind] = dev.failures_by_kind.get(kind, 0) + 1

    def record_retry(
        self, device_id: int, wi: int | None, op: str, kind: str, wait: float
    ) -> None:
        with self._lock:
            dev = self.devices[device_id]
            dev.retries += 1
            dev.backoff_waits += 1
            dev.backoff_seconds += wait
            self.incidents.append(
                FaultIncident(device_id, wi, op, kind, "retry", wait)
            )

    def record_success(self, device_id: int) -> None:
        with self._lock:
            self.devices[device_id].consecutive_exhausted = 0

    def record_requeue(
        self, device_id: int, wi: int, op: str, kind: str
    ) -> int:
        """Record an exhausted iteration; returns the device's updated
        consecutive-exhausted count (the quarantine trigger)."""
        with self._lock:
            dev = self.devices[device_id]
            dev.requeues += 1
            dev.consecutive_exhausted += 1
            self.incidents.append(
                FaultIncident(device_id, wi, op, kind, "requeue")
            )
            return dev.consecutive_exhausted

    def record_quarantine(self, device_id: int, wi: int | None = None) -> None:
        with self._lock:
            self.devices[device_id].quarantined = True
            self.incidents.append(
                FaultIncident(device_id, wi, "device", "persistent", "quarantine")
            )

    def record_degraded_round(
        self, device_id: int, wi: int | None, reason: str
    ) -> None:
        with self._lock:
            self.devices[device_id].degraded_rounds += 1
            self.incidents.append(
                FaultIncident(device_id, wi, "round", reason, "degraded")
            )

    def record_watchdog_trip(self, device_id: int, op: str) -> None:
        """A launch overran its deadline and was cancelled.

        Called from the watchdog monitor thread; the iteration context is
        unknown there (``wi=None``), the matching ``hang`` failure
        carries it.
        """
        with self._lock:
            self.devices[device_id].watchdog_trips += 1
            self.incidents.append(
                FaultIncident(device_id, None, op, "hang", "watchdog")
            )

    def record_pressure(
        self, device_id: int, wi: int | None, level: int, step: str, action: str
    ) -> None:
        """One memory-pressure ladder move (``action`` is ``"degrade"``
        or ``"expand"``; ``step`` names the knob, e.g.
        ``"halve-batch-rounds"``)."""
        with self._lock:
            dev = self.devices[device_id]
            if action == "degrade":
                dev.pressure_degrades += 1
            else:
                dev.pressure_expands += 1
            self.incidents.append(
                FaultIncident(device_id, wi, step, f"level-{level}", action)
            )

    def record_canary(self, device_id: int, wi: int | None, ok: bool) -> None:
        """One probation canary iteration (``ok`` = it committed)."""
        with self._lock:
            self.devices[device_id].canaries += 1
            self.incidents.append(
                FaultIncident(
                    device_id, wi, "canary", "ok" if ok else "fail", "canary"
                )
            )

    def record_readmit(self, device_id: int) -> None:
        """A canary succeeded: the device leaves quarantine."""
        with self._lock:
            dev = self.devices[device_id]
            dev.readmits += 1
            dev.quarantined = False
            dev.consecutive_exhausted = 0
            self.incidents.append(
                FaultIncident(device_id, None, "device", "probation", "readmit")
            )

    # ------------------------------------------------------------------ #
    # Aggregates

    @property
    def total_failures(self) -> int:
        with self._lock:
            return sum(d.failures for d in self.devices)

    @property
    def total_retries(self) -> int:
        with self._lock:
            return sum(d.retries for d in self.devices)

    @property
    def total_requeues(self) -> int:
        with self._lock:
            return sum(d.requeues for d in self.devices)

    @property
    def total_degraded_rounds(self) -> int:
        with self._lock:
            return sum(d.degraded_rounds for d in self.devices)

    @property
    def total_watchdog_trips(self) -> int:
        with self._lock:
            return sum(d.watchdog_trips for d in self.devices)

    @property
    def total_pressure_degrades(self) -> int:
        with self._lock:
            return sum(d.pressure_degrades for d in self.devices)

    @property
    def total_pressure_expands(self) -> int:
        with self._lock:
            return sum(d.pressure_expands for d in self.devices)

    @property
    def total_canaries(self) -> int:
        with self._lock:
            return sum(d.canaries for d in self.devices)

    @property
    def total_readmits(self) -> int:
        with self._lock:
            return sum(d.readmits for d in self.devices)

    def failures_by_kind(self) -> dict:
        """Failure counts summed over devices, keyed by fault kind."""
        with self._lock:
            totals: dict = {}
            for d in self.devices:
                for kind, n in d.failures_by_kind.items():
                    totals[kind] = totals.get(kind, 0) + n
            return totals

    def incident_count(self, action: str) -> int:
        """Number of recorded incidents with the given action."""
        with self._lock:
            return sum(1 for i in self.incidents if i.action == action)

    @property
    def total_backoff_seconds(self) -> float:
        with self._lock:
            return sum(d.backoff_seconds for d in self.devices)

    @property
    def quarantined_devices(self) -> list[int]:
        with self._lock:
            return [d.device_id for d in self.devices if d.quarantined]

    @property
    def any_activity(self) -> bool:
        """True iff anything fault-related happened during the run."""
        with self._lock:
            return any(
                d.failures
                or d.degraded_rounds
                or d.quarantined
                or d.watchdog_trips
                or d.pressure_degrades
                or d.canaries
                or d.readmits
                for d in self.devices
            )

    def export_metrics(self, registry: MetricsRegistry) -> None:
        """Mirror resilience accounting into a
        :class:`~repro.obs.metrics.MetricsRegistry`: per-device
        attempt/failure/retry/requeue/degraded counters (labeled
        ``device``), incident totals by action, and backoff time."""
        with self._lock:
            for d in self.devices:
                dev = str(d.device_id)
                registry.inc("epi4_resilience_attempts_total", d.attempts, device=dev)
                registry.inc("epi4_resilience_failures_total", d.failures, device=dev)
                registry.inc("epi4_resilience_retries_total", d.retries, device=dev)
                registry.inc("epi4_resilience_requeues_total", d.requeues, device=dev)
                registry.inc(
                    "epi4_resilience_degraded_rounds_total",
                    d.degraded_rounds,
                    device=dev,
                )
                registry.inc(
                    "epi4_resilience_backoff_seconds_total",
                    d.backoff_seconds,
                    device=dev,
                )
                registry.inc(
                    "epi4_watchdog_trips_total", d.watchdog_trips, device=dev
                )
                registry.inc(
                    "epi4_pressure_degrade_total",
                    d.pressure_degrades,
                    device=dev,
                )
                registry.inc(
                    "epi4_pressure_expand_total",
                    d.pressure_expands,
                    device=dev,
                )
                registry.inc(
                    "epi4_probation_canaries_total", d.canaries, device=dev
                )
                registry.inc(
                    "epi4_probation_readmits_total", d.readmits, device=dev
                )
            actions: dict[str, int] = {}
            for incident in self.incidents:
                actions[incident.action] = actions.get(incident.action, 0) + 1
        for action, count in sorted(actions.items()):
            registry.inc(
                "epi4_resilience_incidents_total", count, action=action
            )

    def summary_lines(self) -> list[str]:
        """Human-readable per-device summary (report / CLI)."""
        with self._lock:
            lines = []
            for d in self.devices:
                state = "QUARANTINED" if d.quarantined else "healthy"
                if d.readmits and not d.quarantined:
                    state = f"healthy (readmitted x{d.readmits})"
                line = (
                    f"device {d.device_id}: {state}; "
                    f"{d.attempts} attempts, {d.failures} failures, "
                    f"{d.retries} retries ({d.backoff_seconds * 1e3:.1f} ms "
                    f"backoff), {d.requeues} requeues, "
                    f"{d.degraded_rounds} degraded rounds"
                )
                extras = []
                if d.watchdog_trips:
                    extras.append(f"{d.watchdog_trips} watchdog trips")
                if d.pressure_degrades:
                    extras.append(
                        f"{d.pressure_degrades} pressure degrades"
                    )
                if d.canaries:
                    extras.append(f"{d.canaries} canaries")
                if extras:
                    line += ", " + ", ".join(extras)
                lines.append(line)
            return lines


@dataclass(frozen=True)
class ProbationPolicy:
    """When and how a quarantined device may earn its way back.

    Cooldowns are measured in *committed outer iterations*, not
    wall-clock time, so probation schedules are deterministic and
    test-controllable: after ``cooldown_rounds`` commits land cluster-
    wide, the device runs one **canary** iteration.  Success readmits
    it; failure re-quarantines with the cooldown scaled by
    ``backoff_factor`` (exponential), up to ``max_canaries`` total
    canary attempts per device — after that the device is retired for
    the rest of the run (a persistent storm, not a transient one).

    Attributes:
        cooldown_rounds: commits to wait before the first canary.
        backoff_factor: cooldown multiplier after each failed canary.
        max_canaries: canary attempts per device before giving up.
    """

    cooldown_rounds: int
    backoff_factor: float = 2.0
    max_canaries: int = 5

    def __post_init__(self) -> None:
        if self.cooldown_rounds < 1:
            raise ValueError(
                f"cooldown_rounds must be >= 1, got {self.cooldown_rounds}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1.0, got {self.backoff_factor}"
            )
        if self.max_canaries < 1:
            raise ValueError(
                f"max_canaries must be >= 1, got {self.max_canaries}"
            )


@dataclass
class _ProbationState:
    cooldown: float
    quarantined_at: int
    canaries: int = 0


class ProbationManager:
    """Per-device probation bookkeeping (thread-safe, search-agnostic).

    The search calls :meth:`on_quarantine` when it quarantines a device,
    parks the device's worker until the cluster-wide commit count
    reaches :meth:`due_at`, then runs a canary and reports the outcome
    via :meth:`on_canary_success` / :meth:`on_canary_failure`.
    """

    def __init__(self, policy: ProbationPolicy) -> None:
        self.policy = policy
        self._lock = threading.Lock()
        self._states: dict[int, _ProbationState] = {}

    def on_quarantine(self, device_id: int, committed: int) -> None:
        """Start (or restart) probation for a freshly quarantined device."""
        with self._lock:
            state = self._states.get(device_id)
            if state is None:
                self._states[device_id] = _ProbationState(
                    cooldown=float(self.policy.cooldown_rounds),
                    quarantined_at=committed,
                )
            else:
                state.quarantined_at = committed

    def due_at(self, device_id: int) -> int:
        """Commit count at which this device's next canary is due."""
        with self._lock:
            state = self._states[device_id]
            return state.quarantined_at + max(1, int(state.cooldown))

    def may_probe(self, device_id: int) -> bool:
        """Whether the device still has canary attempts left."""
        with self._lock:
            state = self._states.get(device_id)
            if state is None:
                return True
            return state.canaries < self.policy.max_canaries

    def on_canary_failure(self, device_id: int, committed: int) -> bool:
        """Record a failed canary; returns ``True`` while another canary
        attempt remains (cooldown is backed off exponentially)."""
        with self._lock:
            state = self._states[device_id]
            state.canaries += 1
            state.cooldown *= self.policy.backoff_factor
            state.quarantined_at = committed
            return state.canaries < self.policy.max_canaries

    def on_canary_success(self, device_id: int) -> None:
        """The device is readmitted; probation state resets so a future
        quarantine starts from the base cooldown again."""
        with self._lock:
            self._states.pop(device_id, None)


class ResilientWorkQueue:
    """A shared outer-iteration queue that survives worker attrition.

    Extends the PR-1 dynamic work queue with the two operations fault
    tolerance needs:

    - :meth:`requeue` — put a failed iteration back for *other* devices
      (the surrendering device is excluded from that iteration so the
      queue never hands it straight back);
    - worker registration — a worker that quarantines (or simply runs
      out of eligible work) unregisters, and the queue detects the
      moment remaining work has been excluded by every surviving device
      and raises :class:`SearchAbortedError` instead of deadlocking.

    :meth:`get` blocks while another worker still has an iteration in
    flight (it might be requeued), which is what guarantees no work is
    lost when a device fails mid-iteration.
    """

    def __init__(self, iterations: Iterable[int]) -> None:
        self._pending: deque[int] = deque(iterations)
        self._excluded: dict[int, set[int]] = {}
        self._workers: set[int] = set()
        self._in_flight = 0
        self._completed = 0
        self._cond = threading.Condition()

    @property
    def committed(self) -> int:
        """Iterations committed via :meth:`done` so far."""
        with self._cond:
            return self._completed

    @property
    def unfinished(self) -> bool:
        """Work remains pending or in flight (used by the parallel path's
        completeness guard after the worker pool drains)."""
        with self._cond:
            return bool(self._pending or self._in_flight)

    def register(self, device_id: int) -> None:
        with self._cond:
            self._workers.add(device_id)

    def unregister(self, device_id: int) -> None:
        with self._cond:
            self._workers.discard(device_id)
            self._cond.notify_all()

    def excluded_devices(self, wi: int) -> set[int]:
        with self._cond:
            return set(self._excluded.get(wi, ()))

    # ------------------------------------------------------------------ #

    def get(self, device_id: int) -> int | None:
        """Next iteration this device may run, or ``None`` when the
        search is complete (or this device can contribute nothing more).

        Raises:
            SearchAbortedError: work remains that no registered device is
                allowed to run.
        """
        with self._cond:
            while True:
                for _ in range(len(self._pending)):
                    wi = self._pending.popleft()
                    if device_id not in self._excluded.get(wi, ()):
                        self._in_flight += 1
                        return wi
                    self._pending.append(wi)  # keep issue order for others
                if not self._pending and self._in_flight == 0:
                    return None
                if self._pending and self._none_eligible_locked():
                    raise SearchAbortedError(
                        f"iterations {sorted(self._pending)} failed on every "
                        "available device (all surviving devices exhausted "
                        "their retries); search cannot complete"
                    )
                if self._pending and all(
                    device_id in self._excluded.get(wi, ())
                    for wi in self._pending
                ) and self._in_flight == 0:
                    # Everything left is excluded for *this* device but
                    # other registered workers can still take it.
                    return None
                self._cond.wait()

    def _none_eligible_locked(self) -> bool:
        return all(
            self._workers <= self._excluded.get(wi, set())
            for wi in self._pending
        )

    def done(self, wi: int) -> None:
        """The iteration committed; release its in-flight slot."""
        with self._cond:
            self._in_flight -= 1
            self._completed += 1
            self._cond.notify_all()

    def wait_probation(self, target_commits: int) -> str:
        """Park a quarantined device's worker until its canary is due.

        The caller must have :meth:`unregister`-ed first (a parked
        worker takes no part in the abort calculus).  Returns:

        - ``"due"`` — ``target_commits`` iterations have committed; run
          the canary.
        - ``"emergency"`` — work remains but *no* registered worker is
          left to advance the commit count (the whole fleet is
          quarantined); the canary should run immediately, cooldown
          notwithstanding, or the search can never finish.
        - ``"drained"`` — the search completed without this device; no
          canary is needed.
        """
        with self._cond:
            while True:
                if not self._pending and self._in_flight == 0:
                    return "drained"
                if self._completed >= target_commits:
                    return "due"
                if not self._workers and self._in_flight == 0:
                    return "emergency"
                self._cond.wait()

    def requeue(self, wi: int, exclude_device: int) -> None:
        """Return a failed iteration to the queue for other devices."""
        with self._cond:
            self._excluded.setdefault(wi, set()).add(exclude_device)
            self._pending.append(wi)
            self._in_flight -= 1
            self._cond.notify_all()
