"""Adaptive calibration of the ``applyScore`` hot path.

The fused scorer has two machine-dependent knobs:

- ``max_chunk_cells`` — how many 81-cell tables the compacted completion
  materializes per chunk.  Too small and the per-chunk Python/NumPy
  dispatch overhead dominates; too large and the working set falls out of
  cache.  The sweet spot depends on the host's cache hierarchy, ``B`` and
  ``N``.
- ``block_bytes`` — the packed-GEMM tiling budget
  (:mod:`repro.tensor.gemm_packed`), only meaningful in ``packed`` mode.

Rather than hard-coding either, :func:`autotune_applyscore` runs a short
calibration pass on the *actual* dataset: it builds one representative
round through the independent bitwise path
(:func:`~repro.core.selfcheck.direct_round_operands` — no tensor engine,
no cache, no counters perturbed), times :func:`~repro.core.apply_score.
score_round` across a candidate ladder, and (in packed mode) times a
representative popcount-GEMM across tiling budgets.  The chosen values are
exported through the observability layer as ``epi4_applyscore_autotune_*``
gauges.

Autotuning is **result-neutral by construction**: every candidate chunk
size yields bit-identical scores (asserted by the property suite), so the
timing noise of the calibration pass can only affect speed, never answers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.apply_score import ScoreMinFn
    from repro.datasets.encoding import EncodedDataset
    from repro.obs.metrics import MetricsRegistry
    from repro.scoring.k2 import StagedK2Kernel
    from repro.tensor.engine import BinaryTensorEngine

import numpy as np

from repro.bitops.combine import combine_blocks
from repro.core.apply_score import DEFAULT_MAX_CHUNK_CELLS, score_round
from repro.core.selfcheck import direct_round_operands
from repro.tensor.engine import make_engine
from repro.tensor.gemm_packed import (
    DEFAULT_BLOCK_BYTES,
    gemm_and_popcount,
)

#: Candidate ``max_chunk_cells`` ladder (cells = 81-cell tables x 81).
CHUNK_CELL_CANDIDATES: tuple[int, ...] = (
    81 * 1024,
    81 * 4096,
    81 * 16384,
    81 * 65536,
    DEFAULT_MAX_CHUNK_CELLS,
)

#: Candidate packed-GEMM tiling budgets, in bytes.
GEMM_BLOCK_CANDIDATES: tuple[int, ...] = (
    1 << 20,
    1 << 22,
    1 << 24,
    DEFAULT_BLOCK_BYTES,
)

#: Candidate round batch sizes for the batched-GEMM pipeline.
BATCH_ROUND_CANDIDATES: tuple[int, ...] = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class AutotuneDecision:
    """Outcome of one calibration pass.

    Attributes:
        max_chunk_cells: chosen ``applyScore`` chunking bound.
        block_bytes: chosen packed-GEMM tiling budget (``None`` when the
            engine runs the dense path and the knob is inert).
        chunk_timings: measured best-of-``repeats`` seconds per candidate.
        gemm_timings: same for the tiling candidates (empty in dense mode).
        batch_rounds: chosen round batch size for the batched-GEMM
            pipeline (``None`` when batching was not requested and the
            axis was skipped).
        batch_timings: measured seconds per batch-size candidate.
        calibration_seconds: total wall time spent calibrating.
    """

    max_chunk_cells: int
    block_bytes: int | None
    chunk_timings: dict[int, float] = field(default_factory=dict)
    gemm_timings: dict[int, float] = field(default_factory=dict)
    batch_rounds: int | None = None
    batch_timings: dict[int, float] = field(default_factory=dict)
    calibration_seconds: float = 0.0

    def export_metrics(self, registry: MetricsRegistry) -> None:
        """Publish the decision as ``epi4_applyscore_autotune_*`` gauges."""
        registry.set_gauge(
            "epi4_applyscore_autotune_chunk_cells", self.max_chunk_cells
        )
        registry.set_gauge(
            "epi4_applyscore_autotune_block_bytes",
            -1.0 if self.block_bytes is None else self.block_bytes,
        )
        registry.set_gauge(
            "epi4_applyscore_autotune_calibration_seconds",
            self.calibration_seconds,
        )
        for cells, seconds in self.chunk_timings.items():
            registry.set_gauge(
                "epi4_applyscore_autotune_candidate_seconds",
                seconds,
                knob="chunk_cells",
                candidate=str(cells),
            )
        for nbytes, seconds in self.gemm_timings.items():
            registry.set_gauge(
                "epi4_applyscore_autotune_candidate_seconds",
                seconds,
                knob="block_bytes",
                candidate=str(nbytes),
            )
        registry.set_gauge(
            "epi4_applyscore_autotune_batch_rounds",
            -1.0 if self.batch_rounds is None else self.batch_rounds,
        )
        for batch, seconds in self.batch_timings.items():
            registry.set_gauge(
                "epi4_applyscore_autotune_candidate_seconds",
                seconds,
                knob="batch_rounds",
                candidate=str(batch),
            )


def _calibration_offsets(nb: int, block_size: int) -> tuple[int, int, int, int]:
    """A representative (preferably off-diagonal) round for calibration."""
    blocks = [min(i, nb - 1) for i in range(4)]
    return tuple(bi * block_size for bi in blocks)  # type: ignore[return-value]


def _best_of(fn: Callable[[], None], repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _calibrate_batch_rounds(
    encoded: "EncodedDataset",
    block_size: int,
    engine: "BinaryTensorEngine",
    repeats: int,
    candidates: tuple[int, ...],
) -> tuple[int, dict[int, float]]:
    """Time a representative round group at each batch-size candidate.

    A *fresh* probe engine of the live engine's kind/mode times the work:
    the live engine's ``last_shapes`` feed the device accounting and must
    not see calibration launches.
    """
    probe = make_engine(
        engine.name, mode=engine.mode, block_bytes=engine.block_bytes
    )
    planes = encoded.class_matrix(0)
    nb = encoded.n_snps // block_size
    wx = combine_blocks(planes, 0, 0, block_size)
    group = max(c for c in candidates if c >= 1)
    yz_ops = [
        combine_blocks(planes, 0, (i % nb) * block_size, block_size)
        for i in range(group)
    ]
    timings: dict[int, float] = {}
    for batch in sorted({c for c in candidates if c >= 1}):

        def run(k: int = batch) -> None:
            for start in range(0, len(yz_ops), k):
                probe.matmul_popcount_batch(
                    [(wx, yz) for yz in yz_ops[start : start + k]]
                )
            probe.reset_shapes()

        timings[batch] = _best_of(run, repeats)
    # Tie-break toward the larger batch: equal time, fewer launches.
    best = min(timings, key=lambda k: (timings[k], -k))
    return best, timings


def autotune_applyscore(
    encoded: "EncodedDataset",
    pairs: np.ndarray,
    score_min_fn: "ScoreMinFn",
    *,
    block_size: int,
    n_real_snps: int,
    staged_kernel: "StagedK2Kernel | None" = None,
    engine: "BinaryTensorEngine | None" = None,
    repeats: int = 2,
    chunk_candidates: tuple[int, ...] = CHUNK_CELL_CANDIDATES,
    gemm_candidates: tuple[int, ...] = GEMM_BLOCK_CANDIDATES,
    calibrate_batch: bool = False,
    batch_candidates: tuple[int, ...] = BATCH_ROUND_CANDIDATES,
) -> AutotuneDecision:
    """Calibrate ``max_chunk_cells`` (and ``block_bytes`` in packed mode).

    Args:
        encoded: the :class:`~repro.datasets.encoding.EncodedDataset` the
            search will run on (calibration uses its true shapes).
        pairs: ``(2, M, M, 3, 3)`` full pairwise tables.
        score_min_fn: the search's minimization-normalized score callable.
        block_size: ``B``.
        n_real_snps: unpadded SNP count.
        staged_kernel: the fused scorer the search will use (``None`` for
            the generic callable path) — calibration must time what runs.
        engine: a :class:`~repro.tensor.engine.BinaryTensorEngine`; the
            tiling knob is only calibrated when ``engine.mode == "packed"``.
        repeats: timing repetitions per candidate (best-of).
        chunk_candidates / gemm_candidates: override the ladders (tests).
        calibrate_batch: also calibrate the batched-GEMM round group size
            (requires ``engine``; requested by the search only when its
            ``batch_rounds`` config enables batching).
        batch_candidates: batch-size ladder for that axis.

    Returns:
        An :class:`AutotuneDecision` (apply it yourself: the function has
        no side effects beyond timing work).
    """
    t_start = time.perf_counter()
    nb = encoded.n_snps // block_size
    offsets = _calibration_offsets(nb, block_size)
    operands = direct_round_operands(encoded, offsets, block_size)

    chunk_timings: dict[int, float] = {}
    seen_effective: set[int] = set()
    for cells in sorted(set(chunk_candidates)):
        # Candidates large enough to cover the whole round in one chunk
        # are indistinguishable; time the first such ladder rung only.
        effective = max(1, cells // 81)
        if effective in seen_effective:
            continue
        seen_effective.add(effective)
        chunk_timings[cells] = _best_of(
            lambda c=cells: score_round(
                operands,
                pairs,
                score_min_fn,
                n_real_snps,
                max_chunk_cells=c,
                staged_kernel=staged_kernel,
            ),
            repeats,
        )
    best_cells = min(chunk_timings, key=lambda c: (chunk_timings[c], c))

    gemm_timings: dict[int, float] = {}
    block_bytes: int | None = None
    if engine is not None and getattr(engine, "mode", "dense") == "packed":
        planes = encoded.class_matrix(0)
        rows = min(4 * block_size * block_size, planes.n_rows)
        a = planes.select_rows(0, rows)
        for nbytes in sorted(set(gemm_candidates)):
            gemm_timings[nbytes] = _best_of(
                lambda nb_=nbytes: gemm_and_popcount(
                    a, planes, block_bytes=nb_
                ),
                repeats,
            )
        block_bytes = min(gemm_timings, key=lambda n: (gemm_timings[n], n))

    batch_rounds: int | None = None
    batch_timings: dict[int, float] = {}
    if calibrate_batch and engine is not None:
        batch_rounds, batch_timings = _calibrate_batch_rounds(
            encoded, block_size, engine, repeats, batch_candidates
        )

    return AutotuneDecision(
        max_chunk_cells=best_cells,
        block_bytes=block_bytes,
        chunk_timings=chunk_timings,
        gemm_timings=gemm_timings,
        batch_rounds=batch_rounds,
        batch_timings=batch_timings,
        calibration_seconds=time.perf_counter() - t_start,
    )
