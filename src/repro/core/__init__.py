"""The Epi4Tensor core: the paper's Algorithm 1 and its supporting pieces.

Public entry points:

- :class:`Epi4TensorSearch` / :func:`search_best_quad` — the exhaustive
  fourth-order search driver.
- :class:`SearchConfig` — block size, engine selection, streams, chunking.
- :class:`SearchResult` — best solution plus kernel/phase statistics.
"""

from repro.core.blocks import (
    BlockScheme,
    iter_rounds,
    num_blocks,
    total_quads_processed,
    unique_combinations,
    useful_ratio,
)
from repro.core.resilience import (
    FaultLog,
    ResilientWorkQueue,
    RetryPolicy,
    SearchAbortedError,
)
from repro.core.solution import MAX_SNP_INDEX, Solution, pack_quad, unpack_quad

_SEARCH_EXPORTS = (
    "Epi4TensorSearch",
    "SearchConfig",
    "SearchResult",
    "search_best_quad",
)


def __getattr__(name: str):
    # The search driver imports the device and perfmodel layers, which in
    # turn use repro.core.blocks/threeway/fourway; loading it lazily keeps
    # `import repro.core.blocks` (and friends) cycle-free.
    if name in _SEARCH_EXPORTS:
        from repro.core import search

        return getattr(search, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BlockScheme",
    "Epi4TensorSearch",
    "FaultLog",
    "MAX_SNP_INDEX",
    "ResilientWorkQueue",
    "RetryPolicy",
    "SearchAbortedError",
    "SearchConfig",
    "SearchResult",
    "Solution",
    "iter_rounds",
    "num_blocks",
    "pack_quad",
    "search_best_quad",
    "total_quads_processed",
    "unique_combinations",
    "unpack_quad",
    "useful_ratio",
]
