"""Round-operand cache: memory-bounded reuse of combine/sweep results.

The Algorithm 1 loop nest re-derives the same intermediate operands many
times: the ``combine`` output for a block pair ``(A, B)`` is needed as
``wx`` for one outer pair, as ``wy``/``xy`` for every enclosing triple and
as ``yz`` for every enclosing round, and the third-order sweep launched
from a combined pair is identical wherever that pair re-appears (its tail
always starts at the second block's offset).  On the real system this
redundancy is deliberate — recomputing on-device is cheaper than spilling
— but it is *bounded* redundancy, which makes it an ideal target for an
explicitly byte-accounted cache sized against the device memory model
(:func:`repro.device.memory.estimate_search_memory` carries the budget as
a first-class component).

:class:`OperandCache` is a thread-safe LRU keyed on
``(kind, cls, off_a, off_b)``:

- ``("combine", cls, a, b)`` — the :class:`~repro.bitops.BitMatrix` from
  :func:`~repro.bitops.combine.combine_blocks`;
- ``("sweep", cls, a, b)`` — the ``tensorOp_3way`` corner sweep of that
  combined operand over the tail ``[b, M)``.

Capacity is accounted in *bytes* of stored payload (``nbytes``), not entry
counts, so the cache composes with the §3.3 memory-fit check.  Lookups are
**single-flight**: when several device threads miss on the same key
concurrently, exactly one computes while the others wait — kernel-counter
accounting therefore stays exact (one launch per unique operand) even
under the thread-parallel multi-device executor.

Hit/miss/eviction totals are surfaced through
:class:`~repro.device.virtual_gpu.KernelCounters`; a cache hit skips the
corresponding kernel-launch accounting entirely so the performance model
never double-counts work that was not executed.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Hashable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["CacheStats", "OperandCache", "UNBOUNDED"]

#: Sentinel capacity meaning "no byte bound" (the working set is still
#: finite — see :func:`repro.device.memory.cache_working_set_bytes`).
UNBOUNDED = float("inf")


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time cache statistics snapshot.

    Attributes:
        hits: lookups served from the cache (including waits on another
            thread's in-flight computation).
        misses: lookups that had to compute.
        evictions: entries removed to respect the byte budget (including
            values too large to ever be admitted).
        current_bytes: bytes resident right now.
        peak_bytes: high-water mark of resident bytes.
        capacity_bytes: configured budget (``inf`` when unbounded).
    """

    hits: int
    misses: int
    evictions: int
    current_bytes: int
    peak_bytes: int
    capacity_bytes: float

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def export_metrics(self, registry: MetricsRegistry) -> None:
        """Mirror this snapshot into a
        :class:`~repro.obs.metrics.MetricsRegistry`.

        Emits the ``hits + misses == lookups`` triple the property suite
        checks, plus eviction/occupancy series.
        """
        registry.inc("epi4_cache_lookups_total", self.hits, result="hit")
        registry.inc("epi4_cache_lookups_total", self.misses, result="miss")
        registry.inc("epi4_cache_evictions_total", self.evictions)
        registry.set_gauge("epi4_cache_resident_bytes", self.current_bytes)
        registry.set_gauge("epi4_cache_peak_bytes", self.peak_bytes)
        registry.set_gauge(
            "epi4_cache_capacity_bytes",
            -1.0 if self.capacity_bytes == UNBOUNDED else self.capacity_bytes,
        )


class _Pending:
    """In-flight computation marker (single-flight)."""

    __slots__ = ("event",)

    def __init__(self) -> None:
        self.event = threading.Event()


class OperandCache:
    """Byte-accounted, thread-safe LRU cache for round operands.

    Args:
        capacity_bytes: byte budget for resident payloads.  ``0`` would
            mean "nothing fits" — construct no cache at all in that case
            (see :meth:`create`).  ``float("inf")`` disables eviction.

    Values are treated as immutable once inserted; NumPy arrays are marked
    read-only on admission so accidental in-place mutation of a shared
    operand fails loudly instead of corrupting other rounds.
    """

    def __init__(self, capacity_bytes: float) -> None:
        if capacity_bytes <= 0:
            raise ValueError(
                f"capacity_bytes must be > 0 (got {capacity_bytes}); "
                "use OperandCache.create() to express 'disabled'"
            )
        self.capacity_bytes = capacity_bytes
        self._lock = threading.Lock()
        # key -> (value, nbytes) in LRU order (least recent first).
        self._entries: "OrderedDict[Hashable, tuple[Any, int]]" = OrderedDict()
        self._pending: dict[Hashable, _Pending] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._current_bytes = 0
        self._peak_bytes = 0

    # ------------------------------------------------------------------ #

    @classmethod
    def create(cls, cache_mb: float | None) -> "OperandCache | None":
        """Build a cache from a megabyte budget; ``None``/``0`` disables.

        Args:
            cache_mb: budget in MB (``float("inf")`` = unbounded).

        Returns:
            An :class:`OperandCache`, or ``None`` when caching is off.
        """
        if cache_mb is None or cache_mb <= 0:
            return None
        if cache_mb == UNBOUNDED:
            return cls(UNBOUNDED)
        return cls(cache_mb * 1e6)

    # ------------------------------------------------------------------ #

    def get_or_compute(
        self,
        key: Hashable,
        factory: Callable[[], Any],
        nbytes: Callable[[Any], int] | None = None,
    ) -> tuple[Any, bool, int]:
        """Return the cached value for ``key``, computing it on first use.

        Single-flight: concurrent callers missing on the same key block
        until the one executing ``factory`` finishes, then observe a hit.

        Args:
            key: hashable cache key.
            factory: zero-argument callable producing the value.  It runs
                *outside* the cache lock.
            nbytes: payload size extractor; defaults to ``value.nbytes``.

        Returns:
            ``(value, hit, evicted)`` — ``hit`` is ``True`` when no
            computation happened on this call; ``evicted`` is the number
            of entries displaced by admitting this value (0 on hits).
        """
        while True:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    return entry[0], True, 0
                pending = self._pending.get(key)
                if pending is None:
                    pending = _Pending()
                    self._pending[key] = pending
                    break
            # Another thread is computing this key: wait outside the lock,
            # then re-check (the value may be admitted or rejected).
            pending.event.wait()

        try:
            value = factory()
        except BaseException:
            with self._lock:
                del self._pending[key]
            pending.event.set()
            raise

        size = int(nbytes(value) if nbytes is not None else value.nbytes)
        evicted = 0
        with self._lock:
            self._misses += 1
            del self._pending[key]
            if size <= self.capacity_bytes:
                self._entries[key] = (value, size)
                self._current_bytes += size
                while self._current_bytes > self.capacity_bytes:
                    _, (_, old_size) = self._entries.popitem(last=False)
                    self._current_bytes -= old_size
                    self._evictions += 1
                    evicted += 1
                self._peak_bytes = max(self._peak_bytes, self._current_bytes)
            else:
                # Value can never fit: count the rejection as an eviction
                # so the budget pressure is visible in the counters.
                self._evictions += 1
                evicted += 1
        pending.event.set()
        _freeze(value)
        return value, False, evicted

    def get(self, key: Hashable) -> Any | None:
        """Non-computing lookup (promotes on hit, counts hit/miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return entry[0]

    def resize(self, capacity_bytes: float) -> int:
        """Change the byte budget in place, evicting LRU entries to fit.

        The memory-pressure governor uses this to shrink the cache under
        ``DeviceMemoryError`` and restore it once pressure clears.
        Returns the number of entries evicted to honour the new budget.

        Raises:
            ValueError: if ``capacity_bytes`` is not positive (use
                :data:`UNBOUNDED` for no budget, never 0).
        """
        if capacity_bytes <= 0:
            raise ValueError(
                f"capacity_bytes must be > 0 (got {capacity_bytes})"
            )
        evicted = 0
        with self._lock:
            self.capacity_bytes = capacity_bytes
            while self._current_bytes > self.capacity_bytes:
                _, (_, old_size) = self._entries.popitem(last=False)
                self._current_bytes -= old_size
                self._evictions += 1
                evicted += 1
        return evicted

    def invalidate(self, key: Hashable) -> bool:
        """Drop ``key`` if resident (e.g. after a degraded round purges the
        completed-triplet entries it can no longer trust).

        Counted as an eviction so purge pressure stays visible in the
        stats.  In-flight computations for ``key`` are unaffected: the
        single-flight slot is not cached state, and its eventual admission
        happens *after* this call by definition of the race.

        Returns:
            ``True`` when an entry was removed.
        """
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._current_bytes -= entry[1]
            self._evictions += 1
            return True

    def clear(self) -> None:
        """Drop every resident entry (stats are preserved)."""
        with self._lock:
            evicted = len(self._entries)
            self._entries.clear()
            self._current_bytes = 0
            self._evictions += evicted

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                current_bytes=self._current_bytes,
                peak_bytes=self._peak_bytes,
                capacity_bytes=self.capacity_bytes,
            )

    def __repr__(self) -> str:
        s = self.stats
        cap = "inf" if s.capacity_bytes == UNBOUNDED else f"{s.capacity_bytes / 1e6:.1f}MB"
        return (
            f"OperandCache(cap={cap}, resident={s.current_bytes / 1e6:.1f}MB, "
            f"hits={s.hits}, misses={s.misses}, evictions={s.evictions})"
        )


def _freeze(value: Any) -> None:
    """Best-effort write-protection of cached payloads."""
    import numpy as np

    if isinstance(value, np.ndarray):
        try:
            value.setflags(write=False)
        except ValueError:  # pragma: no cover - non-owning views
            pass
    elif isinstance(value, (list, tuple)):
        for item in value:
            _freeze(item)
    else:
        data = getattr(value, "data", None)
        if isinstance(data, np.ndarray):
            try:
                data.setflags(write=False)
            except ValueError:  # pragma: no cover
                pass
