"""Block combination scheme (paper §3.2) and its combinatorics.

SNPs are processed in contiguous blocks of ``B``.  An *evaluation round*
combines four blocks ``(Wi <= Xi <= Yi <= Zi)`` (block indices) and evaluates
all ``B^4`` positional quads of those blocks, so the whole search runs

    C(nb + 3, 4)        rounds (multisets of 4 out of nb blocks), covering
    C(nb + 3, 4) * B^4  positional quads,

of which only the ``C(M, 4)`` strictly-increasing index quads are *useful*.
The ratio of useful work is the quantity the paper reports in §4.5
(50.5/69.6/83.0/90.9% for B=32 at M=256/512/1024/2048) and is what makes
larger datasets and smaller blocks proportionally more efficient.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import Iterator


def num_blocks(n_snps: int, block_size: int) -> int:
    """Number of blocks ``nb = M / B`` (``M`` must be a block multiple)."""
    if block_size <= 0:
        raise ValueError(f"block_size must be > 0, got {block_size}")
    if n_snps <= 0 or n_snps % block_size:
        raise ValueError(
            f"n_snps={n_snps} must be a positive multiple of block_size={block_size} "
            "(pad the dataset first)"
        )
    return n_snps // block_size


def iter_rounds(nb: int) -> Iterator[tuple[int, int, int, int]]:
    """Yield every evaluation round ``(Wi, Xi, Yi, Zi)``, ``Wi<=Xi<=Yi<=Zi``.

    Iteration order matches Algorithm 1's nested loops (lexicographic), which
    also makes the within-search reduction deterministic.
    """
    for wi in range(nb):
        for xi in range(wi, nb):
            for yi in range(xi, nb):
                for zi in range(yi, nb):
                    yield (wi, xi, yi, zi)


def rounds_for_outer(wi: int, nb: int) -> int:
    """Number of rounds executed by outer iteration ``Wi = wi``.

    This is the unit of multi-GPU work division (§3.6); it decreases with
    ``wi``, which is why the dynamic schedule matters.
    """
    if not 0 <= wi < nb:
        raise ValueError(f"wi must be in [0, {nb}), got {wi}")
    return comb(nb - wi + 2, 3)


def count_rounds(nb: int) -> int:
    """Total number of evaluation rounds: ``C(nb + 3, 4)``."""
    if nb <= 0:
        raise ValueError(f"nb must be > 0, got {nb}")
    return comb(nb + 3, 4)


def total_quads_processed(n_snps: int, block_size: int) -> int:
    """Positional quads evaluated by the full search (incl. repeats)."""
    nb = num_blocks(n_snps, block_size)
    return count_rounds(nb) * block_size**4


def unique_combinations(n_snps: int, order: int = 4) -> int:
    """``C(M, order)`` — the number of distinct SNP sets to evaluate."""
    if n_snps < order:
        raise ValueError(f"need at least {order} SNPs, got {n_snps}")
    return comb(n_snps, order)


def useful_ratio(n_snps: int, block_size: int, n_real_snps: int | None = None) -> float:
    """Fraction of processed quads that are unique combinations.

    Args:
        n_snps: padded SNP count (block multiple).
        block_size: ``B``.
        n_real_snps: unpadded SNP count, if the dataset was padded; defaults
            to ``n_snps``.
    """
    real = n_snps if n_real_snps is None else n_real_snps
    return unique_combinations(real) / total_quads_processed(n_snps, block_size)


@dataclass(frozen=True)
class BlockScheme:
    """Resolved block layout for one search."""

    n_snps: int
    n_real_snps: int
    block_size: int

    def __post_init__(self) -> None:
        num_blocks(self.n_snps, self.block_size)  # validates
        if not 0 < self.n_real_snps <= self.n_snps:
            raise ValueError(
                f"n_real_snps={self.n_real_snps} out of range (0, {self.n_snps}]"
            )

    @property
    def nb(self) -> int:
        return num_blocks(self.n_snps, self.block_size)

    @property
    def n_rounds(self) -> int:
        return count_rounds(self.nb)

    @property
    def quads_processed(self) -> int:
        return total_quads_processed(self.n_snps, self.block_size)

    @property
    def unique_quads(self) -> int:
        return unique_combinations(self.n_real_snps)

    @property
    def useful_fraction(self) -> float:
        return useful_ratio(self.n_snps, self.block_size, self.n_real_snps)

    def rounds(self) -> Iterator[tuple[int, int, int, int]]:
        return iter_rounds(self.nb)

    def block_start(self, block_index: int) -> int:
        """First SNP index of a block."""
        if not 0 <= block_index < self.nb:
            raise IndexError(f"block index {block_index} out of range [0, {self.nb})")
        return block_index * self.block_size
