"""Candidate-solution encoding (paper §3.5).

The indexes of a quad of SNPs are packed into a single 64-bit integer —
16 bits per index, most-significant field first — so a candidate travels
through the reduction as one word.  The 16-bit fields cap the addressable
SNP count at 65536 (the paper: up to 768.54 peta combinations).

Packing is monotone: comparing packed values compares quads
lexicographically, so "minimum packed index" is a deterministic tie-break.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Sequence

#: Largest SNP index a packed solution can carry.
MAX_SNP_INDEX = 65535

#: Combinations addressable at fourth order with 16-bit indices
#: (the paper's "768.54 peta").
MAX_ADDRESSABLE_COMBINATIONS = comb(MAX_SNP_INDEX + 1, 4)


def pack_quad(w: int, x: int, y: int, z: int) -> int:
    """Pack four SNP indices into one 64-bit integer."""
    for name, v in (("w", w), ("x", x), ("y", y), ("z", z)):
        if not 0 <= v <= MAX_SNP_INDEX:
            raise ValueError(
                f"index {name}={v} outside the 16-bit field [0, {MAX_SNP_INDEX}]"
            )
    return (w << 48) | (x << 32) | (y << 16) | z


def unpack_quad(packed: int) -> tuple[int, int, int, int]:
    """Inverse of :func:`pack_quad`."""
    packed = int(packed)
    if not 0 <= packed < (1 << 64):
        raise ValueError(f"packed value {packed} is not a 64-bit integer")
    return (
        (packed >> 48) & 0xFFFF,
        (packed >> 32) & 0xFFFF,
        (packed >> 16) & 0xFFFF,
        packed & 0xFFFF,
    )


def pack_quads_array(
    w: np.ndarray, x: np.ndarray, y: np.ndarray, z: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`pack_quad` over index arrays (broadcasting)."""
    w64, x64, y64, z64 = (
        np.asarray(a, dtype=np.uint64) for a in np.broadcast_arrays(w, x, y, z)
    )
    return (
        (w64 << np.uint64(48))
        | (x64 << np.uint64(32))
        | (y64 << np.uint64(16))
        | z64
    )


@dataclass(frozen=True, order=True)
class Solution:
    """A scored quad of SNPs.

    Ordering is by ``(score, packed quad)``, so ``min()`` over solutions
    implements the paper's reduction (best score, lexicographic tie-break).
    """

    score: float
    packed: int

    @classmethod
    def from_quad(cls, quad: tuple[int, int, int, int], score: float) -> "Solution":
        return cls(score=float(score), packed=pack_quad(*quad))

    @classmethod
    def worst(cls) -> "Solution":
        """The identity element of the reduction (+inf score)."""
        return cls(score=float("inf"), packed=(1 << 64) - 1)

    @property
    def quad(self) -> tuple[int, int, int, int]:
        return unpack_quad(self.packed)

    def to_pair(self) -> list:
        """``[score, packed]`` — the canonical JSON wire form shared by
        the checkpoint, the journal and the shard artifacts.

        ``json.dumps`` serializes the float via ``repr`` (shortest
        round-trip), so the pair survives a JSON round-trip bit-exactly —
        the property every resume/merge bit-identity guarantee rests on.
        """
        return [self.score, self.packed]

    @classmethod
    def from_pair(cls, pair: "Sequence[float | int]") -> "Solution":
        """Inverse of :meth:`to_pair` (accepts any 2-sequence)."""
        score, packed = pair
        return cls(score=float(score), packed=int(packed))

    def __repr__(self) -> str:
        return f"Solution(quad={self.quad}, score={self.score:.6f})"
