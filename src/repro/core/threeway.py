"""``tensorOp_3way``: tensor-accelerated third-order corner construction.

One call multiplies a pre-combined two-block operand (``4*B^2`` rows) with
the raw bit-planes of a *tail* of SNPs ``[t_start, t_stop)`` (``2*T`` rows),
yielding the ``{0,1}^3`` corners — 8 of the 27 genotype counts — for all
``B^2 * T`` triplets in one GEMM (``8 x B^2 x (M - t_start)`` integers, as
sized in §3.2).

The three-phase structure of Algorithm 1 (one sweep per loop level: ``wx``
at the X loop, ``wy``/``xy`` at the Y loop) is what keeps the third-order
working set bounded; this module provides the single-sweep primitive, and
:mod:`repro.core.search` schedules the phases.
"""

from __future__ import annotations

import numpy as np

from repro.bitops.bitmatrix import BitMatrix
from repro.contingency.complete import complete_triple
from repro.tensor.engine import BinaryTensorEngine


def tensorop_3way(
    engine: BinaryTensorEngine,
    combined: BitMatrix,
    class_planes: BitMatrix,
    t_start: int,
    t_stop: int,
    block_size: int,
) -> np.ndarray:
    """Third-order corners for (block-pair) x (SNP tail).

    Args:
        engine: binary tensor engine.
        combined: output of :func:`~repro.bitops.combine_blocks` for the two
            leading blocks (``4*B^2`` rows).
        class_planes: the per-class encoded matrix (``2*M`` rows).
        t_start: first tail SNP index (inclusive).
        t_stop: last tail SNP index (exclusive).
        block_size: ``B``.

    Returns:
        ``(B, B, T, 2, 2, 2)`` int32 corners, indexed by (first-block SNP,
        second-block SNP, tail SNP, g_first, g_second, g_tail).
    """
    b = block_size
    if combined.n_rows != 4 * b * b:
        raise ValueError(
            f"combined operand has {combined.n_rows} rows, expected 4*B^2 = {4 * b * b}"
        )
    if not 0 <= t_start < t_stop <= class_planes.n_rows // 2:
        raise ValueError(
            f"tail range [{t_start}, {t_stop}) invalid for "
            f"{class_planes.n_rows // 2} SNPs"
        )
    tail = class_planes.select_rows(2 * t_start, 2 * t_stop)
    raw = engine.matmul_popcount(combined, tail)  # (4B^2, 2T)
    return _reshape_corner3(raw, b, t_stop - t_start)


def tensorop_3way_batch(
    engine: BinaryTensorEngine,
    combined_list: list[BitMatrix],
    class_planes: BitMatrix,
    t_start: int,
    t_stop: int,
    block_size: int,
) -> list[np.ndarray]:
    """Several sweeps against the same tail in one fused launch.

    The Y-loop issues two sweeps per step (``wy`` and ``xy``) over an
    identical SNP tail; stacking their combined operands halves the launch
    count while producing bit-identical per-sweep corners.
    """
    b = block_size
    for i, combined in enumerate(combined_list):
        if combined.n_rows != 4 * b * b:
            raise ValueError(
                f"combined operand [{i}] has {combined.n_rows} rows, "
                f"expected 4*B^2 = {4 * b * b}"
            )
    if not 0 <= t_start < t_stop <= class_planes.n_rows // 2:
        raise ValueError(
            f"tail range [{t_start}, {t_stop}) invalid for "
            f"{class_planes.n_rows // 2} SNPs"
        )
    tail = class_planes.select_rows(2 * t_start, 2 * t_stop)
    raws = engine.matmul_popcount_batch(
        [(combined, tail) for combined in combined_list]
    )
    t = t_stop - t_start
    return [_reshape_corner3(raw, b, t) for raw in raws]


def _reshape_corner3(raw: np.ndarray, b: int, t: int) -> np.ndarray:
    corner = raw.reshape(b, 2, b, 2, t, 2).transpose(0, 2, 4, 1, 3, 5)
    return np.ascontiguousarray(corner, dtype=np.int32)


def complete_threeway(
    corner: np.ndarray,
    pairs_cls: np.ndarray,
    a_indices: np.ndarray,
    b_indices: np.ndarray,
    c_indices: np.ndarray,
) -> np.ndarray:
    """Complete third-order corners to full 27-cell tables (§3.3).

    Args:
        corner: ``(A, B, C, 2, 2, 2)`` corners for SNP triplets
            ``(a_indices[i], b_indices[j], c_indices[k])``.
        pairs_cls: ``(M, M, 3, 3)`` full pairwise tables of one class.
        a_indices: global SNP indices along the first axis.
        b_indices: global SNP indices along the second axis.
        c_indices: global SNP indices along the third axis.

    Returns:
        ``(A, B, C, 3, 3, 3)`` int64 completed tables.
    """
    a_idx = np.asarray(a_indices, dtype=np.intp)
    b_idx = np.asarray(b_indices, dtype=np.intp)
    c_idx = np.asarray(c_indices, dtype=np.intp)
    pair_ab = pairs_cls[np.ix_(a_idx, b_idx)][:, :, None]  # (A, B, 1, 3, 3)
    pair_ac = pairs_cls[np.ix_(a_idx, c_idx)][:, None, :]  # (A, 1, C, 3, 3)
    pair_bc = pairs_cls[np.ix_(b_idx, c_idx)][None, :, :]  # (1, B, C, 3, 3)
    return complete_triple(corner, pair_ab, pair_ac, pair_bc)
