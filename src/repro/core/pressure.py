"""Memory-pressure governor: deterministic degradation under OOM.

At the exhaustive scales the paper targets, device allocation failure is
an operational certainty — other tenants, fragmentation, or a workload
tuned right up to the §3.3 memory model's edge.  Aborting a multi-hour
search over a recoverable allocation failure wastes everything computed
so far, so the governor trades *throughput* for *footprint* instead:
every :class:`~repro.device.memory.DeviceMemoryError` (injected via the
``oom`` fault kind or raised for real) steps a deterministic degradation
ladder and the failed iteration is retried at the reduced footprint.

The ladder (cumulative, in order)::

    level 1  shrink the round-operand cache budget to half
    level 2  halve batch_rounds (less stager double-buffering)
    level 3  halve max_chunk_cells (smaller applyScore tiles)
    level 4  disable the cross-round triplet cache

Every knob on the ladder is *result-neutral* — cache capacity, launch
fusion width, score-chunk size and triplet reuse all change how work is
scheduled, never what is computed — so a degraded search stays
bit-identical to the fault-free reference (the equivalence suites pin
each knob individually).  Once the ladder is exhausted (level 4) a
further ``DeviceMemoryError`` propagates: there is nothing left to give
back, and aborting honestly beats thrashing.

Pressure is not permanent: after ``relax_after`` consecutive clean
rounds the governor re-expands one level (restoring the cache budget
when leaving level 1), so a transient squeeze does not tax the rest of
the run.

Observability: the search exports the current level as the
``epi4_pressure_level`` gauge and each ladder transition as
``epi4_pressure_degrade_total`` / ``epi4_pressure_expand_total``
counters, and records a FaultLog incident per step — the property suite
checks ``degrade_total == degrade incidents`` conservation.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.operand_cache import OperandCache
    from repro.obs.metrics import MetricsRegistry

#: Human-readable name of each ladder step; ``LADDER[i]`` is the action
#: taken when escalating from level ``i`` to ``i + 1``.
LADDER = (
    "shrink-operand-cache",
    "halve-batch-rounds",
    "halve-chunk-cells",
    "disable-triplet-cache",
)

#: Floor for the degraded applyScore chunk: one 81-cell table.
MIN_CHUNK_CELLS = 81


class PressureGovernor:
    """Shared, thread-safe degradation ladder for one search run.

    Args:
        relax_after: consecutive clean rounds before one level of
            pressure is released (must be >= 1).
        cache: the search's round-operand cache, resized when the ladder
            crosses level 1 (optional — tests exercise the ladder bare).

    The governor only *decides* footprints; the search consults
    :meth:`effective_batch_rounds` / :meth:`effective_chunk_cells` /
    :meth:`triplets_enabled` at each use site, so a level change takes
    effect from the next round onward without invalidating work in
    flight.
    """

    def __init__(
        self,
        relax_after: int = 64,
        cache: "OperandCache | None" = None,
    ) -> None:
        if relax_after < 1:
            raise ValueError(f"relax_after must be >= 1, got {relax_after}")
        self.relax_after = int(relax_after)
        self._lock = threading.Lock()
        self._level = 0
        self._clean_rounds = 0
        self.degrade_total = 0
        self.expand_total = 0
        self._max_level = 0
        self._cache = cache
        self._cache_base: float | None = (
            cache.capacity_bytes if cache is not None else None
        )

    # ------------------------------------------------------------------ #

    def attach_cache(self, cache: "OperandCache | None") -> None:
        """Adopt the run's operand cache (created after the governor);
        re-applies the current level's budget to the new cache."""
        with self._lock:
            self._cache = cache
            self._cache_base = (
                cache.capacity_bytes if cache is not None else None
            )
            self._apply_cache_budget_locked()

    @property
    def level(self) -> int:
        """Current ladder position (0 = full footprint)."""
        with self._lock:
            return self._level

    @property
    def max_level(self) -> int:
        return len(LADDER)

    def escalate(self) -> str | None:
        """One ladder step down (a ``DeviceMemoryError`` was observed).

        Returns the step name just applied, or ``None`` when the ladder
        is already exhausted — the caller must then propagate the error.
        """
        with self._lock:
            if self._level >= len(LADDER):
                return None
            step = LADDER[self._level]
            self._level += 1
            self._max_level = max(self._max_level, self._level)
            self.degrade_total += 1
            self._clean_rounds = 0
            self._apply_cache_budget_locked()
            return step

    def note_clean_round(self) -> str | None:
        """Record one fault-free round; maybe release one level.

        Returns the step name just *re-expanded*, or ``None`` when
        nothing changed.
        """
        with self._lock:
            if self._level == 0:
                return None
            self._clean_rounds += 1
            if self._clean_rounds < self.relax_after:
                return None
            self._clean_rounds = 0
            self._level -= 1
            self.expand_total += 1
            step = LADDER[self._level]
            self._apply_cache_budget_locked()
            return step

    # ------------------------------------------------------------------ #

    def effective_batch_rounds(self, base: int) -> int:
        """``batch_rounds`` after pressure (halved from level 2 on)."""
        with self._lock:
            if self._level >= 2:
                return max(1, base // 2)
            return base

    def effective_chunk_cells(self, base: int) -> int:
        """``max_chunk_cells`` after pressure (halved from level 3 on)."""
        with self._lock:
            if self._level >= 3:
                return max(MIN_CHUNK_CELLS, base // 2)
            return base

    def triplets_enabled(self, base: bool) -> bool:
        """Whether the cross-round triplet cache stays on (off at 4)."""
        with self._lock:
            return base and self._level < 4

    # ------------------------------------------------------------------ #

    def _apply_cache_budget_locked(self) -> None:
        if self._cache is None or self._cache_base is None:
            return
        target = (
            self._cache_base / 2 if self._level >= 1 else self._cache_base
        )
        self._cache.resize(target)

    def export_metrics(self, registry: MetricsRegistry) -> None:
        """Final-state export (level gauge + transition totals)."""
        with self._lock:
            registry.set_gauge("epi4_pressure_level", float(self._level))
            if self._max_level:
                registry.set_gauge(
                    "epi4_pressure_max_level_reached", float(self._max_level)
                )

    def summary(self) -> dict[str, int]:
        with self._lock:
            return {
                "level": self._level,
                "max_level": self._max_level,
                "degrade_total": self.degrade_total,
                "expand_total": self.expand_total,
            }
