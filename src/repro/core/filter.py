"""Candidate filtering + exhaustive refinement (paper §5).

The paper notes its exhaustive fourth-order core can serve as the *refine*
stage of filter-based approaches (e.g. SNPs are pre-selected by a cheap
heuristic, then exhaustively searched): "the use of a fourth-order
exhaustive method that makes full use of modern GPU architectures ... can
potentially result in achieving increased accuracy, since more SNPs can be
considered during the search performed after filtering."

This module provides that pipeline: a marginal chi-squared filter and a
refinement search over the survivors, with results mapped back to original
SNP indices.
"""

from __future__ import annotations

import numpy as np

from repro.contingency.brute_force import contingency_table
from repro.core.search import SearchConfig, SearchResult, Epi4TensorSearch
from repro.datasets.dataset import Dataset
from repro.device.specs import A100_PCIE, GPUSpec
from repro.scoring.chi2 import ChiSquaredScore


def marginal_chi2_filter(dataset: Dataset, keep: int) -> np.ndarray:
    """Rank SNPs by single-locus chi-squared association; keep the top ones.

    Args:
        dataset: case-control dataset.
        keep: number of SNPs to retain (must be >= 4 so a fourth-order
            refinement is possible).

    Returns:
        Sorted array of the retained original SNP indices.
    """
    if not 4 <= keep <= dataset.n_snps:
        raise ValueError(
            f"keep must be in [4, {dataset.n_snps}], got {keep}"
        )
    chi2 = ChiSquaredScore()
    g0 = dataset.class_genotypes(0)
    g1 = dataset.class_genotypes(1)
    scores = np.array(
        [
            float(chi2(contingency_table(g0[[m]]), contingency_table(g1[[m]])))
            for m in range(dataset.n_snps)
        ]
    )
    return np.sort(np.argsort(scores)[-keep:])


class RefinedResult(SearchResult):
    """A :class:`SearchResult` whose quad is in *original* SNP indices."""


def refine_with_search(
    dataset: Dataset,
    candidate_snps: np.ndarray,
    *,
    block_size: int = 8,
    score: str = "k2",
    spec: GPUSpec = A100_PCIE,
    n_gpus: int = 1,
) -> SearchResult:
    """Exhaustive fourth-order search restricted to candidate SNPs.

    Args:
        dataset: the full dataset.
        candidate_snps: original indices to search over (>= 4 distinct).
        block_size / score / spec / n_gpus: forwarded to the search.

    Returns:
        A :class:`SearchResult` whose ``solution`` is re-expressed in the
        original SNP indices of ``dataset``.
    """
    idx = np.unique(np.asarray(candidate_snps, dtype=np.intp))
    if idx.size < 4:
        raise ValueError(f"need >= 4 candidate SNPs, got {idx.size}")
    if idx.min() < 0 or idx.max() >= dataset.n_snps:
        raise ValueError("candidate indices out of range")
    sub = dataset.subset_snps(idx)
    result = Epi4TensorSearch(
        sub,
        SearchConfig(block_size=block_size, score=score),
        spec=spec,
        n_gpus=n_gpus,
    ).run()
    from repro.core.solution import Solution, pack_quad

    def remap(solution: Solution) -> Solution:
        original = tuple(int(idx[i]) for i in solution.quad)
        return Solution(score=solution.score, packed=pack_quad(*original))

    result.solution = remap(result.solution)
    result.top_solutions = [remap(s) for s in result.top_solutions]
    return result
