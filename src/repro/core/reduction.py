"""Score reduction (paper §3.5).

On the GPU the reduction cascades through private, shared and global memory;
functionally it is a minimum over ``(score, packed-index)`` pairs.  Packed
indices order quads lexicographically, which fixes the tie-break and makes
results independent of round scheduling (and of how many devices ran the
search).
"""

from __future__ import annotations

import threading
from typing import Iterable

import numpy as np

from repro.core.solution import Solution, pack_quad


def reduce_round(
    scores: np.ndarray,
    offsets: tuple[int, int, int, int],
    best_so_far: Solution,
) -> Solution:
    """Fold one round's ``(B, B, B, B)`` score grid into the running best.

    Masked (non-useful) positions must be ``+inf``.  ``np.argmin`` returns
    the first minimum in C order, which is exactly the lexicographically
    smallest quad of that round — consistent with the packed-index ordering.

    Args:
        scores: round scores with ``+inf`` at masked positions.
        offsets: global first-SNP indices of the four blocks.
        best_so_far: the running :class:`Solution`.

    Returns:
        The better of ``best_so_far`` and this round's best.
    """
    flat_pos = int(np.argmin(scores))
    score = float(scores.flat[flat_pos])
    if not np.isfinite(score):
        return best_so_far
    wi, xi, yi, zi = np.unravel_index(flat_pos, scores.shape)
    quad = (
        offsets[0] + int(wi),
        offsets[1] + int(xi),
        offsets[2] + int(yi),
        offsets[3] + int(zi),
    )
    candidate = Solution(score=score, packed=pack_quad(*quad))
    return min(best_so_far, candidate)


def reduce_solutions(solutions: list[Solution]) -> Solution:
    """Host-side final reduction over per-device local bests (§3.6)."""
    if not solutions:
        return Solution.worst()
    return min(solutions)


class TopKReducer:
    """Running top-``k`` reduction over round score grids.

    Real epistasis tooling reports a ranked candidate list, not just the
    single optimum; this reducer extends the paper's min-reduction to the
    ``k`` best quads.  Each distinct quad is scored exactly once across the
    search (the validity mask guarantees it), so no dedup is needed.

    Thread-safe: all mutators and accessors serialize on an internal lock,
    so device worker threads can :meth:`merge` their local reductions into
    a shared global reducer concurrently.  The result is order-independent
    — "keep the k smallest" over a totally ordered, deduplicated candidate
    set is associative and commutative — which is what keeps threaded runs
    bit-identical to sequential ones.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._lock = threading.RLock()
        self._solutions: list[Solution] = []

    def add_round(
        self, scores: np.ndarray, offsets: tuple[int, int, int, int]
    ) -> None:
        """Fold one round's ``(B, B, B, B)`` score grid into the top-k."""
        flat = scores.ravel()
        take = min(self.k, flat.size)
        # argpartition gives the k smallest in arbitrary order; masked
        # positions are +inf and fall out below.
        candidate_pos = np.argpartition(flat, take - 1)[:take]
        candidates: list[Solution] = []
        for pos in candidate_pos:
            score = float(flat[pos])
            if not np.isfinite(score):
                continue
            wi, xi, yi, zi = np.unravel_index(int(pos), scores.shape)
            quad = (
                offsets[0] + int(wi),
                offsets[1] + int(xi),
                offsets[2] + int(yi),
                offsets[3] + int(zi),
            )
            candidates.append(Solution(score=score, packed=pack_quad(*quad)))
        with self._lock:
            self._solutions.extend(candidates)
            if len(self._solutions) > 4 * self.k:
                self._truncate()

    def seed(self, solutions: "Iterable[Solution]") -> None:
        """Inject externally persisted candidates (checkpoint resume,
        warm starts) through the public reduction path.

        Equivalent to merging a reducer that already held ``solutions``:
        the candidates participate in the usual dedup + truncate, so
        seeding is idempotent and order-independent like every other
        mutation.
        """
        incoming = list(solutions)
        with self._lock:
            self._solutions.extend(incoming)
            self._truncate()

    @classmethod
    def from_solutions(
        cls, k: int, solutions: "Iterable[Solution]"
    ) -> "TopKReducer":
        """A reducer pre-populated with ``solutions`` (best ``k`` kept)."""
        reducer = cls(k)
        reducer.seed(solutions)
        return reducer

    def merge(self, other: "TopKReducer") -> None:
        """Fold another reducer's candidates in (host-side, multi-device).

        Only ``other``'s top-k can survive the fold, so its truncated
        :meth:`result` is merged — which also keeps lock acquisition
        one-reducer-at-a-time (no lock-ordering deadlocks).
        """
        incoming = other.result() if other is not self else []
        with self._lock:
            self._solutions.extend(incoming)
            self._truncate()

    def _truncate(self) -> None:
        # Dedup by quad so merging overlapping candidate sets (e.g. a
        # checkpoint resume re-scoring an iteration) stays idempotent.
        # Callers hold self._lock (RLock: safe from public methods here).
        self._solutions.sort()
        seen: set[int] = set()
        unique = []
        for sol in self._solutions:
            if sol.packed not in seen:
                seen.add(sol.packed)
                unique.append(sol)
        self._solutions = unique[: self.k]

    def kth_score(self) -> float:
        """Current ``k``-th best score, or ``+inf`` while under-filled.

        The branch-and-bound prune threshold: a candidate whose score
        provably exceeds this value cannot enter the final top-k.  Safe
        at any point during the search — the reducer's candidate set only
        grows, so the k-th best of any intermediate subset is ``>=`` the
        final k-th best, and pruning strictly above it can never drop a
        final top-k member.  ``+inf`` (fewer than ``k`` candidates held)
        disables pruning entirely.  Thread-safe like every accessor.
        """
        with self._lock:
            self._truncate()
            if len(self._solutions) < self.k:
                return float("inf")
            return self._solutions[self.k - 1].score

    def result(self) -> list[Solution]:
        """The final ranked list (best first), length <= k."""
        with self._lock:
            self._truncate()
            return list(self._solutions)

    @property
    def best(self) -> Solution:
        """Current best (identity element if empty)."""
        with self._lock:
            self._truncate()
            return self._solutions[0] if self._solutions else Solution.worst()
