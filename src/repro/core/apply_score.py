"""``applyScore``: completion + scoring + masking for one evaluation round.

Takes the per-class fourth-order corners (16 counts/quad from the tensor
GEMM) and the third-order corner slices for the four contained triplets,
completes everything to full 81-cell tables per class (§3.3), scores every
*useful* quad, and marks non-useful positions (repeated/unsorted quads and
padding) with ``+inf``.

Two implementations are provided:

:func:`score_round` (the default, *fused* path)
    **Mask-first compaction**: the validity mask is computed *before* any
    completion, the valid positions are gathered into a flat compacted
    batch, and only those are completed and scored.  Diagonal rounds —
    where most of the ``B^4`` grid is repeated/unsorted — skip the vast
    majority of the completion and scoring arithmetic entirely.

    **Cross-round completed-triplet reuse**: the full 27-cell third-order
    tables are requested through a pluggable ``full3_provider``.  The table
    for a block triple is a pure function of the (sorted) block offsets —
    the same pair sweep sliced at the same tail block, completed with the
    same global indices — regardless of which *role* (``wxy``/``wxz``/
    ``wyz``/``xyz``) the triple plays in a round, so the search wires the
    provider to the byte-accounted
    :class:`~repro.core.operand_cache.OperandCache` under keys
    ``("full3", cls, a, b, c)`` and each triplet is completed **once per
    sweep** instead of once per round.  Within a single round, duplicate
    roles (diagonal rounds share block triples between roles) are deduped
    locally before the provider is consulted.

    **Bound-first branch-and-bound gate**: when a
    :class:`~repro.scoring.bounds.K2BoundKernel` and a top-k threshold
    callable are supplied, every mask-valid position's admissible K2
    lower bound is evaluated from the already-materialized corner counts
    *before* completion, and positions that provably cannot beat the
    current ``TopKReducer.kth_score()`` are dropped — no third-order
    gathers, no 81-cell completion, no staged-lgamma work.  Pruned
    positions surface as ``+inf`` exactly like masked ones, so the final
    top-k stays bit-identical to the exhaustive run.

    **Staged-lgamma scoring**: when a
    :class:`~repro.scoring.k2.StagedK2Kernel` is supplied, scores are
    gathered directly from pre-shifted lgamma views on the int64 count
    arrays and reduced in one pass — bit-identical to the reference
    :class:`~repro.scoring.k2.K2Score` (same float lookups, same
    elementwise ``a - b - c``, same trailing-axis sum), without the
    integer ``n + k`` index temporaries.

:func:`apply_score_dense` (the legacy reference)
    Completes and scores the full ``B^4 x 81`` grid, then masks.  Kept
    bit-identical to the pre-fusion implementation as the ablation
    baseline (``score_path="dense"``) and as the property-test oracle.

Memory stays bounded in both paths by chunking — along ``w`` in the dense
path, along the compacted position axis in the fused path — mirroring how
the CUDA kernel never materializes all 81 counts for a whole round at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scoring.bounds import K2BoundKernel
    from repro.scoring.k2 import StagedK2Kernel

from repro.contingency.complete import complete_quad
from repro.core.threeway import complete_threeway

#: Default cap on materialized table cells per chunk (per class), in cells.
DEFAULT_MAX_CHUNK_CELLS = 32 * 1024 * 1024

#: ``full3_provider`` signature: ``(cls, (a, b, c) block offsets, factory)
#: -> (table, served_from_cache)``.
Full3Provider = Callable[
    [int, tuple[int, int, int], Callable[[], np.ndarray]],
    tuple[np.ndarray, bool],
]

#: Batched score callable ``(t0, t1, order=4) -> per-position scores``
#: (e.g. :func:`repro.scoring.k2.k2_score_min`).
ScoreMinFn = Callable[..., np.ndarray]


@dataclass(frozen=True)
class RoundOperands:
    """Everything ``applyScore`` needs for one evaluation round.

    All corner arrays are tuples ``(controls, cases)``.

    Attributes:
        corner4: per class ``(B, B, B, B, 2, 2, 2, 2)`` from ``tensorOp_4way``.
        corner3_wxy: per class ``(B, B, B, 2, 2, 2)`` slice of the ``wx``
            sweep at the ``Y`` block.
        corner3_wxz: per class slice of the ``wx`` sweep at the ``Z`` block.
        corner3_wyz: per class slice of the ``wy`` sweep at the ``Z`` block.
        corner3_xyz: per class slice of the ``xy`` sweep at the ``Z`` block.
        offsets: global first-SNP indices ``(wo, xo, yo, zo)`` of the blocks.
        block_size: ``B``.
    """

    corner4: tuple[np.ndarray, np.ndarray]
    corner3_wxy: tuple[np.ndarray, np.ndarray]
    corner3_wxz: tuple[np.ndarray, np.ndarray]
    corner3_wyz: tuple[np.ndarray, np.ndarray]
    corner3_xyz: tuple[np.ndarray, np.ndarray]
    offsets: tuple[int, int, int, int]
    block_size: int


@dataclass(frozen=True)
class RoundScoreStats:
    """Per-round accounting of the fused ``applyScore`` path.

    Attributes:
        positions: grid size ``B^4``.
        valid: mask-valid positions that survived the bound gate and were
            completed + scored (without pruning this equals the mask-valid
            count; the conservation law is ``mask_valid == valid + pruned``).
        chunks: compacted chunks processed.
        full3_requests: unique ``(class, block-triple)`` completed-table
            requests this round (duplicate roles deduped locally first).
        full3_computed: requests that executed a third-order completion.
        full3_cache_hits: requests served by the provider's cache.
        pruned: mask-valid positions dropped by the admissible-bound gate
            before completion (their lower bound exceeded the top-k
            threshold, so they provably cannot enter the final top-k).
    """

    positions: int
    valid: int
    chunks: int
    full3_requests: int
    full3_computed: int
    full3_cache_hits: int
    pruned: int = 0

    @property
    def compaction_ratio(self) -> float:
        """Fraction of grid positions actually scored (lower = more saved)."""
        return self.valid / self.positions if self.positions else 0.0


def round_validity_mask(
    offsets: tuple[int, int, int, int], block_size: int, n_real_snps: int
) -> np.ndarray:
    """Boolean ``(B, B, B, B)`` mask of *useful* quad positions.

    A position is useful iff its global indices are strictly increasing
    (``w < x < y < z`` — each distinct combination is scored exactly once
    across the whole search) and within the unpadded SNP range.
    """
    b = block_size
    wo, xo, yo, zo = offsets
    w = np.arange(wo, wo + b)
    x = np.arange(xo, xo + b)
    y = np.arange(yo, yo + b)
    z = np.arange(zo, zo + b)
    return (
        (w[:, None, None, None] < x[None, :, None, None])
        & (x[None, :, None, None] < y[None, None, :, None])
        & (y[None, None, :, None] < z[None, None, None, :])
        & (z[None, None, None, :] < n_real_snps)
    )


def _full3_tables(
    operands: RoundOperands,
    pairs: np.ndarray,
    full3_provider: Full3Provider | None,
) -> tuple[dict[str, list[np.ndarray]], int, int, int]:
    """All four completed third-order tables per class, deduped + cached.

    The completed table for a block triple depends only on its (already
    non-decreasing) block offsets: the corner slice is the same sweep GEMM
    output and the completion gathers the same global pair tables whichever
    role the triple plays.  Diagonal rounds therefore resolve several roles
    to one table, and the provider (when given) shares tables across
    rounds.

    Returns:
        ``(tables, requests, computed, cache_hits)`` where ``tables[role]``
        is the per-class list of ``(B, B, B, 3, 3, 3)`` tables.
    """
    b = operands.block_size
    wo, xo, yo, zo = operands.offsets
    w_idx = np.arange(wo, wo + b)
    x_idx = np.arange(xo, xo + b)
    y_idx = np.arange(yo, yo + b)
    z_idx = np.arange(zo, zo + b)

    roles: dict[str, tuple[tuple[int, int, int], tuple, tuple]] = {
        "wxy": ((wo, xo, yo), operands.corner3_wxy, (w_idx, x_idx, y_idx)),
        "wxz": ((wo, xo, zo), operands.corner3_wxz, (w_idx, x_idx, z_idx)),
        "wyz": ((wo, yo, zo), operands.corner3_wyz, (w_idx, y_idx, z_idx)),
        "xyz": ((xo, yo, zo), operands.corner3_xyz, (x_idx, y_idx, z_idx)),
    }

    local: dict[tuple[int, tuple[int, int, int]], np.ndarray] = {}
    requests = computed = cache_hits = 0
    tables: dict[str, list[np.ndarray]] = {}
    for role, (triple, corners, indices) in roles.items():
        per_class: list[np.ndarray] = []
        for cls in (0, 1):
            memo_key = (cls, triple)
            table = local.get(memo_key)
            if table is None:
                corner = corners[cls]
                pairs_cls = pairs[cls]
                a_idx, b_idx, c_idx = indices

                def factory(
                    corner=corner,
                    pairs_cls=pairs_cls,
                    a_idx=a_idx,
                    b_idx=b_idx,
                    c_idx=c_idx,
                ) -> np.ndarray:
                    return complete_threeway(
                        corner, pairs_cls, a_idx, b_idx, c_idx
                    )

                requests += 1
                if full3_provider is None:
                    table = factory()
                    hit = False
                else:
                    table, hit = full3_provider(cls, triple, factory)
                if hit:
                    cache_hits += 1
                else:
                    computed += 1
                local[memo_key] = table
            per_class.append(table)
        tables[role] = per_class
    return tables, requests, computed, cache_hits


def score_round(
    operands: RoundOperands,
    pairs: np.ndarray,
    score_min_fn: ScoreMinFn,
    n_real_snps: int,
    *,
    max_chunk_cells: int = DEFAULT_MAX_CHUNK_CELLS,
    staged_kernel: "StagedK2Kernel | None" = None,
    full3_provider: Full3Provider | None = None,
    bound_kernel: "K2BoundKernel | None" = None,
    prune_threshold: Callable[[], float] | None = None,
) -> tuple[np.ndarray, RoundScoreStats]:
    """Fused mask-first scoring of one round (see module docstring).

    Args:
        operands: the round's tensor outputs, see :class:`RoundOperands`.
        pairs: ``(2, M, M, 3, 3)`` full pairwise tables (both classes).
        score_min_fn: batched score callable ``(t0, t1, order=4) -> scores``
            already normalized so lower is better.  Used whenever
            ``staged_kernel`` is not supplied.
        n_real_snps: unpadded SNP count (padding exclusion).
        max_chunk_cells: bound on materialized 81-cell-table cells per
            class per chunk; controls peak memory.
        staged_kernel: optional
            :class:`~repro.scoring.k2.StagedK2Kernel`; bit-identical to the
            K2 ``score_min_fn`` but skips the index-arithmetic temporaries.
        full3_provider: optional cross-round completed-triplet cache hook
            (see :data:`Full3Provider`).
        bound_kernel: optional
            :class:`~repro.scoring.bounds.K2BoundKernel`; enables the
            branch-and-bound gate between mask compaction and completion.
        prune_threshold: zero-argument callable returning the current
            top-k threshold (``TopKReducer.kth_score``-style: ``+inf``
            disables).  Mask-valid positions whose admissible lower bound
            exceeds it are dropped before any third-order gather or
            staged-lgamma work; pruned positions stay ``+inf`` in the
            returned grid, exactly like masked ones, so the reduction is
            oblivious to pruning.

    Returns:
        ``(scores, stats)`` — the ``(B, B, B, B)`` float64 grid with
        ``+inf`` at masked positions, and the round's
        :class:`RoundScoreStats`.
    """
    b = operands.block_size
    mask = round_validity_mask(operands.offsets, b, n_real_snps)
    w_pos, x_pos, y_pos, z_pos = np.nonzero(mask)
    n_valid = int(w_pos.size)
    scores = np.full((b, b, b, b), np.inf, dtype=np.float64)
    if n_valid == 0:
        return scores, RoundScoreStats(
            positions=b**4, valid=0, chunks=0,
            full3_requests=0, full3_computed=0, full3_cache_hits=0,
        )

    n_pruned = 0
    if bound_kernel is not None and prune_threshold is not None:
        from repro.scoring.bounds import PRUNE_SLACK

        threshold = float(prune_threshold())
        if np.isfinite(threshold):
            bounds = bound_kernel.quad_bounds(
                operands, w_pos, x_pos, y_pos, z_pos
            )
            if bounds is not None:
                # Strictly-above-threshold only (plus FP slack): ties are
                # kept, so the admissible bound can never drop a quad the
                # exhaustive reduction would have ranked.
                keep = bounds <= threshold + PRUNE_SLACK
                n_pruned = n_valid - int(keep.sum())
                if n_pruned:
                    w_pos = w_pos[keep]
                    x_pos = x_pos[keep]
                    y_pos = y_pos[keep]
                    z_pos = z_pos[keep]
                    n_valid = int(w_pos.size)
                    mask = np.zeros_like(mask)
                    mask[w_pos, x_pos, y_pos, z_pos] = True
                if n_valid == 0:
                    return scores, RoundScoreStats(
                        positions=b**4, valid=0, chunks=0,
                        full3_requests=0, full3_computed=0,
                        full3_cache_hits=0, pruned=n_pruned,
                    )

    full3, requests, computed, hits = _full3_tables(
        operands, pairs, full3_provider
    )
    f_wxy, f_wxz, f_wyz, f_xyz = (
        full3["wxy"], full3["wxz"], full3["wyz"], full3["xyz"]
    )

    chunk = max(1, max_chunk_cells // 81)
    flat_scores = np.empty(n_valid, dtype=np.float64)
    n_chunks = 0
    for v0 in range(0, n_valid, chunk):
        v1 = min(v0 + chunk, n_valid)
        n_chunks += 1
        w = w_pos[v0:v1]
        x = x_pos[v0:v1]
        y = y_pos[v0:v1]
        z = z_pos[v0:v1]
        tables = [
            complete_quad(
                operands.corner4[cls][w, x, y, z],   # (V, 2, 2, 2, 2)
                f_wxy[cls][w, x, y],                 # (V, 3, 3, 3)
                f_wxz[cls][w, x, z],
                f_wyz[cls][w, y, z],
                f_xyz[cls][x, y, z],
            )
            for cls in (0, 1)
        ]
        if staged_kernel is not None:
            n = v1 - v0
            flat_scores[v0:v1] = staged_kernel.score_flat(
                tables[0].reshape(n, -1), tables[1].reshape(n, -1)
            )
        else:
            flat_scores[v0:v1] = score_min_fn(tables[0], tables[1], order=4)
    scores[mask] = flat_scores
    return scores, RoundScoreStats(
        positions=b**4,
        valid=n_valid,
        chunks=n_chunks,
        full3_requests=requests,
        full3_computed=computed,
        full3_cache_hits=hits,
        pruned=n_pruned,
    )


def apply_score(
    operands: RoundOperands,
    pairs: np.ndarray,
    score_min_fn: ScoreMinFn,
    n_real_snps: int,
    *,
    max_chunk_cells: int = DEFAULT_MAX_CHUNK_CELLS,
) -> np.ndarray:
    """Score every quad of a round; non-useful positions become ``+inf``.

    Thin compatibility wrapper over :func:`score_round` (the fused path,
    bit-identical to :func:`apply_score_dense`); returns only the grid.
    """
    scores, _ = score_round(
        operands, pairs, score_min_fn, n_real_snps,
        max_chunk_cells=max_chunk_cells,
    )
    return scores


def apply_score_dense(
    operands: RoundOperands,
    pairs: np.ndarray,
    score_min_fn: ScoreMinFn,
    n_real_snps: int,
    *,
    max_chunk_cells: int = DEFAULT_MAX_CHUNK_CELLS,
) -> np.ndarray:
    """Legacy dense reference: complete + score the full grid, then mask.

    Kept bit-identical to the pre-fusion implementation; serves as the
    ``score_path="dense"`` ablation baseline and the property-test oracle
    for the compacted path.
    """
    b = operands.block_size
    wo, xo, yo, zo = operands.offsets
    w_idx = np.arange(wo, wo + b)
    x_idx = np.arange(xo, xo + b)
    y_idx = np.arange(yo, yo + b)
    z_idx = np.arange(zo, zo + b)

    # Triplets without a w axis are shared across w chunks: complete once.
    full3_xyz = [
        complete_threeway(operands.corner3_xyz[cls], pairs[cls], x_idx, y_idx, z_idx)
        for cls in (0, 1)
    ]

    cells_per_w = b * b * b * 81
    chunk_w = max(1, min(b, max_chunk_cells // max(cells_per_w, 1)))

    scores = np.empty((b, b, b, b), dtype=np.float64)
    for w0 in range(0, b, chunk_w):
        w1 = min(w0 + chunk_w, b)
        tables = []
        for cls in (0, 1):
            full3_wxy = complete_threeway(
                operands.corner3_wxy[cls][w0:w1], pairs[cls], w_idx[w0:w1], x_idx, y_idx
            )
            full3_wxz = complete_threeway(
                operands.corner3_wxz[cls][w0:w1], pairs[cls], w_idx[w0:w1], x_idx, z_idx
            )
            full3_wyz = complete_threeway(
                operands.corner3_wyz[cls][w0:w1], pairs[cls], w_idx[w0:w1], y_idx, z_idx
            )
            tables.append(
                complete_quad(
                    operands.corner4[cls][w0:w1],
                    full3_wxy[:, :, :, None],   # (Wc, B, B, 1, 3, 3, 3)
                    full3_wxz[:, :, None, :],   # (Wc, B, 1, B, 3, 3, 3)
                    full3_wyz[:, None, :, :],   # (Wc, 1, B, B, 3, 3, 3)
                    full3_xyz[cls][None],       # (1, B, B, B, 3, 3, 3)
                )
            )
        scores[w0:w1] = score_min_fn(tables[0], tables[1], order=4)

    mask = round_validity_mask(operands.offsets, b, n_real_snps)
    scores[~mask] = np.inf
    return scores
