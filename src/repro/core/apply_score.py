"""``applyScore``: completion + scoring + masking for one evaluation round.

Takes the per-class fourth-order corners (16 counts/quad from the tensor
GEMM) and the third-order corner slices for the four contained triplets,
completes everything to full 81-cell tables per class (§3.3), scores every
quad, and masks out non-useful positions (repeated/unsorted quads and
padding).  Memory is bounded by chunking along the ``w`` axis, mirroring how
the CUDA kernel never materializes all 81 counts for a whole round at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.contingency.complete import complete_quad
from repro.core.threeway import complete_threeway

#: Default cap on materialized table cells per chunk (per class), in cells.
DEFAULT_MAX_CHUNK_CELLS = 32 * 1024 * 1024


@dataclass(frozen=True)
class RoundOperands:
    """Everything ``applyScore`` needs for one evaluation round.

    All corner arrays are tuples ``(controls, cases)``.

    Attributes:
        corner4: per class ``(B, B, B, B, 2, 2, 2, 2)`` from ``tensorOp_4way``.
        corner3_wxy: per class ``(B, B, B, 2, 2, 2)`` slice of the ``wx``
            sweep at the ``Y`` block.
        corner3_wxz: per class slice of the ``wx`` sweep at the ``Z`` block.
        corner3_wyz: per class slice of the ``wy`` sweep at the ``Z`` block.
        corner3_xyz: per class slice of the ``xy`` sweep at the ``Z`` block.
        offsets: global first-SNP indices ``(wo, xo, yo, zo)`` of the blocks.
        block_size: ``B``.
    """

    corner4: tuple[np.ndarray, np.ndarray]
    corner3_wxy: tuple[np.ndarray, np.ndarray]
    corner3_wxz: tuple[np.ndarray, np.ndarray]
    corner3_wyz: tuple[np.ndarray, np.ndarray]
    corner3_xyz: tuple[np.ndarray, np.ndarray]
    offsets: tuple[int, int, int, int]
    block_size: int


def round_validity_mask(
    offsets: tuple[int, int, int, int], block_size: int, n_real_snps: int
) -> np.ndarray:
    """Boolean ``(B, B, B, B)`` mask of *useful* quad positions.

    A position is useful iff its global indices are strictly increasing
    (``w < x < y < z`` — each distinct combination is scored exactly once
    across the whole search) and within the unpadded SNP range.
    """
    b = block_size
    wo, xo, yo, zo = offsets
    w = np.arange(wo, wo + b)
    x = np.arange(xo, xo + b)
    y = np.arange(yo, yo + b)
    z = np.arange(zo, zo + b)
    return (
        (w[:, None, None, None] < x[None, :, None, None])
        & (x[None, :, None, None] < y[None, None, :, None])
        & (y[None, None, :, None] < z[None, None, None, :])
        & (z[None, None, None, :] < n_real_snps)
    )


def apply_score(
    operands: RoundOperands,
    pairs: np.ndarray,
    score_min_fn,
    n_real_snps: int,
    *,
    max_chunk_cells: int = DEFAULT_MAX_CHUNK_CELLS,
) -> np.ndarray:
    """Score every quad of a round; non-useful positions become ``+inf``.

    Args:
        operands: the round's tensor outputs, see :class:`RoundOperands`.
        pairs: ``(2, M, M, 3, 3)`` full pairwise tables (both classes).
        score_min_fn: batched score callable ``(t0, t1, order=4) -> scores``
            already normalized so lower is better.
        n_real_snps: unpadded SNP count (padding exclusion).
        max_chunk_cells: bound on materialized 81-cell-table cells per class
            per chunk; controls peak memory.

    Returns:
        ``(B, B, B, B)`` float64 scores with ``+inf`` at masked positions.
    """
    b = operands.block_size
    wo, xo, yo, zo = operands.offsets
    w_idx = np.arange(wo, wo + b)
    x_idx = np.arange(xo, xo + b)
    y_idx = np.arange(yo, yo + b)
    z_idx = np.arange(zo, zo + b)

    # Triplets without a w axis are shared across w chunks: complete once.
    full3_xyz = [
        complete_threeway(operands.corner3_xyz[cls], pairs[cls], x_idx, y_idx, z_idx)
        for cls in (0, 1)
    ]

    cells_per_w = b * b * b * 81
    chunk_w = max(1, min(b, max_chunk_cells // max(cells_per_w, 1)))

    scores = np.empty((b, b, b, b), dtype=np.float64)
    for w0 in range(0, b, chunk_w):
        w1 = min(w0 + chunk_w, b)
        tables = []
        for cls in (0, 1):
            full3_wxy = complete_threeway(
                operands.corner3_wxy[cls][w0:w1], pairs[cls], w_idx[w0:w1], x_idx, y_idx
            )
            full3_wxz = complete_threeway(
                operands.corner3_wxz[cls][w0:w1], pairs[cls], w_idx[w0:w1], x_idx, z_idx
            )
            full3_wyz = complete_threeway(
                operands.corner3_wyz[cls][w0:w1], pairs[cls], w_idx[w0:w1], y_idx, z_idx
            )
            tables.append(
                complete_quad(
                    operands.corner4[cls][w0:w1],
                    full3_wxy[:, :, :, None],   # (Wc, B, B, 1, 3, 3, 3)
                    full3_wxz[:, :, None, :],   # (Wc, B, 1, B, 3, 3, 3)
                    full3_wyz[:, None, :, :],   # (Wc, 1, B, B, 3, 3, 3)
                    full3_xyz[cls][None],       # (1, B, B, B, 3, 3, 3)
                )
            )
        scores[w0:w1] = score_min_fn(tables[0], tables[1], order=4)

    mask = round_validity_mask(operands.offsets, b, n_real_snps)
    scores[~mask] = np.inf
    return scores
