"""Per-launch hang watchdog: deadline enforcement for device launches.

The paper's exhaustive runs keep a GPU busy for hours; on real shared
clusters a kernel launch can simply *stop making progress* (driver hang,
pre-empted device, deadlocked collective) without ever raising.  A
watchdog turns that silent liveness failure back into the fail-fast
fault model the recovery layer (:mod:`repro.core.resilience`) already
handles: every launch runs under a deadline, and a launch that overruns
is **cancelled** — its result is discarded and the caller raises
:class:`~repro.device.faults.DeviceFault` (``kind="hang"``), which flows
through the ordinary retry → requeue → quarantine path.

Design
------

One :class:`LaunchWatchdog` is shared by all of a search's devices.  A
launch registers a :class:`LaunchTicket` (its deadline) on entry to
:meth:`LaunchWatchdog.guard` and unregisters on exit; a single daemon
monitor thread sleeps until the earliest outstanding deadline and *trips*
any ticket that is still registered past it.  Tripping is one-shot and
race-free under the watchdog lock:

* if the monitor trips a ticket first, the launching thread *always*
  observes ``ticket.tripped`` on guard exit and raises — one trip, one
  ``hang`` fault (the conservation law the property suite checks);
* if the launch finishes and unregisters first, the monitor can no
  longer trip it — a completed launch is never retroactively failed.

Injected ``hang`` faults (see :mod:`repro.device.faults`) stall
cooperatively via :meth:`LaunchTicket.stall`, which blocks on the
ticket's cancel event until the monitor trips it — modelling a kernel
that never returns, cancelled by deadline.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator


class LaunchTicket:
    """One in-flight launch registered with the watchdog."""

    __slots__ = ("device_id", "op", "deadline", "cancelled", "tripped")

    def __init__(self, device_id: int, op: str, deadline: float) -> None:
        self.device_id = device_id
        self.op = op
        self.deadline = deadline
        self.cancelled = threading.Event()
        self.tripped = False

    def stall(self) -> None:
        """Block until the watchdog cancels this launch (injected hangs).

        Models a kernel that never completes on its own.  The wait is
        bounded by a generous fallback (so a broken monitor thread can
        never wedge the test suite); on fallback the ticket still reads
        as tripped so the caller raises the hang fault it owes.
        """
        if not self.cancelled.wait(timeout=60.0):
            self.tripped = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "tripped" if self.tripped else "armed"
        return (
            f"LaunchTicket(device={self.device_id}, op={self.op!r}, {state})"
        )


class LaunchWatchdog:
    """Deadline monitor for device launches.

    Args:
        deadline_ms: per-launch wall-clock budget.  Launches (or injected
            stalls) still running past it are tripped.
        on_trip: optional callback ``(device_id, op) -> None`` fired from
            the monitor thread once per trip — the search wires metrics
            (``epi4_watchdog_trips_total``) and FaultLog incidents here.

    The monitor thread starts lazily on the first :meth:`guard` and is a
    daemon; :meth:`close` shuts it down deterministically (used by the
    search's ``finally``).
    """

    def __init__(
        self,
        deadline_ms: float,
        on_trip: Callable[[int, str], None] | None = None,
    ) -> None:
        if deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {deadline_ms}")
        self.deadline_ms = float(deadline_ms)
        self._on_trip = on_trip
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._active: set[LaunchTicket] = set()
        self._trips = 0
        self._closed = False
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------ #

    @property
    def trips(self) -> int:
        """Total launches cancelled by deadline so far."""
        with self._lock:
            return self._trips

    @contextmanager
    def guard(self, device_id: int, op: str) -> Iterator[LaunchTicket]:
        """Run one launch under the deadline.

        The caller must check ``ticket.tripped`` after the block and
        discard the result / raise ``DeviceFault("hang")`` when set —
        :class:`~repro.device.faults.FaultyGPU` does exactly this.
        """
        ticket = LaunchTicket(
            device_id, op, time.monotonic() + self.deadline_ms / 1000.0
        )
        with self._lock:
            if self._closed:
                raise RuntimeError("watchdog is closed")
            self._active.add(ticket)
            self._ensure_monitor_locked()
            self._wake.notify_all()
        try:
            yield ticket
        finally:
            with self._lock:
                self._active.discard(ticket)

    def close(self) -> None:
        """Stop the monitor thread (idempotent)."""
        with self._lock:
            self._closed = True
            # Release any cooperative stalls still waiting: nothing will
            # monitor them past this point.
            for ticket in self._active:
                if not ticket.tripped:
                    ticket.tripped = True
                    ticket.cancelled.set()
            self._wake.notify_all()
            thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)

    # ------------------------------------------------------------------ #

    def _ensure_monitor_locked(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._monitor, name="epi4-watchdog", daemon=True
            )
            self._thread.start()

    def _monitor(self) -> None:
        while True:
            fire: list[LaunchTicket] = []
            with self._lock:
                if self._closed:
                    return
                now = time.monotonic()
                expired = [t for t in self._active if t.deadline <= now]
                for ticket in expired:
                    ticket.tripped = True
                    ticket.cancelled.set()
                    self._active.discard(ticket)
                    self._trips += 1
                    fire.append(ticket)
                if not expired:
                    if self._active:
                        horizon = min(t.deadline for t in self._active) - now
                        self._wake.wait(timeout=max(horizon, 0.001))
                    else:
                        # Idle: park until a new guard registers or close().
                        self._wake.wait(timeout=1.0)
            for ticket in fire:
                if self._on_trip is not None:
                    self._on_trip(ticket.device_id, ticket.op)
