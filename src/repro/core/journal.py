"""Crash-safe round journal: an append-only, CRC-framed write-ahead log.

:class:`~repro.core.checkpoint.SearchCheckpoint` rewrites the whole
resume file on every commit — simple, but a commit costs O(completed)
bytes and the crash-consistency story leans entirely on the ``.bak``
rotation.  The journal replaces that with the classic WAL discipline:
one *appended*, CRC-framed record per committed outer (``Wi``)
iteration, fsynced before the commit is considered durable.  A process
killed at **any** byte offset leaves a valid frame prefix plus at most
one torn tail frame; recovery replays the prefix, drops the tail, and
the (idempotent, merge-only) search re-executes only the iterations
whose commit frame never became durable — exactly-once resume with a
bit-identical top-k.

Frame layout (little-endian)::

    +----------+----------------+---------------+------------------+
    | magic 2B | payload len 4B | CRC32 4B      | payload (JSON)   |
    |  "EJ"    | uint32         | of payload    | UTF-8, len bytes |
    +----------+----------------+---------------+------------------+

The first frame is always a ``header`` record carrying the journal
schema version and the search fingerprint (same identity guard as the
checkpoint).  Subsequent frames are ``commit`` records::

    {"type": "commit", "wi": 7, "solutions": [[score, packed], ...]}

Each commit snapshots the *current* top-k (tiny: ``k`` pairs), so
recovery needs only the last valid commit frame for candidates and the
set of all commit frames for the completed set.  Duplicate ``wi``
commits are a protocol violation (the exactly-once property) and are
rejected both at append time and at recovery time.

Compaction
----------

An unbounded log would grow by one frame per iteration forever, so
:meth:`RoundJournal.compact` rewrites it as header + one ``snapshot``
frame (completed set + candidates) using the atomic sequence: write
``<path>.tmp`` → fsync file → ``os.replace`` → fsync directory.  A
crash anywhere in compaction leaves either the complete old log or the
complete new one, never a mix.  :meth:`RoundJournal.open` compacts
automatically when the replayed log carries more than
``compact_after`` frames.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import warnings
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

from repro.core.checkpoint import fsync_directory
from repro.core.reduction import TopKReducer
from repro.core.solution import Solution

#: Journal schema version (bumped on any frame/record format change).
JOURNAL_VERSION = 1

#: Frame preamble: 2-byte magic + uint32 payload length + uint32 CRC32.
_MAGIC = b"EJ"
_PREAMBLE = struct.Struct("<2sII")
_MAX_FRAME_BYTES = 16 * 1024 * 1024  # sanity bound against garbage lengths


class JournalError(ValueError):
    """The journal belongs to a different search or violates the
    exactly-once protocol (duplicate commit)."""


@dataclass
class JournalStats:
    """What recovery and subsequent appends observed (for metrics)."""

    commits: int = 0          # commit frames appended this process
    replayed: int = 0         # commit frames recovered from disk
    torn_bytes: int = 0       # trailing garbage dropped at recovery
    compactions: int = 0


class RoundJournal:
    """Append-only commit log for one search run.

    Use :meth:`open` (recovers existing state) rather than the
    constructor.  Thread-safe: commits from concurrent device workers
    serialize on an internal lock, in commit order — the same order the
    reducer merges, so the last frame's snapshot is always the newest.
    """

    def __init__(
        self,
        path: str,
        fingerprint: str,
        completed: set[int],
        solutions: list[Solution],
        stats: JournalStats,
        meta: dict | None = None,
    ) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self.completed = completed
        self.solutions = solutions
        self.stats = stats
        #: Caller-supplied identity metadata carried in the header frame
        #: (e.g. ``{"shard_index": 2, "shard_count": 8}``); checked on
        #: reopen so one shard's journal cannot be resumed as another's.
        self.meta = dict(meta or {})
        self._lock = threading.Lock()
        self._fh = open(path, "ab")

    # ------------------------------------------------------------------ #
    # Recovery

    @classmethod
    def open(
        cls,
        path: str | os.PathLike,
        fingerprint: str,
        compact_after: int = 4096,
        meta: dict | None = None,
    ) -> "RoundJournal":
        """Open (creating or recovering) the journal at ``path``.

        Replays every valid frame; a torn tail — any truncation or
        partial append left by a crash — is dropped with the file
        truncated back to the last valid frame boundary, so the next
        append never interleaves with garbage.

        Args:
            meta: optional identity metadata (JSON-safe dict) written into
                the header frame of a fresh journal and compared on reopen
                — a mismatch is refused like a fingerprint mismatch.
                ``None`` skips the comparison (legacy callers).

        Raises:
            JournalError: wrong fingerprint, mismatched header metadata,
                newer schema version, or a duplicate commit frame
                (exactly-once violation).
        """
        path = os.fspath(path)
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        completed: set[int] = set()
        solutions: list[Solution] = []
        stats = JournalStats()
        frames = 0
        valid_end = 0
        recovered_meta: dict = dict(meta or {})
        if os.path.exists(path):
            with open(path, "rb") as fh:
                data = fh.read()
            offset = 0
            while True:
                frame = _read_frame(data, offset)
                if frame is None:
                    break
                payload, offset = frame
                if frames == 0:
                    _check_header(path, payload, fingerprint, meta)
                    recovered_meta = dict(payload.get("meta") or {})
                else:
                    _apply_record(path, payload, completed, solutions, stats)
                frames += 1
                valid_end = offset
            torn = len(data) - valid_end
            if torn:
                stats.torn_bytes = torn
                warnings.warn(
                    f"journal {path}: dropping {torn} torn trailing "
                    f"byte(s) left by a crash ({frames} valid frame(s) "
                    "recovered)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                with open(path, "r+b") as fh:
                    fh.truncate(valid_end)
                    fh.flush()
                    os.fsync(fh.fileno())
        journal = cls(
            path, fingerprint, completed, solutions, stats, recovered_meta
        )
        if frames == 0:
            # Fresh file (or one truncated inside the header): start over.
            journal._fh.truncate(0)
            header = {
                "type": "header",
                "version": JOURNAL_VERSION,
                "fingerprint": fingerprint,
            }
            if journal.meta:
                header["meta"] = journal.meta
            journal._append_locked(header)
        elif frames > compact_after:
            journal.compact()
        return journal

    # ------------------------------------------------------------------ #
    # Commits

    def commit(self, wi: int, solutions: list[Solution]) -> None:
        """Durably record one finished outer iteration.

        The frame is flushed and fsynced before returning: once this
        method returns, a crash at any later byte offset still resumes
        with ``wi`` marked done.

        Raises:
            JournalError: if ``wi`` was already committed (the caller's
                done-set should have prevented re-execution).
        """
        with self._lock:
            if wi in self.completed:
                raise JournalError(
                    f"journal {self.path}: outer iteration {wi} committed "
                    "twice — exactly-once protocol violated"
                )
            self._append_locked(
                {
                    "type": "commit",
                    "wi": int(wi),
                    "solutions": [[s.score, s.packed] for s in solutions],
                }
            )
            self.completed.add(int(wi))
            self.solutions = list(solutions)
            self.stats.commits += 1

    def seed_reducer(self, reducer: TopKReducer) -> None:
        """Re-inject recovered candidates into a fresh reducer."""
        reducer.seed(self.solutions)

    # ------------------------------------------------------------------ #
    # Compaction

    def compact(self) -> None:
        """Rewrite the log as header + one snapshot frame, atomically."""
        with self._lock:
            tmp = self.path + ".tmp"
            header = {
                "type": "header",
                "version": JOURNAL_VERSION,
                "fingerprint": self.fingerprint,
            }
            if self.meta:
                header["meta"] = self.meta
            with open(tmp, "wb") as fh:
                fh.write(_frame(header))
                fh.write(
                    _frame(
                        {
                            "type": "snapshot",
                            "completed": sorted(self.completed),
                            "solutions": [
                                [s.score, s.packed] for s in self.solutions
                            ],
                        }
                    )
                )
                fh.flush()
                os.fsync(fh.fileno())
            self._fh.close()
            os.replace(tmp, self.path)
            fsync_directory(os.path.dirname(self.path) or ".")
            self._fh = open(self.path, "ab")
            self.stats.compactions += 1

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "RoundJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------ #

    def _append_locked(self, record: dict) -> None:
        self._fh.write(_frame(record))
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def export_metrics(self, registry: MetricsRegistry) -> None:
        registry.set_gauge("epi4_journal_commits_total", float(self.stats.commits))
        registry.set_gauge("epi4_journal_replayed_total", float(self.stats.replayed))
        registry.set_gauge("epi4_journal_torn_bytes", float(self.stats.torn_bytes))
        registry.set_gauge(
            "epi4_journal_compactions_total", float(self.stats.compactions)
        )


# ---------------------------------------------------------------------- #
# Frame codec


def _frame(record: dict) -> bytes:
    payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
    return _PREAMBLE.pack(_MAGIC, len(payload), zlib.crc32(payload)) + payload


def _read_frame(data: bytes, offset: int) -> tuple[dict, int] | None:
    """Decode one frame at ``offset``; ``None`` on any damage.

    Damage — short preamble, wrong magic, absurd length, short payload,
    CRC mismatch, non-JSON payload — all mean the same thing here: the
    valid prefix ends before ``offset`` + this frame.
    """
    end = offset + _PREAMBLE.size
    if end > len(data):
        return None
    magic, length, crc = _PREAMBLE.unpack_from(data, offset)
    if magic != _MAGIC or length > _MAX_FRAME_BYTES:
        return None
    if end + length > len(data):
        return None
    payload = data[end:end + length]
    if zlib.crc32(payload) != crc:
        return None
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(record, dict):
        return None
    return record, end + length


def _check_header(
    path: str, record: dict, fingerprint: str, meta: dict | None = None
) -> None:
    if record.get("type") != "header":
        raise JournalError(f"journal {path}: first frame is not a header")
    version = record.get("version")
    if not isinstance(version, int) or version > JOURNAL_VERSION:
        raise JournalError(
            f"journal {path} has schema version {version!r}, newer than "
            f"the supported {JOURNAL_VERSION}; upgrade, or delete the "
            "journal to restart"
        )
    if record.get("fingerprint") != fingerprint:
        raise JournalError(
            f"journal {path} belongs to a different search (fingerprint "
            f"{record.get('fingerprint')!r}, expected {fingerprint!r}); "
            "delete it or change the path"
        )
    if meta is not None and dict(record.get("meta") or {}) != dict(meta):
        raise JournalError(
            f"journal {path} carries header metadata "
            f"{record.get('meta')!r}, expected {meta!r} (e.g. a different "
            "shard's journal at this path); delete it or change the path"
        )


def _apply_record(
    path: str,
    record: dict,
    completed: set[int],
    solutions: list[Solution],
    stats: JournalStats,
) -> None:
    rtype = record.get("type")
    if rtype == "commit":
        wi = int(record["wi"])
        if wi in completed:
            raise JournalError(
                f"journal {path}: outer iteration {wi} committed twice — "
                "exactly-once protocol violated"
            )
        completed.add(wi)
        solutions[:] = [
            Solution(score=float(s), packed=int(p))
            for s, p in record["solutions"]
        ]
        stats.replayed += 1
    elif rtype == "snapshot":
        completed.update(int(i) for i in record["completed"])
        solutions[:] = [
            Solution(score=float(s), packed=int(p))
            for s, p in record["solutions"]
        ]
    else:
        raise JournalError(
            f"journal {path}: unknown record type {rtype!r}"
        )
