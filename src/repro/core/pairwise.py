"""Low-order precomputation: ``indivPop`` and ``pairwPop`` (Algorithm 1).

Before the block loops start, the search precomputes, per phenotype class:

- the per-SNP genotype counts (``indivPop``) — first-order tables; and
- the full pairwise contingency tables (``pairwPop``) — second-order tables
  for **all** SNP pairs.

These feed the §3.3 completion chain (pairs complete triples, triples
complete quads) and the §3.4 XOR translation.  The paper measures this
phase at 0.15% of GPU time; it runs on the general-purpose cores.

Pair tables are stored as a dense ``(2, M, M, 3, 3)`` int32 array (both
triangles) so per-round gathers are single fancy-index operations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.contingency.complete import complete_pair, complete_single
from repro.datasets.encoding import EncodedDataset
from repro.tensor.and_popc import dense_dot_counts


@dataclass(frozen=True)
class LowOrderTables:
    """Precomputed first- and second-order tables for both classes.

    Attributes:
        singles: ``(2, M, 3)`` int64 — ``singles[cls, m, g]`` counts samples
            of class ``cls`` with genotype ``g`` at SNP ``m``.
        pairs: ``(2, M, M, 3, 3)`` int32 — full pairwise tables; symmetric
            under ``(a, b, ga, gb) -> (b, a, gb, ga)``.
    """

    singles: np.ndarray
    pairs: np.ndarray

    @property
    def n_snps(self) -> int:
        return int(self.singles.shape[1])

    @property
    def nbytes(self) -> int:
        """Device-resident footprint (each GPU stores a full copy, §3.6)."""
        return int(self.singles.nbytes + self.pairs.nbytes)


def indiv_pop(encoded: EncodedDataset) -> np.ndarray:
    """First-order tables: ``(2, M, 3)`` genotype counts per class.

    The stored ``AA``/``Aa`` plane popcounts give two of the three counts;
    the ``aa`` count is completed as ``N_class - AA - Aa``.
    """
    out = np.empty((2, encoded.n_snps, 3), dtype=np.int64)
    for cls in (0, 1):
        planes = encoded.class_matrix(cls)
        corner = planes.row_popcounts().reshape(encoded.n_snps, 2)
        out[cls] = complete_single(corner, encoded.class_sizes()[cls])
    return out


def pairw_pop(
    encoded: EncodedDataset, singles: np.ndarray | None = None
) -> LowOrderTables:
    """Second-order tables for all SNP pairs: ``(2, M, M, 3, 3)``.

    The ``{0,1}^2`` corners come from one plane-by-plane dot product per
    class (equivalent to AND+POPC over all plane pairs); completion fills
    the ``aa`` rows/columns from the singles.

    Args:
        encoded: the encoded dataset.
        singles: optional precomputed :func:`indiv_pop` output.

    Returns:
        :class:`LowOrderTables` with both orders.
    """
    m = encoded.n_snps
    if singles is None:
        singles = indiv_pop(encoded)
    pairs = np.empty((2, m, m, 3, 3), dtype=np.int32)
    for cls in (0, 1):
        planes = encoded.class_matrix(cls)
        # (2M, 2M) plane co-occurrence counts -> (M, M, 2, 2) corners.
        counts = dense_dot_counts(planes, planes)
        corner = counts.reshape(m, 2, m, 2).transpose(0, 2, 1, 3)
        full = complete_pair(
            corner,
            singles[cls][:, None, :],  # first-SNP marginal, broadcast over b
            singles[cls][None, :, :],  # second-SNP marginal, broadcast over a
        )
        pairs[cls] = full.astype(np.int32)
    return LowOrderTables(singles=singles, pairs=pairs)
