"""``tensorOp_4way``: the dominant kernel of the search.

Multiplying the pre-combined ``W x X`` operand by the pre-combined ``Y x Z``
operand yields, in one binary GEMM, the ``{0,1}^4`` corner — 16 of the 81
genotype counts — for every one of the ``B^4`` quads of an evaluation round.
The paper's profile attributes ~83% of GPU time to this (plus the 3-way)
kernel.
"""

from __future__ import annotations

import numpy as np

from repro.bitops.bitmatrix import BitMatrix
from repro.tensor.engine import BinaryTensorEngine


def tensorop_4way(
    engine: BinaryTensorEngine,
    combined_wx: BitMatrix,
    combined_yz: BitMatrix,
    block_size: int,
) -> np.ndarray:
    """Fourth-order corners for all quads of a round.

    Args:
        engine: binary tensor engine.
        combined_wx: :func:`~repro.bitops.combine_blocks` output for blocks
            ``W`` and ``X`` (``4*B^2`` rows).
        combined_yz: same for blocks ``Y`` and ``Z``.
        block_size: ``B``.

    Returns:
        ``(B, B, B, B, 2, 2, 2, 2)`` int64 corner counts indexed by
        ``(w, x, y, z, g_w, g_x, g_y, g_z)`` (positions within blocks).
    """
    b = block_size
    for name, op in (("combined_wx", combined_wx), ("combined_yz", combined_yz)):
        if op.n_rows != 4 * b * b:
            raise ValueError(
                f"{name} has {op.n_rows} rows, expected 4*B^2 = {4 * b * b}"
            )
    raw = engine.matmul_popcount(combined_wx, combined_yz)  # (4B^2, 4B^2)
    return _reshape_corner4(raw, b)


def tensorop_4way_batch(
    engine: BinaryTensorEngine,
    combined_wx: BitMatrix,
    combined_yz_list: list[BitMatrix],
    block_size: int,
) -> list[np.ndarray]:
    """Fourth-order corners for a whole round group in one fused launch.

    The group's rounds share ``combined_wx`` (Algorithm 1 holds ``W x X``
    fixed across the inner ``(Y, Z)`` loops), so the engine stacks the
    ``yz`` operands and issues a single wide GEMM — per-round results are
    bit-identical to :func:`tensorop_4way`.
    """
    b = block_size
    for name, op in [("combined_wx", combined_wx)] + [
        (f"combined_yz[{i}]", yz) for i, yz in enumerate(combined_yz_list)
    ]:
        if op.n_rows != 4 * b * b:
            raise ValueError(
                f"{name} has {op.n_rows} rows, expected 4*B^2 = {4 * b * b}"
            )
    raws = engine.matmul_popcount_batch(
        [(combined_wx, yz) for yz in combined_yz_list]
    )
    return [_reshape_corner4(raw, b) for raw in raws]


def _reshape_corner4(raw: np.ndarray, b: int) -> np.ndarray:
    corner = raw.reshape(b, 2, b, 2, b, 2, b, 2).transpose(0, 2, 4, 6, 1, 3, 5, 7)
    return np.ascontiguousarray(corner)
