"""``tensorOp_4way``: the dominant kernel of the search.

Multiplying the pre-combined ``W x X`` operand by the pre-combined ``Y x Z``
operand yields, in one binary GEMM, the ``{0,1}^4`` corner — 16 of the 81
genotype counts — for every one of the ``B^4`` quads of an evaluation round.
The paper's profile attributes ~83% of GPU time to this (plus the 3-way)
kernel.
"""

from __future__ import annotations

import numpy as np

from repro.bitops.bitmatrix import BitMatrix
from repro.tensor.engine import BinaryTensorEngine


def tensorop_4way(
    engine: BinaryTensorEngine,
    combined_wx: BitMatrix,
    combined_yz: BitMatrix,
    block_size: int,
) -> np.ndarray:
    """Fourth-order corners for all quads of a round.

    Args:
        engine: binary tensor engine.
        combined_wx: :func:`~repro.bitops.combine_blocks` output for blocks
            ``W`` and ``X`` (``4*B^2`` rows).
        combined_yz: same for blocks ``Y`` and ``Z``.
        block_size: ``B``.

    Returns:
        ``(B, B, B, B, 2, 2, 2, 2)`` int64 corner counts indexed by
        ``(w, x, y, z, g_w, g_x, g_y, g_z)`` (positions within blocks).
    """
    b = block_size
    for name, op in (("combined_wx", combined_wx), ("combined_yz", combined_yz)):
        if op.n_rows != 4 * b * b:
            raise ValueError(
                f"{name} has {op.n_rows} rows, expected 4*B^2 = {4 * b * b}"
            )
    raw = engine.matmul_popcount(combined_wx, combined_yz)  # (4B^2, 4B^2)
    corner = raw.reshape(b, 2, b, 2, b, 2, b, 2).transpose(0, 2, 4, 6, 1, 3, 5, 7)
    return np.ascontiguousarray(corner)
