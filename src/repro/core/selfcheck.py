"""Opt-in runtime self-verification of search results.

When enabled, every evaluation round's best quad is re-derived through an
*independent* integer path — the three-plane bitwise AND+POPC construction
(BitEpi-style), built from the stored two planes plus the complemented
``aa`` plane — and its score recomputed and compared against the tensor
pipeline's value.  Any disagreement aborts the search immediately.

This is the "paranoia mode" a multi-hour production run wants: it costs one
table construction per round (negligible next to ``B⁴`` completions) and
catches corruption anywhere in the combine → GEMM → translation →
completion → scoring chain.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.datasets.encoding import EncodedDataset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.apply_score import RoundOperands, ScoreMinFn


class SelfCheckError(AssertionError):
    """The tensor pipeline and the independent bitwise path disagreed."""


class CorruptOutputError(SelfCheckError):
    """A tensor output failed the cheap plausibility validation (a corner
    count outside ``[0, N_class]`` — impossible for a popcount)."""


def direct_quad_tables(
    encoded: EncodedDataset, quad: tuple[int, int, int, int]
) -> tuple[np.ndarray, np.ndarray]:
    """81-cell tables for one quad via pure bitwise AND+POPC.

    Independent of the GEMM/completion machinery: the ``aa`` plane is
    reconstructed as the complement of the stored two planes, and all 81
    four-way ANDs are popcounted directly.
    """
    tables = []
    for cls in (0, 1):
        planes = encoded.class_matrix(cls)
        dense = planes.to_bool()
        per_snp = []
        for snp in quad:
            p0 = dense[2 * snp]
            p1 = dense[2 * snp + 1]
            per_snp.append(np.stack([p0, p1, ~(p0 | p1)]))
        joint = (
            per_snp[0][:, None, None, None]
            & per_snp[1][None, :, None, None]
            & per_snp[2][None, None, :, None]
            & per_snp[3][None, None, None, :]
        )
        tables.append(joint.sum(axis=-1, dtype=np.int64))
    return tables[0], tables[1]


def validate_round_corners(
    operands: "RoundOperands", n_controls: int, n_cases: int
) -> None:
    """Cheap plausibility validation of one round's tensor outputs.

    Every corner entry is a popcount over one class's samples, so it must
    lie in ``[0, N_class]``.  This catches the silent-data-corruption
    fault model of :mod:`repro.device.faults` (and real bit-flips in a
    count) without the per-quad cost of the full self-check.

    Args:
        operands: a :class:`~repro.core.apply_score.RoundOperands`.
        n_controls: ``N0``.
        n_cases: ``N1``.

    Raises:
        CorruptOutputError: naming the offending corner array and class.
    """
    groups = {
        "corner4": operands.corner4,
        "corner3_wxy": operands.corner3_wxy,
        "corner3_wxz": operands.corner3_wxz,
        "corner3_wyz": operands.corner3_wyz,
        "corner3_xyz": operands.corner3_xyz,
    }
    for name, per_class in groups.items():
        for cls, bound in ((0, n_controls), (1, n_cases)):
            arr = per_class[cls]
            lo = int(arr.min())
            hi = int(arr.max())
            if lo < 0 or hi > bound:
                raise CorruptOutputError(
                    f"corrupted tensor output in {name} (class {cls}) at "
                    f"round offsets {operands.offsets}: counts span "
                    f"[{lo}, {hi}], outside the possible [0, {bound}]"
                )


def _block_planes(dense: np.ndarray, offset: int, block_size: int) -> np.ndarray:
    """``(B, 2, N)`` boolean planes of one block (row ``2*m + g`` layout)."""
    return dense[2 * offset : 2 * (offset + block_size)].reshape(
        block_size, 2, -1
    )


def direct_round_operands(
    encoded: EncodedDataset,
    offsets: tuple[int, int, int, int],
    block_size: int,
) -> "RoundOperands":
    """Recompute one round's tensor outputs through the independent
    bitwise path (no tensor engine, no combine kernel, no cache).

    Used by graceful degradation: when a round's outputs are detected as
    corrupt (or the self-check fails), the search re-executes the round
    from these operands.  The corners are exact integer popcounts, so
    feeding them through the *same* completion + scoring code yields
    bit-identical scores to an uncorrupted tensor-pipeline round — which
    is what keeps degraded runs bit-identical to fault-free ones.

    Args:
        encoded: the encoded dataset.
        offsets: global block offsets ``(wo, xo, yo, zo)``.
        block_size: ``B``.

    Returns:
        A :class:`~repro.core.apply_score.RoundOperands` equivalent to
        the tensor pipeline's (same shapes, dtypes and values).
    """
    from repro.core.apply_score import RoundOperands

    b = block_size
    wo, xo, yo, zo = offsets
    corner4: list[np.ndarray] = []
    c_wxy: list[np.ndarray] = []
    c_wxz: list[np.ndarray] = []
    c_wyz: list[np.ndarray] = []
    c_xyz: list[np.ndarray] = []
    for cls in (0, 1):
        dense = encoded.class_matrix(cls).to_bool()
        wb = _block_planes(dense, wo, b)
        xb = _block_planes(dense, xo, b)
        yb = _block_planes(dense, yo, b)
        zb = _block_planes(dense, zo, b)
        # Combined operands in the engine's row order (i, g_i, j, g_j).
        wx = (wb[:, :, None, None, :] & xb[None, None, :, :, :]).reshape(
            4 * b * b, -1
        )
        wy = (wb[:, :, None, None, :] & yb[None, None, :, :, :]).reshape(
            4 * b * b, -1
        )
        xy = (xb[:, :, None, None, :] & yb[None, None, :, :, :]).reshape(
            4 * b * b, -1
        )
        yz = (yb[:, :, None, None, :] & zb[None, None, :, :, :]).reshape(
            4 * b * b, -1
        )
        wx64 = wx.astype(np.int64)
        raw4 = wx64 @ yz.astype(np.int64).T  # (4B^2, 4B^2)
        corner4.append(
            np.ascontiguousarray(
                raw4.reshape(b, 2, b, 2, b, 2, b, 2).transpose(
                    0, 2, 4, 6, 1, 3, 5, 7
                )
            )
        )

        def corner3(pair: np.ndarray, tail: np.ndarray) -> np.ndarray:
            raw = pair.astype(np.int64) @ tail.reshape(2 * b, -1).astype(
                np.int64
            ).T  # (4B^2, 2B)
            out = raw.reshape(b, 2, b, 2, b, 2).transpose(0, 2, 4, 1, 3, 5)
            return np.ascontiguousarray(out, dtype=np.int32)

        c_wxy.append(corner3(wx, yb))
        c_wxz.append(corner3(wx, zb))
        c_wyz.append(corner3(wy, zb))
        c_xyz.append(corner3(xy, zb))
    return RoundOperands(
        corner4=(corner4[0], corner4[1]),
        corner3_wxy=(c_wxy[0], c_wxy[1]),
        corner3_wxz=(c_wxz[0], c_wxz[1]),
        corner3_wyz=(c_wyz[0], c_wyz[1]),
        corner3_xyz=(c_xyz[0], c_xyz[1]),
        offsets=(wo, xo, yo, zo),
        block_size=b,
    )


def verify_round_best(
    encoded: EncodedDataset,
    scores: np.ndarray,
    offsets: tuple[int, int, int, int],
    score_min_fn: "ScoreMinFn",
    *,
    atol: float = 1e-8,
    rtol: float = 1e-10,
) -> None:
    """Re-derive the round's best quad independently and compare scores.

    Args:
        encoded: the encoded dataset the search runs on.
        scores: the round's masked ``(B, B, B, B)`` score grid.
        offsets: the round's global block offsets.
        score_min_fn: the search's minimization-normalized score callable.

    Raises:
        SelfCheckError: if the independent path disagrees.
    """
    pos = int(np.argmin(scores))
    pipeline_score = float(scores.flat[pos])
    if not np.isfinite(pipeline_score):
        return  # fully-masked round: nothing to check
    b = scores.shape[0]
    wi, xi, yi, zi = np.unravel_index(pos, scores.shape)
    quad = (
        offsets[0] + int(wi),
        offsets[1] + int(xi),
        offsets[2] + int(yi),
        offsets[3] + int(zi),
    )
    t0, t1 = direct_quad_tables(encoded, quad)
    direct_score = float(score_min_fn(t0, t1, order=4))
    if not np.isclose(pipeline_score, direct_score, atol=atol, rtol=rtol):
        raise SelfCheckError(
            f"self-check failed for quad {quad} at round offsets {offsets}: "
            f"pipeline score {pipeline_score!r} vs independent bitwise score "
            f"{direct_score!r} — tensor pipeline corruption"
        )
