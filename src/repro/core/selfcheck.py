"""Opt-in runtime self-verification of search results.

When enabled, every evaluation round's best quad is re-derived through an
*independent* integer path — the three-plane bitwise AND+POPC construction
(BitEpi-style), built from the stored two planes plus the complemented
``aa`` plane — and its score recomputed and compared against the tensor
pipeline's value.  Any disagreement aborts the search immediately.

This is the "paranoia mode" a multi-hour production run wants: it costs one
table construction per round (negligible next to ``B⁴`` completions) and
catches corruption anywhere in the combine → GEMM → translation →
completion → scoring chain.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.encoding import EncodedDataset


class SelfCheckError(AssertionError):
    """The tensor pipeline and the independent bitwise path disagreed."""


def direct_quad_tables(
    encoded: EncodedDataset, quad: tuple[int, int, int, int]
) -> tuple[np.ndarray, np.ndarray]:
    """81-cell tables for one quad via pure bitwise AND+POPC.

    Independent of the GEMM/completion machinery: the ``aa`` plane is
    reconstructed as the complement of the stored two planes, and all 81
    four-way ANDs are popcounted directly.
    """
    tables = []
    for cls in (0, 1):
        planes = encoded.class_matrix(cls)
        dense = planes.to_bool()
        per_snp = []
        for snp in quad:
            p0 = dense[2 * snp]
            p1 = dense[2 * snp + 1]
            per_snp.append(np.stack([p0, p1, ~(p0 | p1)]))
        joint = (
            per_snp[0][:, None, None, None]
            & per_snp[1][None, :, None, None]
            & per_snp[2][None, None, :, None]
            & per_snp[3][None, None, None, :]
        )
        tables.append(joint.sum(axis=-1, dtype=np.int64))
    return tables[0], tables[1]


def verify_round_best(
    encoded: EncodedDataset,
    scores: np.ndarray,
    offsets: tuple[int, int, int, int],
    score_min_fn,
    *,
    atol: float = 1e-8,
    rtol: float = 1e-10,
) -> None:
    """Re-derive the round's best quad independently and compare scores.

    Args:
        encoded: the encoded dataset the search runs on.
        scores: the round's masked ``(B, B, B, B)`` score grid.
        offsets: the round's global block offsets.
        score_min_fn: the search's minimization-normalized score callable.

    Raises:
        SelfCheckError: if the independent path disagrees.
    """
    pos = int(np.argmin(scores))
    pipeline_score = float(scores.flat[pos])
    if not np.isfinite(pipeline_score):
        return  # fully-masked round: nothing to check
    b = scores.shape[0]
    wi, xi, yi, zi = np.unravel_index(pos, scores.shape)
    quad = (
        offsets[0] + int(wi),
        offsets[1] + int(xi),
        offsets[2] + int(yi),
        offsets[3] + int(zi),
    )
    t0, t1 = direct_quad_tables(encoded, quad)
    direct_score = float(score_min_fn(t0, t1, order=4))
    if not np.isclose(pipeline_score, direct_score, atol=atol, rtol=rtol):
        raise SelfCheckError(
            f"self-check failed for quad {quad} at round offsets {offsets}: "
            f"pipeline score {pipeline_score!r} vs independent bitwise score "
            f"{direct_score!r} — tensor pipeline corruption"
        )
