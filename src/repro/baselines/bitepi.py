"""BitEpi-style CPU bitwise baseline [2].

BitEpi represents each SNP as **three** bitvectors per phenotype class (one
per genotype — no derivation tricks) and builds each quad's 81-cell table by
AND-ing four bitvectors and popcounting, entirely on CPU.  We reproduce that
cost structure:

- per quad, the ``(w, x)`` and ``(y, z)`` pair planes are AND-combined
  (9 + 9 word-rows), then all 81 cross-ANDs are popcounted;
- pair planes for a fixed ``(w, x)`` are reused across the inner loops,
  mirroring BitEpi's loop nesting.

This is the "multicore CPU, bitwise" rung of Table 2 — orders of magnitude
slower than the tensor pipeline but far faster than the dense baseline.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.bitops.bitmatrix import BitMatrix
from repro.bitops.popcount import popcount_u64
from repro.core.solution import Solution
from repro.datasets.dataset import Dataset
from repro.scoring.base import ScoreFunction, normalized_for_minimization
from repro.scoring.k2 import K2Score


def _three_planes(genotypes_class: np.ndarray) -> np.ndarray:
    """Pack ``(M, N_c)`` genotypes into ``(M, 3, W)`` uint64 bit-planes."""
    m, _ = genotypes_class.shape
    planes = np.empty((3 * m, genotypes_class.shape[1]), dtype=np.bool_)
    for g in (0, 1, 2):
        planes[g::3] = genotypes_class == g
    packed = BitMatrix.from_bool(planes)
    return packed.data.reshape(m, 3, packed.n_words)


class BitEpiBaseline:
    """CPU bitwise exhaustive fourth-order search (three planes per SNP)."""

    name = "bitepi"

    def __init__(self, score: ScoreFunction | None = None) -> None:
        self._score = score or K2Score()
        self._score_min = normalized_for_minimization(self._score)

    def search(self, dataset: Dataset) -> Solution:
        """Evaluate every quad with bitwise AND+POPC table construction."""
        if dataset.n_snps < 4:
            raise ValueError(f"need at least 4 SNPs, got {dataset.n_snps}")
        planes = [
            _three_planes(dataset.class_genotypes(cls)) for cls in (0, 1)
        ]
        best = Solution.worst()
        m = dataset.n_snps
        for w, x in combinations(range(m), 2):
            # Reused across all (y, z): the 9 (g_w, g_x) AND planes per class.
            wx = [
                (planes[cls][w][:, None, :] & planes[cls][x][None, :, :]).reshape(
                    9, -1
                )
                for cls in (0, 1)
            ]
            for y, z in combinations(range(x + 1, m), 2):
                tables = []
                for cls in (0, 1):
                    yz = (
                        planes[cls][y][:, None, :] & planes[cls][z][None, :, :]
                    ).reshape(9, -1)
                    cross = wx[cls][:, None, :] & yz[None, :, :]
                    counts = popcount_u64(cross).sum(axis=-1)
                    tables.append(counts.reshape(3, 3, 3, 3))
                score = float(self._score_min(tables[0], tables[1], order=4))
                best = min(best, Solution.from_quad((w, x, y, z), score))
        return best

    def count_table(
        self, dataset: Dataset, quad: tuple[int, int, int, int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Bitwise 81-cell tables for a single quad (test hook)."""
        tables = []
        for cls in (0, 1):
            planes = _three_planes(dataset.class_genotypes(cls))
            w, x, y, z = quad
            wx = (planes[w][:, None, :] & planes[x][None, :, :]).reshape(9, -1)
            yz = (planes[y][:, None, :] & planes[z][None, :, :]).reshape(9, -1)
            cross = wx[:, None, :] & yz[None, :, :]
            tables.append(
                popcount_u64(cross).sum(axis=-1).reshape(3, 3, 3, 3)
            )
        return tables[0], tables[1]
