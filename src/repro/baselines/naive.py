"""Dense-histogram baseline: the clearest possible correct implementation.

For every 4-combination, the joint genotype of each sample is computed as a
base-3 code and histogrammed.  ``O(C(M,4) * N)`` with large constants — it
exists as the readability-first oracle and the slowest rung of the Table 2
performance ladder.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.contingency.brute_force import contingency_table
from repro.core.solution import Solution
from repro.datasets.dataset import Dataset
from repro.scoring.base import ScoreFunction, normalized_for_minimization
from repro.scoring.k2 import K2Score


class NaiveBaseline:
    """Dense per-quad histogram search."""

    name = "naive"

    def __init__(self, score: ScoreFunction | None = None) -> None:
        self._score = score or K2Score()
        self._score_min = normalized_for_minimization(self._score)

    def search(self, dataset: Dataset) -> Solution:
        """Exhaustively evaluate every quad; returns the best solution."""
        if dataset.n_snps < 4:
            raise ValueError(f"need at least 4 SNPs, got {dataset.n_snps}")
        genotypes = [dataset.class_genotypes(cls) for cls in (0, 1)]
        best = Solution.worst()
        for quad in combinations(range(dataset.n_snps), 4):
            idx = list(quad)
            t0 = contingency_table(genotypes[0][idx])
            t1 = contingency_table(genotypes[1][idx])
            score = float(self._score_min(t0, t1, order=4))
            best = min(best, Solution.from_quad(quad, score))
        return best

    def quads_per_second(self, dataset: Dataset, n_quads: int = 200) -> float:
        """Throughput probe: quads evaluated per second (first ``n_quads``)."""
        import time

        genotypes = [dataset.class_genotypes(cls) for cls in (0, 1)]
        quads = []
        for i, quad in enumerate(combinations(range(dataset.n_snps), 4)):
            if i >= n_quads:
                break
            quads.append(quad)
        start = time.perf_counter()
        for quad in quads:
            idx = list(quad)
            t0 = contingency_table(genotypes[0][idx])
            t1 = contingency_table(genotypes[1][idx])
            self._score_min(t0, t1, order=4)
        elapsed = time.perf_counter() - start
        return len(quads) / elapsed if elapsed > 0 else float("inf")
