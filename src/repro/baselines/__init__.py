"""Baseline fourth-order detectors the paper compares against (Table 2, §5).

- :mod:`repro.baselines.bitepi` — BitEpi-style CPU bitwise search [2]:
  three bit-planes per SNP per class, per-quad AND+POPC.
- :mod:`repro.baselines.single_phase` — the single-phase third-order
  precompute strategy of the SYCL approach [15], reproducing its memory
  blow-up with ``M``.
- :mod:`repro.baselines.naive` — dense-histogram reference (no bit tricks).

All return the same ``(best quad, score)`` as the tensor pipeline; the test
suite checks the four implementations agree.
"""

from repro.baselines.bitepi import BitEpiBaseline
from repro.baselines.naive import NaiveBaseline
from repro.baselines.single_phase import SinglePhaseBaseline, single_phase_memory_bytes

__all__ = [
    "BitEpiBaseline",
    "NaiveBaseline",
    "SinglePhaseBaseline",
    "single_phase_memory_bytes",
]
