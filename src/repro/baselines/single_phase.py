"""Single-phase third-order precompute baseline (the [15] strategy).

The SYCL state of the art precomputes contingency tables for **all**
``C(M, 3)`` third-order combinations at application start and derives
fourth-order tables from them during the search.  That costs

    2 classes * C(M, 3) * 27 cells * 4 bytes

of device memory — fine at 250 SNPs (~21 MB) but ~309 GB at 2048 SNPs,
which is the limitation Epi4Tensor's three-phase scheme removes (§3.3, §5).
This module reproduces both the strategy and the blow-up: construction
refuses to start if the table store would exceed the memory budget.
"""

from __future__ import annotations

from itertools import combinations
from math import comb

import numpy as np

from repro.contingency.brute_force import contingency_table
from repro.core.solution import Solution
from repro.datasets.dataset import Dataset
from repro.scoring.base import ScoreFunction, normalized_for_minimization
from repro.scoring.k2 import K2Score


def single_phase_memory_bytes(n_snps: int) -> int:
    """Device memory the single-phase third-order store needs, in bytes."""
    if n_snps < 3:
        raise ValueError(f"need at least 3 SNPs, got {n_snps}")
    return 2 * comb(n_snps, 3) * 27 * 4


def _triplet_rank(a: int, b: int, c: int) -> int:
    """Colex rank of a sorted triplet — index into the flat table store."""
    return comb(c, 3) + comb(b, 2) + comb(a, 1)


class SinglePhaseBaseline:
    """Fourth-order search over a single-phase all-triplets table store.

    Args:
        score: association score (K2 by default).
        memory_limit_bytes: simulated device memory; construction raises
            ``MemoryError`` when the triplet store would not fit — exactly
            the failure mode the paper describes for [15] on large ``M``.
    """

    name = "single_phase"

    def __init__(
        self,
        score: ScoreFunction | None = None,
        memory_limit_bytes: int = 2 * 1024**3,
    ) -> None:
        self._score = score or K2Score()
        self._score_min = normalized_for_minimization(self._score)
        self.memory_limit_bytes = memory_limit_bytes

    # ------------------------------------------------------------------ #

    def build_triplet_store(self, dataset: Dataset) -> np.ndarray:
        """Phase 1: tables for all ``C(M, 3)`` triplets, ``(2, T, 27)`` int32.

        Raises:
            MemoryError: if the store exceeds ``memory_limit_bytes``.
        """
        m = dataset.n_snps
        need = single_phase_memory_bytes(m)
        if need > self.memory_limit_bytes:
            raise MemoryError(
                f"single-phase third-order store needs {need / 1e9:.2f} GB for "
                f"M={m} SNPs, exceeding the {self.memory_limit_bytes / 1e9:.2f} GB "
                "device budget (the limitation Epi4Tensor's multi-phase "
                "construction removes)"
            )
        store = np.empty((2, comb(m, 3), 27), dtype=np.int32)
        genotypes = [dataset.class_genotypes(cls) for cls in (0, 1)]
        # The store is indexed in colexicographic order (`_triplet_rank`),
        # a perfect rank for sorted triplets that needs no lookup table.
        for a, b, c in combinations(range(m), 3):
            rank = _triplet_rank(a, b, c)
            for cls in (0, 1):
                store[cls, rank] = contingency_table(
                    genotypes[cls][[a, b, c]]
                ).reshape(27)
        return store

    def search(self, dataset: Dataset) -> Solution:
        """Phase 2: fourth-order search deriving cells from the store.

        The 16-count corner per quad is still counted directly (as in [15],
        bitwise on device); the remaining 65 cells come from the four
        triplet tables via inclusion-exclusion.
        """
        if dataset.n_snps < 4:
            raise ValueError(f"need at least 4 SNPs, got {dataset.n_snps}")
        from repro.contingency.complete import complete_quad
        from repro.datasets.encoding import encode_class
        from repro.tensor.and_popc import dense_dot_counts

        store = self.build_triplet_store(dataset)
        planes = [
            encode_class(dataset.class_genotypes(cls)) for cls in (0, 1)
        ]
        best = Solution.worst()
        for quad in combinations(range(dataset.n_snps), 4):
            w, x, y, z = quad
            tables = []
            for cls in (0, 1):
                rows = planes[cls].data
                wx = BitRowsPair(rows, w, x)
                yz = BitRowsPair(rows, y, z)
                corner = dense_dot_counts(
                    wx.as_bitmatrix(planes[cls].n_bits),
                    yz.as_bitmatrix(planes[cls].n_bits),
                ).reshape(2, 2, 2, 2)
                t = store[cls]
                tables.append(
                    complete_quad(
                        corner,
                        t[_triplet_rank(w, x, y)].reshape(3, 3, 3),
                        t[_triplet_rank(w, x, z)].reshape(3, 3, 3),
                        t[_triplet_rank(w, y, z)].reshape(3, 3, 3),
                        t[_triplet_rank(x, y, z)].reshape(3, 3, 3),
                    )
                )
            score = float(self._score_min(tables[0], tables[1], order=4))
            best = min(best, Solution.from_quad(quad, score))
        return best


class BitRowsPair:
    """Four AND-combined bit-plane rows for one SNP pair (helper)."""

    def __init__(self, rows: np.ndarray, a: int, b: int) -> None:
        first = rows[2 * a : 2 * a + 2]
        second = rows[2 * b : 2 * b + 2]
        self.data = (first[:, None, :] & second[None, :, :]).reshape(4, -1)

    def as_bitmatrix(self, n_bits: int):
        from repro.bitops.bitmatrix import BitMatrix

        return BitMatrix(data=self.data, n_bits=n_bits)
