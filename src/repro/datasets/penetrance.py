"""Penetrance-model library for simulating epistatic architectures.

A fourth-order penetrance model assigns a disease probability to each of
the 81 joint genotypes of four causal loci.  This module provides the
standard architectures used in epistasis-detection power studies plus an
arbitrary-table constructor, a generator that plants a model into an
otherwise-noise dataset, and analysis helpers (marginal effect per locus)
used to characterize how "purely epistatic" a model is.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.dataset import Dataset
from repro.datasets.synthetic import generate_random_dataset


@dataclass(frozen=True)
class PenetranceModel:
    """Disease probability per joint genotype of four causal SNPs.

    Attributes:
        table: ``(3, 3, 3, 3)`` float array of disease probabilities.
        name: model label (for reports).
    """

    table: np.ndarray
    name: str = "custom"

    def __post_init__(self) -> None:
        t = np.asarray(self.table, dtype=np.float64)
        if t.shape != (3, 3, 3, 3):
            raise ValueError(f"table must be (3,3,3,3), got {t.shape}")
        if t.size and (t.min() < 0.0 or t.max() > 1.0):
            raise ValueError("penetrance values must lie in [0, 1]")
        t = t.copy()
        t.setflags(write=False)
        object.__setattr__(self, "table", t)

    # ------------------------------------------------------------------ #
    # Standard architectures

    @classmethod
    def threshold(
        cls, baseline: float = 0.25, effect_size: float = 2.0
    ) -> "PenetranceModel":
        """Risk iff every locus carries >= 1 minor allele."""
        cls._check_effect(baseline, effect_size)
        table = np.full((3, 3, 3, 3), baseline)
        table[1:, 1:, 1:, 1:] = min(baseline * effect_size, 0.95)
        return cls(table=table, name="threshold")

    @classmethod
    def parity(
        cls, baseline: float = 0.25, effect_size: float = 2.0
    ) -> "PenetranceModel":
        """Risk iff an even number of loci carry a minor allele — a (near)
        pure fourth-order interaction with vanishing marginals."""
        cls._check_effect(baseline, effect_size)
        g = np.indices((3, 3, 3, 3))
        carriers = (g >= 1).sum(axis=0)
        risk = carriers % 2 == 0
        return cls(
            table=np.where(risk, min(baseline * effect_size, 0.95), baseline),
            name="parity",
        )

    @classmethod
    def multiplicative(
        cls, baseline: float = 0.1, per_allele_factor: float = 1.25
    ) -> "PenetranceModel":
        """Risk multiplies per minor allele across loci (log-additive; a
        *marginal-heavy* architecture, the easy case for filters)."""
        if per_allele_factor <= 0:
            raise ValueError("per_allele_factor must be > 0")
        g = np.indices((3, 3, 3, 3))
        alleles = g.sum(axis=0)
        table = np.minimum(baseline * per_allele_factor**alleles, 0.95)
        return cls(table=table, name="multiplicative")

    @staticmethod
    def _check_effect(baseline: float, effect_size: float) -> None:
        if not 0.0 < baseline < 1.0:
            raise ValueError(f"baseline must be in (0, 1), got {baseline}")
        if effect_size <= 0:
            raise ValueError(f"effect_size must be > 0, got {effect_size}")

    # ------------------------------------------------------------------ #
    # Analysis

    def marginal_effect(
        self, locus: int, genotype_probs: np.ndarray | None = None
    ) -> float:
        """Marginal penetrance spread of one locus.

        The max-min range of ``P(disease | g_locus)`` with the other loci
        marginalized under ``genotype_probs`` (per-locus genotype
        distribution, uniform Hardy-Weinberg-ish default).  Pure
        interactions have (near-)zero marginal effect at every locus.
        """
        if not 0 <= locus < 4:
            raise ValueError(f"locus must be in [0, 4), got {locus}")
        probs = (
            np.full((4, 3), 1.0 / 3.0)
            if genotype_probs is None
            else np.asarray(genotype_probs, dtype=np.float64)
        )
        if probs.shape != (4, 3):
            raise ValueError(f"genotype_probs must be (4, 3), got {probs.shape}")
        others = [i for i in range(4) if i != locus]
        weights = 1.0
        for axis_rank, i in enumerate(others):
            shape = [1, 1, 1]
            shape[axis_rank] = 3
            weights = weights * probs[i].reshape(shape)
        table = np.moveaxis(self.table, locus, 0)  # (3, 3, 3, 3) locus-first
        marginal = (table * weights[None]).sum(axis=(1, 2, 3))
        return float(marginal.max() - marginal.min())

    def expected_prevalence(
        self, genotype_probs: np.ndarray | None = None
    ) -> float:
        """Population disease probability under the genotype distribution."""
        probs = (
            np.full((4, 3), 1.0 / 3.0)
            if genotype_probs is None
            else np.asarray(genotype_probs, dtype=np.float64)
        )
        joint = (
            probs[0][:, None, None, None]
            * probs[1][None, :, None, None]
            * probs[2][None, None, :, None]
            * probs[3][None, None, None, :]
        )
        return float((self.table * joint).sum())


def generate_from_penetrance(
    n_snps: int,
    n_samples: int,
    model: PenetranceModel,
    *,
    interacting_snps: tuple[int, int, int, int] = (0, 1, 2, 3),
    maf_range: tuple[float, float] = (0.2, 0.4),
    seed: int | None = None,
) -> tuple[Dataset, tuple[int, int, int, int]]:
    """Plant a penetrance model into a random-genotype dataset.

    Args:
        n_snps: total SNPs (>= 4); non-causal SNPs are pure noise.
        n_samples: samples to draw.
        model: the penetrance architecture.
        interacting_snps: indices of the four causal loci.
        maf_range: per-SNP minor allele frequency bounds.
        seed: RNG seed.

    Returns:
        ``(dataset, sorted causal quad)``.
    """
    quad = tuple(sorted(interacting_snps))
    if len(set(quad)) != 4 or quad[0] < 0 or quad[-1] >= n_snps:
        raise ValueError(f"interacting_snps must be 4 distinct indices < {n_snps}")
    rng = np.random.default_rng(seed)
    base = generate_random_dataset(
        n_snps, n_samples, maf_range=maf_range, seed=rng.integers(2**31)
    )
    g = np.asarray(base.genotypes)
    prob = model.table[g[quad[0]], g[quad[1]], g[quad[2]], g[quad[3]]]
    phenotypes = rng.random(n_samples) < prob
    if phenotypes.all():
        phenotypes[rng.integers(n_samples)] = False
    if not phenotypes.any():
        phenotypes[rng.integers(n_samples)] = True
    return (
        Dataset(genotypes=g.copy(), phenotypes=phenotypes, snp_names=base.snp_names),
        quad,
    )
