"""Synthetic dataset generators.

Two generators are provided:

- :func:`generate_random_dataset` mirrors the paper's evaluation workloads
  (§4.3): uniformly random genotypes, half cases and half controls.  The
  paper notes that "the type and the volume of operations performed does not
  depend on the particular genotypic data", so random content is sufficient
  for performance studies.
- :func:`generate_epistatic_dataset` plants a ground-truth fourth-order
  interaction via a penetrance model, for accuracy/power experiments (the
  use case motivating the paper's introduction).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import Dataset


def generate_random_dataset(
    n_snps: int,
    n_samples: int,
    *,
    case_fraction: float = 0.5,
    maf_range: tuple[float, float] = (0.05, 0.5),
    seed: int | None = None,
) -> Dataset:
    """Generate a random case-control dataset.

    Genotypes are drawn per SNP under Hardy-Weinberg equilibrium with a minor
    allele frequency (MAF) sampled uniformly from ``maf_range``; phenotypes
    carry no signal.  With the default ``case_fraction=0.5`` this matches the
    paper's synthetic datasets ("All these datasets have half samples of each
    kind").

    Args:
        n_snps: number of SNPs ``M``.
        n_samples: number of samples ``N``.
        case_fraction: fraction of samples labelled as cases.
        maf_range: ``(low, high)`` bounds for per-SNP minor allele frequency.
        seed: RNG seed for reproducibility.

    Returns:
        A :class:`~repro.datasets.Dataset`.
    """
    if not 0.0 < case_fraction < 1.0:
        raise ValueError(f"case_fraction must be in (0, 1), got {case_fraction}")
    lo, hi = maf_range
    if not 0.0 < lo <= hi <= 0.5:
        raise ValueError(f"maf_range must satisfy 0 < low <= high <= 0.5, got {maf_range}")
    rng = np.random.default_rng(seed)
    maf = rng.uniform(lo, hi, size=(n_snps, 1))
    # Hardy-Weinberg genotype probabilities: P(aa)=maf^2, P(Aa)=2*maf*(1-maf).
    p_aa = maf**2
    p_het = 2.0 * maf * (1.0 - maf)
    u = rng.random((n_snps, n_samples))
    genotypes = np.zeros((n_snps, n_samples), dtype=np.int8)
    genotypes[u < p_het] = 1
    genotypes[u >= 1.0 - p_aa] = 2

    n_cases = int(round(n_samples * case_fraction))
    phenotypes = np.zeros(n_samples, dtype=np.bool_)
    phenotypes[:n_cases] = True
    rng.shuffle(phenotypes)
    return Dataset(genotypes=genotypes, phenotypes=phenotypes)


def generate_epistatic_dataset(
    n_snps: int,
    n_samples: int,
    *,
    interacting_snps: tuple[int, int, int, int] = (0, 1, 2, 3),
    effect_size: float = 2.0,
    baseline_risk: float = 0.3,
    maf_range: tuple[float, float] = (0.2, 0.4),
    model: str = "threshold",
    seed: int | None = None,
) -> tuple[Dataset, tuple[int, int, int, int]]:
    """Generate a dataset containing one planted fourth-order interaction.

    Two penetrance models are available:

    - ``"threshold"``: elevated disease probability for samples carrying at
      least one minor allele at *every* interacting locus.  Easy to detect,
      but leaks marginal (single-SNP) signal.
    - ``"parity"``: elevated risk when the number of minor-allele-carrying
      causal loci is even — a (near) *pure* fourth-order interaction whose
      marginal effects vanish to first order, the textbook case where only
      high-order search works.

    All other SNPs are pure noise.  The case/control balance is whatever the
    penetrance model produces, so the dataset exercises the unequal
    ``N0 != N1`` code paths.

    Args:
        n_snps: number of SNPs ``M`` (must be >= 4).
        n_samples: number of samples ``N``.
        interacting_snps: indices of the four causal SNPs (must be distinct).
        effect_size: multiplicative risk for risk-aligned genotypes (>1 makes
            the interaction detectable; larger is easier).
        baseline_risk: disease probability for non-risk genotypes.
        maf_range: MAF bounds (kept away from the extremes so the interacting
            genotypes actually occur).
        model: ``"threshold"`` or ``"parity"`` (see above).
        seed: RNG seed.

    Returns:
        ``(dataset, interacting_snps)``.
    """
    if n_snps < 4:
        raise ValueError(f"need at least 4 SNPs, got {n_snps}")
    quad = tuple(sorted(interacting_snps))
    if len(set(quad)) != 4 or quad[-1] >= n_snps or quad[0] < 0:
        raise ValueError(f"interacting_snps must be 4 distinct indices < {n_snps}")
    if effect_size <= 0:
        raise ValueError(f"effect_size must be > 0, got {effect_size}")
    if not 0.0 < baseline_risk < 1.0:
        raise ValueError(f"baseline_risk must be in (0, 1), got {baseline_risk}")
    if model not in ("threshold", "parity"):
        raise ValueError(f"model must be 'threshold' or 'parity', got {model!r}")

    rng = np.random.default_rng(seed)
    base = generate_random_dataset(
        n_snps, n_samples, maf_range=maf_range, seed=rng.integers(2**31)
    )
    g = np.asarray(base.genotypes)
    if model == "threshold":
        # Risk-aligned: >=1 minor allele at each of the four causal loci.
        risk = np.ones(n_samples, dtype=bool)
        for snp in quad:
            risk &= g[snp] >= 1
    else:
        # Risk-aligned: an even number of the causal loci carry a minor
        # allele — no first-order marginal effect.
        carriers = np.zeros(n_samples, dtype=np.int64)
        for snp in quad:
            carriers += g[snp] >= 1
        risk = carriers % 2 == 0
    prob = np.where(risk, np.minimum(baseline_risk * effect_size, 0.95), baseline_risk)
    phenotypes = rng.random(n_samples) < prob
    # Guarantee both classes are non-empty so encoding never degenerates.
    if phenotypes.all():
        phenotypes[rng.integers(n_samples)] = False
    if not phenotypes.any():
        phenotypes[rng.integers(n_samples)] = True
    return Dataset(genotypes=g.copy(), phenotypes=phenotypes), quad
