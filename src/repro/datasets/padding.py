"""SNP-dimension padding helpers.

The block-combination scheme (§3.2) requires the SNP count to be a multiple
of the block size ``B``; datasets that are not are padded with constant
(all-``aa``) SNPs.  Padded SNPs never carry set bits in the stored bit-planes
and are excluded from score reduction by index filtering.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.dataset import Dataset


def padded_snp_count(n_snps: int, block_size: int) -> int:
    """Smallest multiple of ``block_size`` >= ``n_snps``."""
    if block_size <= 0:
        raise ValueError(f"block_size must be > 0, got {block_size}")
    if n_snps <= 0:
        raise ValueError(f"n_snps must be > 0, got {n_snps}")
    return ((n_snps + block_size - 1) // block_size) * block_size


def pad_snps(dataset: Dataset, block_size: int) -> Dataset:
    """Return a dataset padded with constant ``aa`` SNPs to a block multiple.

    If ``dataset.n_snps`` is already a multiple of ``block_size`` the dataset
    is returned unchanged.
    """
    target = padded_snp_count(dataset.n_snps, block_size)
    if target == dataset.n_snps:
        return dataset
    pad = np.full((target - dataset.n_snps, dataset.n_samples), 2, dtype=np.int8)
    genotypes = np.vstack([dataset.genotypes, pad])
    names = dataset.snp_names + tuple(
        f"__pad{i}" for i in range(target - dataset.n_snps)
    )
    return Dataset(
        genotypes=genotypes, phenotypes=dataset.phenotypes.copy(), snp_names=names
    )
