"""Sample resampling: pilot subsets and bootstrap stability analysis.

Two practical companions to an exhaustive search:

- :func:`subsample` draws a smaller stratified dataset for pilot runs —
  the paper's throughput scales with ``N``, so a 10x-smaller pilot bounds
  a full run's cost while preserving class balance.
- :func:`bootstrap_best_quad` measures how *stable* a detected quad is:
  the search is repeated on bootstrap resamples of the samples, and the
  fraction of resamples in which the same quad wins is its stability
  (fragile winners are one genotyping artifact away from disappearing).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.datasets.dataset import Dataset


def subsample(
    dataset: Dataset,
    n_samples: int,
    *,
    stratified: bool = True,
    seed: int | None = None,
) -> Dataset:
    """Draw a random sample subset (without replacement).

    Args:
        dataset: source dataset.
        n_samples: target size (must not exceed the source).
        stratified: preserve the case/control proportion (on by default —
            unstratified subsampling of unbalanced studies silently skews
            the score's null).
        seed: RNG seed.

    Returns:
        A new :class:`Dataset` over the selected columns.
    """
    if not 2 <= n_samples <= dataset.n_samples:
        raise ValueError(
            f"n_samples must be in [2, {dataset.n_samples}], got {n_samples}"
        )
    rng = np.random.default_rng(seed)
    if stratified:
        cases = np.flatnonzero(dataset.phenotypes)
        controls = np.flatnonzero(~dataset.phenotypes)
        n_cases = int(round(n_samples * cases.size / dataset.n_samples))
        n_cases = min(max(n_cases, 1), n_samples - 1)
        chosen = np.concatenate(
            [
                rng.choice(cases, size=n_cases, replace=False),
                rng.choice(controls, size=n_samples - n_cases, replace=False),
            ]
        )
    else:
        chosen = rng.choice(dataset.n_samples, size=n_samples, replace=False)
    chosen.sort()
    return Dataset(
        genotypes=dataset.genotypes[:, chosen].copy(),
        phenotypes=dataset.phenotypes[chosen].copy(),
        snp_names=dataset.snp_names,
    )


@dataclass(frozen=True)
class BootstrapResult:
    """Outcome of :func:`bootstrap_best_quad`.

    Attributes:
        observed_quad: winner on the original dataset.
        stability: fraction of resamples where ``observed_quad`` won.
        winner_counts: win counts per quad across resamples.
    """

    observed_quad: tuple[int, int, int, int]
    stability: float
    winner_counts: dict[tuple[int, int, int, int], int]


def bootstrap_best_quad(
    dataset: Dataset,
    *,
    n_bootstrap: int = 20,
    block_size: int = 8,
    score: str = "k2",
    seed: int | None = None,
) -> BootstrapResult:
    """Bootstrap stability of the best quad.

    Each replicate resamples the *samples* with replacement (class labels
    travel with their columns) and reruns the full search.

    Args:
        dataset: the dataset.
        n_bootstrap: number of resamples.
        block_size / score: forwarded to the search.
        seed: RNG seed.
    """
    from repro.core.search import Epi4TensorSearch, SearchConfig

    if n_bootstrap < 1:
        raise ValueError(f"n_bootstrap must be >= 1, got {n_bootstrap}")
    config = SearchConfig(block_size=block_size, score=score)
    observed = Epi4TensorSearch(dataset, config).run().best_quad
    rng = np.random.default_rng(seed)
    counts: Counter[tuple[int, int, int, int]] = Counter()
    for _ in range(n_bootstrap):
        idx = rng.integers(0, dataset.n_samples, size=dataset.n_samples)
        # Bootstrap must keep both classes non-empty for the score to exist.
        if dataset.phenotypes[idx].all() or not dataset.phenotypes[idx].any():
            idx[0] = int(np.flatnonzero(~dataset.phenotypes)[0])
            idx[1] = int(np.flatnonzero(dataset.phenotypes)[0])
        replicate = Dataset(
            genotypes=dataset.genotypes[:, idx].copy(),
            phenotypes=dataset.phenotypes[idx].copy(),
            snp_names=dataset.snp_names,
        )
        counts[Epi4TensorSearch(replicate, config).run().best_quad] += 1
    return BootstrapResult(
        observed_quad=observed,
        stability=counts[observed] / n_bootstrap,
        winner_counts=dict(counts),
    )
