"""Case-control SNP dataset model, synthetic generation, encoding and I/O.

The public entry points are:

- :class:`repro.datasets.Dataset` — genotype matrix + phenotype vector.
- :func:`repro.datasets.generate_random_dataset` — the paper's synthetic
  workloads (uniform random genotypes, half cases / half controls).
- :func:`repro.datasets.generate_epistatic_dataset` — datasets with a planted
  fourth-order interaction, for detection-power experiments.
- :func:`repro.datasets.encode_dataset` — BOOST-style binarization into two
  bit-planes per SNP per phenotype class (paper §3.1).
"""

from repro.datasets.dataset import Dataset
from repro.datasets.encoding import EncodedDataset, encode_dataset
from repro.datasets.io import load_dataset, load_dataset_csv, save_dataset, save_dataset_csv
from repro.datasets.padding import pad_snps
from repro.datasets.penetrance import PenetranceModel, generate_from_penetrance
from repro.datasets.plink import load_plink, save_plink
from repro.datasets.synthetic import (
    generate_epistatic_dataset,
    generate_random_dataset,
)

__all__ = [
    "Dataset",
    "EncodedDataset",
    "PenetranceModel",
    "encode_dataset",
    "generate_epistatic_dataset",
    "generate_from_penetrance",
    "generate_random_dataset",
    "load_dataset",
    "load_dataset_csv",
    "load_plink",
    "pad_snps",
    "save_dataset",
    "save_dataset_csv",
    "save_plink",
]
