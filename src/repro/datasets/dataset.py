"""The case-control dataset model.

A dataset is an ``(M, N)`` genotype matrix over ``{0, 1, 2}`` (copies of the
minor allele: ``0 = AA`` homozygous major, ``1 = Aa`` heterozygous,
``2 = aa`` homozygous minor) plus an ``(N,)`` binary phenotype vector
(``0 = control``, ``1 = case``).  This is the same abstraction the paper
inherits from BOOST [24].
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Number of genotype states per SNP (AA / Aa / aa).
N_GENOTYPES = 3

#: Genotype codes, for readability at call sites.
GENOTYPE_AA = 0
GENOTYPE_Aa = 1
GENOTYPE_aa = 2


@dataclass(frozen=True)
class Dataset:
    """An immutable case-control SNP dataset.

    Attributes:
        genotypes: ``(M, N)`` ``int8`` array with values in ``{0, 1, 2}``.
            Rows are SNPs, columns are samples.
        phenotypes: ``(N,)`` ``bool`` array; ``True`` marks a case.
        snp_names: optional per-SNP labels (defaults to ``snp0..snpM-1``).
    """

    genotypes: np.ndarray
    phenotypes: np.ndarray
    snp_names: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        g = np.asarray(self.genotypes)
        p = np.asarray(self.phenotypes)
        if g.ndim != 2:
            raise ValueError(f"genotypes must be 2-D (M, N), got shape {g.shape}")
        if p.ndim != 1 or p.shape[0] != g.shape[1]:
            raise ValueError(
                "phenotypes must be 1-D with one entry per sample; "
                f"got shape {p.shape} for {g.shape[1]} samples"
            )
        if g.dtype != np.int8:
            g = g.astype(np.int8)
        if g.size and (g.min() < 0 or g.max() > 2):
            raise ValueError("genotype values must be in {0, 1, 2}")
        if p.dtype != np.bool_:
            p = p.astype(np.bool_)
        g = np.ascontiguousarray(g)
        g.setflags(write=False)
        p.setflags(write=False)
        object.__setattr__(self, "genotypes", g)
        object.__setattr__(self, "phenotypes", p)
        names = self.snp_names or tuple(f"snp{i}" for i in range(g.shape[0]))
        if len(names) != g.shape[0]:
            raise ValueError(
                f"snp_names has {len(names)} entries for {g.shape[0]} SNPs"
            )
        object.__setattr__(self, "snp_names", tuple(names))

    # ------------------------------------------------------------------ #
    # Dimensions

    @property
    def n_snps(self) -> int:
        """Number of SNPs ``M``."""
        return int(self.genotypes.shape[0])

    @property
    def n_samples(self) -> int:
        """Total number of samples ``N``."""
        return int(self.genotypes.shape[1])

    @property
    def n_cases(self) -> int:
        """Number of case samples ``N1``."""
        return int(np.count_nonzero(self.phenotypes))

    @property
    def n_controls(self) -> int:
        """Number of control samples ``N0``."""
        return self.n_samples - self.n_cases

    # ------------------------------------------------------------------ #
    # Views

    def class_genotypes(self, phenotype_class: int) -> np.ndarray:
        """Genotype columns restricted to one phenotype class.

        Args:
            phenotype_class: ``0`` for controls, ``1`` for cases.

        Returns:
            ``(M, N_class)`` ``int8`` array (a copy — column selection is a
            fancy index).
        """
        if phenotype_class not in (0, 1):
            raise ValueError(f"phenotype_class must be 0 or 1, got {phenotype_class}")
        mask = self.phenotypes if phenotype_class == 1 else ~self.phenotypes
        return self.genotypes[:, mask]

    def n_class_samples(self, phenotype_class: int) -> int:
        """``N0`` (class 0) or ``N1`` (class 1)."""
        return self.n_cases if phenotype_class == 1 else self.n_controls

    def subset_snps(self, indices: np.ndarray | list[int]) -> "Dataset":
        """A new dataset keeping only the given SNP rows (in the given order)."""
        idx = np.asarray(indices, dtype=np.intp)
        return Dataset(
            genotypes=self.genotypes[idx].copy(),
            phenotypes=self.phenotypes.copy(),
            snp_names=tuple(self.snp_names[i] for i in idx),
        )

    def __repr__(self) -> str:
        return (
            f"Dataset(M={self.n_snps}, N={self.n_samples}, "
            f"controls={self.n_controls}, cases={self.n_cases})"
        )
