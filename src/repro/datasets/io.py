"""Dataset persistence.

Two formats are supported:

- a compact ``.npz`` binary format (:func:`save_dataset` /
  :func:`load_dataset`), the native interchange format of this library;
- a human-readable CSV format (:func:`save_dataset_csv` /
  :func:`load_dataset_csv`) compatible with the sample-dataset layout used by
  epistasis tools in this family (one sample per row, one SNP per column,
  genotype codes 0/1/2, final column ``class`` with the phenotype), so users
  can bring their own small datasets without writing a converter.
"""

from __future__ import annotations

import os

import numpy as np

from repro.datasets.dataset import Dataset

_FORMAT_VERSION = 1


def save_dataset(path: str | os.PathLike, dataset: Dataset) -> None:
    """Write a dataset to ``path`` in the ``.npz`` interchange format."""
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        genotypes=dataset.genotypes,
        phenotypes=dataset.phenotypes,
        snp_names=np.array(dataset.snp_names, dtype=np.str_),
    )


def load_dataset(path: str | os.PathLike) -> Dataset:
    """Read a dataset previously written by :func:`save_dataset`."""
    with np.load(path, allow_pickle=False) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported dataset format version {version} "
                f"(this build reads version {_FORMAT_VERSION})"
            )
        return Dataset(
            genotypes=archive["genotypes"],
            phenotypes=archive["phenotypes"],
            snp_names=tuple(str(s) for s in archive["snp_names"]),
        )


def save_dataset_csv(path: str | os.PathLike, dataset: Dataset) -> None:
    """Write a dataset as CSV: one sample per row, ``class`` column last."""
    header = ",".join((*dataset.snp_names, "class"))
    table = np.column_stack(
        [dataset.genotypes.T, dataset.phenotypes.astype(np.int8)]
    )
    np.savetxt(path, table, fmt="%d", delimiter=",", header=header, comments="")


def load_dataset_csv(path: str | os.PathLike) -> Dataset:
    """Read a CSV dataset written by :func:`save_dataset_csv` (or compatible).

    The file must have a header row; the last column is interpreted as the
    binary phenotype and every other column as one SNP's genotype codes.
    """
    with open(path, "r", encoding="utf-8") as fh:
        header = fh.readline().strip()
        if not header:
            raise ValueError(f"{path}: empty file")
        names = [c.strip() for c in header.split(",")]
    if len(names) < 2:
        raise ValueError(f"{path}: need at least one SNP column plus 'class'")
    table = np.loadtxt(path, dtype=np.int64, delimiter=",", skiprows=1, ndmin=2)
    if table.shape[1] != len(names):
        raise ValueError(
            f"{path}: header names {len(names)} columns but rows have {table.shape[1]}"
        )
    phenotypes = table[:, -1]
    if not np.isin(phenotypes, (0, 1)).all():
        raise ValueError(f"{path}: phenotype column must be 0/1")
    genotypes = table[:, :-1].T
    if genotypes.size and (genotypes.min() < 0 or genotypes.max() > 2):
        raise ValueError(f"{path}: genotype codes must be 0/1/2")
    return Dataset(
        genotypes=genotypes.astype(np.int8),
        phenotypes=phenotypes.astype(np.bool_),
        snp_names=tuple(names[:-1]),
    )
