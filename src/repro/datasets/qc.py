"""Dataset quality control: the standard GWAS preprocessing gates.

Real datasets go through QC before any epistasis scan: minor-allele-
frequency filtering (rare variants produce unstable contingency cells),
removal of monomorphic SNPs (zero information) and Hardy-Weinberg
equilibrium checks on controls (gross HWE violations usually indicate
genotyping error).  This module implements those gates over the
:class:`~repro.datasets.Dataset` model, returning both filtered datasets
and per-SNP diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import chi2 as chi2_dist

from repro.datasets.dataset import Dataset


def minor_allele_frequencies(dataset: Dataset) -> np.ndarray:
    """Per-SNP minor allele frequency, ``(M,)`` floats in ``[0, 0.5]``.

    Genotype codes count copies of the designated minor allele; if a SNP's
    coded allele actually exceeds 0.5 in this sample, the folded frequency
    is reported (frequency of the rarer allele).
    """
    g = np.asarray(dataset.genotypes, dtype=np.float64)
    freq = g.mean(axis=1) / 2.0
    return np.minimum(freq, 1.0 - freq)


def hardy_weinberg_pvalues(
    dataset: Dataset, *, controls_only: bool = True
) -> np.ndarray:
    """Per-SNP chi-squared HWE test p-values, ``(M,)``.

    Compares observed genotype counts against Hardy-Weinberg expectations
    at the sample allele frequency (1 degree of freedom).  Monomorphic SNPs
    get p = 1 (no test possible, no evidence of violation).

    Args:
        dataset: the dataset.
        controls_only: test on controls only (the standard practice —
            cases may deviate from HWE *because* of true association).
    """
    g = dataset.class_genotypes(0) if controls_only else np.asarray(dataset.genotypes)
    n = g.shape[1]
    if n == 0:
        raise ValueError("no samples to test")
    counts = np.stack(
        [(g == code).sum(axis=1) for code in (0, 1, 2)], axis=1
    ).astype(np.float64)
    p_allele = (counts[:, 1] + 2 * counts[:, 2]) / (2 * n)
    q_allele = 1.0 - p_allele
    expected = np.stack(
        [n * q_allele**2, 2 * n * p_allele * q_allele, n * p_allele**2],
        axis=1,
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        chi2 = np.where(
            expected > 0, (counts - expected) ** 2 / expected, 0.0
        ).sum(axis=1)
    pvals = chi2_dist.sf(chi2, df=1)
    monomorphic = (p_allele == 0) | (q_allele == 0)
    pvals[monomorphic] = 1.0
    return pvals


@dataclass(frozen=True)
class QCReport:
    """Outcome of :func:`apply_qc`.

    Attributes:
        kept: indices of SNPs that passed every gate (original numbering).
        dropped_maf: indices failing the MAF gate.
        dropped_monomorphic: indices with a single observed genotype.
        dropped_hwe: indices failing the HWE gate.
        maf: per-SNP folded MAF (all SNPs, original numbering).
        hwe_pvalues: per-SNP HWE p-values (all SNPs).
    """

    kept: np.ndarray
    dropped_maf: np.ndarray
    dropped_monomorphic: np.ndarray
    dropped_hwe: np.ndarray
    maf: np.ndarray
    hwe_pvalues: np.ndarray

    def summary(self) -> str:
        return (
            f"QC: kept {self.kept.size} SNPs; dropped "
            f"{self.dropped_monomorphic.size} monomorphic, "
            f"{self.dropped_maf.size} low-MAF, "
            f"{self.dropped_hwe.size} HWE-violating"
        )


def apply_qc(
    dataset: Dataset,
    *,
    min_maf: float = 0.05,
    hwe_alpha: float = 1e-6,
) -> tuple[Dataset, QCReport]:
    """Run the standard QC gates and return the filtered dataset + report.

    Args:
        dataset: input dataset.
        min_maf: drop SNPs whose folded MAF is below this.
        hwe_alpha: drop SNPs whose control-HWE p-value is below this (the
            conventional threshold is very small — only gross violations).

    Returns:
        ``(filtered_dataset, report)``.  Raises if nothing survives.
    """
    if not 0.0 <= min_maf < 0.5:
        raise ValueError(f"min_maf must be in [0, 0.5), got {min_maf}")
    if not 0.0 < hwe_alpha < 1.0:
        raise ValueError(f"hwe_alpha must be in (0, 1), got {hwe_alpha}")
    maf = minor_allele_frequencies(dataset)
    hwe = hardy_weinberg_pvalues(dataset)

    # Allele-level monomorphism: only one allele observed (an all-
    # heterozygous SNP is *not* monomorphic — it is an HWE violation).
    monomorphic = maf == 0.0
    low_maf = ~monomorphic & (maf < min_maf)
    bad_hwe = ~monomorphic & ~low_maf & (hwe < hwe_alpha)
    keep = ~(monomorphic | low_maf | bad_hwe)
    if not keep.any():
        raise ValueError("QC dropped every SNP; relax the thresholds")
    report = QCReport(
        kept=np.flatnonzero(keep),
        dropped_maf=np.flatnonzero(low_maf),
        dropped_monomorphic=np.flatnonzero(monomorphic),
        dropped_hwe=np.flatnonzero(bad_hwe),
        maf=maf,
        hwe_pvalues=hwe,
    )
    return dataset.subset_snps(report.kept), report
