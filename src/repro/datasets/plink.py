"""PLINK text-format (.ped/.map) reader and writer.

PLINK's .ped/.map pair is the lingua franca of GWAS tooling, so supporting
it makes the library usable on real study exports without conversion
scripts:

- ``<prefix>.map``: one SNP per line — ``chrom  snp_id  cM  position``.
- ``<prefix>.ped``: one sample per line — six leading columns
  (``FID IID PAT MAT SEX PHENOTYPE``) followed by two allele characters per
  SNP.  Phenotype coding: ``1`` = control, ``2`` = case (``0``/``-9`` =
  missing).  Missing genotypes are ``0 0``.

Genotypes are converted to minor-allele counts: the minor allele is
determined per SNP from the observed allele frequencies.
"""

from __future__ import annotations

import os
from collections import Counter

import numpy as np

from repro.datasets.dataset import Dataset


def load_plink(
    prefix: str | os.PathLike, *, missing: str = "error"
) -> Dataset:
    """Read a PLINK ``<prefix>.ped`` / ``<prefix>.map`` pair.

    Args:
        prefix: path without extension.
        missing: ``"error"`` (reject files with missing phenotypes or
            genotypes) or ``"drop"`` (drop the affected samples).

    Returns:
        A :class:`~repro.datasets.Dataset` with SNP names from the .map
        file.
    """
    if missing not in ("error", "drop"):
        raise ValueError(f"missing must be 'error' or 'drop', got {missing!r}")
    prefix = os.fspath(prefix)
    snp_names = _read_map(prefix + ".map")
    n_snps = len(snp_names)

    sample_alleles: list[list[tuple[str, str]]] = []
    phenotypes: list[int] = []
    dropped = 0
    with open(prefix + ".ped", "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            fields = line.split()
            if not fields:
                continue
            if len(fields) != 6 + 2 * n_snps:
                raise ValueError(
                    f"{prefix}.ped:{line_no}: expected {6 + 2 * n_snps} fields "
                    f"for {n_snps} SNPs, got {len(fields)}"
                )
            pheno = fields[5]
            alleles = [
                (fields[6 + 2 * i], fields[7 + 2 * i]) for i in range(n_snps)
            ]
            has_missing = pheno not in ("1", "2") or any(
                "0" in pair for pair in alleles
            )
            if has_missing:
                if missing == "error":
                    raise ValueError(
                        f"{prefix}.ped:{line_no}: missing phenotype or genotype "
                        "(use missing='drop' to skip such samples)"
                    )
                dropped += 1
                continue
            phenotypes.append(1 if pheno == "2" else 0)
            sample_alleles.append(alleles)
    if not sample_alleles:
        raise ValueError(f"{prefix}.ped: no usable samples (dropped {dropped})")

    n_samples = len(sample_alleles)
    genotypes = np.zeros((n_snps, n_samples), dtype=np.int8)
    for snp in range(n_snps):
        counts: Counter[str] = Counter()
        for sample in sample_alleles:
            counts.update(sample[snp])
        alleles_seen = [a for a, _ in counts.most_common()]
        if len(alleles_seen) > 2:
            raise ValueError(
                f"{prefix}.ped: SNP {snp_names[snp]} has more than two alleles: "
                f"{sorted(counts)}"
            )
        # The least frequent allele is the minor allele; monomorphic SNPs
        # count zero minor alleles everywhere.
        minor = alleles_seen[-1] if len(alleles_seen) == 2 else None
        if minor is not None:
            for s, sample in enumerate(sample_alleles):
                a, b = sample[snp]
                genotypes[snp, s] = (a == minor) + (b == minor)
    return Dataset(
        genotypes=genotypes,
        phenotypes=np.array(phenotypes, dtype=np.bool_),
        snp_names=tuple(snp_names),
    )


def save_plink(prefix: str | os.PathLike, dataset: Dataset) -> None:
    """Write a dataset as a PLINK ``.ped``/``.map`` pair.

    Minor-allele counts are rendered with the convention major = ``A``,
    minor = ``B``; positions in the .map file are synthetic (index-based).
    """
    prefix = os.fspath(prefix)
    with open(prefix + ".map", "w", encoding="utf-8") as fh:
        for i, name in enumerate(dataset.snp_names):
            fh.write(f"1\t{name}\t0\t{i + 1}\n")
    code_to_pair = {0: "A A", 1: "A B", 2: "B B"}
    with open(prefix + ".ped", "w", encoding="utf-8") as fh:
        for s in range(dataset.n_samples):
            pheno = 2 if dataset.phenotypes[s] else 1
            pairs = " ".join(
                code_to_pair[int(dataset.genotypes[m, s])]
                for m in range(dataset.n_snps)
            )
            fh.write(f"FAM{s} IND{s} 0 0 1 {pheno} {pairs}\n")


def _read_map(path: str) -> list[str]:
    names: list[str] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            fields = line.split()
            if not fields:
                continue
            if len(fields) not in (3, 4):
                raise ValueError(
                    f"{path}:{line_no}: expected 3 or 4 columns, got {len(fields)}"
                )
            names.append(fields[1])
    if not names:
        raise ValueError(f"{path}: no SNPs")
    return names
