"""BOOST-style binarized dataset encoding (paper §3.1).

Each SNP is represented by **two** bitvectors per phenotype class — one for
the homozygous-major genotype (``AA``) and one for the heterozygous genotype
(``Aa``).  The homozygous-minor configuration (``aa``) is *not* stored; its
counts are derived analytically (§3.3).  Row ``2*m + g`` of the per-class
matrix is the bit-plane of genotype ``g`` of SNP ``m``; bit ``i`` is set iff
sample ``i`` (within the class) has that genotype.

The dataset therefore occupies ``2*M*N0 + 2*M*N1`` bits, exactly the format
whose footprint the paper sizes at ~3.8 GB for 16384 SNPs x 1M samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitops.bitmatrix import BitMatrix
from repro.datasets.dataset import Dataset


@dataclass(frozen=True)
class EncodedDataset:
    """A dataset binarized into per-class packed genotype bit-planes.

    Attributes:
        controls: ``(2*M, W0)`` packed bit-planes for the control samples.
        cases: ``(2*M, W1)`` packed bit-planes for the case samples.
        n_snps: number of SNP rows ``M`` **after padding** (if any).
        n_real_snps: number of genuine SNPs; padded rows (all-zero
            bit-planes) have index >= ``n_real_snps`` and must be excluded
            from reductions.
    """

    controls: BitMatrix
    cases: BitMatrix
    n_snps: int
    n_real_snps: int

    def __post_init__(self) -> None:
        for name, m in (("controls", self.controls), ("cases", self.cases)):
            if m.n_rows != 2 * self.n_snps:
                raise ValueError(
                    f"{name} has {m.n_rows} rows; expected 2*M = {2 * self.n_snps}"
                )
        if not 0 < self.n_real_snps <= self.n_snps:
            raise ValueError(
                f"n_real_snps={self.n_real_snps} out of range (0, {self.n_snps}]"
            )

    @property
    def n_controls(self) -> int:
        """``N0``."""
        return self.controls.n_bits

    @property
    def n_cases(self) -> int:
        """``N1``."""
        return self.cases.n_bits

    @property
    def n_samples(self) -> int:
        """``N = N0 + N1``."""
        return self.n_controls + self.n_cases

    def class_matrix(self, phenotype_class: int) -> BitMatrix:
        """The packed matrix of one class (0 = controls, 1 = cases)."""
        if phenotype_class == 0:
            return self.controls
        if phenotype_class == 1:
            return self.cases
        raise ValueError(f"phenotype_class must be 0 or 1, got {phenotype_class}")

    def class_sizes(self) -> tuple[int, int]:
        """``(N0, N1)``."""
        return self.n_controls, self.n_cases

    @property
    def nbytes(self) -> int:
        """Total packed storage in bytes (both classes)."""
        return self.controls.nbytes + self.cases.nbytes

    def __repr__(self) -> str:
        return (
            f"EncodedDataset(M={self.n_snps} (real {self.n_real_snps}), "
            f"N0={self.n_controls}, N1={self.n_cases})"
        )


def encode_class(genotypes_class: np.ndarray) -> BitMatrix:
    """Encode one class's ``(M, N_class)`` genotype matrix to bit-planes.

    Returns a ``(2*M, W)`` :class:`BitMatrix`: row ``2*m`` is the ``AA``
    plane of SNP ``m`` and row ``2*m + 1`` the ``Aa`` plane.
    """
    m, _ = genotypes_class.shape
    planes = np.empty((2 * m, genotypes_class.shape[1]), dtype=np.bool_)
    planes[0::2] = genotypes_class == 0
    planes[1::2] = genotypes_class == 1
    return BitMatrix.from_bool(planes)


def encode_dataset(dataset: Dataset, *, block_size: int | None = None) -> EncodedDataset:
    """Binarize a dataset into the §3.1 memory format.

    Args:
        dataset: the case-control dataset.
        block_size: if given, pad the SNP dimension with all-zero SNP rows up
            to the next multiple of ``block_size`` ("If the number of SNPs is
            not a multiple of B, then the dataset is padded").

    Returns:
        An :class:`EncodedDataset`.  Padded SNPs have all-zero bit-planes for
        both genotype configurations in both classes.
    """
    m_real = dataset.n_snps
    if m_real == 0:
        raise ValueError("cannot encode a dataset with zero SNPs")
    m_padded = m_real
    if block_size is not None:
        if block_size <= 0:
            raise ValueError(f"block_size must be > 0, got {block_size}")
        m_padded = ((m_real + block_size - 1) // block_size) * block_size

    matrices = []
    for cls in (0, 1):
        g = dataset.class_genotypes(cls)
        encoded = encode_class(g)
        if m_padded != m_real:
            padded = np.zeros((2 * m_padded, encoded.n_words), dtype=np.uint64)
            padded[: 2 * m_real] = encoded.data
            encoded = BitMatrix(data=padded, n_bits=encoded.n_bits)
        matrices.append(encoded)
    return EncodedDataset(
        controls=matrices[0],
        cases=matrices[1],
        n_snps=m_padded,
        n_real_snps=m_real,
    )
