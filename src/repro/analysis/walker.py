"""Project loading and the analysis driver.

:func:`load_project` walks the given paths, parses every ``*.py`` file,
derives dotted module names (relative to the nearest ``repro``/``src``
ancestor so fixture trees resolve the same way the real tree does),
builds import-alias and parent maps, and extracts suppression/tag
comments.  :func:`analyze_paths` runs the selected rules over the
loaded project and applies suppressions.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, Sequence

from repro.analysis.model import AnalysisResult, Finding, Project, SourceFile
from repro.analysis.suppressions import apply_suppressions, scan_comments


def _iter_py_files(paths: Sequence[str]) -> list[str]:
    out: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                out.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames if d not in ("__pycache__", ".git")
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    out.append(os.path.join(dirpath, name))
    return sorted(dict.fromkeys(out))


def _module_name(path: str) -> str:
    """Dotted module name from a file path, anchored at a package root.

    Anchored at the *last* ``repro`` path component when one exists, so
    ``<anything>/repro/core/journal.py`` → ``repro.core.journal`` and a
    fixture tree ``tmp/repro/dist/merge.py`` resolves identically (the
    determinism/guarded-by registries key on these names).  Otherwise
    the name is taken relative to a ``src``/``lib`` component, falling
    back to walking up while ``__init__.py`` siblings exist.
    """
    abspath = os.path.abspath(path)
    stem, _ = os.path.splitext(abspath)
    parts = stem.replace(os.sep, "/").split("/")
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[anchor:]
    elif "src" in parts or "lib" in parts:
        root = "src" if "src" in parts else "lib"
        anchor = len(parts) - 1 - parts[::-1].index(root)
        parts = parts[anchor + 1:]
    else:
        kept = [parts[-1]]
        parent = os.path.dirname(abspath)
        while os.path.exists(os.path.join(parent, "__init__.py")):
            kept.append(os.path.basename(parent))
            parent = os.path.dirname(parent)
        parts = list(reversed(kept))
    module = ".".join(p for p in parts if p)
    if module.endswith(".__init__"):
        module = module[: -len(".__init__")]
    return module


def _import_aliases(tree: ast.Module) -> dict[str, str]:
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = (
                    a.name if a.asname else a.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for a in node.names:
                if a.name == "*":
                    continue
                aliases[a.asname or a.name] = f"{node.module}.{a.name}"
    return aliases


def _find_repo_root(start: str) -> str | None:
    """Nearest ancestor of ``start`` holding a ``pyproject.toml``."""
    cur = os.path.abspath(start)
    if os.path.isfile(cur):
        cur = os.path.dirname(cur)
    for _ in range(12):
        if os.path.exists(os.path.join(cur, "pyproject.toml")):
            return cur
        parent = os.path.dirname(cur)
        if parent == cur:
            return None
        cur = parent
    return None


def load_file(path: str) -> tuple[SourceFile, list[Finding]]:
    """Parse one file; returns it plus any EPI400 comment findings."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    tree = ast.parse(text, filename=path)
    src = SourceFile(
        path=path,
        module=_module_name(path),
        text=text,
        tree=tree,
        aliases=_import_aliases(tree),
    )
    src.build_parent_map()
    meta_findings = scan_comments(src)
    return src, meta_findings


def load_project(
    paths: Sequence[str], repo_root: str | None = None
) -> tuple[Project, list[Finding]]:
    """Load every python file under ``paths`` into a Project."""
    files: list[SourceFile] = []
    meta: list[Finding] = []
    for path in _iter_py_files(paths):
        src, findings = load_file(path)
        files.append(src)
        meta.extend(findings)
    if repo_root is None and paths:
        repo_root = _find_repo_root(paths[0])
    return Project(files=files, repo_root=repo_root), meta


def analyze_paths(
    paths: Sequence[str] | str,
    *,
    select: Iterable[str] | None = None,
    repo_root: str | None = None,
) -> AnalysisResult:
    """Run epi4lint over ``paths`` and return the split findings.

    Args:
        paths: files or directories to scan.
        select: rule ids to run (default: all).
        repo_root: directory holding ``pyproject.toml``/``docs``/
            ``README.md`` for the coherence rules; autodetected from the
            first path when omitted.
    """
    from repro.analysis.registry import rules_by_id

    if isinstance(paths, (str, os.PathLike)):
        paths = [os.fspath(paths)]
    project, meta_findings = load_project(list(paths), repo_root=repo_root)
    rules = rules_by_id(select)
    raw: list[Finding] = list(meta_findings)
    for rule in rules:
        raw.extend(rule.check(project))

    by_path: dict[str, list[Finding]] = {}
    for finding in raw:
        by_path.setdefault(finding.path, []).append(finding)
    active: list[Finding] = []
    suppressed: list[Finding] = []
    file_by_path = {f.path: f for f in project.files}
    for path, findings in by_path.items():
        src = file_by_path.get(path)
        if src is None:
            active.extend(findings)   # doc-anchored findings: no comments
            continue
        ok, silenced = apply_suppressions(src, findings)
        active.extend(ok)
        suppressed.extend(silenced)
    active.sort(key=Finding.sort_key)
    suppressed.sort(key=Finding.sort_key)
    return AnalysisResult(
        findings=active,
        suppressed=suppressed,
        files_scanned=len(project.files),
        rules_run=tuple(r.id for r in rules),
    )
