"""Concurrency rules (EPI411-EPI413): guarded-by and lock-order discipline.

The thread-shared classes (reducer, metrics registry, operand cache,
work queue, watchdog, journal) each own one lock and a set of fields
that may only be touched while it is held.  The registry is seeded in
:data:`repro.analysis.config.GUARDED_BY`; any class can join by
declaring a literal class attribute::

    class Buffer:
        _GUARDED_BY = {"_items": "_lock", "_size": "_lock"}

Rules:

- **EPI411** — a guarded field accessed through ``self`` outside a
  ``with self.<lock>:`` block, in a method that is not construction
  (``__init__``/``__post_init__``), not named ``*_locked``, not in the
  spec's ``lock_held_methods``, and not tagged ``# epi4lint: lock-held``.
  Nested functions/lambdas defined inside a ``with`` block do **not**
  inherit the lock (they may run after release).
- **EPI412** — lock-acquisition-order violation: the directed graph of
  "acquired lock B while holding lock A" edges (lexical nesting plus
  same-class and annotated-receiver method calls) contains a cycle, or
  a non-reentrant lock is re-acquired on the same instance.
- **EPI413** — a guarded field accessed on a *foreign* instance (any
  receiver, outside the owning class): private synchronized state must
  be reached through the owning class's locked methods.  Field names
  owned by more than one registered class are skipped (ambiguous).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.config import CONSTRUCTION_METHODS, GUARDED_BY, GuardSpec
from repro.analysis.model import Finding, Project, SourceFile
from repro.analysis.suppressions import TAG_LOCK_HELD

__all__ = ["CONCURRENCY_RULES"]


# --------------------------------------------------------------------- #
# Registry assembly (seed + in-source _GUARDED_BY declarations)


def _declared_specs(src: SourceFile) -> list[GuardSpec]:
    """GuardSpecs from literal ``_GUARDED_BY = {...}`` class attributes."""
    specs: list[GuardSpec] = []
    for node in ast.walk(src.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "_GUARDED_BY"
                and isinstance(stmt.value, ast.Dict)
            ):
                mapping: dict[str, str] = {}
                for k, v in zip(stmt.value.keys, stmt.value.values):
                    if isinstance(k, ast.Constant) and isinstance(
                        v, ast.Constant
                    ):
                        mapping[str(k.value)] = str(v.value)
                locks = sorted(set(mapping.values()))
                for lock in locks:
                    specs.append(
                        GuardSpec(
                            module=src.module,
                            cls=node.name,
                            lock=lock,
                            fields=tuple(
                                sorted(
                                    f for f, lk in mapping.items() if lk == lock
                                )
                            ),
                            reentrant=_lock_is_reentrant(node, lock),
                        )
                    )
    return specs


def _lock_is_reentrant(cls_node: ast.ClassDef, lock: str) -> bool:
    for node in ast.walk(cls_node):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Attribute)
            and isinstance(node.targets[0].value, ast.Name)
            and node.targets[0].value.id == "self"
            and node.targets[0].attr == lock
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Attribute)
        ):
            return node.value.func.attr == "RLock"
    return False


def _project_specs(project: Project) -> list[tuple[GuardSpec, SourceFile, ast.ClassDef]]:
    """Every applicable spec paired with its class definition node."""
    out: list[tuple[GuardSpec, SourceFile, ast.ClassDef]] = []
    by_module: dict[str, list[GuardSpec]] = {}
    for spec in GUARDED_BY:
        by_module.setdefault(spec.module, []).append(spec)
    for src in project.files:
        specs = list(by_module.get(src.module, ())) + _declared_specs(src)
        if not specs:
            continue
        classes = {
            node.name: node
            for node in ast.walk(src.tree)
            if isinstance(node, ast.ClassDef)
        }
        seen: set[tuple[str, str]] = set()
        for spec in specs:
            node = classes.get(spec.cls)
            if node is None or (spec.cls, spec.lock) in seen:
                continue
            seen.add((spec.cls, spec.lock))
            out.append((spec, src, node))
    return out


# --------------------------------------------------------------------- #
# Shared visitor machinery


def _with_locks(node: ast.With, known_locks: frozenset[str]) -> set[str]:
    """Lock attribute names acquired by ``with self.<lock>[, ...]:``."""
    acquired: set[str] = set()
    for item in node.items:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in known_locks
        ):
            acquired.add(expr.attr)
    return acquired


def _method_is_lock_held(
    src: SourceFile, spec: GuardSpec, method: ast.FunctionDef | ast.AsyncFunctionDef
) -> bool:
    return (
        method.name in CONSTRUCTION_METHODS
        or method.name.endswith("_locked")
        or method.name in spec.lock_held_methods
        or src.has_line_tag(method, TAG_LOCK_HELD)
    )


@dataclass
class _ClassIndex:
    """Per-spec view of one guarded class, shared by the three rules.

    A class may guard different fields under different locks (one spec
    per lock); ``known`` and ``acquires`` are always **class-wide** so a
    ``with self._b:`` block is recognized even from the ``_a`` spec's
    index — lock-order analysis needs every acquisition, whichever spec
    it belongs to.
    """

    spec: GuardSpec
    src: SourceFile
    node: ast.ClassDef
    #: every lock attr of this class (union over its specs)
    known: frozenset[str] = frozenset()
    #: lock attr → is it an RLock (per-lock, not per-spec)
    reentrant_by_lock: dict[str, bool] = field(default_factory=dict)
    #: method name → lock attrs its body acquires via ``with self.<lock>``
    acquires: dict[str, set[str]] = field(default_factory=dict)

    def methods(self) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
        return [
            stmt
            for stmt in self.node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]


def _build_indexes(project: Project) -> list[_ClassIndex]:
    entries = _project_specs(project)
    # Class-wide lock sets and reentrancy, merged over every spec of
    # the same class definition.
    known_by_class: dict[int, set[str]] = {}
    reentrant_by_class: dict[int, dict[str, bool]] = {}
    for spec, _, node in entries:
        known_by_class.setdefault(id(node), set()).add(spec.lock)
        reentrant_by_class.setdefault(id(node), {})[spec.lock] = spec.reentrant
    indexes: list[_ClassIndex] = []
    for spec, src, node in entries:
        known = frozenset(known_by_class[id(node)])
        index = _ClassIndex(
            spec=spec,
            src=src,
            node=node,
            known=known,
            reentrant_by_lock=dict(reentrant_by_class[id(node)]),
        )
        for method in index.methods():
            acquired: set[str] = set()
            for sub in ast.walk(method):
                if isinstance(sub, ast.With):
                    acquired |= _with_locks(sub, known)
            index.acquires[method.name] = acquired
        indexes.append(index)
    return indexes


class GuardedFieldOutsideLock:
    id = "EPI411"
    family = "concurrency"
    summary = "guarded field accessed outside its declared lock"

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for index in _build_indexes(project):
            spec, src = index.spec, index.src
            fields = frozenset(spec.fields)
            known_locks = index.known
            for method in index.methods():
                if _method_is_lock_held(src, spec, method):
                    continue
                self._visit(
                    src, spec, method, method.body, frozenset(), fields,
                    known_locks, findings,
                )
        return findings

    def _visit(
        self,
        src: SourceFile,
        spec: GuardSpec,
        method: ast.AST,
        body: list[ast.stmt],
        held: frozenset[str],
        fields: frozenset[str],
        known_locks: frozenset[str],
        findings: list[Finding],
    ) -> None:
        for stmt in body:
            self._visit_node(
                src, spec, method, stmt, held, fields, known_locks, findings
            )

    def _visit_node(
        self,
        src: SourceFile,
        spec: GuardSpec,
        method: ast.AST,
        node: ast.AST,
        held: frozenset[str],
        fields: frozenset[str],
        known_locks: frozenset[str],
        findings: list[Finding],
    ) -> None:
        if isinstance(node, ast.With):
            acquired = _with_locks(node, known_locks)
            inner = held | acquired
            for item in node.items:
                self._visit_node(
                    src, spec, method, item.context_expr, held, fields,
                    known_locks, findings,
                )
            for stmt in node.body:
                self._visit_node(
                    src, spec, method, stmt, inner, fields, known_locks,
                    findings,
                )
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested callable may outlive the with-block: the lock is
            # NOT held when it eventually runs.
            sub_body = node.body if isinstance(node.body, list) else [node.body]
            self._visit(
                src, spec, method, sub_body, frozenset(), fields,
                known_locks, findings,
            )
            return
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in fields
            and spec.lock not in held
        ):
            findings.append(
                Finding(
                    rule=self.id,
                    family=self.family,
                    path=src.path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"{spec.cls}.{node.attr} is guarded by "
                        f"self.{spec.lock} but accessed without it in "
                        f"{getattr(method, 'name', '<lambda>')}(); wrap the "
                        f"access in `with self.{spec.lock}:` or mark the "
                        "method lock-held"
                    ),
                )
            )
            return
        for child in ast.iter_child_nodes(node):
            self._visit_node(
                src, spec, method, child, held, fields, known_locks, findings
            )


class LockOrderViolation:
    id = "EPI412"
    family = "concurrency"
    summary = "lock-acquisition-order cycle or non-reentrant re-acquisition"

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        indexes = _build_indexes(project)
        class_by_name = {idx.spec.cls: idx for idx in indexes}
        # edges: (lock A, lock B) -> first site where B was taken under A
        edges: dict[tuple[str, str], tuple[str, int, int]] = {}

        done_classes: set[int] = set()
        for index in indexes:
            if id(index.node) in done_classes:
                continue  # one pass per class, however many specs it has
            done_classes.add(id(index.node))
            src = index.src
            for method in index.methods():
                ann = self._annotated_receivers(method, class_by_name)
                self._walk(
                    src, index, method, method.body, frozenset(),
                    index.known, ann, class_by_name, edges, findings,
                )

        findings.extend(self._cycle_findings(edges))
        return findings

    @staticmethod
    def _annotated_receivers(
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        class_by_name: dict[str, "_ClassIndex"],
    ) -> dict[str, str]:
        """param name → guarded class name, from type annotations."""
        out: dict[str, str] = {}
        args = list(method.args.posonlyargs) + list(method.args.args) + list(
            method.args.kwonlyargs
        )
        for arg in args:
            ann = arg.annotation
            name: str | None = None
            if isinstance(ann, ast.Name):
                name = ann.id
            elif isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                name = ann.value.strip().strip('"').split(".")[-1]
            elif isinstance(ann, ast.Attribute):
                name = ann.attr
            if name in class_by_name:
                out[arg.arg] = name
        return out

    def _walk(
        self,
        src: SourceFile,
        index: _ClassIndex,
        method: ast.AST,
        body: list[ast.stmt] | ast.AST,
        held: frozenset[str],
        known: frozenset[str],
        ann: dict[str, str],
        class_by_name: dict[str, "_ClassIndex"],
        edges: dict[tuple[str, str], tuple[str, int, int]],
        findings: list[Finding],
    ) -> None:
        nodes = body if isinstance(body, list) else [body]
        for node in nodes:
            self._walk_node(
                src, index, method, node, held, known, ann, class_by_name,
                edges, findings,
            )

    def _walk_node(
        self,
        src: SourceFile,
        index: _ClassIndex,
        method: ast.AST,
        node: ast.AST,
        held: frozenset[str],
        known: frozenset[str],
        ann: dict[str, str],
        class_by_name: dict[str, "_ClassIndex"],
        edges: dict[tuple[str, str], tuple[str, int, int]],
        findings: list[Finding],
    ) -> None:
        spec = index.spec
        if isinstance(node, ast.With):
            acquired = _with_locks(node, known)
            for lock in acquired:
                lock_id = f"{spec.cls}.{lock}"
                for held_id in held:
                    if held_id == lock_id and not index.reentrant_by_lock.get(
                        lock, False
                    ):
                        findings.append(
                            self._self_deadlock(src, node, spec, lock)
                        )
                    elif held_id != lock_id:
                        edges.setdefault(
                            (held_id, lock_id),
                            (src.path, node.lineno, node.col_offset),
                        )
            inner = held | {f"{spec.cls}.{lk}" for lk in acquired}
            for stmt in node.body:
                self._walk_node(
                    src, index, method, stmt, inner, known, ann,
                    class_by_name, edges, findings,
                )
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            sub = node.body if isinstance(node.body, list) else [node.body]
            self._walk(
                src, index, method, sub, frozenset(), known, ann,
                class_by_name, edges, findings,
            )
            return
        if isinstance(node, ast.Call) and held:
            callee = node.func
            if isinstance(callee, ast.Attribute) and isinstance(
                callee.value, ast.Name
            ):
                recv, meth = callee.value.id, callee.attr
                target: "_ClassIndex | None" = None
                if recv == "self":
                    target = index
                elif recv in ann:
                    target = class_by_name.get(ann[recv])
                if target is not None:
                    for lock in target.acquires.get(meth, ()):
                        lock_id = f"{target.spec.cls}.{lock}"
                        for held_id in held:
                            if (
                                held_id == lock_id
                                and recv == "self"
                                and not target.reentrant_by_lock.get(
                                    lock, False
                                )
                            ):
                                findings.append(
                                    Finding(
                                        rule=self.id,
                                        family=self.family,
                                        path=src.path,
                                        line=node.lineno,
                                        col=node.col_offset,
                                        message=(
                                            f"call to self.{meth}() while "
                                            f"holding self.{lock}: "
                                            f"{target.spec.cls}.{lock} is "
                                            "not reentrant — this "
                                            "deadlocks at runtime"
                                        ),
                                    )
                                )
                            elif held_id != lock_id:
                                edges.setdefault(
                                    (held_id, lock_id),
                                    (src.path, node.lineno, node.col_offset),
                                )
        for child in ast.iter_child_nodes(node):
            self._walk_node(
                src, index, method, child, held, known, ann, class_by_name,
                edges, findings,
            )

    def _self_deadlock(
        self, src: SourceFile, node: ast.AST, spec: GuardSpec, lock: str
    ) -> Finding:
        return Finding(
            rule=self.id,
            family=self.family,
            path=src.path,
            line=node.lineno,
            col=node.col_offset,
            message=(
                f"with self.{lock} nested inside itself: "
                f"{spec.cls}.{lock} is not reentrant — this deadlocks "
                "at runtime"
            ),
        )

    def _cycle_findings(
        self, edges: dict[tuple[str, str], tuple[str, int, int]]
    ) -> list[Finding]:
        graph: dict[str, set[str]] = {}
        for a, b in edges:
            graph.setdefault(a, set()).add(b)
        findings: list[Finding] = []
        reported: set[frozenset[str]] = set()
        for start in sorted(graph):
            cycle = self._find_cycle(graph, start)
            if cycle is None:
                continue
            key = frozenset(cycle)
            if key in reported:
                continue
            reported.add(key)
            first_edge = (cycle[0], cycle[1 % len(cycle)])
            path, line, col = edges.get(
                first_edge, next(iter(edges.values()))
            )
            findings.append(
                Finding(
                    rule=self.id,
                    family=self.family,
                    path=path,
                    line=line,
                    col=col,
                    message=(
                        "lock-acquisition-order cycle: "
                        + " -> ".join(cycle + [cycle[0]])
                        + " — two threads taking these locks in opposite "
                        "orders can deadlock; pick one global order"
                    ),
                )
            )
        return findings

    @staticmethod
    def _find_cycle(
        graph: dict[str, set[str]], start: str
    ) -> list[str] | None:
        stack: list[str] = []
        on_stack: set[str] = set()
        visited: set[str] = set()

        def dfs(nodeid: str) -> list[str] | None:
            stack.append(nodeid)
            on_stack.add(nodeid)
            for nxt in sorted(graph.get(nodeid, ())):
                if nxt in on_stack:
                    return stack[stack.index(nxt):]
                if nxt not in visited:
                    found = dfs(nxt)
                    if found is not None:
                        return found
            on_stack.discard(nodeid)
            visited.add(nodeid)
            stack.pop()
            return None

        return dfs(start)


class ForeignGuardedAccess:
    id = "EPI413"
    family = "concurrency"
    summary = "guarded private field accessed on a foreign instance"

    def check(self, project: Project) -> list[Finding]:
        indexes = _build_indexes(project)
        # field name -> owning classes (ambiguous names are skipped)
        owners: dict[str, list[_ClassIndex]] = {}
        for index in indexes:
            for fname in index.spec.fields:
                owners.setdefault(fname, []).append(index)
        unique = {
            fname: idxs[0]
            for fname, idxs in owners.items()
            if len({i.spec.cls for i in idxs}) == 1
        }
        findings: list[Finding] = []
        for src in project.files:
            for node in ast.walk(src.tree):
                if not isinstance(node, ast.Attribute):
                    continue
                owner = unique.get(node.attr)
                if owner is None:
                    continue
                if isinstance(node.value, ast.Name) and node.value.id == "self":
                    continue  # EPI411 territory
                if self._inside_owning_class(src, node, owner.spec.cls):
                    continue
                findings.append(
                    Finding(
                        rule=self.id,
                        family=self.family,
                        path=src.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f".{node.attr} is {owner.spec.cls}'s private "
                            f"state guarded by {owner.spec.lock}; access "
                            "it through the owning class's locked "
                            "methods instead of reaching in"
                        ),
                    )
                )
        return findings

    @staticmethod
    def _inside_owning_class(
        src: SourceFile, node: ast.AST, cls_name: str
    ) -> bool:
        cur: ast.AST | None = node
        while cur is not None:
            cur = src.parent(cur)
            if isinstance(cur, ast.ClassDef) and cur.name == cls_name:
                return True
        return False


CONCURRENCY_RULES = (
    GuardedFieldOutsideLock(),
    LockOrderViolation(),
    ForeignGuardedAccess(),
)
