"""Determinism rules (EPI401-EPI403).

The bit-identical top-k contract means nothing on a digest path may
depend on wall-clock, process entropy, or hash/iteration order:

- **EPI401** — banned nondeterministic call (``time.*`` clocks,
  module-level ``random.*``, unseeded ``random.Random()`` /
  ``numpy.random.default_rng()``, ``uuid.*``, ``os.urandom``,
  ``secrets.*``) inside a deterministic scope.
- **EPI402** — epoch wall-clock read (``time.time``,
  ``datetime.now`` ...) anywhere outside the sanctioned timing modules;
  wall-clock belongs to :class:`repro.utils.timing.Timer` and the
  tracer, never to ad-hoc call sites that can leak into artifacts.
- **EPI403** — iteration over an unordered collection (set literal,
  ``set()``/``frozenset()`` call, set comprehension) in a deterministic
  scope, unless wrapped in ``sorted(...)`` — set order varies with
  ``PYTHONHASHSEED`` for str/bytes elements and with insertion history
  otherwise.

A scope is deterministic when its module is listed in
:data:`repro.analysis.config.DETERMINISTIC_MODULES`, the module carries
a ``# epi4lint: deterministic`` tag, or the enclosing function's ``def``
line does.
"""

from __future__ import annotations

import ast

from repro.analysis.config import (
    BANNED_DETERMINISTIC_CALLS,
    DETERMINISTIC_MODULES,
    SEED_REQUIRED_CALLS,
    WALLCLOCK_CALLS,
    WALLCLOCK_SANCTIONED_MODULES,
)
from repro.analysis.model import Finding, Project, SourceFile
from repro.analysis.suppressions import TAG_DETERMINISTIC

__all__ = ["DETERMINISM_RULES"]


def _module_matches(module: str, prefixes: tuple[str, ...]) -> bool:
    return any(
        module == p or module.startswith(p + ".") for p in prefixes
    )


def _module_deterministic(src: SourceFile) -> bool:
    return (
        _module_matches(src.module, DETERMINISTIC_MODULES)
        or TAG_DETERMINISTIC in src.module_tags
    )


def _enclosing_functions(src: SourceFile, node: ast.AST) -> list[ast.AST]:
    chain: list[ast.AST] = []
    cur: ast.AST | None = node
    while cur is not None:
        cur = src.parent(cur)
        if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
            chain.append(cur)
    return chain


def _in_deterministic_scope(src: SourceFile, node: ast.AST) -> bool:
    if _module_deterministic(src):
        return True
    return any(
        src.has_line_tag(fn, TAG_DETERMINISTIC)
        for fn in _enclosing_functions(src, node)
    )


class BannedNondeterministicCall:
    id = "EPI401"
    family = "determinism"
    summary = (
        "nondeterministic call (clock/RNG/UUID/entropy) in a "
        "deterministic scope"
    )

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for src in project.files:
            module_det = _module_deterministic(src)
            for node in ast.walk(src.tree):
                if not isinstance(node, ast.Call):
                    continue
                origin = src.resolve(node.func)
                if origin is None:
                    continue
                banned = origin in BANNED_DETERMINISTIC_CALLS
                unseeded = (
                    origin in SEED_REQUIRED_CALLS
                    and not node.args
                    and not node.keywords
                )
                if not banned and not unseeded:
                    continue
                if not (module_det or _in_deterministic_scope(src, node)):
                    continue
                what = (
                    f"unseeded {origin}()"
                    if unseeded
                    else f"{origin}()"
                )
                findings.append(
                    Finding(
                        rule=self.id,
                        family=self.family,
                        path=src.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"{what} in deterministic scope "
                            f"({src.module}): digest/merge/journal/"
                            "checkpoint/plan/bounds paths must be "
                            "reproducible — seed it explicitly or move "
                            "it off the deterministic path"
                        ),
                    )
                )
        return findings


class WallClockOutsideTimer:
    id = "EPI402"
    family = "determinism"
    summary = "epoch wall-clock read outside the sanctioned Timer/tracer"

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for src in project.files:
            if _module_matches(src.module, WALLCLOCK_SANCTIONED_MODULES):
                continue
            if _module_deterministic(src):
                continue  # EPI401 already covers deterministic scope
            for node in ast.walk(src.tree):
                if not isinstance(node, ast.Call):
                    continue
                origin = src.resolve(node.func)
                if origin not in WALLCLOCK_CALLS:
                    continue
                findings.append(
                    Finding(
                        rule=self.id,
                        family=self.family,
                        path=src.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"{origin}() reads the epoch clock; use "
                            "repro.utils.timing.Timer (phase timing) or "
                            "the tracer's recorded wall_start instead"
                        ),
                    )
                )
        return findings


_SETISH_CALLS = {"set", "frozenset"}
_ORDER_SAFE_WRAPPERS = {"sorted", "len", "sum", "min", "max", "any", "all", "bool"}
_ORDER_SENSITIVE_WRAPPERS = {"list", "tuple", "enumerate", "iter", "next"}


def _is_setish(src: SourceFile, node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        origin = src.resolve(node.func)
        return origin in _SETISH_CALLS
    return False


class UnorderedIteration:
    id = "EPI403"
    family = "determinism"
    summary = "order-sensitive iteration over a set in a deterministic scope"

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for src in project.files:
            module_det = _module_deterministic(src)
            for node in ast.walk(src.tree):
                if not _is_setish(src, node):
                    continue
                context = self._order_sensitive_context(src, node)
                if context is None:
                    continue
                if not (module_det or _in_deterministic_scope(src, node)):
                    continue
                findings.append(
                    Finding(
                        rule=self.id,
                        family=self.family,
                        path=src.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"set iterated {context} in deterministic "
                            f"scope ({src.module}); wrap it in sorted() "
                            "— set order varies across processes and "
                            "PYTHONHASHSEED"
                        ),
                    )
                )
        return findings

    @staticmethod
    def _order_sensitive_context(
        src: SourceFile, node: ast.AST
    ) -> str | None:
        parent = src.parent(node)
        if isinstance(parent, ast.For) and parent.iter is node:
            return "by a for loop"
        if isinstance(parent, ast.comprehension) and parent.iter is node:
            return "by a comprehension"
        if isinstance(parent, ast.Call) and node in parent.args:
            func = parent.func
            if isinstance(func, ast.Name):
                if func.id in _ORDER_SENSITIVE_WRAPPERS:
                    return f"through {func.id}()"
                return None  # sorted()/len()/... are order-safe
            if isinstance(func, ast.Attribute) and func.attr == "join":
                return "through str.join()"
        return None


DETERMINISM_RULES = (
    BannedNondeterministicCall(),
    WallClockOutsideTimer(),
    UnorderedIteration(),
)
