"""Rule registry: ids, families, exit-code bits, rule instantiation.

Every rule is a named, individually selectable check.  The process exit
code of ``python -m repro.analysis`` is the bitwise OR of the family
bits of the rules that produced active findings, so CI can tell *which
discipline* broke from the exit status alone:

====================  ===  ==========================================
family                bit  rules
====================  ===  ==========================================
``meta``              16   EPI400 (malformed/reasonless suppression)
``determinism``        1   EPI401, EPI402, EPI403
``concurrency``        2   EPI411, EPI412, EPI413
``durability``         4   EPI421, EPI422, EPI423
``coherence``          8   EPI431, EPI432, EPI433, EPI434
====================  ===  ==========================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Protocol

if TYPE_CHECKING:
    from repro.analysis.model import Finding, Project

FAMILIES: tuple[str, ...] = (
    "determinism",
    "concurrency",
    "durability",
    "coherence",
    "meta",
)

FAMILY_EXIT_BITS: dict[str, int] = {
    "determinism": 1,
    "concurrency": 2,
    "durability": 4,
    "coherence": 8,
    "meta": 16,
}


class Rule(Protocol):
    """One named check over a whole :class:`~repro.analysis.model.Project`."""

    id: str
    family: str
    summary: str

    def check(self, project: "Project") -> "list[Finding]":
        """Return every violation (suppressions are applied later)."""
        ...  # pragma: no cover


def all_rules() -> list[Rule]:
    """Every registered rule, id-sorted (imports deferred so the model
    layer stays import-cycle-free)."""
    from repro.analysis.rules_coherence import COHERENCE_RULES
    from repro.analysis.rules_concurrency import CONCURRENCY_RULES
    from repro.analysis.rules_determinism import DETERMINISM_RULES
    from repro.analysis.rules_durability import DURABILITY_RULES

    rules: list[Rule] = [
        *DETERMINISM_RULES,
        *CONCURRENCY_RULES,
        *DURABILITY_RULES,
        *COHERENCE_RULES,
    ]
    return sorted(rules, key=lambda r: r.id)


def rules_by_id(select: Iterable[str] | None = None) -> list[Rule]:
    """Rules filtered to ``select`` ids (all when ``None``).

    Raises:
        ValueError: on an unknown rule id.
    """
    rules = all_rules()
    if select is None:
        return rules
    wanted = {s.strip() for s in select if s.strip()}
    known = {r.id for r in rules}
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(known))})"
        )
    return [r for r in rules if r.id in wanted]


def exit_code_for(findings: "Iterable[Finding]") -> int:
    """Bitwise OR of the family bits of the active findings."""
    code = 0
    for f in findings:
        code |= FAMILY_EXIT_BITS.get(f.family, 16)
    return code
