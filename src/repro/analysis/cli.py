"""Command line entry point: ``python -m repro.analysis [paths...]``.

Exit code is the bitwise OR of the violated families' bits
(:data:`repro.analysis.registry.FAMILY_EXIT_BITS`): determinism=1,
concurrency=2, durability=4, coherence=8, meta=16.  0 means clean.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.registry import (
    FAMILY_EXIT_BITS,
    all_rules,
    exit_code_for,
)
from repro.analysis.reporters import render_json, render_text
from repro.analysis.walker import analyze_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "epi4lint: AST invariant analyzer for determinism, "
            "concurrency, durability and observability coherence"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all), e.g. "
        "EPI401,EPI421",
    )
    parser.add_argument(
        "--repo-root",
        default=None,
        help="repository root for the coherence rules (default: "
        "autodetected from the first path via pyproject.toml)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list suppressed findings in text output",
    )
    return parser


def _list_rules() -> str:
    lines = ["epi4lint rules (exit bit per family):"]
    for family, bit in FAMILY_EXIT_BITS.items():
        lines.append(f"  {family} (exit bit {bit})")
        if family == "meta":
            lines.append(
                "    EPI400  malformed or reasonless epi4lint directive"
            )
            continue
        for rule in all_rules():
            if rule.family == family:
                lines.append(f"    {rule.id}  {rule.summary}")
    return "\n".join(lines) + "\n"


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        sys.stdout.write(_list_rules())
        return 0
    select = None
    if args.select:
        select = [s.strip() for s in args.select.split(",") if s.strip()]
    try:
        result = analyze_paths(
            list(args.paths), select=select, repo_root=args.repo_root
        )
    except ValueError as exc:          # unknown rule id in --select
        sys.stderr.write(f"epi4lint: {exc}\n")
        return 2
    except (OSError, SyntaxError) as exc:
        sys.stderr.write(f"epi4lint: {exc}\n")
        return FAMILY_EXIT_BITS["meta"]
    if args.format == "json":
        sys.stdout.write(render_json(result))
    else:
        sys.stdout.write(render_text(result, verbose=args.verbose))
    return exit_code_for(result.findings)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
