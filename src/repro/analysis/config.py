"""Seeded rule configuration: which modules/classes the invariants bind.

Everything here is *repo policy*, deliberately separated from rule
mechanics so adding a module to the deterministic set, or a class to the
guarded-by registry, is a one-line change (see
``docs/static_analysis.md`` § "Adding a rule or extending a registry").

Source files can extend these registries without touching this module:

- a module-level ``# epi4lint: deterministic`` comment opts a file into
  the determinism rules;
- a class-level ``_GUARDED_BY = {"_field": "_lock"}`` literal declares
  guarded fields for any class (the seeds below use exactly the same
  shape, keyed by dotted module + class name).
"""

from __future__ import annotations

from dataclasses import dataclass

# --------------------------------------------------------------------- #
# Determinism (EPI401-EPI403)

#: Modules (dotted prefixes) on the digest/merge/journal/checkpoint/
#: plan/bounds paths: everything that feeds the bit-identical top-k
#: contract.  Wall-clock, RNG, UUIDs and unordered iteration are banned
#: here outright.
DETERMINISTIC_MODULES: tuple[str, ...] = (
    "repro.core.reduction",
    "repro.core.solution",
    "repro.core.journal",
    "repro.core.checkpoint",
    "repro.dist.merge",
    "repro.dist.plan",
    "repro.dist.threshold",
    "repro.scoring.bounds",
    "repro.obs.manifest",
)

#: Modules allowed to read the wall clock directly.  Everything else
#: must go through :class:`repro.utils.timing.Timer` (or stick to the
#: monotonic interval clocks, which never leak into artifacts).
WALLCLOCK_SANCTIONED_MODULES: tuple[str, ...] = (
    "repro.utils.timing",
    "repro.obs.trace",
)

#: Fully qualified callables banned in deterministic scope.
BANNED_DETERMINISTIC_CALLS: frozenset[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "uuid.uuid1",
        "uuid.uuid3",
        "uuid.uuid4",
        "uuid.uuid5",
        "os.urandom",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.choice",
        "random.random",
        "random.randint",
        "random.randrange",
        "random.choice",
        "random.choices",
        "random.shuffle",
        "random.sample",
        "random.uniform",
        "random.gauss",
        "random.seed",
        "random.getrandbits",
        "random.SystemRandom",
    }
)

#: Constructors that are deterministic *only when explicitly seeded*
#: (call with zero positional/keyword args = banned in deterministic
#: scope).
SEED_REQUIRED_CALLS: frozenset[str] = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
    }
)

#: Wall-clock reads banned everywhere outside the sanctioned modules
#: (EPI402) — monotonic interval clocks are fine outside deterministic
#: scope, epoch time is not.
WALLCLOCK_CALLS: frozenset[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

# --------------------------------------------------------------------- #
# Concurrency (EPI411-EPI413)


@dataclass(frozen=True)
class GuardSpec:
    """Guarded-by declaration for one thread-shared class."""

    module: str
    cls: str
    lock: str
    fields: tuple[str, ...]
    #: Methods (beyond the ``*_locked`` naming convention and
    #: ``# epi4lint: lock-held`` tags) called only with the lock held.
    lock_held_methods: tuple[str, ...] = ()
    #: Reentrant lock (RLock): self-acquisition while held is legal.
    reentrant: bool = False

    @property
    def qualified(self) -> str:
        return f"{self.module}.{self.cls}"

    @property
    def lock_id(self) -> str:
        return f"{self.cls}.{self.lock}"


#: The seed guarded-by registry: every class whose instances are shared
#: between device worker threads.  Fields listed here may only be
#: touched under ``with self.<lock>:`` or from a lock-held method.
GUARDED_BY: tuple[GuardSpec, ...] = (
    GuardSpec(
        module="repro.core.reduction",
        cls="TopKReducer",
        lock="_lock",
        fields=("_solutions",),
        lock_held_methods=("_truncate",),
        reentrant=True,
    ),
    GuardSpec(
        module="repro.obs.metrics",
        cls="MetricsRegistry",
        lock="_lock",
        fields=("_counters", "_gauges", "_hists", "_hist_buckets"),
    ),
    GuardSpec(
        module="repro.core.operand_cache",
        cls="OperandCache",
        lock="_lock",
        fields=(
            "_entries",
            "_pending",
            "_hits",
            "_misses",
            "_evictions",
            "_current_bytes",
            "_peak_bytes",
        ),
    ),
    GuardSpec(
        module="repro.core.resilience",
        cls="ResilientWorkQueue",
        lock="_cond",
        fields=("_pending", "_excluded", "_workers", "_in_flight", "_completed"),
    ),
    GuardSpec(
        module="repro.core.watchdog",
        cls="LaunchWatchdog",
        lock="_lock",
        fields=("_active", "_trips", "_closed", "_thread"),
    ),
    GuardSpec(
        module="repro.core.journal",
        cls="RoundJournal",
        lock="_lock",
        fields=("_fh",),
    ),
)

#: Methods that may touch guarded fields without the lock because the
#: instance cannot be shared yet (construction) or is being torn down.
CONSTRUCTION_METHODS: frozenset[str] = frozenset(
    {"__init__", "__post_init__", "__new__", "__del__"}
)

# --------------------------------------------------------------------- #
# Durability (EPI421-EPI423)

#: Callables that atomically publish a file (the rename half of the
#: write → fsync → rename → fsync-dir discipline).
RENAME_CALLS: frozenset[str] = frozenset(
    {"os.rename", "os.replace", "shutil.move"}
)

#: Callables that satisfy the "fsync the temp file first" obligation.
FILE_FSYNC_CALLS: frozenset[str] = frozenset({"os.fsync"})

#: Callables that satisfy the "fsync the directory after" obligation.
DIR_FSYNC_CALLS: frozenset[str] = frozenset(
    {
        "os.fsync",
        "repro.core.checkpoint.fsync_directory",
        "fsync_directory",
    }
)

#: Modules that write results/resume artifacts: every ``open(..., "w")``
#: here must sit inside an atomic-writer function (one that fsyncs), and
#: every rename must follow the full durability ordering.
DURABILITY_MODULES: tuple[str, ...] = (
    "repro.core.journal",
    "repro.core.checkpoint",
    "repro.dist.worker",
    "repro.dist.coordinator",
    "repro.dist.threshold",
    "repro.obs.exporters",
)

# --------------------------------------------------------------------- #
# Observability / surface coherence (EPI431-EPI434)

#: Prefix every run metric carries (the catalogue key in
#: ``docs/observability.md``).
METRIC_PREFIX = "epi4" + "_"   # split so the literal itself is not collected

#: Markdown catalogue the emitted metric set is reconciled against.
OBSERVABILITY_DOC = "docs/observability.md"

#: Module defining :class:`SearchConfig` (EPI433/EPI434 source of truth).
SEARCH_CONFIG_MODULE = "repro.core.search"
SEARCH_CONFIG_CLASS = "SearchConfig"

#: Module whose ``--flag`` string literals form the CLI surface.
CLI_MODULE = "repro.cli"

README_DOC = "README.md"

#: SearchConfig fields whose CLI flag is not the mechanical
#: ``--<field-with-dashes>`` spelling.
FLAG_ALIASES: dict[str, str] = {
    "engine_kind": "--engine",
    "cache_triplets": "--no-cache-triplets",   # inverted boolean
    "overlap": "--no-overlap",                 # inverted boolean
}

#: Modules excluded from the metric-literal sweep (the analyzer itself
#: names metric ids in rule config and docs).
COHERENCE_EXCLUDED_MODULES: tuple[str, ...] = ("repro.analysis",)
