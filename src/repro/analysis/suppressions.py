"""Suppression and tag comments.

Syntax (all forms start with the ``# epi4lint:`` marker)::

    x = time.time()  # epi4lint: disable=EPI401 benchmark harness, not a digest path
    # epi4lint: disable=EPI411,EPI413 registry is thread-confined until returned
    # epi4lint: disable-file=EPI403 whole module iterates scratch sets
    # epi4lint: deterministic
    def merge(...):  # epi4lint: lock-held caller guarantees self._lock

Rules:

- ``disable=`` silences the listed rule ids on the comment's own line;
  a *standalone* comment (nothing but the comment on the line) also
  covers the following line, so a suppression can sit above a long
  statement.
- ``disable-file=`` silences the listed rules for the whole file.
- Every ``disable`` **must carry a written reason** (free text after
  the rule list).  A reasonless or malformed suppression is itself a
  finding (``EPI400``) — the gate cannot be waved through silently.
- ``deterministic`` tags the enclosing scope: on a ``def`` line it tags
  that function, standalone near the top of a file it tags the module.
- ``lock-held`` on a ``def`` line marks the method as called with its
  class's guard lock already held (see ``EPI411``).
"""

from __future__ import annotations

import io
import re
import tokenize

from repro.analysis.model import Finding, SourceFile, Suppression

MARKER = "# epi4lint:"
_RULE_ID = re.compile(r"\AEPI4\d{2}\Z")
_DIRECTIVE = re.compile(
    r"\A#\s*epi4lint:\s*(?P<kind>disable-file|disable|deterministic|lock-held)"
    r"(?:=(?P<rules>[A-Z0-9,]+))?\s*(?P<reason>.*)\Z"
)

#: Tag names attachable to lines/modules.
TAG_DETERMINISTIC = "deterministic"
TAG_LOCK_HELD = "lock-held"

#: Rule id for malformed/reasonless suppressions (meta family).
BAD_SUPPRESSION_RULE = "EPI400"


def scan_comments(src: SourceFile) -> list[Finding]:
    """Populate ``src.suppressions`` / tags; return EPI400 findings."""
    findings: list[Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(src.text).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return findings
    code_lines: set[int] = set()
    comments: list[tokenize.TokenInfo] = []
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            comments.append(tok)
        elif tok.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
            tokenize.ENCODING,
        ):
            for ln in range(tok.start[0], tok.end[0] + 1):
                code_lines.add(ln)

    for tok in comments:
        text = tok.string.strip()
        if not text.replace(" ", "").startswith("#epi4lint:"):
            continue
        m = _DIRECTIVE.match(text)
        if m is None:
            findings.append(
                _bad(src, tok, f"unrecognized epi4lint directive: {text!r}")
            )
            continue
        kind = m.group("kind")
        line = tok.start[0]
        standalone = line not in code_lines
        if kind in ("disable", "disable-file"):
            raw_rules = m.group("rules") or ""
            rules = tuple(r for r in raw_rules.split(",") if r)
            reason = m.group("reason").strip().lstrip("-— ").strip()
            bad_ids = [r for r in rules if not _RULE_ID.match(r)]
            if not rules or bad_ids:
                findings.append(
                    _bad(
                        src,
                        tok,
                        "suppression must name rule ids like EPI401 "
                        f"(got {raw_rules!r})",
                    )
                )
                continue
            if not reason:
                findings.append(
                    _bad(
                        src,
                        tok,
                        f"suppression of {','.join(rules)} carries no reason — "
                        "write why the finding is acceptable",
                    )
                )
                continue
            src.suppressions.append(
                Suppression(
                    line=line,
                    rules=rules,
                    reason=reason,
                    file_level=(kind == "disable-file"),
                    standalone=standalone,
                )
            )
        elif kind == TAG_DETERMINISTIC:
            if standalone and line <= 10:
                src.module_tags.add(TAG_DETERMINISTIC)
            else:
                src.line_tags.setdefault(line, set()).add(TAG_DETERMINISTIC)
        elif kind == TAG_LOCK_HELD:
            src.line_tags.setdefault(line, set()).add(TAG_LOCK_HELD)
    return findings


def _bad(src: SourceFile, tok: tokenize.TokenInfo, message: str) -> Finding:
    return Finding(
        rule=BAD_SUPPRESSION_RULE,
        family="meta",
        path=src.path,
        line=tok.start[0],
        col=tok.start[1],
        message=message,
    )


def apply_suppressions(
    src: SourceFile, findings: list[Finding]
) -> tuple[list[Finding], list[Finding]]:
    """Split one file's findings into (active, suppressed)."""
    active: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in findings:
        matched = None
        for sup in src.suppressions:
            if finding.rule not in sup.rules:
                continue
            if sup.file_level:
                matched = sup
                break
            if finding.line == sup.line or (
                sup.standalone and finding.line == sup.line + 1
            ):
                matched = sup
                break
        if matched is None:
            active.append(finding)
        else:
            matched.used = True
            suppressed.append(
                Finding(
                    rule=finding.rule,
                    family=finding.family,
                    path=finding.path,
                    line=finding.line,
                    col=finding.col,
                    message=finding.message,
                    suppressed=True,
                    suppress_reason=matched.reason,
                )
            )
    return active, suppressed
