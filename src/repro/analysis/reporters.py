"""Text and JSON reporters for analysis results.

The text reporter emits one ``path:line:col: RULE message`` line per
finding (sorted) plus a per-family summary; the JSON reporter emits a
versioned document that round-trips through
:meth:`repro.analysis.model.Finding.from_dict` so CI can archive and
diff runs.
"""

from __future__ import annotations

import json

from repro.analysis.model import AnalysisResult
from repro.analysis.registry import exit_code_for

__all__ = ["render_text", "render_json", "JSON_SCHEMA_VERSION"]

JSON_SCHEMA_VERSION = 1


def render_text(result: AnalysisResult, *, verbose: bool = False) -> str:
    lines: list[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule} {finding.message}"
        )
    if verbose:
        for finding in result.suppressed:
            reason = finding.suppress_reason or "no reason recorded"
            lines.append(
                f"{finding.path}:{finding.line}:{finding.col}: "
                f"{finding.rule} suppressed ({reason})"
            )
    if result.findings:
        summary = ", ".join(
            f"{family}={n}" for family, n in sorted(result.families.items())
        )
        lines.append(
            f"epi4lint: {len(result.findings)} finding"
            f"{'s' if len(result.findings) != 1 else ''} "
            f"({summary}) in {result.files_scanned} files"
        )
    else:
        lines.append(
            f"epi4lint: clean — {result.files_scanned} files, "
            f"{len(result.rules_run)} rules, "
            f"{len(result.suppressed)} suppressed"
        )
    return "\n".join(lines) + "\n"


def render_json(result: AnalysisResult) -> str:
    doc = {
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": result.files_scanned,
        "rules_run": list(result.rules_run),
        "findings": [f.to_dict() for f in result.findings],
        "suppressed": [f.to_dict() for f in result.suppressed],
        "counts": result.counts,
        "families": result.families,
        "exit_code": exit_code_for(result.findings),
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
