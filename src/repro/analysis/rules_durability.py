"""Durability rules (EPI421-EPI423): the write → fsync → rename → fsync-dir
discipline for every artifact the crash-safety story depends on.

A rename (``os.rename``/``os.replace``/``shutil.move``/``Path.rename``)
publishes a file atomically **only** if the data made it to disk first
(file fsync before the rename) and the directory entry survives power
loss (directory fsync after).  The journal/checkpoint/shard-artifact
machinery all follow this; these rules keep new call sites honest:

- **EPI421** — rename with no ``os.fsync`` call earlier in the same
  function: the renamed file's blocks may still be dirty page cache.
- **EPI422** — no directory fsync (``fsync_directory`` or an
  ``os.fsync`` of a directory fd) after the function's final rename:
  the rename itself may not survive power loss.
- **EPI423** — ``open(..., "w"/"wb")`` of an artifact in a durability
  module outside an atomic-writer function (one that fsyncs): results
  artifacts must go through the atomic-exporter helpers
  (``repro.obs.exporters``/``_write_atomic``), never a bare write.
"""

from __future__ import annotations

import ast

from repro.analysis.config import (
    DIR_FSYNC_CALLS,
    DURABILITY_MODULES,
    FILE_FSYNC_CALLS,
    RENAME_CALLS,
)
from repro.analysis.model import Finding, Project, SourceFile

__all__ = ["DURABILITY_RULES"]


def _module_matches(module: str, prefixes: tuple[str, ...]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


def _call_origin(src: SourceFile, node: ast.Call) -> str | None:
    return src.resolve(node.func)


def _is_rename(src: SourceFile, node: ast.Call) -> bool:
    origin = _call_origin(src, node)
    if origin in RENAME_CALLS:
        return True
    # Path.rename(target) style: any `<receiver>.rename(...)` — python has
    # no common non-filesystem .rename() method, so this is low-noise.
    func = node.func
    return isinstance(func, ast.Attribute) and func.attr == "rename" and (
        origin is None or not origin.startswith("os.")
    )


def _is_file_fsync(src: SourceFile, node: ast.Call) -> bool:
    return _call_origin(src, node) in FILE_FSYNC_CALLS


def _is_dir_fsync(src: SourceFile, node: ast.Call) -> bool:
    origin = _call_origin(src, node)
    if origin in DIR_FSYNC_CALLS:
        return True
    func = node.func
    return isinstance(func, ast.Attribute) and func.attr == "fsync_directory"


def _function_calls(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[ast.Call]:
    """Calls lexically inside ``fn`` but not inside a nested def."""
    calls: list[ast.Call] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(child, ast.Call):
                calls.append(child)
            visit(child)

    visit(fn)
    return sorted(calls, key=lambda c: (c.lineno, c.col_offset))


def _iter_functions(src: SourceFile) -> list[ast.FunctionDef | ast.AsyncFunctionDef]:
    return [
        node
        for node in ast.walk(src.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


class RenameWithoutFsync:
    id = "EPI421"
    family = "durability"
    summary = "rename publishes a file that was never fsynced"

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for src in project.files:
            for fn in _iter_functions(src):
                calls = _function_calls(fn)
                fsync_sites = [
                    (c.lineno, c.col_offset)
                    for c in calls
                    if _is_file_fsync(src, c)
                ]
                for call in calls:
                    if not _is_rename(src, call):
                        continue
                    site = (call.lineno, call.col_offset)
                    if any(s < site for s in fsync_sites):
                        continue
                    findings.append(
                        Finding(
                            rule=self.id,
                            family=self.family,
                            path=src.path,
                            line=call.lineno,
                            col=call.col_offset,
                            message=(
                                f"rename in {fn.name}() with no preceding "
                                "os.fsync of the temp file: a crash after "
                                "the rename can publish an empty/partial "
                                "artifact — fsync before renaming (or use "
                                "the atomic-exporter helpers)"
                            ),
                        )
                    )
        return findings


class RenameWithoutDirFsync:
    id = "EPI422"
    family = "durability"
    summary = "no directory fsync after the function's final rename"

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for src in project.files:
            for fn in _iter_functions(src):
                calls = _function_calls(fn)
                renames = [c for c in calls if _is_rename(src, c)]
                if not renames:
                    continue
                last = renames[-1]
                last_site = (last.lineno, last.col_offset)
                covered = any(
                    (c.lineno, c.col_offset) > last_site
                    and (_is_dir_fsync(src, c) or _is_file_fsync(src, c))
                    for c in calls
                )
                if covered:
                    continue
                findings.append(
                    Finding(
                        rule=self.id,
                        family=self.family,
                        path=src.path,
                        line=last.lineno,
                        col=last.col_offset,
                        message=(
                            f"final rename in {fn.name}() is not followed "
                            "by a directory fsync: power loss can drop "
                            "the rename itself — call "
                            "repro.core.checkpoint.fsync_directory on "
                            "the parent directory after renaming"
                        ),
                    )
                )
        return findings


def _open_write_mode(node: ast.Call) -> str | None:
    """The write mode of an ``open``/``io.open`` call, if any."""
    mode: ast.expr | None = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        if mode.value.startswith(("w", "x")):
            return mode.value
    return None


class BareArtifactWrite:
    id = "EPI423"
    family = "durability"
    summary = "artifact opened for writing outside an atomic-writer function"

    def check(self, project: Project) -> list[Finding]:
        findings: list[Finding] = []
        for src in project.files:
            if not _module_matches(src.module, DURABILITY_MODULES):
                continue
            for fn in _iter_functions(src):
                calls = _function_calls(fn)
                has_fsync = any(_is_file_fsync(src, c) for c in calls)
                if has_fsync:
                    continue  # atomic-writer shape: EPI421/422 police it
                for call in calls:
                    origin = _call_origin(src, call)
                    if origin not in ("open", "io.open"):
                        continue
                    mode = _open_write_mode(call)
                    if mode is None:
                        continue
                    findings.append(
                        Finding(
                            rule=self.id,
                            family=self.family,
                            path=src.path,
                            line=call.lineno,
                            col=call.col_offset,
                            message=(
                                f"open(..., {mode!r}) in {fn.name}() "
                                f"({src.module}) writes an artifact "
                                "without fsync: route it through the "
                                "atomic-exporter helpers "
                                "(write tmp -> fsync -> rename -> "
                                "fsync dir)"
                            ),
                        )
                    )
        return findings


DURABILITY_RULES = (
    RenameWithoutFsync(),
    RenameWithoutDirFsync(),
    BareArtifactWrite(),
)
