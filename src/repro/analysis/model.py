"""Data model shared by every epi4lint rule: files, findings, projects.

A :class:`SourceFile` is one parsed module plus everything rules need
that the bare AST does not carry: the resolved import alias map, a
child → parent node map, the suppression/tag comments extracted from
the token stream, and the best-effort dotted module name (derived from
the nearest ``repro`` package ancestor so the same file is recognized
whether it is scanned as ``src/repro/core/journal.py`` or from a test
fixture tree).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str          # "EPI421"
    family: str        # "durability"
    path: str          # path as scanned (repo-relative when possible)
    line: int          # 1-based
    col: int           # 0-based
    message: str
    suppressed: bool = False
    suppress_reason: str | None = None

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "rule": self.rule,
            "family": self.family,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.suppressed:
            out["suppressed"] = True
            out["suppress_reason"] = self.suppress_reason
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Finding":
        return cls(
            rule=str(data["rule"]),
            family=str(data["family"]),
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            message=str(data["message"]),
            suppressed=bool(data.get("suppressed", False)),
            suppress_reason=data.get("suppress_reason"),
        )


@dataclass
class Suppression:
    """One ``# epi4lint: disable=...`` comment."""

    line: int                 # line the comment sits on
    rules: tuple[str, ...]    # rule ids it disables
    reason: str               # free text after the rule list
    file_level: bool = False  # ``disable-file=`` variant
    standalone: bool = False  # comment-only line (applies to next line too)
    used: bool = False


@dataclass
class SourceFile:
    """One parsed source module plus rule-support indexes."""

    path: str                         # as given to the scanner
    module: str                       # dotted name, e.g. "repro.core.journal"
    text: str
    tree: ast.Module
    aliases: dict[str, str] = field(default_factory=dict)
    suppressions: list[Suppression] = field(default_factory=list)
    module_tags: set[str] = field(default_factory=set)
    #: line → tags attached to that line (e.g. ``lock-held`` on a def line,
    #: ``deterministic`` on a def line).
    line_tags: dict[int, set[str]] = field(default_factory=dict)
    _parents: dict[int, ast.AST] = field(default_factory=dict, repr=False)

    def build_parent_map(self) -> None:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(id(node))

    # -- import resolution ------------------------------------------------ #

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted origin of a Name/Attribute chain, through import aliases.

        ``import numpy as np; np.random.default_rng`` resolves to
        ``"numpy.random.default_rng"``; an unresolvable expression (a
        call result, subscript, local variable) returns ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.aliases.get(node.id, node.id)
        parts.append(base)
        return ".".join(reversed(parts))

    # -- tags ------------------------------------------------------------- #

    def has_line_tag(self, node: ast.AST, tag: str) -> bool:
        """True when ``tag`` sits on the node's def line or a decorator
        line directly above it."""
        lineno = getattr(node, "lineno", None)
        if lineno is None:
            return False
        for ln in range(lineno, getattr(node, "body", [node])[0].lineno):
            if tag in self.line_tags.get(ln, ()):
                return True
        return tag in self.line_tags.get(lineno, ())


@dataclass
class Project:
    """Everything one analysis run sees."""

    files: list[SourceFile]
    repo_root: str | None = None   # directory holding pyproject.toml, if found

    def by_module(self, module: str) -> SourceFile | None:
        for f in self.files:
            if f.module == module:
                return f
        return None

    def iter_modules(self, prefix: str) -> Iterator[SourceFile]:
        for f in self.files:
            if f.module == prefix or f.module.startswith(prefix + "."):
                yield f


@dataclass
class AnalysisResult:
    """Findings of one run, pre-split by suppression state."""

    findings: list[Finding]            # active (unsuppressed) findings
    suppressed: list[Finding]          # findings silenced with a reason
    files_scanned: int = 0
    rules_run: tuple[str, ...] = ()

    @property
    def families(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.family] = out.get(f.family, 0) + 1
        return out

    @property
    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return out
