"""Observability/surface coherence rules (EPI431-EPI434).

The metric catalogue, the CLI and the README are contracts users build
dashboards and scripts against; these rules keep them synchronized with
the code mechanically:

- **EPI431** — an ``epi4_*`` metric name emitted in code is missing
  from the ``docs/observability.md`` catalogue.
- **EPI432** — a metric name documented in the catalogue is never
  emitted anywhere in ``src/`` (stale docs).
- **EPI433** — a ``SearchConfig`` field has no matching CLI flag in
  ``repro.cli`` (``--field-with-dashes``, modulo
  :data:`repro.analysis.config.FLAG_ALIASES`).
- **EPI434** — a ``SearchConfig`` field's CLI flag has no README row.

Metric names are collected from non-docstring string literals matching
``epi4_[a-z0-9_]+``; literals ending in ``_`` are treated as prefixes
(used with ``startswith``/concatenation) and skipped.  Doc tokens
ending in ``_`` or ``*`` count as wildcard prefixes and cover any
emitted name they prefix.

These rules run only when the project has a repo root (a directory
holding ``pyproject.toml``) so fixture trees without docs skip cleanly.
"""

from __future__ import annotations

import ast
import os
import re

from repro.analysis.config import (
    CLI_MODULE,
    COHERENCE_EXCLUDED_MODULES,
    FLAG_ALIASES,
    METRIC_PREFIX,
    OBSERVABILITY_DOC,
    README_DOC,
    SEARCH_CONFIG_CLASS,
    SEARCH_CONFIG_MODULE,
)
from repro.analysis.model import Finding, Project

__all__ = ["COHERENCE_RULES"]

_METRIC_RE = re.compile(re.escape(METRIC_PREFIX) + r"[a-z0-9_]*")
_FLAG_RE = re.compile(r"--[a-z][a-z0-9-]+")


def _docstring_ids(tree: ast.Module) -> set[int]:
    """ids of Constant nodes that are docstrings."""
    out: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            body = node.body
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                out.add(id(body[0].value))
    return out


def _emitted_metrics(
    project: Project,
) -> dict[str, tuple[str, int, int]]:
    """Exact metric names in code → first literal site."""
    out: dict[str, tuple[str, int, int]] = {}
    for src in project.files:
        if any(
            src.module == m or src.module.startswith(m + ".")
            for m in COHERENCE_EXCLUDED_MODULES
        ):
            continue
        doc_ids = _docstring_ids(src.tree)
        for node in ast.walk(src.tree):
            if (
                not isinstance(node, ast.Constant)
                or not isinstance(node.value, str)
                or id(node) in doc_ids
            ):
                continue
            for name in _METRIC_RE.findall(node.value):
                if name.endswith("_") or name == METRIC_PREFIX.rstrip("_"):
                    continue  # prefix literal, not a full metric name
                out.setdefault(name, (src.path, node.lineno, node.col_offset))
    return out


def _doc_metrics(repo_root: str) -> tuple[dict[str, int], list[str], str] | None:
    """(exact name → line, wildcard prefixes, doc path) from the catalogue."""
    path = os.path.join(repo_root, OBSERVABILITY_DOC)
    if not os.path.exists(path):
        return None
    exact: dict[str, int] = {}
    prefixes: list[str] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            for m in _METRIC_RE.finditer(line):
                name = m.group(0)
                tail = line[m.end():m.end() + 1]
                if name.endswith("_") or tail == "*":
                    prefixes.append(name.rstrip("*"))
                elif name not in exact:
                    exact[name] = lineno
    return exact, prefixes, path


class UndocumentedMetric:
    id = "EPI431"
    family = "coherence"
    summary = "emitted epi4_* metric missing from the docs catalogue"

    def check(self, project: Project) -> list[Finding]:
        if project.repo_root is None:
            return []
        doc = _doc_metrics(project.repo_root)
        if doc is None:
            return []
        exact, prefixes, _ = doc
        findings: list[Finding] = []
        for name, (path, line, col) in sorted(_emitted_metrics(project).items()):
            if name in exact:
                continue
            if any(name.startswith(p) for p in prefixes if len(p) > len(METRIC_PREFIX)):
                continue
            findings.append(
                Finding(
                    rule=self.id,
                    family=self.family,
                    path=path,
                    line=line,
                    col=col,
                    message=(
                        f"metric {name} is emitted here but missing from "
                        f"the {OBSERVABILITY_DOC} catalogue — document "
                        "its type, labels and meaning"
                    ),
                )
            )
        return findings


class StaleDocumentedMetric:
    id = "EPI432"
    family = "coherence"
    summary = "documented metric never emitted in code"

    def check(self, project: Project) -> list[Finding]:
        if project.repo_root is None:
            return []
        doc = _doc_metrics(project.repo_root)
        if doc is None:
            return []
        exact, _, doc_path = doc
        emitted = set(_emitted_metrics(project))
        # Histogram series expose derived _bucket/_sum/_count names.
        derived = set()
        for name in emitted:
            derived.update({name + "_bucket", name + "_sum", name + "_count"})
        findings: list[Finding] = []
        rel = os.path.relpath(doc_path, project.repo_root)
        for name, lineno in sorted(exact.items()):
            if name in emitted or name in derived:
                continue
            findings.append(
                Finding(
                    rule=self.id,
                    family=self.family,
                    path=rel,
                    line=lineno,
                    col=0,
                    message=(
                        f"metric {name} is documented but never emitted "
                        "anywhere in src/ — remove the row or restore "
                        "the emission"
                    ),
                )
            )
        return findings


def _search_config_fields(
    project: Project,
) -> tuple[list[tuple[str, int]], str] | None:
    src = project.by_module(SEARCH_CONFIG_MODULE)
    if src is None:
        return None
    for node in ast.walk(src.tree):
        if isinstance(node, ast.ClassDef) and node.name == SEARCH_CONFIG_CLASS:
            fields = [
                (stmt.target.id, stmt.lineno)
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            ]
            return fields, src.path
    return None


def _cli_flags(project: Project) -> set[str]:
    src = project.by_module(CLI_MODULE)
    if src is None:
        return set()
    flags: set[str] = set()
    for node in ast.walk(src.tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if _FLAG_RE.fullmatch(node.value):
                flags.add(node.value)
    return flags


def _expected_flag(field: str) -> str:
    return FLAG_ALIASES.get(field, "--" + field.replace("_", "-"))


class ConfigFieldWithoutFlag:
    id = "EPI433"
    family = "coherence"
    summary = "SearchConfig field has no matching CLI flag"

    def check(self, project: Project) -> list[Finding]:
        info = _search_config_fields(project)
        if info is None:
            return []
        fields, path = info
        flags = _cli_flags(project)
        if not flags:
            return []
        findings: list[Finding] = []
        for field, lineno in fields:
            expected = _expected_flag(field)
            if expected in flags:
                continue
            findings.append(
                Finding(
                    rule=self.id,
                    family=self.family,
                    path=path,
                    line=lineno,
                    col=4,
                    message=(
                        f"SearchConfig.{field} has no CLI flag "
                        f"({expected} not found in repro.cli): every "
                        "tunable must be reachable from the command "
                        "line (add the flag or register an alias in "
                        "repro.analysis.config.FLAG_ALIASES)"
                    ),
                )
            )
        return findings


class ConfigFieldWithoutReadmeRow:
    id = "EPI434"
    family = "coherence"
    summary = "SearchConfig field's CLI flag has no README row"

    def check(self, project: Project) -> list[Finding]:
        if project.repo_root is None:
            return []
        info = _search_config_fields(project)
        if info is None:
            return []
        readme_path = os.path.join(project.repo_root, README_DOC)
        if not os.path.exists(readme_path):
            return []
        with open(readme_path, "r", encoding="utf-8") as fh:
            readme_flags = set(_FLAG_RE.findall(fh.read()))
        fields, path = info
        findings: list[Finding] = []
        for field, lineno in fields:
            expected = _expected_flag(field)
            if expected in readme_flags:
                continue
            findings.append(
                Finding(
                    rule=self.id,
                    family=self.family,
                    path=path,
                    line=lineno,
                    col=4,
                    message=(
                        f"SearchConfig.{field}'s flag {expected} has no "
                        f"{README_DOC} row — add it to the flag table"
                    ),
                )
            )
        return findings


COHERENCE_RULES = (
    UndocumentedMetric(),
    StaleDocumentedMetric(),
    ConfigFieldWithoutFlag(),
    ConfigFieldWithoutReadmeRow(),
)
