"""epi4lint: repo-specific static analysis for the epi4tensor codebase.

The repo's headline guarantee — bit-identical top-k digests across
engines, threading, batching, sharding, fault injection and resume — is
enforced dynamically by the equivalence suites, but a *new* call site
that breaks the rules (a stray ``time.time()`` in a digest path, an
unguarded mutation of a shared reducer, a ``rename`` without ``fsync``)
is invisible to them until it corrupts a run.  This package makes those
invariants machine-checked at review time.

Four rule families (see :mod:`repro.analysis.registry` and
``docs/static_analysis.md`` for the catalogue):

- **determinism** (``EPI401``–``EPI403``): no wall-clock, RNG, UUID or
  unordered-collection iteration inside modules/functions on the
  digest/merge/journal/checkpoint/plan/bounds paths;
- **concurrency** (``EPI411``–``EPI413``): guarded-by discipline for
  the registered thread-shared classes plus lock-acquisition-order
  cycle detection;
- **durability** (``EPI421``–``EPI423``): fsync-before-rename,
  directory fsync after rename, and atomic-writer discipline for
  artifact files;
- **coherence** (``EPI431``–``EPI434``): every emitted ``epi4_*``
  metric is documented (and vice versa), every ``SearchConfig`` field
  has a CLI flag and a README row.

Findings are suppressible in source with a written reason::

    os.replace(tmp, path)  # epi4lint: disable=EPI421 scratch file, torn copy is discarded on reload

Entry points: ``python -m repro.analysis [paths]`` (text/JSON
reporters, per-family exit-code bits) and :func:`analyze_paths` for
programmatic use (the tier-1 gate in ``tests/test_static_analysis.py``).
"""

from repro.analysis.model import AnalysisResult, Finding, Project, SourceFile
from repro.analysis.registry import (
    FAMILIES,
    FAMILY_EXIT_BITS,
    all_rules,
    exit_code_for,
    rules_by_id,
)
from repro.analysis.walker import analyze_paths, load_project

__all__ = [
    "AnalysisResult",
    "Finding",
    "Project",
    "SourceFile",
    "FAMILIES",
    "FAMILY_EXIT_BITS",
    "all_rules",
    "rules_by_id",
    "exit_code_for",
    "analyze_paths",
    "load_project",
]
