"""Device-memory budgeting for a search (§3.3's design constraint, live).

The paper's central memory argument: the single-phase third-order strategy
needs ``O(C(M,3))`` storage, while Epi4Tensor's three-phase construction
keeps the working set to the active sweeps.  This module itemizes the
device-resident footprint of a configured search — dataset planes, lgamma
table, low-order tables, the three live 3-way sweep corners, the combined
operands and the 4-way corner/score buffers — so a search can be checked
against a GPU's memory *before* it runs, and refuses configurations that
cannot fit (the same failure the paper reports for [15] at large ``M``).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

from repro.bitops.combine import combined_nbytes
from repro.device.specs import GPUSpec


class DeviceMemoryError(MemoryError):
    """A search configuration does not fit the target device's memory."""


@dataclass(frozen=True)
class DeviceMemoryEstimate:
    """Itemized per-device memory footprint of one search.

    Attributes:
        components: bytes by component name.
        total_bytes: sum over components.
    """

    components: dict[str, int]

    @property
    def total_bytes(self) -> int:
        return sum(self.components.values())

    @property
    def total_gb(self) -> float:
        return self.total_bytes / 1e9

    def format(self) -> str:
        """Human-readable breakdown, largest first."""
        lines = [
            f"  {name:<22s} {size / 1e6:10.1f} MB"
            for name, size in sorted(
                self.components.items(), key=lambda kv: -kv[1]
            )
        ]
        lines.append(f"  {'total':<22s} {self.total_bytes / 1e6:10.1f} MB")
        return "\n".join(lines)


def cache_working_set_bytes(
    n_snps: int, n_controls: int, n_cases: int, block_size: int
) -> int:
    """Total bytes of every cacheable round operand (both classes).

    The round-operand cache (:mod:`repro.core.operand_cache`) stores, per
    unordered block pair ``(Ai <= Bi)`` and class: the ``4*B^2``-row
    combined bit-matrix and the int32 ``(B, B, M - Bi*B, 2, 2, 2)``
    third-order sweep corners.  This sum is the cache's maximum resident
    set — an *unbounded* cache budget is capped here, so the §3.3 memory
    check never has to reason about ``inf``.
    """
    if min(n_snps, n_controls, n_cases, block_size) <= 0:
        raise ValueError("all dimensions must be positive")
    m, b = n_snps, block_size
    nb = m // b
    # Both classes, packed u64 — sized by the real operand format.
    combine_bytes = combined_nbytes(b, n_controls) + combined_nbytes(b, n_cases)
    total = 0
    for bi in range(nb):
        n_pairs = bi + 1  # pairs (ai <= bi) ending at this block
        tail = m - bi * b
        sweep_bytes = 2 * (b * b * tail * 8) * 4  # both classes, 8 corners, i32
        total += n_pairs * (combine_bytes + sweep_bytes)
    return total


def triplet_working_set_bytes(n_snps: int, block_size: int) -> int:
    """Total bytes of every cacheable completed third-order table.

    The cross-round triplet cache (``("full3", cls, a, b, c)`` entries in
    :mod:`repro.core.operand_cache`) stores one completed ``(B, B, B, 27)``
    int64 table per class per unordered block triple ``(ai <= bi <= ci)``.
    Like :func:`cache_working_set_bytes`, this bounds the cache's maximum
    resident set for the §3.3 memory check.
    """
    if min(n_snps, block_size) <= 0:
        raise ValueError("all dimensions must be positive")
    nb = n_snps // block_size
    return 2 * comb(nb + 2, 3) * block_size**3 * 27 * 8


def estimate_search_memory(
    n_snps: int,
    n_controls: int,
    n_cases: int,
    block_size: int,
    *,
    max_chunk_cells: int = 32 * 1024 * 1024,
    cache_budget_bytes: float = 0,
    cache_triplets: bool = False,
    batch_rounds: int = 1,
) -> DeviceMemoryEstimate:
    """Per-device footprint of a fourth-order search (§3.6: every GPU holds
    the full dataset, lgamma table and low-order tables).

    Args:
        n_snps: padded SNP count ``M``.
        n_controls / n_cases: class sizes.
        block_size: ``B``.
        max_chunk_cells: the ``applyScore`` chunking bound (cells/class).
        cache_budget_bytes: round-operand cache budget.  ``0`` = caching
            disabled (no component); ``float("inf")`` = unbounded, charged
            at the full :func:`cache_working_set_bytes`.  A finite budget
            is charged at ``min(budget, working set)``.
        cache_triplets: include completed third-order tables
            (:func:`triplet_working_set_bytes`) in the cacheable working
            set — the cross-round triplet-reuse path of the fused
            ``applyScore``.  Ignored when caching is disabled.
        batch_rounds: rounds fused per batched GEMM launch group.  Above
            1, the round stager double-buffers a group's ``yz`` operands
            and 4-way corner outputs (prepare ``r+1`` while ``r`` scores),
            so that working set is charged twice.

    Returns:
        A :class:`DeviceMemoryEstimate`.
    """
    if min(n_snps, n_controls, n_cases, block_size) <= 0:
        raise ValueError("all dimensions must be positive")
    m, b = n_snps, block_size
    words0 = (n_controls + 63) // 64
    words1 = (n_cases + 63) // 64
    n = n_controls + n_cases

    components = {
        # 2 bit-plane rows per SNP per class, packed.
        "dataset planes": 8 * 2 * m * (words0 + words1),
        # lgamma LUT over 0..N+2 doubles (§3.5).
        "lgamma table": 8 * (n + 3),
        # indivPop (int64) + pairwPop (int32), both classes.
        "low-order tables": 8 * 2 * m * 3 + 4 * 2 * m * m * 9,
        # Three live 3-way sweeps of (B, B, <=M) 8-cell int32 corners x2
        # classes (wx at the X level, wy + xy at the Y level).
        "3-way sweep corners": 3 * 2 * (b * b * m * 8) * 4,
        # Combined operands alive at once: wx, wy, xy, yz per class.
        "combined operands": 8 * 4 * 2 * (4 * b * b) * max(words0, words1),
        # 4-way corners for one round: (B^4, 16) per class, int64.
        "4-way corners": 8 * 2 * b**4 * 16,
        # applyScore working tables: chunked 81-cell tables, both classes.
        "score tables": 8 * 2 * min(b**4 * 81, max_chunk_cells),
        # Round score grid (float64) + reduction buffers.
        "score grid": 8 * b**4,
    }
    if batch_rounds < 1:
        raise ValueError(f"batch_rounds must be >= 1, got {batch_rounds}")
    if batch_rounds > 1:
        # Double-buffered round stager: two groups of `batch_rounds`
        # rounds may be resident at once, each holding both classes'
        # yz-combined operands and 4-way corner outputs.
        per_round = (
            8 * 2 * (4 * b * b) * max(words0, words1)  # yz operands
            + 8 * 2 * b**4 * 16  # 4-way corners
        )
        components["round stager"] = 2 * batch_rounds * per_round
    if cache_budget_bytes < 0:
        raise ValueError(
            f"cache_budget_bytes must be >= 0, got {cache_budget_bytes}"
        )
    if cache_budget_bytes > 0:
        working_set = cache_working_set_bytes(
            n_snps, n_controls, n_cases, block_size
        )
        if cache_triplets:
            working_set += triplet_working_set_bytes(n_snps, block_size)
        components["operand cache"] = int(min(cache_budget_bytes, working_set))
    return DeviceMemoryEstimate(components=components)


def check_fits(
    spec: GPUSpec,
    estimate: DeviceMemoryEstimate,
    *,
    reserve_fraction: float = 0.05,
) -> None:
    """Raise :class:`DeviceMemoryError` if the search exceeds device memory.

    Args:
        spec: target GPU.
        estimate: output of :func:`estimate_search_memory`.
        reserve_fraction: memory held back for the runtime/driver.
    """
    if not 0 <= reserve_fraction < 1:
        raise ValueError(
            f"reserve_fraction must be in [0, 1), got {reserve_fraction}"
        )
    budget = spec.memory_gb * 1e9 * (1.0 - reserve_fraction)
    if estimate.total_bytes > budget:
        raise DeviceMemoryError(
            f"search needs {estimate.total_gb:.2f} GB but {spec.name} offers "
            f"{budget / 1e9:.2f} GB (of {spec.memory_gb} GB):\n"
            f"{estimate.format()}"
        )
