"""Deterministic fault injection for the virtual device layer.

Long exhaustive searches (the paper's largest single-GPU run is ~14.5 h)
are exactly where transient device faults, pre-emption and silent data
corruption bite.  This module provides the *testing* half of the
resilience story: a seedable, fully deterministic harness that wraps a
:class:`~repro.device.virtual_gpu.VirtualGPU` and makes its kernel
launches and transfers fail — or silently corrupt their outputs — on a
configured schedule.  The *recovery* half (retry/backoff, quarantine,
degraded re-execution) lives in :mod:`repro.core.resilience` and
:mod:`repro.core.search`.

Fault model
-----------

Five fault kinds are modelled:

``transient``
    The launch raises :class:`DeviceFault`; retrying the same launch (or
    the enclosing ``Wi`` iteration) on the same device can succeed.
``persistent``
    Once triggered, the device is *dead*: this and **every subsequent**
    launch on it raises :class:`DeviceFault` (``kind="persistent"``).
    Models a hung/ejected GPU; only quarantine + requeue can make
    progress.
``corrupt``
    The launch *succeeds* but its output is silently corrupted (an
    out-of-range count is written into the result array).  Only applied
    to ``tensor4`` launches: the fourth-order corners are recomputed
    fresh every round, so corruption is contained to one round and the
    search's round-level output validation / self-check can catch it.
    (Corrupting cacheable operands — ``combine``/``tensor3`` — would let
    a poisoned cache entry silently infect *other* rounds, which is a
    different failure class than the per-launch SDC modelled here.)
``hang``
    The launch *stalls forever* instead of failing fast: the calling
    thread blocks until the search's hang watchdog
    (:class:`repro.core.watchdog.LaunchWatchdog`, armed via
    ``--deadline-ms``) trips the launch, at which point the stall is
    cancelled and surfaces as :class:`DeviceFault` (``kind="hang"``) into
    the ordinary retry/requeue/quarantine path.  Injecting ``hang``
    without an armed watchdog is a configuration error (nothing would
    ever cancel the stall); :class:`FaultyGPU` degrades it to an
    immediate hang fault so unit tests stay hang-free.
``oom``
    The launch raises
    :class:`~repro.device.memory.DeviceMemoryError` — a simulated
    device allocation failure.  Recovery is *not* the retry path: the
    memory-pressure governor (:mod:`repro.core.pressure`) steps its
    degradation ladder and re-runs the iteration at a reduced footprint.

Triggers are count-based (``count=N``: the first N matching launches),
position-based (``at=N``: exactly the Nth matching launch, 1-based) or
probabilistic (``p=0.05``: Bernoulli per matching launch, drawn from the
plan's seeded PRNG), optionally filtered by device, kernel name and the
outer (``Wi``) iteration being executed.  Everything is deterministic
given the spec string (including the seed), so an injected-fault run is
exactly reproducible.

Spec strings
------------

The CLI's ``--inject-faults`` accepts a compact spec: ``;``-separated
clauses, each ``kind:key=value,key=value,...``.  A bare ``seed=N``
clause seeds the probabilistic triggers.  Examples::

    transient:op=tensor4,count=2
    persistent:device=1,at=5
    corrupt:iter=0;transient:p=0.01;seed=42

"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.device.memory import DeviceMemoryError
from repro.device.virtual_gpu import VirtualGPU

#: Kernel names a rule's ``op=`` filter may name (launch vocabulary of
#: :class:`VirtualGPU`).
LAUNCH_OPS = (
    "transfer",
    "combine",
    "pairwPop",
    "tensor3",
    "tensor4",
    "applyScore",
)

FAULT_KINDS = ("transient", "persistent", "corrupt", "hang", "oom")

#: Keys each fault kind accepts in a spec clause.  All kinds share the
#: same filter/trigger vocabulary today, but the table is consulted
#: per-kind so error messages can say *which* kind rejected the key and
#: future kind-specific keys slot in without touching the parser.
KIND_KEYS: dict[str, tuple[str, ...]] = {
    kind: ("op", "device", "iter", "count", "at", "p")
    for kind in FAULT_KINDS
}


class DeviceFault(RuntimeError):
    """A (simulated) device-side failure of one kernel launch.

    Attributes:
        device_id: device the launch ran on.
        op: kernel name (``tensor4``, ``combine``, ...).
        kind: ``"transient"``, ``"persistent"`` or ``"hang"``.
        wi: outer iteration being executed when the fault fired (``None``
            outside the search loop, e.g. during dataset transfer).
    """

    def __init__(
        self, device_id: int, op: str, kind: str, wi: int | None = None
    ) -> None:
        self.device_id = device_id
        self.op = op
        self.kind = kind
        self.wi = wi
        where = f" during outer iteration {wi}" if wi is not None else ""
        super().__init__(
            f"{kind} device fault on device {device_id} in {op!r}{where}"
        )


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: *what* fails, *where* and *when*.

    Attributes:
        kind: one of :data:`FAULT_KINDS` (``transient``, ``persistent``,
            ``corrupt``, ``hang``, ``oom``).
        op: kernel-name filter (``None`` = any launch; ``corrupt`` rules
            default to — and must target — ``tensor4``).
        device: device-id filter (``None`` = any device).
        iteration: outer-iteration filter (``None`` = any).
        count: fire on the first ``count`` matching launches.
        at: fire on exactly the ``at``-th matching launch (1-based).
        probability: fire per matching launch with this probability.

    Exactly one of ``count`` / ``at`` / ``probability`` is active; when
    none is given, ``count=1`` (fire once) is assumed.
    """

    kind: str
    op: str | None = None
    device: int | None = None
    iteration: int | None = None
    count: int | None = None
    at: int | None = None
    probability: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.op is not None and self.op not in LAUNCH_OPS:
            raise ValueError(
                f"op must be one of {LAUNCH_OPS}, got {self.op!r}"
            )
        if self.kind == "corrupt":
            if self.op not in (None, "tensor4"):
                raise ValueError(
                    "corrupt rules only apply to tensor4 launches "
                    f"(got op={self.op!r}); see the module fault model"
                )
            object.__setattr__(self, "op", "tensor4")
        triggers = [
            t for t in (self.count, self.at, self.probability) if t is not None
        ]
        if len(triggers) > 1:
            raise ValueError(
                "a rule takes at most one of count=/at=/p= "
                f"(got {self!r})"
            )
        if not triggers:
            object.__setattr__(self, "count", 1)
        if self.count is not None and self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count}")
        if self.at is not None and self.at < 1:
            raise ValueError(f"at must be >= 1, got {self.at}")
        if self.probability is not None and not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"p must be in (0, 1], got {self.probability}"
            )
        if self.device is not None and self.device < 0:
            raise ValueError(f"device must be >= 0, got {self.device}")
        if self.iteration is not None and self.iteration < 0:
            raise ValueError(f"iter must be >= 0, got {self.iteration}")

    def matches(self, device_id: int, op: str, wi: int | None) -> bool:
        """Static filters only (trigger state lives in the injector)."""
        if self.op is not None and op != self.op:
            return False
        if self.device is not None and device_id != self.device:
            return False
        if self.iteration is not None and wi != self.iteration:
            return False
        return True


@dataclass(frozen=True)
class FaultPlan:
    """A parsed, validated injection configuration."""

    rules: tuple[FaultRule, ...]
    seed: int = 0

    @property
    def has_corruption(self) -> bool:
        return any(r.kind == "corrupt" for r in self.rules)

    @property
    def has_hang(self) -> bool:
        """True when any rule injects hangs (requires an armed watchdog)."""
        return any(r.kind == "hang" for r in self.rules)


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse a ``--inject-faults`` spec string into a :class:`FaultPlan`.

    Grammar: ``;``-separated clauses; each clause is either ``seed=N`` or
    ``kind[:key=value[,key=value...]]`` with keys ``op``, ``device``,
    ``iter``, ``count``, ``at``, ``p``.

    Raises:
        ValueError: on any malformed clause.  The message carries the
            1-based clause index and the offending clause text, and
            unknown/duplicate keys are rejected *per kind* with the
            kind's valid-key list — a typo'd key can never be silently
            dropped.
    """
    rules: list[FaultRule] = []
    seed = 0
    for index, clause in enumerate(spec.split(";"), start=1):
        clause = clause.strip()
        if not clause:
            continue

        def bad(reason: str) -> ValueError:
            return ValueError(
                f"bad fault clause {index} ({clause!r}): {reason}"
            )

        if clause.startswith("seed="):
            try:
                seed = int(clause[len("seed="):])
            except ValueError:
                raise bad("seed must be an integer") from None
            continue
        kind, _, args = clause.partition(":")
        kind = kind.strip()
        if kind not in FAULT_KINDS:
            raise bad(
                f"unknown fault kind {kind!r} "
                f"(valid kinds: {', '.join(FAULT_KINDS)})"
            )
        valid_keys = KIND_KEYS[kind]
        kwargs: dict[str, object] = {}
        seen: set[str] = set()
        for item in filter(None, (a.strip() for a in args.split(","))):
            key, sep, value = item.partition("=")
            if not sep:
                raise bad(f"expected key=value, got {item!r}")
            key = key.strip()
            value = value.strip()
            if key not in valid_keys:
                raise bad(
                    f"unknown key {key!r} for kind {kind!r} "
                    f"(valid keys: {', '.join(valid_keys)})"
                )
            if key in seen:
                raise bad(f"duplicate key {key!r}")
            seen.add(key)
            try:
                if key in ("device", "count", "at"):
                    kwargs[key] = int(value)
                elif key == "iter":
                    kwargs["iteration"] = int(value)
                elif key == "p":
                    kwargs["probability"] = float(value)
                else:  # key == "op"
                    kwargs["op"] = value
            except ValueError:
                raise bad(
                    f"key {key!r} needs a numeric value, got {value!r}"
                ) from None
        try:
            rules.append(FaultRule(kind=kind, **kwargs))  # type: ignore[arg-type]
        except (TypeError, ValueError) as exc:
            raise bad(str(exc)) from None
    if not rules:
        raise ValueError(f"fault spec {spec!r} contains no rules")
    return FaultPlan(rules=tuple(rules), seed=seed)


@dataclass
class InjectionStats:
    """What the injector actually did (for injected == observed checks)."""

    transient: int = 0
    persistent: int = 0
    corrupt: int = 0
    hang: int = 0
    oom: int = 0

    @property
    def total(self) -> int:
        return (
            self.transient
            + self.persistent
            + self.corrupt
            + self.hang
            + self.oom
        )


class FaultInjector:
    """Deterministic runtime state of a :class:`FaultPlan`.

    One injector is shared by all of a search's devices; it keeps
    per-rule match counters, the per-device dead set (persistent faults)
    and the seeded PRNG for probabilistic triggers.  All decision state
    is mutated under one lock, so concurrent device worker threads see a
    single consistent schedule.

    The current outer iteration is tracked per device via
    :meth:`begin_iteration` (one worker thread per device, so a plain
    dict suffices under the lock).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stats = InjectionStats()
        self._lock = threading.Lock()
        self._rng = random.Random(plan.seed)
        self._matches = [0] * len(plan.rules)
        self._fired = [0] * len(plan.rules)
        self._dead: set[int] = set()
        self._context: dict[int, int | None] = {}

    # ------------------------------------------------------------------ #

    def begin_iteration(self, device_id: int, wi: int | None) -> None:
        """Declare the outer iteration ``device_id`` is about to execute."""
        with self._lock:
            self._context[device_id] = wi

    def current_iteration(self, device_id: int) -> int | None:
        with self._lock:
            return self._context.get(device_id)

    @property
    def dead_devices(self) -> set[int]:
        """Devices killed by a persistent rule so far."""
        with self._lock:
            return set(self._dead)

    # ------------------------------------------------------------------ #

    def on_launch(self, device_id: int, op: str) -> str | None:
        """Decide the fate of one launch.

        Returns:
            ``None`` (execute normally), ``"corrupt"`` (execute, then
            corrupt the output) or ``"hang"`` (stall the launch until the
            watchdog cancels it).

        Raises:
            DeviceFault: for transient faults and on every launch of a
                dead device.
            DeviceMemoryError: for ``oom`` rules (simulated allocation
                failure; recovered by the pressure governor, not the
                retry path).
        """
        with self._lock:
            wi = self._context.get(device_id)
            if device_id in self._dead:
                self.stats.persistent += 1
                raise DeviceFault(device_id, op, "persistent", wi)
            corrupt = False
            for idx, rule in enumerate(self.plan.rules):
                if not rule.matches(device_id, op, wi):
                    continue
                self._matches[idx] += 1
                if not self._triggered(idx, rule):
                    continue
                self._fired[idx] += 1
                if rule.kind == "persistent":
                    self._dead.add(device_id)
                    self.stats.persistent += 1
                    raise DeviceFault(device_id, op, "persistent", wi)
                if rule.kind == "transient":
                    self.stats.transient += 1
                    raise DeviceFault(device_id, op, "transient", wi)
                if rule.kind == "oom":
                    self.stats.oom += 1
                    raise DeviceMemoryError(
                        f"injected oom on device {device_id} in {op!r}"
                        + (f" during outer iteration {wi}" if wi is not None else "")
                    )
                if rule.kind == "hang":
                    self.stats.hang += 1
                    return "hang"
                corrupt = True  # corrupt: flag and keep scanning
            if corrupt:
                self.stats.corrupt += 1
                return "corrupt"
        return None

    def _triggered(self, idx: int, rule: FaultRule) -> bool:
        # Callers hold self._lock.
        if rule.probability is not None:
            return self._rng.random() < rule.probability
        if rule.at is not None:
            return self._matches[idx] == rule.at
        assert rule.count is not None
        return self._fired[idx] < rule.count

    def corrupt_output(self, out: np.ndarray) -> np.ndarray:
        """Deterministically corrupt one cell of a corner array in place.

        The poisoned value is negative — impossible for a popcount — so
        round-level output validation is guaranteed to notice.
        """
        with self._lock:
            pos = self._rng.randrange(out.size)
        flat = out.reshape(-1)
        flat[pos] = -42
        return out


class FaultyGPU:
    """A :class:`VirtualGPU` whose launches pass through a fault injector
    and (optionally) a hang watchdog.

    Transparent proxy: everything except the launch methods (and
    :meth:`transfer_to_device`) delegates to the wrapped device, so
    counters, spec, engine and ``device_id`` behave identically.  Each
    injected fault is also tallied on the device's
    :class:`~repro.device.virtual_gpu.KernelCounters` (``faults_injected``)
    so per-device accounting survives into :class:`SearchResult`.

    When a :class:`~repro.core.watchdog.LaunchWatchdog` is attached,
    every launch runs under a deadline guard: a launch that overruns is
    *cancelled* — its result is discarded and :class:`DeviceFault`
    (``kind="hang"``) is raised instead, exactly once per watchdog trip.
    Injected ``hang`` faults stall cooperatively on the guard's cancel
    event until the watchdog trips them.  Either proxy concern works
    without the other: ``injector=None`` gives a pure deadline guard,
    ``watchdog=None`` pure injection.
    """

    def __init__(
        self,
        gpu: VirtualGPU,
        injector: FaultInjector | None = None,
        watchdog: "object | None" = None,
    ) -> None:
        self._gpu = gpu
        self._injector = injector
        self._watchdog = watchdog

    def __getattr__(self, name: str):
        return getattr(self._gpu, name)

    def __repr__(self) -> str:
        return f"FaultyGPU({self._gpu!r})"

    # ------------------------------------------------------------------ #

    def _gate(self, op: str) -> str | None:
        if self._injector is None:
            return None
        try:
            return self._injector.on_launch(self._gpu.device_id, op)
        except (DeviceFault, DeviceMemoryError):
            self._gpu.counters.record_fault()
            raise

    def _current_wi(self) -> int | None:
        if self._injector is None:
            return None
        return self._injector.current_iteration(self._gpu.device_id)

    def _hang_fault(self, op: str, *, injected: bool) -> DeviceFault:
        if injected:
            # Only injector-scheduled hangs count toward faults_injected;
            # a real overrun cancelled by the watchdog is not an injection.
            self._gpu.counters.record_fault()
        return DeviceFault(self._gpu.device_id, op, "hang", self._current_wi())

    def _execute(self, op: str, fn):
        """Gate, guard and run one launch; returns ``(result, action)``."""
        action = self._gate(op)
        hang = action == "hang"
        watchdog = self._watchdog
        if watchdog is None:
            if hang:
                # Nothing would ever cancel the stall (no armed watchdog):
                # degrade the injected hang to an immediate hang fault.
                raise self._hang_fault(op, injected=True)
            return fn(), action
        with watchdog.guard(self._gpu.device_id, op) as ticket:
            out = ticket.stall() if hang else fn()
        if ticket.tripped:
            raise self._hang_fault(op, injected=hang)
        return out, action

    def transfer_to_device(self, nbytes: int) -> None:
        self._execute("transfer", lambda: self._gpu.transfer_to_device(nbytes))

    def launch_combine(self, planes, first_offset, second_offset, block_size):
        out, _ = self._execute(
            "combine",
            lambda: self._gpu.launch_combine(
                planes, first_offset, second_offset, block_size
            ),
        )
        return out

    def launch_pairwise(self, plane_dot_ops: int) -> None:
        self._execute("pairwPop", lambda: self._gpu.launch_pairwise(plane_dot_ops))

    def launch_tensor3(self, combined, class_planes, t_start, t_stop, block_size):
        out, _ = self._execute(
            "tensor3",
            lambda: self._gpu.launch_tensor3(
                combined, class_planes, t_start, t_stop, block_size
            ),
        )
        return out

    def launch_tensor3_batch(
        self, combined_list, class_planes, t_start, t_stop, block_size
    ):
        # One gate per fused launch: a batched launch fails (or survives)
        # as a unit, exactly like the hardware launch it models.
        out, _ = self._execute(
            "tensor3",
            lambda: self._gpu.launch_tensor3_batch(
                combined_list, class_planes, t_start, t_stop, block_size
            ),
        )
        return out

    def launch_tensor4(self, combined_wx, combined_yz, block_size):
        out, action = self._execute(
            "tensor4",
            lambda: self._gpu.launch_tensor4(combined_wx, combined_yz, block_size),
        )
        if action == "corrupt":
            self._gpu.counters.record_fault()
            out = self._injector.corrupt_output(out)
        return out

    def launch_tensor4_batch(self, combined_wx, combined_yz_list, block_size):
        outs, action = self._execute(
            "tensor4",
            lambda: self._gpu.launch_tensor4_batch(
                combined_wx, combined_yz_list, block_size
            ),
        )
        if action == "corrupt":
            # Corrupt the batch's first member: round-level validation of
            # the round it lands in catches it and re-executes degraded.
            self._gpu.counters.record_fault()
            outs[0] = self._injector.corrupt_output(
                np.ascontiguousarray(outs[0])
            )
        return outs

    def launch_plane_gemm(self, category, a, b):
        out, _ = self._execute(category, lambda: self._gpu.launch_plane_gemm(category, a, b))
        return out

    def account_score_cells(self, n_cells: int) -> None:
        self._gpu.account_score_cells(n_cells)
