"""Dataset-distribution models (paper §3.6).

The paper broadcasts the full dataset from the host to every GPU over PCIe
and notes that on NVLink systems one *could* ship one partition per GPU and
all-gather peer-to-peer ("NVLINK Gen3: 600GB/s, PCIe Gen4: 64GB/s"), but
that "this optimization will not affect the overall runtime, due to the
relative magnitude of the search time".  This module models both
strategies so that claim can be checked quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

#: §3.6 link speeds, bytes/second.
PCIE_GEN4_BPS = 64e9
NVLINK_GEN3_BPS = 600e9


@dataclass(frozen=True)
class BroadcastEstimate:
    """Time to place a full dataset copy on every GPU.

    Attributes:
        strategy: ``"host_serial"`` or ``"p2p_allgather"``.
        seconds: modelled wall time of the distribution.
        host_bytes: bytes that crossed the host link.
        p2p_bytes: bytes that crossed GPU-to-GPU links (total).
    """

    strategy: str
    seconds: float
    host_bytes: int
    p2p_bytes: int


def broadcast_host_serial(
    dataset_bytes: int, n_gpus: int, pcie_bps: float = PCIE_GEN4_BPS
) -> BroadcastEstimate:
    """The paper's default: the host sends the full dataset to each GPU.

    Transfers share the host's PCIe complex, so they serialize.
    """
    _validate(dataset_bytes, n_gpus)
    total = dataset_bytes * n_gpus
    return BroadcastEstimate(
        strategy="host_serial",
        seconds=total / pcie_bps,
        host_bytes=total,
        p2p_bytes=0,
    )


def broadcast_p2p_allgather(
    dataset_bytes: int,
    n_gpus: int,
    pcie_bps: float = PCIE_GEN4_BPS,
    nvlink_bps: float = NVLINK_GEN3_BPS,
) -> BroadcastEstimate:
    """The §3.6 NVLink alternative: 1/g per GPU over PCIe, then a ring
    all-gather over NVLink.

    The host pushes ``dataset_bytes`` total (one distinct partition per
    GPU); the ring then moves ``(g - 1)/g * dataset_bytes`` through each
    GPU's NVLink ports in ``g - 1`` parallel steps.
    """
    _validate(dataset_bytes, n_gpus)
    host_seconds = dataset_bytes / pcie_bps
    per_gpu_ring_bytes = dataset_bytes * (n_gpus - 1) // max(n_gpus, 1)
    ring_seconds = per_gpu_ring_bytes / nvlink_bps
    return BroadcastEstimate(
        strategy="p2p_allgather",
        seconds=host_seconds + ring_seconds,
        host_bytes=dataset_bytes,
        p2p_bytes=per_gpu_ring_bytes * n_gpus,
    )


def broadcast_runtime_share(
    dataset_bytes: int, n_gpus: int, search_seconds: float
) -> dict[str, float]:
    """Fraction of total runtime each strategy's broadcast represents.

    The paper's claim (§3.6) is that this is negligible either way; the
    test suite asserts both shares are < 0.1% at the paper's largest
    workload.
    """
    if search_seconds <= 0:
        raise ValueError(f"search_seconds must be > 0, got {search_seconds}")
    serial = broadcast_host_serial(dataset_bytes, n_gpus).seconds
    p2p = broadcast_p2p_allgather(dataset_bytes, n_gpus).seconds
    return {
        "host_serial": serial / (serial + search_seconds),
        "p2p_allgather": p2p / (p2p + search_seconds),
    }


def _validate(dataset_bytes: int, n_gpus: int) -> None:
    if dataset_bytes < 0:
        raise ValueError(f"dataset_bytes must be >= 0, got {dataset_bytes}")
    if n_gpus < 1:
        raise ValueError(f"n_gpus must be >= 1, got {n_gpus}")
