"""GPU and system catalog (paper Table 1 + §4.1 throughput derivations).

Peak binary-tensor throughput is derived exactly as in the paper: each fused
XOR+POPC / AND+POPC counts as two operations, so

    peak TOPS = tensor_cores * fused_ops_per_core_cycle * 2 * boost_clock.

Titan RTX (Turing):  576 * 1024 * 2 * 1.770 GHz = 2088 TOPS.
A100 (Ampere):       432 * 4096 * 2 * 1.410 GHz = 4992 TOPS.

Calibration fields (``kernel_sol``, ``sustained_clock_factor``,
``saturation_half_samples``, ``large_n_cliff``) encode the paper's measured
efficiency observations (§4.5-§4.6) and are consumed by
:mod:`repro.perfmodel.efficiency`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tensor.tiles import AMPERE_TILES, TURING_TILES, TileConfig


@dataclass(frozen=True)
class GPUSpec:
    """Static description of one GPU model.

    Attributes:
        name: marketing name.
        arch: microarchitecture ("turing" or "ampere").
        tensor_cores: number of tensor cores.
        fused_ops_per_core_cycle: fused 1-bit ops per tensor core per cycle.
        base_clock_hz / boost_clock_hz: advertised clocks.
        supports_and_popc: whether fused AND+POPC is native (Ampere) — if
            not, the XOR+POPC engine plus translation layer is used (§3.4).
        cuda_cores: general-purpose core count (combine/score kernels).
        memory_gb / mem_bandwidth_gbps / tdp_w: board characteristics.
        tiles: CUTLASS tile configuration tuned for the arch (§4.4).
        kernel_sol: measured speed-of-light fraction of the 4-way tensor
            kernel at saturation (~0.90 Ampere, ~0.65 Turing, §4.5).
        sustained_clock_factor: achieved/boost clock under the power cap
            (§4.5: "software power cap was consistently reported ... active";
            the SXM4 part sustains higher clocks thanks to its 400 W TDP).
        saturation_half_samples: samples at which tensor efficiency reaches
            half its asymptote (kernel ramp-up vs the GEMM K dimension).
        ramp_half_samples: the portion of the saturation curve attributable
            to per-launch ramp-up/idle, which concurrent streams can hide
            (must be <= ``saturation_half_samples``); the remainder is a
            throughput effect streams cannot recover.  ``None`` means the
            whole curve is ramp (Turing behaves this way in our fit).
        large_n_cliff: multiplicative throughput penalty observed on Turing
            when processing >= ``large_n_cliff_samples`` samples in a single
            matrix operation (§4.5).
        large_n_cliff_samples: threshold for the cliff.
    """

    name: str
    arch: str
    tensor_cores: int
    fused_ops_per_core_cycle: int
    base_clock_hz: float
    boost_clock_hz: float
    supports_and_popc: bool
    cuda_cores: int
    memory_gb: float
    mem_bandwidth_gbps: float
    tdp_w: float
    tiles: TileConfig
    kernel_sol: float
    sustained_clock_factor: float
    saturation_half_samples: float
    large_n_cliff: float = 1.0
    large_n_cliff_samples: int | None = None
    ramp_half_samples: float | None = None

    @property
    def effective_ramp_half_samples(self) -> float:
        """Ramp component of the saturation curve (defaults to all of it)."""
        if self.ramp_half_samples is None:
            return self.saturation_half_samples
        return min(self.ramp_half_samples, self.saturation_half_samples)

    def __post_init__(self) -> None:
        if self.arch not in ("turing", "ampere"):
            raise ValueError(f"unknown arch {self.arch!r}")
        for fname in ("tensor_cores", "fused_ops_per_core_cycle", "cuda_cores"):
            if getattr(self, fname) <= 0:
                raise ValueError(f"{fname} must be > 0")
        if not 0 < self.kernel_sol <= 1:
            raise ValueError(f"kernel_sol must be in (0, 1], got {self.kernel_sol}")

    @property
    def peak_tops(self) -> float:
        """Peak binary tensor throughput at boost clock, in TOPS."""
        return (
            self.tensor_cores
            * self.fused_ops_per_core_cycle
            * 2
            * self.boost_clock_hz
            / 1e12
        )

    @property
    def native_engine_kind(self) -> str:
        """Engine the arch runs natively: ``and_popc`` or ``xor_popc``."""
        return "and_popc" if self.supports_and_popc else "xor_popc"


TITAN_RTX = GPUSpec(
    name="Titan RTX",
    arch="turing",
    tensor_cores=576,
    fused_ops_per_core_cycle=1024,
    base_clock_hz=1.350e9,
    boost_clock_hz=1.770e9,
    supports_and_popc=False,
    cuda_cores=4608,
    memory_gb=24,
    mem_bandwidth_gbps=672,
    tdp_w=280,
    tiles=TURING_TILES,
    kernel_sol=0.65,
    sustained_clock_factor=0.95,
    saturation_half_samples=15000,
    large_n_cliff=0.62,
    large_n_cliff_samples=524288,
)

A100_PCIE = GPUSpec(
    name="A100 PCIe",
    arch="ampere",
    tensor_cores=432,
    fused_ops_per_core_cycle=4096,
    base_clock_hz=0.765e9,
    boost_clock_hz=1.410e9,
    supports_and_popc=True,
    cuda_cores=6912,
    memory_gb=40,
    mem_bandwidth_gbps=1555,
    tdp_w=250,
    tiles=AMPERE_TILES,
    kernel_sol=0.90,
    sustained_clock_factor=0.94,
    saturation_half_samples=95000,
    ramp_half_samples=15000,
)

A100_SXM4 = GPUSpec(
    name="A100 SXM4",
    arch="ampere",
    tensor_cores=432,
    fused_ops_per_core_cycle=4096,
    base_clock_hz=1.275e9,
    boost_clock_hz=1.410e9,
    supports_and_popc=True,
    cuda_cores=6912,
    memory_gb=80,
    mem_bandwidth_gbps=2039,
    tdp_w=400,
    tiles=AMPERE_TILES,
    kernel_sol=0.90,
    # §4.6: 1.23x over the PCIe part at equal boost clocks, from the higher
    # TDP (sustained clocks) and memory bandwidth; folded into this factor.
    sustained_clock_factor=0.94 * 1.23,
    saturation_half_samples=95000,
    ramp_half_samples=15000,
)

_CATALOG = {spec.name: spec for spec in (TITAN_RTX, A100_PCIE, A100_SXM4)}


def gpu_by_name(name: str) -> GPUSpec:
    """Look up a GPU spec by its marketing name."""
    if name not in _CATALOG:
        raise KeyError(f"unknown GPU {name!r}; available: {sorted(_CATALOG)}")
    return _CATALOG[name]


@dataclass(frozen=True)
class SystemSpec:
    """One of the paper's three target systems (Table 1)."""

    name: str
    cpu: str
    gpu: GPUSpec
    n_gpus: int
    dram_gb: int
    operating_system: str
    driver: str = ""

    @property
    def peak_tops(self) -> float:
        """Aggregate peak binary tensor TOPS."""
        return self.n_gpus * self.gpu.peak_tops


SYSTEMS: dict[str, SystemSpec] = {
    "S1": SystemSpec(
        name="S1",
        cpu="Intel Core i9-10980XE (Cascade Lake)",
        gpu=TITAN_RTX,
        n_gpus=1,
        dram_gb=128,
        operating_system="CentOS 7.8",
        driver="470.42.01",
    ),
    "S2": SystemSpec(
        name="S2",
        cpu="AMD EPYC 7452 (Zen 2)",
        gpu=A100_PCIE,
        n_gpus=1,
        dram_gb=512,
        operating_system="Ubuntu 20.04",
        driver="460.73.01",
    ),
    "S3": SystemSpec(
        name="S3",
        cpu="2x AMD EPYC 7763 (Zen 3)",
        gpu=A100_SXM4,
        n_gpus=8,
        dram_gb=2048,
        operating_system="Ubuntu 18.04",
        driver="495.29.05",
    ),
}
