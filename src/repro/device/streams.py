"""CUDA-stream concurrency model (paper §4.4/§4.5).

The paper optionally runs multiple evaluation rounds concurrently through
multiple CUDA streams per GPU.  Streams do not change results; they overlap
kernel ramp-up/launch gaps, which "only resulted in significantly improved
performance for datasets with small amounts of samples" — i.e. exactly when
single-GEMM efficiency is low.

We model that with a saturation law: with ``s`` streams the achieved tensor
efficiency becomes ``1 - (1 - eff)^s``, capped at the kernel's
speed-of-light fraction.  At high base efficiency the boost vanishes; at low
base efficiency it is large — matching the paper's observation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StreamModel:
    """Per-GPU stream configuration.

    Attributes:
        n_streams: concurrent evaluation rounds (1 = serialized rounds, the
            paper's "S" configurations; >1 = "P" configurations).
    """

    n_streams: int = 1

    def __post_init__(self) -> None:
        if self.n_streams < 1:
            raise ValueError(f"n_streams must be >= 1, got {self.n_streams}")

    def effective_efficiency(self, base_efficiency: float, sol_cap: float) -> float:
        """Tensor efficiency after stream overlap.

        Args:
            base_efficiency: single-stream efficiency in ``[0, 1]``.
            sol_cap: the kernel speed-of-light ceiling.
        """
        if not 0.0 <= base_efficiency <= 1.0:
            raise ValueError(
                f"base_efficiency must be in [0, 1], got {base_efficiency}"
            )
        boosted = 1.0 - (1.0 - base_efficiency) ** self.n_streams
        return min(boosted, sol_cap)
