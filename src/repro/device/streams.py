"""CUDA-stream concurrency model (paper §4.4/§4.5) and its host execution
counterpart.

The paper optionally runs multiple evaluation rounds concurrently through
multiple CUDA streams per GPU.  Streams do not change results; they overlap
kernel ramp-up/launch gaps, which "only resulted in significantly improved
performance for datasets with small amounts of samples" — i.e. exactly when
single-GEMM efficiency is low.

Two sides of that are modelled here:

- :class:`StreamModel` — the *performance-model* side: a saturation law
  where ``s`` streams lift the achieved tensor efficiency to
  ``1 - (1 - eff)^s``, capped at the kernel's speed-of-light fraction.
- :class:`HostStream` — the *execution* side: an in-order, single-worker
  command queue (the host analogue of one CUDA stream) on which the
  search's operand stager prepares round group ``r+1`` while group ``r``
  scores on the calling thread.  Like a CUDA stream, submissions execute
  strictly in order and never change results.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable

#: Cap on how many round groups the stager keeps in flight beyond the one
#: currently scoring (deep lookahead buys nothing once stage and score are
#: fully overlapped, but holds extra staged operands resident).
MAX_STAGE_LOOKAHEAD = 4


def stage_lookahead(n_streams: int) -> int:
    """Stage-ahead depth for ``n_streams`` host streams: one stream scores
    while the others stage, so ``n_streams - 1`` groups may be in flight
    (capped at :data:`MAX_STAGE_LOOKAHEAD`; 0 = no overlap)."""
    return max(0, min(n_streams - 1, MAX_STAGE_LOOKAHEAD))


class HostStream:
    """An in-order host-side execution stream.

    A single worker thread drains submitted callables strictly in
    submission order — the host analogue of one CUDA stream's command
    queue.  Used by the search's double-buffered operand stager; created
    per ``_run_rounds`` call so retried iterations always start with an
    empty queue.
    """

    def __init__(self, name: str = "epi4-stream") -> None:
        self._pool = ThreadPoolExecutor(max_workers=1, thread_name_prefix=name)

    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        """Enqueue ``fn(*args, **kwargs)``; returns its :class:`Future`."""
        return self._pool.submit(fn, *args, **kwargs)

    def close(self, wait: bool = True) -> None:
        """Shut the stream down (optionally waiting for queued work)."""
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "HostStream":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


@dataclass(frozen=True)
class StreamModel:
    """Per-GPU stream configuration.

    Attributes:
        n_streams: concurrent evaluation rounds (1 = serialized rounds, the
            paper's "S" configurations; >1 = "P" configurations).
    """

    n_streams: int = 1

    def __post_init__(self) -> None:
        if self.n_streams < 1:
            raise ValueError(f"n_streams must be >= 1, got {self.n_streams}")

    def effective_efficiency(self, base_efficiency: float, sol_cap: float) -> float:
        """Tensor efficiency after stream overlap.

        Args:
            base_efficiency: single-stream efficiency in ``[0, 1]``.
            sol_cap: the kernel speed-of-light ceiling.
        """
        if not 0.0 <= base_efficiency <= 1.0:
            raise ValueError(
                f"base_efficiency must be in [0, 1], got {base_efficiency}"
            )
        boosted = 1.0 - (1.0 - base_efficiency) ** self.n_streams
        return min(boosted, sol_cap)
