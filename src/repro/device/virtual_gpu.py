"""Virtual GPU: real computation, accounted against a modelled device.

A :class:`VirtualGPU` owns a binary tensor engine matched to its spec
(AND+POPC on Ampere models, XOR+POPC + translation on Turing models) and
exposes the paper's kernels (`combine`, `tensorOp_3way`, `tensorOp_4way`)
as launch methods.  Every launch updates :class:`KernelCounters` — raw and
tile-quantized tensor ops, general-purpose work, transferred bytes — which
the performance model later converts into simulated device time.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

from repro.bitops.bitmatrix import BitMatrix
from repro.bitops.combine import combine_blocks
from repro.device.specs import GPUSpec
from repro.tensor.engine import BinaryTensorEngine, make_engine


@dataclass
class KernelCounters:
    """Accumulated work counters for one device.

    Attributes:
        tensor_ops_raw: fused-op volume of the un-quantized GEMM problems
            (1 fused AND/XOR+POPC = 2 ops, paper convention), split by
            kernel (``tensor4`` / ``tensor3``).
        tensor_ops_padded: same volume after CUTLASS tile quantization —
            what the tensor cores actually execute.
        combine_bit_ops: bitwise AND ops performed by ``combine`` launches
            (general-purpose cores).
        pairwise_ops: plane-dot volume of the ``pairwPop`` precomputation.
        score_cells: contingency-table cells completed + scored.
        transfer_bytes: host-device traffic.
        launches: launch count per kernel name.  A batched tensor launch
            (``matmul_popcount_batch``) counts **once** here however many
            GEMM problems it fuses; ``gemm_problems`` keeps the logical
            problem count, so ``gemm_problems - launches`` is exactly the
            launch overhead the batching pipeline amortized away.
        gemm_problems: logical GEMM problems executed per tensor kernel
            (equals ``launches`` for that kernel when batching is off).
        cache_hits: round-operand cache lookups served without a launch
            (the skipped ``combine``/``tensor3`` work is *not* in the
            tensor-op/bit-op totals — the counters reflect executed work).
        cache_misses: lookups that computed (and launched) for real.
        cache_evictions: cache entries displaced by the byte budget.
        faults_injected: launches this device failed or corrupted under
            fault injection (see :mod:`repro.device.faults`); zero on a
            healthy run.
    """

    tensor_ops_raw: dict[str, int] = field(
        default_factory=lambda: {"tensor4": 0, "tensor3": 0}
    )
    tensor_ops_padded: dict[str, int] = field(
        default_factory=lambda: {"tensor4": 0, "tensor3": 0}
    )

    def _ensure_category(self, kernel: str) -> None:
        self.tensor_ops_raw.setdefault(kernel, 0)
        self.tensor_ops_padded.setdefault(kernel, 0)
    combine_bit_ops: int = 0
    pairwise_ops: int = 0
    score_cells: int = 0
    transfer_bytes: int = 0
    launches: dict[str, int] = field(default_factory=dict)
    gemm_problems: dict[str, int] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    faults_injected: int = 0

    def __post_init__(self) -> None:
        # Under stage/score overlap the operand stager and the scoring
        # thread account launches on the same device concurrently; every
        # read-modify-write below goes through this lock.
        self._lock = threading.Lock()

    def record_launch(self, kernel: str) -> None:
        with self._lock:
            self.launches[kernel] = self.launches.get(kernel, 0) + 1

    def record_tensor_launch(
        self, kernel: str, raw_ops: int, padded_ops: int, batch: int = 1
    ) -> None:
        """Account one executed tensor-GEMM launch carrying ``batch``
        fused problems."""
        with self._lock:
            self._ensure_category(kernel)
            self.tensor_ops_raw[kernel] += raw_ops
            self.tensor_ops_padded[kernel] += padded_ops
            self.launches[kernel] = self.launches.get(kernel, 0) + 1
            self.gemm_problems[kernel] = (
                self.gemm_problems.get(kernel, 0) + batch
            )

    def add_work(self, attr: str, amount: int) -> None:
        """Add ``amount`` to one of the scalar work counters, atomically."""
        with self._lock:
            setattr(self, attr, getattr(self, attr) + amount)

    def record_fault(self) -> None:
        """Account one injected launch fault (or output corruption)."""
        with self._lock:
            self.faults_injected += 1

    def record_cache(self, hit: bool, evicted: int = 0) -> None:
        """Account one round-operand cache lookup."""
        with self._lock:
            if hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
            self.cache_evictions += evicted

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of operand lookups served from the cache (0.0 when
        the cache is disabled or never consulted)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def total_tensor_ops_raw(self) -> int:
        return sum(self.tensor_ops_raw.values())

    @property
    def total_tensor_ops_padded(self) -> int:
        return sum(self.tensor_ops_padded.values())

    def export_metrics(self, registry, device: int | str) -> None:
        """Mirror these counters into a
        :class:`~repro.obs.metrics.MetricsRegistry` as labeled series.

        Every series carries a ``device`` label, so multi-device
        aggregation happens in the registry (grouped, never inferred
        from completion order) — the labeled replacement for summing
        ad-hoc per-device structs.
        """
        dev = str(device)
        for kernel in self.tensor_ops_raw:
            registry.inc(
                "epi4_tensor_ops_total",
                self.tensor_ops_raw[kernel],
                form="raw", kernel=kernel, device=dev,
            )
            registry.inc(
                "epi4_tensor_ops_total",
                self.tensor_ops_padded[kernel],
                form="padded", kernel=kernel, device=dev,
            )
        registry.inc("epi4_combine_bit_ops_total", self.combine_bit_ops, device=dev)
        registry.inc("epi4_pairwise_ops_total", self.pairwise_ops, device=dev)
        registry.inc("epi4_score_cells_total", self.score_cells, device=dev)
        registry.inc("epi4_transfer_bytes_total", self.transfer_bytes, device=dev)
        registry.inc("epi4_faults_injected_total", self.faults_injected, device=dev)
        for kernel, count in self.launches.items():
            registry.inc(
                "epi4_kernel_launches_total", count, kernel=kernel, device=dev
            )
        # Executed tensor-GEMM launches vs logical problems: the gap is the
        # launch volume the batched round pipeline collapsed.
        for kernel in self.tensor_ops_raw:
            registry.inc(
                "epi4_gemm_launches_total",
                self.launches.get(kernel, 0),
                kernel=kernel, device=dev,
            )
            registry.inc(
                "epi4_gemm_problems_total",
                self.gemm_problems.get(kernel, 0),
                kernel=kernel, device=dev,
            )

    def merge(self, other: "KernelCounters") -> None:
        """Accumulate another device's counters into this one."""
        for key in other.tensor_ops_raw:
            self._ensure_category(key)
            self.tensor_ops_raw[key] += other.tensor_ops_raw[key]
            self.tensor_ops_padded[key] += other.tensor_ops_padded[key]
        self.combine_bit_ops += other.combine_bit_ops
        self.pairwise_ops += other.pairwise_ops
        self.score_cells += other.score_cells
        self.transfer_bytes += other.transfer_bytes
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_evictions += other.cache_evictions
        self.faults_injected += other.faults_injected
        for name, count in other.launches.items():
            self.launches[name] = self.launches.get(name, 0) + count
        for name, count in other.gemm_problems.items():
            self.gemm_problems[name] = self.gemm_problems.get(name, 0) + count


class VirtualGPU:
    """One simulated GPU executing real binary-tensor kernels.

    Args:
        spec: hardware model (see :mod:`repro.device.specs`).
        engine: override the tensor engine (defaults to the spec's native
            kind — the paper's Turing runs use XOR+POPC because that is all
            Turing supports).
        mode: engine execution path (``"dense"`` or ``"packed"``).
        device_id: ordinal within a multi-GPU system.
    """

    def __init__(
        self,
        spec: GPUSpec,
        engine: BinaryTensorEngine | None = None,
        mode: str = "dense",
        device_id: int = 0,
    ) -> None:
        self.spec = spec
        self.engine = engine if engine is not None else make_engine(
            spec.native_engine_kind, mode=mode
        )
        if self.engine.native_op == "and" and not spec.supports_and_popc:
            raise ValueError(
                f"{spec.name} ({spec.arch}) has no native AND+POPC; "
                "use an XOR+POPC engine (paper §3.4)"
            )
        self.device_id = device_id
        self.counters = KernelCounters()

    # ------------------------------------------------------------------ #
    # Kernel launches

    def transfer_to_device(self, nbytes: int) -> None:
        """Account a host-to-device (or back) memory transfer."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        self.counters.add_work("transfer_bytes", nbytes)
        self.counters.record_launch("transfer")

    def launch_combine(
        self, planes: BitMatrix, first_offset: int, second_offset: int, block_size: int
    ) -> BitMatrix:
        """``combine`` kernel: AND-combine two SNP blocks (CUDA cores)."""
        out = combine_blocks(planes, first_offset, second_offset, block_size)
        self.counters.add_work("combine_bit_ops", out.n_rows * out.n_bits)
        self.counters.record_launch("combine")
        return out

    def launch_pairwise(self, plane_dot_ops: int) -> None:
        """Account the ``pairwPop`` plane-dot volume (CUDA cores)."""
        self.counters.add_work("pairwise_ops", plane_dot_ops)
        self.counters.record_launch("pairwPop")

    def launch_tensor3(
        self,
        combined: BitMatrix,
        class_planes: BitMatrix,
        t_start: int,
        t_stop: int,
        block_size: int,
    ) -> np.ndarray:
        """``tensorOp_3way`` kernel (tensor cores)."""
        # Imported here: repro.core's package __init__ pulls in the search
        # driver, which imports this module — a cycle at import time.
        from repro.core.threeway import tensorop_3way

        out = tensorop_3way(
            self.engine, combined, class_planes, t_start, t_stop, block_size
        )
        self._account_tensor("tensor3")
        return out

    def launch_tensor3_batch(
        self,
        combined_list: list[BitMatrix],
        class_planes: BitMatrix,
        t_start: int,
        t_stop: int,
        block_size: int,
    ) -> list[np.ndarray]:
        """Batched ``tensorOp_3way``: many combined operands against one
        class-plane tail in as few fused launches as possible."""
        from repro.core.threeway import tensorop_3way_batch

        outs = tensorop_3way_batch(
            self.engine, combined_list, class_planes, t_start, t_stop, block_size
        )
        self._account_tensor("tensor3")
        return outs

    def launch_tensor4(
        self, combined_wx: BitMatrix, combined_yz: BitMatrix, block_size: int
    ) -> np.ndarray:
        """``tensorOp_4way`` kernel (tensor cores)."""
        from repro.core.fourway import tensorop_4way

        out = tensorop_4way(self.engine, combined_wx, combined_yz, block_size)
        self._account_tensor("tensor4")
        return out

    def launch_tensor4_batch(
        self, combined_wx: BitMatrix, combined_yz_list: list[BitMatrix],
        block_size: int,
    ) -> list[np.ndarray]:
        """Batched ``tensorOp_4way``: one ``wx`` operand against a whole
        round group's ``yz`` operands in a single fused launch."""
        from repro.core.fourway import tensorop_4way_batch

        outs = tensorop_4way_batch(
            self.engine, combined_wx, combined_yz_list, block_size
        )
        self._account_tensor("tensor4")
        return outs

    def launch_plane_gemm(
        self, category: str, a: BitMatrix, b: BitMatrix
    ) -> np.ndarray:
        """Generic binary GEMM launch on tensor cores (e.g. second-order
        plane-by-plane corners), accounted under ``category``."""
        out = self.engine.matmul_popcount(a, b)
        self._account_tensor(category)
        return out

    def account_score_cells(self, n_cells: int) -> None:
        """Account ``applyScore`` work: completed + scored table cells."""
        self.counters.add_work("score_cells", n_cells)
        self.counters.record_launch("applyScore")

    # ------------------------------------------------------------------ #

    def _account_tensor(self, kernel: str) -> None:
        # The engine records one GemmShape per matmul launch (the XOR engine
        # records once per raw GEMM, batched calls once per *fused* launch);
        # drain them into the counters: one launch per shape, `batch`
        # logical problems each.
        for shape in self.engine.last_shapes:
            self.counters.record_tensor_launch(
                kernel,
                shape.fused_ops,
                self.spec.tiles.padded_ops(shape.m, shape.n, shape.k_bits),
                batch=shape.batch,
            )
        self.engine.reset_shapes()

    def __repr__(self) -> str:
        return (
            f"VirtualGPU(id={self.device_id}, spec={self.spec.name!r}, "
            f"engine={self.engine.name})"
        )
