"""Simulated GPU devices: spec catalog, virtual GPU, streams, multi-GPU cluster.

Functional computation in this layer is *real* (the engines produce exact
integer results); what is simulated is the *hardware*: per-kernel operation
accounting against a catalog of the paper's GPUs, from which the calibrated
performance model (:mod:`repro.perfmodel`) derives projected runtimes.
"""

from repro.device.cluster import VirtualCluster
from repro.device.faults import (
    DeviceFault,
    FaultInjector,
    FaultPlan,
    FaultRule,
    FaultyGPU,
    parse_fault_spec,
)
from repro.device.specs import (
    A100_PCIE,
    A100_SXM4,
    GPUSpec,
    SYSTEMS,
    SystemSpec,
    TITAN_RTX,
    gpu_by_name,
)
from repro.device.streams import StreamModel
from repro.device.virtual_gpu import KernelCounters, VirtualGPU

__all__ = [
    "A100_PCIE",
    "A100_SXM4",
    "DeviceFault",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FaultyGPU",
    "GPUSpec",
    "KernelCounters",
    "SYSTEMS",
    "StreamModel",
    "SystemSpec",
    "TITAN_RTX",
    "VirtualCluster",
    "VirtualGPU",
    "gpu_by_name",
    "parse_fault_spec",
]
