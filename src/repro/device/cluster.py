"""Multi-GPU system model with OpenMP-style dynamic scheduling (paper §3.6).

Work is divided at the outermost block loop (the ``Wi`` iterator): one CPU
thread per GPU requests the next unprocessed iteration as soon as it
finishes its current one (OpenMP ``schedule(dynamic)``), so the decreasing
per-iteration workload is balanced without inter-GPU communication.  Each
GPU holds a full dataset copy and reduces its own local best; the host
reduces across GPUs at the end.

Simulated clocks drive the schedule: iteration costs (from the analytic
workload model or measured) are replayed through a greedy
earliest-available-device assignment, which is exactly what the dynamic
schedule converges to when iterations are issued in order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.specs import GPUSpec
from repro.device.virtual_gpu import VirtualGPU
from repro.tensor.engine import make_engine


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of a dynamic schedule replay.

    Attributes:
        assignment: ``assignment[g]`` lists the outer-iteration indices run
            by GPU ``g``, in execution order.
        device_loads: total simulated cost per GPU.
        makespan: ``max(device_loads)`` — the simulated parallel runtime.
        total_cost: ``sum(costs)`` — the simulated serial runtime.
    """

    assignment: list[list[int]]
    device_loads: list[float]
    makespan: float
    total_cost: float

    @property
    def speedup(self) -> float:
        """Strong-scaling speedup over a single device of the same kind."""
        return self.total_cost / self.makespan if self.makespan > 0 else 1.0

    @classmethod
    def from_executed(
        cls, assignment: list[list[int]], costs: list[float]
    ) -> "ScheduleResult":
        """Score an assignment that actually ran (e.g. the dynamic order a
        thread-parallel :class:`~repro.core.search.Epi4TensorSearch` pulled
        from its shared work queue) against per-iteration costs.

        Lets the realized load balance be compared with the modelled
        :func:`schedule_dynamic` replay on equal terms.
        """
        if any(c < 0 for c in costs):
            raise ValueError("iteration costs must be non-negative")
        seen: set[int] = set()
        for worker in assignment:
            for index in worker:
                if not 0 <= index < len(costs):
                    raise ValueError(
                        f"iteration {index} outside cost table of "
                        f"{len(costs)} entries"
                    )
                if index in seen:
                    raise ValueError(f"iteration {index} assigned twice")
                seen.add(index)
        loads = [float(sum(costs[i] for i in worker)) for worker in assignment]
        return cls(
            assignment=[list(worker) for worker in assignment],
            device_loads=loads,
            makespan=max(loads) if loads else 0.0,
            total_cost=float(sum(costs[i] for i in seen)),
        )


def schedule_dynamic(
    costs: list[float],
    n_devices: int,
    iterations: list[int] | None = None,
) -> ScheduleResult:
    """Replay OpenMP ``schedule(dynamic)`` over in-order iterations.

    Args:
        costs: per-iteration cost, indexed by global iteration number
            (``Wi = 0, 1, ...``).
        n_devices: number of GPUs.
        iterations: optional restricted issue list (e.g. one shard's
            sub-domain), in issue order.  The assignment then carries the
            *global* iteration indices over just that sub-domain; ``None``
            issues every iteration ``0..len(costs)-1`` in order.

    Returns:
        :class:`ScheduleResult`.
    """
    if n_devices < 1:
        raise ValueError(f"n_devices must be >= 1, got {n_devices}")
    if any(c < 0 for c in costs):
        raise ValueError("iteration costs must be non-negative")
    if iterations is None:
        issue: list[int] = list(range(len(costs)))
    else:
        issue = [int(i) for i in iterations]
        for index in issue:
            if not 0 <= index < len(costs):
                raise ValueError(
                    f"iteration {index} outside cost table of "
                    f"{len(costs)} entries"
                )
        if len(set(issue)) != len(issue):
            raise ValueError("iterations contains duplicates")
    assignment: list[list[int]] = [[] for _ in range(n_devices)]
    loads = [0.0] * n_devices
    for index in issue:
        device = min(range(n_devices), key=lambda g: (loads[g], g))
        assignment[device].append(index)
        loads[device] += costs[index]
    total = float(sum(costs[i] for i in issue))
    return ScheduleResult(
        assignment=assignment,
        device_loads=loads,
        makespan=max(loads) if loads else 0.0,
        total_cost=total,
    )


class VirtualCluster:
    """A homogeneous multi-GPU system (e.g. the 8-GPU HGX A100, system S3)."""

    def __init__(
        self,
        spec: GPUSpec,
        n_gpus: int,
        *,
        mode: str = "dense",
        engine_kind: str | None = None,
    ) -> None:
        if n_gpus < 1:
            raise ValueError(f"n_gpus must be >= 1, got {n_gpus}")
        self.spec = spec
        self.gpus = [
            VirtualGPU(
                spec,
                engine=None if engine_kind is None else make_engine(engine_kind, mode=mode),
                mode=mode,
                device_id=i,
            )
            for i in range(n_gpus)
        ]
        #: Devices removed from service by the resilience layer (see
        #: :mod:`repro.core.resilience`).  A quarantined device keeps its
        #: accumulated counters but receives no further work.
        self.quarantined: set[int] = set()

    @property
    def n_gpus(self) -> int:
        return len(self.gpus)

    @property
    def active_gpus(self) -> list[VirtualGPU]:
        """Devices still in service (not quarantined)."""
        return [g for g in self.gpus if g.device_id not in self.quarantined]

    def quarantine(self, device_id: int) -> None:
        """Remove a device from service (until probation readmits it)."""
        if not 0 <= device_id < self.n_gpus:
            raise ValueError(
                f"device_id {device_id} outside cluster of {self.n_gpus} GPUs"
            )
        self.quarantined.add(device_id)

    def unquarantine(self, device_id: int) -> None:
        """Return a quarantined device to service (probation passed)."""
        if not 0 <= device_id < self.n_gpus:
            raise ValueError(
                f"device_id {device_id} outside cluster of {self.n_gpus} GPUs"
            )
        self.quarantined.discard(device_id)

    def reset_quarantine(self) -> None:
        """Return every device to service (start of a fresh run)."""
        self.quarantined.clear()

    def schedule(
        self, costs: list[float], iterations: list[int] | None = None
    ) -> ScheduleResult:
        """Dynamic-schedule the outer iterations across this cluster."""
        return schedule_dynamic(costs, self.n_gpus, iterations)

    def export_metrics(self, registry) -> None:
        """Mirror every device's kernel counters (and quarantine state)
        into a :class:`~repro.obs.metrics.MetricsRegistry` as
        ``device``-labeled series."""
        for gpu in self.gpus:
            gpu.counters.export_metrics(registry, gpu.device_id)
            registry.set_gauge(
                "epi4_device_quarantined",
                1.0 if gpu.device_id in self.quarantined else 0.0,
                device=str(gpu.device_id),
            )

    def __repr__(self) -> str:
        state = (
            f", {len(self.quarantined)} quarantined" if self.quarantined else ""
        )
        return f"VirtualCluster({self.n_gpus} x {self.spec.name}{state})"
