"""``epi4tensor`` command-line interface.

Subcommands:

- ``search``   — run a fourth-order search on a dataset file (``.npz`` or
  CSV) or on a freshly generated synthetic dataset.
- ``predict``  — project paper-scale performance for a GPU/dataset point.
- ``figures``  — print the modelled series behind the paper's Fig. 2,
  Fig. 3, Table 1 and Table 2.
- ``generate`` — write a synthetic dataset to disk.
"""

from __future__ import annotations

import argparse
import sys


def _add_search(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("search", help="run an exhaustive epistasis search")
    p.add_argument(
        "--input",
        help=".npz or .csv dataset, or a PLINK prefix (.ped/.map); omit to generate",
    )
    p.add_argument("--snps", type=int, default=48, help="synthetic SNP count")
    p.add_argument("--samples", type=int, default=512, help="synthetic sample count")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--order", type=int, default=4, choices=(2, 3, 4),
                   help="interaction order")
    p.add_argument("--block-size", type=int, default=16)
    p.add_argument("--score", default="k2", choices=("k2", "chi2", "gtest", "mi"))
    p.add_argument("--gpu", default="A100 PCIe", help="device model to account against")
    p.add_argument("--n-gpus", type=int, default=1)
    p.add_argument(
        "--engine", default=None, choices=(None, "and_popc", "xor_popc"),
        help="override the device's native tensor-op kind",
    )
    p.add_argument(
        "--engine-mode", default="dense", choices=("dense", "packed"),
        help="tensor-core emulation path: 'dense' (BLAS GEMM, the "
        "default) or 'packed' (bit-packed popcount); results are "
        "bit-identical",
    )
    p.add_argument(
        "--sample-chunk-bits", type=int, default=None, metavar="BITS",
        help="split every tensor GEMM's sample (K) dimension into "
        "chunks of this many bits and sum the partial corners (the "
        "paper's large-N Turing mitigation; must be a multiple of 64)",
    )
    p.add_argument(
        "--partition", default="outer", choices=("outer", "samples"),
        help="multi-GPU work division: 'outer' (paper scheme, dynamic "
        "outer-loop schedule, default) or 'samples' (§4.6 sample-split "
        "alternative with an inter-GPU reduction per round)",
    )
    p.add_argument(
        "--pressure-relax-rounds", type=int, default=64, metavar="R",
        help="consecutive clean rounds before the memory-pressure "
        "governor re-expands one degradation level (default: 64)",
    )
    p.add_argument("--top-k", type=int, default=1, help="ranked results to report")
    p.add_argument(
        "--permutations", type=int, default=0,
        help="if > 0, estimate a permutation p-value for the best result",
    )
    p.add_argument("--report", help="write a full text report to this path")
    p.add_argument(
        "--qc", action="store_true",
        help="apply MAF/HWE quality control before searching",
    )
    p.add_argument(
        "--checkpoint",
        help="checkpoint file: progress is saved after every outer "
        "iteration and resumed from here on restart",
    )
    p.add_argument(
        "--selfcheck", action="store_true",
        help="re-verify every round's winner through an independent "
        "bitwise path (aborts on any disagreement)",
    )
    p.add_argument(
        "--cache-mb", type=float, default=None, metavar="MB",
        help="round-operand cache budget in MB (0 disables, 'inf' = "
        "unbounded; charged against device memory before the search runs)",
    )
    p.add_argument(
        "--score-path", default="fused", choices=("fused", "dense"),
        help="applyScore strategy: 'fused' (mask-first compaction + staged "
        "lgamma scorer, the default) or 'dense' (legacy full-grid reference "
        "path); results are bit-identical",
    )
    p.add_argument(
        "--no-cache-triplets", action="store_true",
        help="disable cross-round reuse of completed third-order tables "
        "(fused path only; tables are then recompleted per round)",
    )
    p.add_argument(
        "--autotune", action="store_true",
        help="run a short calibration pass on the actual dataset to pick "
        "the applyScore chunk size (and, in packed mode, the GEMM tiling "
        "budget) before searching; result-neutral",
    )
    p.add_argument(
        "--max-chunk-cells", type=int, default=None, metavar="CELLS",
        help="fix the applyScore chunking bound (cells per class per chunk) "
        "instead of the default or autotuned value",
    )
    p.add_argument(
        "--batch-rounds", type=int, default=1, metavar="R",
        help="evaluation rounds fused per batched GEMM launch group "
        "(1 = one launch per round, the seed loop; results are "
        "bit-identical for any value)",
    )
    p.add_argument(
        "--n-streams", type=int, default=1, metavar="S",
        help="concurrent rounds per device: feeds the stream performance "
        "model and, unless --no-overlap, stages S-1 round groups ahead "
        "on a host stream while the current group scores",
    )
    p.add_argument(
        "--no-overlap", action="store_true",
        help="disable stage/score overlap (operand staging then runs "
        "inline on the scoring thread; results are bit-identical)",
    )
    p.add_argument(
        "--host-threads", type=int, default=None, metavar="T",
        help="host worker threads driving the devices (default: one per "
        "GPU, capped at the host CPU count)",
    )
    p.add_argument(
        "--max-retries", type=int, default=2, metavar="R",
        help="retries a failed outer iteration gets on the same device "
        "before it is requeued to surviving devices (default: 2)",
    )
    p.add_argument(
        "--backoff-base-ms", type=float, default=10.0, metavar="MS",
        help="base wait of the capped exponential retry backoff "
        "(doubles per retry, jittered; default: 10)",
    )
    p.add_argument(
        "--quarantine-after", type=int, default=2, metavar="K",
        help="consecutive exhausted iterations before a device is "
        "quarantined for the rest of the run (default: 2)",
    )
    p.add_argument(
        "--inject-faults", default=None, metavar="SPEC",
        help="deterministic fault-injection spec for resilience testing, "
        "e.g. 'transient:op=tensor4,count=2;hang:count=1;oom:p=0.01;seed=7' "
        "(results stay bit-identical; see repro.device.faults)",
    )
    p.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="per-launch hang watchdog deadline; a launch exceeding it is "
        "cancelled and retried like any device fault (default: off; "
        "required when the fault spec contains 'hang' rules)",
    )
    p.add_argument(
        "--pressure", default="on", choices=("on", "off"),
        help="memory-pressure governor: degrade footprint (cache budget, "
        "batch_rounds, chunk cells, triplet cache — all result-neutral) "
        "and retry on device OOM instead of aborting (default: on)",
    )
    p.add_argument(
        "--probation-rounds", type=int, default=None, metavar="K",
        help="readmit a quarantined device after K committed iterations "
        "via a canary iteration (exponential re-quarantine on failure; "
        "default: quarantine is permanent)",
    )
    p.add_argument(
        "--prune", default="on", choices=("on", "off"),
        help="admissible K2 branch-and-bound gate: skip completing and "
        "scoring quads (and whole rounds) whose corner-count lower bound "
        "provably cannot beat the current top-k threshold — results are "
        "bit-identical, only the executed score cells shrink "
        "(default: on; K2 fused path only)",
    )
    p.add_argument(
        "--prune-sync-rounds", type=int, default=None, metavar="R",
        help="with --shards: exchange prune thresholds across shards "
        "through atomic files in the shared directory every R completed "
        "rounds, so late shards inherit tight bounds (default: off; "
        "result-neutral either way)",
    )
    p.add_argument(
        "--journal", default=None, metavar="PATH",
        help="crash-safe round journal: one fsynced CRC frame per "
        "committed outer iteration; a process killed at any byte offset "
        "resumes exactly-once with a bit-identical top-k",
    )
    p.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="record the span tree (run/device/outer/round/...) and write "
        "it as JSONL to this path (enables the tracer; see "
        "docs/observability.md)",
    )
    p.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the run's unified metrics registry as Prometheus "
        "text exposition to this path",
    )
    p.add_argument(
        "--manifest-out", default=None, metavar="PATH",
        help="write the deterministic run manifest (config, dataset "
        "digest, seeds, versions, ranked-solution digest) as JSON",
    )
    p.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="split the outer Wi loop into N communication-free shards "
        "run in separate processes, then merge deterministically "
        "(bit-identical to an unsharded run; see docs/distributed.md)",
    )
    p.add_argument(
        "--shard-index", type=int, default=None, metavar="I",
        help="with --shards N: run only shard I in this process and "
        "write its artifact into --dist-dir (manual per-node mode for "
        "real clusters; merge later with --merge)",
    )
    p.add_argument(
        "--shard-strategy", default="contiguous",
        choices=("contiguous", "strided"),
        help="shard planning strategy: cost-balanced contiguous runs "
        "(default) or strided round-robin",
    )
    p.add_argument(
        "--dist-dir", default="epi4-shards", metavar="DIR",
        help="shared output directory for shard journals, artifacts and "
        "the merged manifest/metrics (default: epi4-shards)",
    )
    p.add_argument(
        "--max-procs", type=int, default=None, metavar="P",
        help="concurrent shard worker processes (default: all shards)",
    )
    p.add_argument(
        "--shard-restarts", type=int, default=2, metavar="R",
        help="times a dead shard worker is respawned (journal-resumed) "
        "before the run aborts (default: 2)",
    )
    p.add_argument(
        "--merge", default=None, metavar="DIR",
        help="merge previously written shard artifacts from DIR and "
        "print the global result (no search is run)",
    )


def _add_predict(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("predict", help="project paper-scale performance")
    p.add_argument("--gpu", default="A100 PCIe")
    p.add_argument("--n-gpus", type=int, default=1)
    p.add_argument("--snps", type=int, required=True)
    p.add_argument("--samples", type=int, required=True)
    p.add_argument("--block-size", type=int, default=32)


def _add_figures(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("figures", help="print modelled evaluation series")
    p.add_argument(
        "which", choices=("table1", "fig2", "fig3", "table2", "ratios", "all"),
    )
    p.add_argument(
        "--csv", metavar="DIR",
        help="also export machine-readable CSVs into this directory",
    )


def _add_qc(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("qc", help="quality-control a dataset")
    p.add_argument("input", help=".npz/.csv dataset or PLINK prefix")
    p.add_argument("--min-maf", type=float, default=0.05)
    p.add_argument("--hwe-alpha", type=float, default=1e-6)
    p.add_argument("--output", help="write the filtered dataset here (.npz)")


def _add_generate(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("generate", help="write a synthetic dataset")
    p.add_argument("output", help="output .npz path")
    p.add_argument("--snps", type=int, default=64)
    p.add_argument("--samples", type=int, default=1024)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--plant-interaction", action="store_true",
        help="embed a ground-truth fourth-order interaction",
    )


def _load_or_generate(args: argparse.Namespace):
    import os

    from repro.datasets import (
        generate_random_dataset,
        load_dataset,
        load_dataset_csv,
        load_plink,
    )

    if args.input:
        if args.input.endswith(".csv"):
            dataset = load_dataset_csv(args.input)
        elif args.input.endswith(".npz"):
            dataset = load_dataset(args.input)
        elif os.path.exists(args.input + ".ped"):
            dataset = load_plink(args.input, missing="drop")
        else:
            dataset = load_dataset(args.input)
        print(f"loaded {dataset}")
    else:
        dataset = generate_random_dataset(args.snps, args.samples, seed=args.seed)
        print(f"generated {dataset}")
    return dataset


def _search_config_from_args(args: argparse.Namespace):
    """Build the fourth-order :class:`SearchConfig` from parsed flags
    (shared by the plain, sharded-coordinator and shard-worker modes)."""
    from repro.core.search import SearchConfig

    config_kwargs = {}
    if args.max_chunk_cells is not None:
        config_kwargs["max_chunk_cells"] = args.max_chunk_cells
    return SearchConfig(
        block_size=args.block_size,
        score=args.score,
        engine_kind=args.engine,
        engine_mode=args.engine_mode,
        sample_chunk_bits=args.sample_chunk_bits,
        partition=args.partition,
        top_k=args.top_k,
        selfcheck=args.selfcheck,
        score_path=args.score_path,
        cache_triplets=not args.no_cache_triplets,
        autotune=args.autotune,
        cache_mb=args.cache_mb,
        batch_rounds=args.batch_rounds,
        n_streams=args.n_streams,
        overlap=not args.no_overlap,
        host_threads=args.host_threads,
        max_retries=args.max_retries,
        backoff_base_ms=args.backoff_base_ms,
        quarantine_after=args.quarantine_after,
        inject_faults=args.inject_faults,
        deadline_ms=args.deadline_ms,
        pressure=args.pressure == "on",
        pressure_relax_rounds=args.pressure_relax_rounds,
        probation_rounds=args.probation_rounds,
        prune=args.prune == "on",
        prune_sync_rounds=args.prune_sync_rounds,
        **config_kwargs,
    )


def _print_merged(merged, names=None) -> None:
    for rank, sol in enumerate(merged.solutions, start=1):
        w, x, y, z = sol.quad
        labels = (
            f"  {names[w]}, {names[x]}, {names[y]}, {names[z]}"
            if names is not None
            else ""
        )
        print(f"#{rank}: ({w}, {x}, {y}, {z}){labels}  score {sol.score:.6f}")
    print(f"shards    : {merged.n_shards} over {merged.nb} outer iterations")
    print(f"digest    : top_k_sha256 {merged.top_k_sha256}")


def _cmd_merge(args: argparse.Namespace) -> int:
    """``--merge DIR``: reduce previously written shard artifacts."""
    from repro.dist import merge_shards
    from repro.dist.coordinator import _export_merged

    merged = merge_shards(args.merge)
    _export_merged(merged, args.merge)
    _print_merged(merged)
    print(f"manifest  : written to {args.merge}/merged-manifest.json")
    return 0


def _cmd_sharded(args: argparse.Namespace) -> int:
    """``--shards N`` (coordinator) / ``--shards N --shard-index I``
    (single-shard worker, for manual per-node runs)."""
    import os

    from repro.dist import plan_shards, run_shard, run_sharded
    from repro.dist.coordinator import DATASET_NAME
    from repro.dist.worker import build_request
    from repro.obs.manifest import _config_dict

    if args.order != 4:
        raise SystemExit("--shards requires --order 4")
    if args.shards is None or args.shards < 1:
        raise SystemExit("--shard-index requires --shards N (N >= 1)")
    dataset = _load_or_generate(args)
    if args.qc:
        from repro.datasets.qc import apply_qc

        dataset, qc_report = apply_qc(dataset)
        print(qc_report.summary())
    config = _search_config_from_args(args)

    if args.shard_index is None:
        merged = run_sharded(
            dataset,
            config,
            n_shards=args.shards,
            out_dir=args.dist_dir,
            spec_name=args.gpu,
            n_gpus=args.n_gpus,
            strategy=args.shard_strategy,
            max_procs=args.max_procs,
            max_restarts=args.shard_restarts,
        )
        _print_merged(merged, dataset.snp_names)
        print(f"manifest  : written to {args.dist_dir}/merged-manifest.json")
        if args.report:
            from repro.reporting import format_merged_report

            with open(args.report, "w", encoding="utf-8") as fh:
                fh.write(format_merged_report(merged))
            print(f"report    : written to {args.report}")
        return 0

    # Worker mode: plan deterministically (every node derives the same
    # plan from the same dataset/flags), execute one shard, export.
    from repro.core.search import Epi4TensorSearch
    from repro.datasets import save_dataset
    from repro.device.specs import gpu_by_name

    probe = Epi4TensorSearch(
        dataset, config, spec=gpu_by_name(args.gpu), n_gpus=args.n_gpus
    )
    plan = plan_shards(
        probe.scheme.nb,
        args.shards,
        block_size=config.block_size,
        n_samples=probe.encoded.n_samples,
        strategy=args.shard_strategy,
    )
    if not 0 <= args.shard_index < args.shards:
        raise SystemExit(
            f"--shard-index must be in [0, {args.shards}), "
            f"got {args.shard_index}"
        )
    os.makedirs(args.dist_dir, exist_ok=True)
    dataset_path = os.path.join(args.dist_dir, DATASET_NAME)
    if not os.path.exists(dataset_path):
        save_dataset(dataset_path, dataset)
    shard = plan.shard(args.shard_index)
    artifact = run_shard(
        build_request(
            dataset_path=dataset_path,
            out_dir=args.dist_dir,
            shard=shard.to_dict(),
            nb=plan.nb,
            config=_config_dict(config),
            spec_name=args.gpu,
            n_gpus=args.n_gpus,
        )
    )
    print(f"shard     : {shard.index} of {shard.count} "
          f"({len(shard.iterations)} outer iterations "
          f"{list(shard.iterations)})")
    print(f"digest    : shard top_k_sha256 {artifact['top_k_sha256']}")
    print(f"artifact  : written to {args.dist_dir}/"
          f"shard-{shard.index}of{shard.count}.json")
    print(f"merge     : epi4tensor search --merge {args.dist_dir} "
          "(after all shards finish)")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from repro.core.korder import search_second_order, search_third_order
    from repro.core.search import Epi4TensorSearch
    from repro.device.specs import gpu_by_name
    from repro.scoring.significance import permutation_pvalue

    if args.merge:
        return _cmd_merge(args)
    if args.shards is not None or args.shard_index is not None:
        return _cmd_sharded(args)

    dataset = _load_or_generate(args)
    if args.qc:
        from repro.datasets.qc import apply_qc

        dataset, qc_report = apply_qc(dataset)
        print(qc_report.summary())
    names = dataset.snp_names
    spec = gpu_by_name(args.gpu)

    wants_artifacts = bool(args.trace_out or args.metrics_out or args.manifest_out)
    if args.order in (2, 3):
        if wants_artifacts:
            raise SystemExit(
                "--trace-out/--metrics-out/--manifest-out require --order 4"
            )
        searcher = search_second_order if args.order == 2 else search_third_order
        kres = searcher(
            dataset, block_size=args.block_size, score=args.score, spec=spec
        )
        labels = ", ".join(names[i] for i in kres.best_tuple)
        print(f"best {args.order}-set : {kres.best_tuple} = {labels}")
        print(f"score     : {kres.best_score:.6f} ({args.score})")
        print(f"wall time : {kres.wall_seconds:.2f}s "
              f"({kres.n_sets_evaluated} sets, {kres.tensor_ops:.2e} tensor ops)")
        best_tuple = kres.best_tuple
    else:
        config = _search_config_from_args(args)
        tracer = None
        if args.trace_out:
            from repro.obs.trace import Tracer

            tracer = Tracer()
        search = Epi4TensorSearch(
            dataset, config, spec=spec, n_gpus=args.n_gpus, tracer=tracer
        )
        result = search.run(
            checkpoint_path=args.checkpoint, journal_path=args.journal
        )
        if wants_artifacts:
            from repro.obs.exporters import export_run_artifacts
            from repro.obs.manifest import build_run_manifest

            manifest = (
                build_run_manifest(search, result, dataset=dataset)
                if args.manifest_out
                else None
            )
            written = export_run_artifacts(
                tracer=tracer,
                metrics=result.metrics,
                manifest=manifest,
                trace_out=args.trace_out,
                metrics_out=args.metrics_out,
                manifest_out=args.manifest_out,
            )
            for kind, path in sorted(written.items()):
                print(f"{kind:<9} : written to {path}")
        for rank, sol in enumerate(result.top_solutions, start=1):
            w, x, y, z = sol.quad
            print(f"#{rank}: ({w}, {x}, {y}, {z}) = "
                  f"{names[w]}, {names[x]}, {names[y]}, {names[z]}  "
                  f"score {sol.score:.6f}")
        print(f"device    : {result.n_devices}x {result.spec_name} "
              f"[{result.engine_name}]")
        print(f"useful    : {100 * result.block_scheme.useful_fraction:.1f}% of "
              f"{result.block_scheme.quads_processed} processed quads")
        print(f"wall time : {result.wall_seconds:.2f}s "
              f"({result.quads_per_second_scaled:.3e} quad-samples/s)")
        if "epi4_applyscore_compaction_ratio" in result.metrics.names():
            ratio = result.metrics.value("epi4_applyscore_compaction_ratio")
            print(f"applyScore: {100 * ratio:.1f}% of grid cells completed "
                  "(mask-first compaction)")
        pruned = result.metrics.total("epi4_prune_quads_total")
        if pruned:
            survivors = result.metrics.total("epi4_applyscore_valid_total")
            elided = result.metrics.total("epi4_prune_rounds_total")
            frac = pruned / max(1.0, pruned + survivors)
            line = (f"pruning   : {pruned:.0f} quads ({100 * frac:.1f}% of "
                    f"mask-valid) bound-pruned before completion")
            if elided:
                line += f", {elided:.0f} whole rounds elided"
            print(line)
            synced = result.metrics.total("epi4_prune_sync_total")
            if synced:
                print(f"prunesync : {synced:.0f} cross-shard threshold "
                      f"exchange(s) every {config.prune_sync_rounds} rounds")
        if config.batch_rounds > 1 or config.n_streams > 1:
            launches = result.counters.launches
            problems = result.counters.gemm_problems
            t4 = launches.get("tensor4", 0)
            t4_problems = problems.get("tensor4", t4)
            overlap_s = result.metrics.total("epi4_stage_overlap_seconds_total")
            print(f"batching  : {t4_problems} tensor4 GEMMs in {t4} launches "
                  f"(batch_rounds={config.batch_rounds}, "
                  f"n_streams={config.n_streams}, "
                  f"{overlap_s:.2f}s staged off the scoring thread)")
        if search.autotune_decision is not None:
            dec = search.autotune_decision
            tuned = f"chunk_cells={dec.max_chunk_cells}"
            if dec.block_bytes is not None:
                tuned += f", block_bytes={dec.block_bytes}"
            if dec.batch_rounds is not None:
                tuned += f", batch_rounds={dec.batch_rounds}"
            print(f"autotune  : {tuned} "
                  f"({dec.calibration_seconds * 1e3:.0f} ms calibration)")
        if result.cache_stats is not None:
            cs = result.cache_stats
            print(f"cache     : {100 * cs.hit_rate:.1f}% hit rate "
                  f"({cs.hits} hits / {cs.misses} misses, "
                  f"{cs.evictions} evictions, "
                  f"peak {cs.peak_bytes / 1e6:.1f} MB)")
        if result.fault_log is not None and result.fault_log.any_activity:
            fl = result.fault_log
            quarantined = fl.quarantined_devices
            print(f"faults    : {fl.total_failures} launch failures, "
                  f"{fl.total_retries} retries "
                  f"({fl.total_backoff_seconds * 1e3:.0f} ms backoff), "
                  f"{fl.total_requeues} requeues, "
                  f"{fl.total_degraded_rounds} degraded rounds, "
                  f"quarantined {quarantined if quarantined else 'none'}")
            if fl.total_watchdog_trips:
                print(f"watchdog  : {fl.total_watchdog_trips} stalled "
                      f"launch(es) cancelled at deadline "
                      f"{config.deadline_ms:.0f} ms")
            if fl.total_pressure_degrades:
                level = result.metrics.total("epi4_pressure_level")
                print(f"pressure  : {fl.total_pressure_degrades} ladder "
                      f"step(s) down under memory pressure "
                      f"(final level {level:.0f})")
            if fl.total_canaries:
                print(f"probation : {fl.total_canaries} canary iteration(s), "
                      f"{fl.total_readmits} device(s) readmitted")
        if args.journal:
            commits = result.metrics.total("epi4_journal_commits_total")
            replayed = result.metrics.total("epi4_journal_replayed_total")
            print(f"journal   : {commits:.0f} commit(s) appended, "
                  f"{replayed:.0f} replayed from {args.journal}")
        best_tuple = result.best_quad
        if args.report:
            from repro.reporting import format_search_report

            with open(args.report, "w", encoding="utf-8") as fh:
                fh.write(format_search_report(result, dataset))
            print(f"report    : written to {args.report}")

    if args.permutations > 0:
        perm = permutation_pvalue(
            dataset,
            best_tuple,
            n_permutations=args.permutations,
            seed=args.seed,
        )
        print(f"p-value   : {perm.p_value:.4f} "
              f"({args.permutations} label permutations)")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.device.specs import gpu_by_name
    from repro.perfmodel.figures import prediction_for_point

    pred = prediction_for_point(
        gpu_by_name(args.gpu), args.n_gpus, args.snps, args.samples, args.block_size
    )
    print(f"{args.n_gpus}x {args.gpu}, M={args.snps}, N={args.samples}, "
          f"B={args.block_size}")
    print(f"projected time   : {pred.seconds:.1f} s ({pred.seconds / 3600:.2f} h)")
    print(f"performance      : {pred.tera_quads_per_second_scaled:.2f} tera "
          "quads/s (scaled to sample size)")
    print(f"avg tensor TOPS  : {pred.avg_tops:.0f} "
          f"({100 * pred.efficiency:.1f}% of aggregate peak)")
    if pred.schedule is not None:
        print(f"speedup vs 1 GPU : {pred.speedup_vs_single:.2f}x")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.perfmodel import figures

    if args.which == "table1":
        for row in figures.table1_rows():
            print(
                f"{row['system']}: {row['gpu']} ({row['arch']}), "
                f"{row['tensor_cores']} tensor cores @ {row['boost_mhz']:.0f} MHz, "
                f"peak {row['peak_binary_tops']:.0f} binary TOPS, "
                f"{row['memory_gb']} GB @ {row['bandwidth_gbps']} GB/s"
            )
    elif args.which == "fig2":
        print("system gpu          M     N       eng  B  S  tera-quads/s  avgTOPS")
        for r in figures.fig2_grid():
            print(
                f"{r.system:6s} {r.gpu:12s} {r.n_snps:5d} {r.n_samples:7d} "
                f"{r.engine:4s} {r.block_size:2d} {r.n_streams}  "
                f"{r.tera_quads_per_second:10.2f}  {r.avg_tops:7.0f}"
            )
    elif args.which == "fig3":
        print("gpus  M     N       tera-quads/s  speedup  avgTOPS  hours")
        for r in figures.fig3_grid():
            print(
                f"{r.n_gpus:4d} {r.n_snps:5d} {r.n_samples:7d} "
                f"{r.tera_quads_per_second:12.1f}  {r.speedup:6.2f}  "
                f"{r.avg_tops:7.0f}  {r.hours:6.2f}"
            )
    elif args.which == "table2":
        for r in figures.table2_rows():
            print(
                f"{r.approach:24s} {r.hardware:32s} {r.n_snps:5d} x {r.n_samples:6d}"
                f"  {r.tera_quads_per_second:8.3f}  [{r.source}]"
            )
    elif args.which == "ratios":
        for r in figures.unique_ratio_rows():
            print(f"M={r.n_snps:5d} B={r.block_size:2d}: {r.percent_unique:.1f}% unique")
    elif args.which == "all":
        if not args.csv:
            raise SystemExit("figures all requires --csv DIR")
    if args.csv:
        from repro.perfmodel.export import export_all

        for name, path in export_all(args.csv).items():
            print(f"wrote {name}: {path}")
    return 0


def _cmd_qc(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.datasets import save_dataset
    from repro.datasets.qc import apply_qc

    class _Shim:
        input = args.input
        snps = samples = seed = 0

    dataset = _load_or_generate(_Shim)
    filtered, report = apply_qc(
        dataset, min_maf=args.min_maf, hwe_alpha=args.hwe_alpha
    )
    print(report.summary())
    print(f"MAF range  : {report.maf.min():.3f} .. {report.maf.max():.3f}")
    print(f"HWE p min  : {report.hwe_pvalues.min():.2e}")
    worst = np.argsort(report.hwe_pvalues)[:5]
    for idx in worst:
        print(
            f"  {dataset.snp_names[idx]:<12s} maf={report.maf[idx]:.3f} "
            f"hwe_p={report.hwe_pvalues[idx]:.2e}"
        )
    if args.output:
        save_dataset(args.output, filtered)
        print(f"filtered dataset written to {args.output}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.datasets import (
        generate_epistatic_dataset,
        generate_random_dataset,
        save_dataset,
    )

    if args.plant_interaction:
        dataset, quad = generate_epistatic_dataset(
            args.snps, args.samples, seed=args.seed
        )
        print(f"planted interaction at SNPs {quad}")
    else:
        dataset = generate_random_dataset(args.snps, args.samples, seed=args.seed)
    save_dataset(args.output, dataset)
    print(f"wrote {dataset} to {args.output}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="epi4tensor",
        description="Tensor-accelerated fourth-order epistasis detection "
        "(ICPP 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_search(sub)
    _add_predict(sub)
    _add_figures(sub)
    _add_qc(sub)
    _add_generate(sub)
    args = parser.parse_args(argv)
    handlers = {
        "search": _cmd_search,
        "predict": _cmd_predict,
        "figures": _cmd_figures,
        "qc": _cmd_qc,
        "generate": _cmd_generate,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
