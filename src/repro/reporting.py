"""Plain-text report generation for search results.

Produces the run report a user would archive next to their results: the
ranked solutions, execution/phase profile, device work counters, memory
footprint, and (optionally) where the run would sit on the paper's real
hardware according to the calibrated model.  Used by the CLI's
``--report`` flag and directly callable from the API.
"""

from __future__ import annotations

from repro.core.search import SearchResult
from repro.datasets.dataset import Dataset


def _rule(char: str = "-", width: int = 72) -> str:
    return char * width


def format_search_report(
    result: SearchResult,
    dataset: Dataset | None = None,
    *,
    include_model_projection: bool = True,
) -> str:
    """Render a :class:`~repro.core.search.SearchResult` as a text report.

    Args:
        result: the finished search.
        dataset: if given, SNP names are resolved in the solution table.
        include_model_projection: append the calibrated model's projection
            of the same workload on the paper's hardware.

    Returns:
        The report as a single string (write it wherever you like).
    """
    scheme = result.block_scheme
    lines: list[str] = []
    add = lines.append

    add(_rule("="))
    add("Epi4Tensor search report")
    add(_rule("="))
    add(
        f"dataset      : M={scheme.n_real_snps} SNPs "
        f"(padded to {scheme.n_snps}), N={result.n_samples} samples"
    )
    add(
        f"device       : {result.n_devices}x {result.spec_name} "
        f"[{result.engine_name}]"
    )
    add(
        f"block scheme : B={scheme.block_size}, {scheme.n_rounds} rounds, "
        f"{scheme.quads_processed:,} positional quads "
        f"({100 * scheme.useful_fraction:.1f}% unique)"
    )
    add("")

    add("ranked solutions")
    add(_rule())
    names = dataset.snp_names if dataset is not None else None
    for rank, sol in enumerate(result.top_solutions, start=1):
        quad = sol.quad
        label = (
            " = " + ", ".join(names[i] for i in quad) if names is not None else ""
        )
        add(f"  #{rank:<3d} {quad}{label}   score {sol.score:.6f}")
    add("")

    add("execution profile (simulator wall clock)")
    add(_rule())
    total_phase = sum(result.phase_seconds.values()) or 1.0
    for phase, seconds in sorted(
        result.phase_seconds.items(), key=lambda kv: -kv[1]
    ):
        add(
            f"  {phase:<10s} {seconds:9.3f}s  "
            f"{100 * seconds / total_phase:5.1f}%"
        )
    add(f"  {'total':<10s} {result.wall_seconds:9.3f}s")
    add("")

    add("device work counters (all devices)")
    add(_rule())
    c = result.counters
    add(f"  tensor ops (raw)    : {c.total_tensor_ops_raw:.3e}")
    add(f"  tensor ops (padded) : {c.total_tensor_ops_padded:.3e}")
    add(f"  combine bit ops     : {c.combine_bit_ops:.3e}")
    add(f"  score cells         : {c.score_cells:.3e}")
    add(f"  transferred bytes   : {c.transfer_bytes:,}")
    kernel_counts = ", ".join(
        f"{name}={count}" for name, count in sorted(c.launches.items())
    )
    add(f"  kernel launches     : {kernel_counts}")
    add("")

    if result.cache_stats is not None:
        cs = result.cache_stats
        cap = (
            "unbounded"
            if cs.capacity_bytes == float("inf")
            else f"{cs.capacity_bytes / 1e6:.1f} MB"
        )
        add("round-operand cache")
        add(_rule())
        add(
            f"  lookups    : {cs.hits + cs.misses} "
            f"({cs.hits} hits / {cs.misses} misses, "
            f"{100 * cs.hit_rate:.1f}% hit rate)"
        )
        add(
            f"  evictions  : {cs.evictions}   "
            f"resident {cs.current_bytes / 1e6:.1f} MB, "
            f"peak {cs.peak_bytes / 1e6:.1f} MB (budget {cap})"
        )
        add("")

    if (
        result.metrics is not None
        and "epi4_applyscore_positions_total" in result.metrics.names()
    ):
        m = result.metrics
        positions = m.total("epi4_applyscore_positions_total")
        valid = m.total("epi4_applyscore_valid_total")
        add("applyScore (mask-first compaction)")
        add(_rule())
        add(
            f"  grid positions      : {int(positions):,} "
            f"({int(valid):,} valid, "
            f"{100 * valid / positions if positions else 0.0:.1f}% completed "
            "and scored)"
        )
        full3_req = m.total("epi4_operand_requests_total", kind="full3")
        if full3_req:
            full3_exec = m.total("epi4_operand_executed_total", kind="full3")
            full3_hits = m.total("epi4_operand_cache_served_total", kind="full3")
            add(
                f"  full3 tables        : {int(full3_req)} requests = "
                f"{int(full3_exec)} completed + {int(full3_hits)} reused"
            )
        if "epi4_applyscore_autotune_chunk_cells" in m.names():
            chunk = m.value("epi4_applyscore_autotune_chunk_cells")
            cal = m.value("epi4_applyscore_autotune_calibration_seconds")
            add(
                f"  autotuned chunking  : {int(chunk):,} cells "
                f"({cal * 1e3:.0f} ms calibration)"
            )
        pruned = m.total("epi4_prune_quads_total")
        if pruned:
            elided = m.total("epi4_prune_rounds_total")
            frac = pruned / max(1.0, pruned + valid)
            add(
                f"  bound pruning       : {int(pruned):,} quads "
                f"({100 * frac:.1f}% of mask-valid) dropped before "
                "completion (bit-identical top-k)"
            )
            if elided:
                add(
                    f"  rounds elided       : {int(elided):,} whole rounds "
                    "skipped by the aggregate corner bound"
                )
            synced = m.total("epi4_prune_sync_total")
            if synced:
                add(
                    f"  threshold exchange  : {int(synced):,} cross-shard "
                    "sync beat(s)"
                )
        add("")

    if result.metrics is not None:
        add("observability (per-device attribution)")
        add(_rule())
        by_device = result.phase_seconds_by_device
        devices = sorted({d for per in by_device.values() for d in per})
        add("  phase seconds by device (recorded at the launch site;")
        add("  immune to threaded out-of-order completion):")
        for phase in sorted(by_device):
            cells = "  ".join(
                f"dev {d}: {by_device[phase].get(d, 0.0):8.3f}s"
                for d in devices
                if d in by_device[phase]
            )
            add(f"    {phase:<10s} {cells}")
        m = result.metrics
        rounds = m.sum_by("epi4_rounds_total", "device")
        if rounds:
            add(
                "  rounds by device    : "
                + ", ".join(
                    f"dev {d}: {int(n)}" for d, n in sorted(rounds.items())
                )
            )
        requests = m.total("epi4_operand_requests_total")
        if requests:
            executed = m.total("epi4_operand_executed_total")
            served = m.total("epi4_operand_cache_served_total")
            add(
                f"  operand requests    : {int(requests)} = "
                f"{int(executed)} executed + {int(served)} cache-served"
            )
        add("")

    if result.fault_log is not None and result.fault_log.any_activity:
        fl = result.fault_log
        add("resilience (faults observed this run)")
        add(_rule())
        add(
            f"  totals: {fl.total_failures} launch failures, "
            f"{fl.total_retries} retries "
            f"({fl.total_backoff_seconds * 1e3:.1f} ms backoff), "
            f"{fl.total_requeues} requeues, "
            f"{fl.total_degraded_rounds} degraded rounds"
        )
        kinds = fl.failures_by_kind()
        if kinds:
            add(
                "  failures by kind: "
                + ", ".join(f"{k} {n}" for k, n in sorted(kinds.items()))
            )
        if fl.total_watchdog_trips:
            add(
                f"  watchdog: {fl.total_watchdog_trips} stalled launch(es) "
                "cancelled at the deadline"
            )
        if fl.total_pressure_degrades:
            add(
                f"  pressure: {fl.total_pressure_degrades} ladder step(s) "
                f"down, {fl.total_pressure_expands} re-expanded"
            )
        if fl.total_canaries:
            add(
                f"  probation: {fl.total_canaries} canary iteration(s), "
                f"{fl.total_readmits} readmission(s)"
            )
        for line in fl.summary_lines():
            add(f"  {line}")
        if c.faults_injected:
            add(f"  injected launch faults (harness): {c.faults_injected}")
        add(
            "  results are unaffected: retried/requeued iterations are "
            "idempotent and degraded"
        )
        add(
            "  rounds re-run through the independent bitwise path "
            "(see docs/resilience.md)."
        )
        add("")

    if (
        result.metrics is not None
        and "epi4_journal_commits_total" in result.metrics.names()
    ):
        jm = result.metrics
        add("round journal (crash-safe exactly-once resume)")
        add(_rule())
        add(
            f"  commits appended    : "
            f"{int(jm.total('epi4_journal_commits_total'))}"
        )
        add(
            f"  commits replayed    : "
            f"{int(jm.total('epi4_journal_replayed_total'))}"
        )
        torn = int(jm.total("epi4_journal_torn_bytes"))
        if torn:
            add(f"  torn bytes dropped  : {torn}")
        compactions = int(jm.total("epi4_journal_compactions_total"))
        if compactions:
            add(f"  compactions         : {compactions}")
        add("")

    if include_model_projection:
        add("calibrated model projection (same workload on real hardware)")
        add(_rule())
        from repro.device.specs import A100_PCIE, A100_SXM4, TITAN_RTX
        from repro.perfmodel.model import predict_search

        block = 32  # paper-standard block on real tensor cores
        padded = max(
            ((scheme.n_real_snps + block - 1) // block) * block, 4 * block
        )
        for spec in (TITAN_RTX, A100_PCIE, A100_SXM4):
            pred = predict_search(
                spec,
                padded,
                result.n_samples,
                block,
                n_real_snps=scheme.n_real_snps,
            )
            add(
                f"  {spec.name:<10s} {pred.seconds:12.4f}s  "
                f"({pred.tera_quads_per_second_scaled:8.3f} tera quads/s, "
                f"{pred.avg_tops:6.0f} TOPS)"
            )
        add("")
    return "\n".join(lines)


def format_merged_report(merged) -> str:
    """Render a :class:`~repro.dist.merge.MergedRun` as a text report.

    Deterministic: derived only from shard identity, domains and merged
    results — two runs of the same plan produce identical reports.
    """
    lines: list[str] = []
    add = lines.append

    add(_rule("="))
    add("Epi4Tensor sharded search report")
    add(_rule("="))
    identity = merged.shards[0]["identity"]
    add(
        f"dataset      : M={identity['n_real_snps']} SNPs "
        f"(padded to {identity['n_snps']}), "
        f"{identity['n_controls']} controls / {identity['n_cases']} cases"
    )
    add(
        f"shards       : {merged.n_shards} x {identity['n_gpus']} device(s) "
        f"[{identity['engine']}], strategy "
        f"{merged.shards[0]['shard'].get('strategy', 'unknown')}"
    )
    add(
        f"domain       : {merged.nb} outer iterations, "
        f"B={identity['block_size']}, score {identity['score']}"
    )
    add("")

    add("merged ranked solutions (bit-identical to the unsharded run)")
    add(_rule())
    for rank, sol in enumerate(merged.solutions, start=1):
        add(f"  #{rank:<3d} {sol.quad}   score {sol.score:.6f}")
    add(f"  top_k_sha256 : {merged.top_k_sha256}")
    add("")

    add("shard domains and work")
    add(_rule())
    total_ops = sum(
        a.get("model", {}).get("tensor_ops", 0) for a in merged.shards
    )
    for artifact in merged.shards:
        shard = artifact["shard"]
        ops = artifact.get("model", {}).get("tensor_ops", 0)
        share = 100.0 * ops / total_ops if total_ops else 0.0
        replayed = artifact.get("replayed_iterations", 0)
        resumed = f", {replayed} replayed" if replayed else ""
        add(
            f"  shard {shard['index']:<3d} W={list(shard['iterations'])}  "
            f"{ops:.3e} tensor ops ({share:5.1f}%)"
            f"  [{artifact['executed_iterations']} executed{resumed}]"
        )
    add("")

    m = merged.metrics
    requests = m.total("epi4_operand_requests_total")
    if requests:
        executed = m.total("epi4_operand_executed_total")
        served = m.total("epi4_operand_cache_served_total")
        add("merged observability (counters summed across shards)")
        add(_rule())
        add(
            f"  operand requests    : {int(requests)} = "
            f"{int(executed)} executed + {int(served)} cache-served"
        )
        add(
            f"  shard iterations    : "
            f"{int(m.total('epi4_shard_iterations_total'))}"
        )
        # Tolerant of artifacts lacking the pruning series (older
        # workers, prune-off shards): total() is 0 for absent series.
        pruned = m.total("epi4_prune_quads_total")
        if pruned:
            synced = int(m.total("epi4_prune_sync_total"))
            add(
                f"  bound pruning       : {int(pruned):,} quads pruned, "
                f"{int(m.total('epi4_prune_rounds_total')):,} rounds "
                f"elided, {synced} threshold sync beat(s)"
            )
        add("")
    return "\n".join(lines)
