"""Abstract binary tensor engine and engine registry.

An engine consumes two :class:`~repro.bitops.BitMatrix` operands and returns
the ``(R_a, R_b)`` integer matrix of AND-popcounts — the genotype
co-occurrence counts at the heart of contingency-table construction.  How it
gets there differs per microarchitecture model:

- :class:`~repro.tensor.AndPopcEngine` counts matches directly (Ampere's
  fused ``AND+POPC``);
- :class:`~repro.tensor.XorPopcEngine` produces mismatch counts (Turing's
  fused ``XOR+POPC``) and translates them (§3.4).

Engines are pure compute: operation *accounting* (for the performance model)
is done by the device layer from the GEMM shapes each call reports via
:attr:`BinaryTensorEngine.last_shapes`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.bitops.bitmatrix import BitMatrix
from repro.tensor.gemm_packed import DEFAULT_BLOCK_BYTES

#: Execution paths shared by all engines.
EXECUTION_MODES = ("dense", "packed")


@dataclass(frozen=True)
class GemmShape:
    """Shape of one binary GEMM launch: ``(m, n)`` rows and ``k`` bits."""

    m: int
    n: int
    k_bits: int

    @property
    def fused_ops(self) -> int:
        """Fused binary ops of the un-quantized problem (1 fused op = 2 ops)."""
        return 2 * self.m * self.n * self.k_bits


class BinaryTensorEngine(abc.ABC):
    """Base class for binary tensor-GEMM engines.

    Args:
        mode: ``"dense"`` (bit-planes unpacked to float32, BLAS matmul — the
            fast path) or ``"packed"`` (blocked popcount over uint64 words —
            the reference path).  Both produce identical integers.
        block_bytes: intermediate-buffer budget per packed-GEMM block (the
            tiling knob of :mod:`repro.tensor.gemm_packed`); ignored by the
            dense path.  The applyScore autotuner may retune this between
            calibration and the search proper.
    """

    #: Human-readable engine name; subclasses override.
    name: str = "abstract"
    #: Operation the hardware model fuses with POPC ("and" or "xor").
    native_op: str = "none"

    def __init__(
        self, mode: str = "dense", block_bytes: int = DEFAULT_BLOCK_BYTES
    ) -> None:
        if mode not in EXECUTION_MODES:
            raise ValueError(f"mode must be one of {EXECUTION_MODES}, got {mode!r}")
        if block_bytes < 1:
            raise ValueError(f"block_bytes must be >= 1, got {block_bytes}")
        self.mode = mode
        #: Packed-path tiling budget; mutable so the autotuner can retune.
        self.block_bytes = int(block_bytes)
        #: Shapes of GEMMs launched since the last :meth:`reset_shapes` call.
        self.last_shapes: list[GemmShape] = []

    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def matmul_popcount(self, a: BitMatrix, b: BitMatrix) -> np.ndarray:
        """Return ``C[i, j] = POPC(a_i AND b_j)`` as an ``(R_a, R_b)`` int64
        matrix, by whatever native operation the modelled hardware supports.
        """

    # ------------------------------------------------------------------ #
    # Accounting hooks

    def _record(self, a: BitMatrix, b: BitMatrix) -> None:
        self.last_shapes.append(GemmShape(m=a.n_rows, n=b.n_rows, k_bits=a.n_bits))

    def reset_shapes(self) -> None:
        """Forget recorded GEMM shapes (called by the device layer)."""
        self.last_shapes = []

    def __repr__(self) -> str:
        return f"{type(self).__name__}(mode={self.mode!r})"


def make_engine(
    kind: str, mode: str = "dense", block_bytes: int = DEFAULT_BLOCK_BYTES
) -> BinaryTensorEngine:
    """Engine factory.

    Args:
        kind: ``"and_popc"`` (Ampere-style) or ``"xor_popc"`` (Turing-style).
        mode: execution path, see :class:`BinaryTensorEngine`.
        block_bytes: packed-path tiling budget, see
            :class:`BinaryTensorEngine`.
    """
    from repro.tensor.and_popc import AndPopcEngine
    from repro.tensor.xor_popc import XorPopcEngine

    kinds = {"and_popc": AndPopcEngine, "xor_popc": XorPopcEngine}
    if kind not in kinds:
        raise ValueError(f"kind must be one of {sorted(kinds)}, got {kind!r}")
    return kinds[kind](mode=mode, block_bytes=block_bytes)
