"""Abstract binary tensor engine and engine registry.

An engine consumes two :class:`~repro.bitops.BitMatrix` operands and returns
the ``(R_a, R_b)`` integer matrix of AND-popcounts — the genotype
co-occurrence counts at the heart of contingency-table construction.  How it
gets there differs per microarchitecture model:

- :class:`~repro.tensor.AndPopcEngine` counts matches directly (Ampere's
  fused ``AND+POPC``);
- :class:`~repro.tensor.XorPopcEngine` produces mismatch counts (Turing's
  fused ``XOR+POPC``) and translates them (§3.4).

Engines are pure compute: operation *accounting* (for the performance model)
is done by the device layer from the GEMM shapes each call reports via
:attr:`BinaryTensorEngine.last_shapes`.
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.bitops.bitmatrix import BitMatrix
from repro.tensor.gemm_packed import DEFAULT_BLOCK_BYTES

#: Execution paths shared by all engines.
EXECUTION_MODES = ("dense", "packed")


@dataclass(frozen=True)
class GemmShape:
    """Shape of one binary GEMM *launch*: ``(m, n)`` rows and ``k`` bits.

    ``batch`` counts the logical GEMM problems fused into the launch
    (``matmul_popcount_batch`` stacks operands, so one launch can carry
    many problems).  ``m``/``n`` describe the fused problem, so
    ``fused_ops`` already equals the sum over the batched problems; the
    batch dimension exists so the §3.3 performance model can charge
    per-launch overhead separately from FLOPs.
    """

    m: int
    n: int
    k_bits: int
    batch: int = 1

    @property
    def fused_ops(self) -> int:
        """Fused binary ops of the un-quantized problem (1 fused op = 2 ops)."""
        return 2 * self.m * self.n * self.k_bits


class BinaryTensorEngine(abc.ABC):
    """Base class for binary tensor-GEMM engines.

    Args:
        mode: ``"dense"`` (bit-planes unpacked to float32, BLAS matmul — the
            fast path) or ``"packed"`` (blocked popcount over uint64 words —
            the reference path).  Both produce identical integers.
        block_bytes: intermediate-buffer budget per packed-GEMM block (the
            tiling knob of :mod:`repro.tensor.gemm_packed`); ignored by the
            dense path.  The applyScore autotuner may retune this between
            calibration and the search proper.
    """

    #: Human-readable engine name; subclasses override.
    name: str = "abstract"
    #: Operation the hardware model fuses with POPC ("and" or "xor").
    native_op: str = "none"

    def __init__(
        self, mode: str = "dense", block_bytes: int = DEFAULT_BLOCK_BYTES
    ) -> None:
        if mode not in EXECUTION_MODES:
            raise ValueError(f"mode must be one of {EXECUTION_MODES}, got {mode!r}")
        if block_bytes < 1:
            raise ValueError(f"block_bytes must be >= 1, got {block_bytes}")
        self.mode = mode
        #: Packed-path tiling budget; mutable so the autotuner can retune.
        self.block_bytes = int(block_bytes)
        #: Shapes of GEMMs launched since the last :meth:`reset_shapes` call.
        self.last_shapes: list[GemmShape] = []
        #: When set, the dense path caches unpacked bit-planes on each
        #: :class:`BitMatrix` operand (see :meth:`BitMatrix.dense_operand`)
        #: so batched launches never re-unpack a reused operand.  The search
        #: layer charges the extra bytes through the operand-cache budget.
        self.memoize_dense = False

    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def matmul_popcount(self, a: BitMatrix, b: BitMatrix) -> np.ndarray:
        """Return ``C[i, j] = POPC(a_i AND b_j)`` as an ``(R_a, R_b)`` int64
        matrix, by whatever native operation the modelled hardware supports.
        """

    def matmul_popcount_batch(
        self, pairs: list[tuple[BitMatrix, BitMatrix]]
    ) -> list[np.ndarray]:
        """Execute many GEMM problems in as few fused launches as possible.

        Consecutive pairs sharing the *same* left operand object are fused
        by stacking their right operands into one tall operand (one wide
        GEMM); consecutive pairs sharing the same right operand are fused by
        stacking lefts.  On the dense path the stack is a single block GEMM;
        on the packed path the stacked operand flows through the existing
        blocked loop, i.e. a fused blocked sweep over the whole batch under
        the ``block_bytes`` budget.  One :class:`GemmShape` with
        ``batch == len(group)`` is recorded per fused launch so the device
        layer can charge launch overhead separately from FLOPs.

        Results are bit-identical to per-pair :meth:`matmul_popcount` calls:
        the dense accumulators are integer-exact regardless of BLAS blocking,
        and the packed/XOR paths are element-wise on stacked rows.
        """
        results: list[np.ndarray | None] = [None] * len(pairs)
        for axis, indices in _plan_batch_groups(pairs):
            if len(indices) == 1:
                i = indices[0]
                results[i] = self.matmul_popcount(*pairs[i])
                continue
            if axis == "left":
                a = pairs[indices[0]][0]
                rights = [pairs[i][1] for i in indices]
                fused = self.matmul_popcount(a, BitMatrix.vstack(rights))
                self._rebatch_last_shape(len(indices))
                col = 0
                for i, right in zip(indices, rights):
                    results[i] = fused[:, col : col + right.n_rows]
                    col += right.n_rows
            else:
                b = pairs[indices[0]][1]
                lefts = [pairs[i][0] for i in indices]
                fused = self.matmul_popcount(BitMatrix.vstack(lefts), b)
                self._rebatch_last_shape(len(indices))
                row = 0
                for i, left in zip(indices, lefts):
                    results[i] = fused[row : row + left.n_rows]
                    row += left.n_rows
        return results

    # ------------------------------------------------------------------ #
    # Accounting hooks

    def _record(self, a: BitMatrix, b: BitMatrix) -> None:
        self.last_shapes.append(GemmShape(m=a.n_rows, n=b.n_rows, k_bits=a.n_bits))

    def _rebatch_last_shape(self, batch: int) -> None:
        """Mark the most recent recorded launch as carrying ``batch`` fused
        problems (the stacked call itself recorded it with ``batch == 1``)."""
        self.last_shapes[-1] = dataclasses.replace(
            self.last_shapes[-1], batch=batch
        )

    def reset_shapes(self) -> None:
        """Forget recorded GEMM shapes (called by the device layer)."""
        self.last_shapes = []

    def __repr__(self) -> str:
        return f"{type(self).__name__}(mode={self.mode!r})"


def _plan_batch_groups(
    pairs: list[tuple[BitMatrix, BitMatrix]],
) -> list[tuple[str, list[int]]]:
    """Greedy fusion plan over a pair list: maximal runs of consecutive
    pairs sharing a left (``"left"`` groups) or right (``"right"`` groups)
    operand *object*.  Identity, not equality — only genuinely reused
    operands (e.g. one ``wx`` against many ``yz``) may share a launch, and
    only when bit widths agree (never fuse across K)."""
    groups: list[tuple[str, list[int]]] = []
    i, n = 0, len(pairs)
    while i < n:
        a, b = pairs[i]
        j = i + 1
        while j < n and pairs[j][0] is a and pairs[j][1].n_bits == b.n_bits:
            j += 1
        if j - i > 1:
            groups.append(("left", list(range(i, j))))
            i = j
            continue
        j = i + 1
        while j < n and pairs[j][1] is b and pairs[j][0].n_bits == a.n_bits:
            j += 1
        groups.append(("right", list(range(i, j))))
        i = j
    return groups


def make_engine(
    kind: str, mode: str = "dense", block_bytes: int = DEFAULT_BLOCK_BYTES
) -> BinaryTensorEngine:
    """Engine factory.

    Args:
        kind: ``"and_popc"`` (Ampere-style) or ``"xor_popc"`` (Turing-style).
        mode: execution path, see :class:`BinaryTensorEngine`.
        block_bytes: packed-path tiling budget, see
            :class:`BinaryTensorEngine`.
    """
    from repro.tensor.and_popc import AndPopcEngine
    from repro.tensor.xor_popc import XorPopcEngine

    kinds = {"and_popc": AndPopcEngine, "xor_popc": XorPopcEngine}
    if kind not in kinds:
        raise ValueError(f"kind must be one of {sorted(kinds)}, got {kind!r}")
    return kinds[kind](mode=mode, block_bytes=block_bytes)
