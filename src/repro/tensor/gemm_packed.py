"""Blocked popcount-GEMM kernels over packed ``uint64`` operands.

These are the literal semantics of the 1-bit WMMA kernels: for every row
pair ``(i, j)``, AND (or XOR) the packed words and count set bits.  The
kernels are blocked so the ``(rows_a_block x rows_b_block x words)``
intermediate stays inside a fixed memory budget — the same reason the CUDA
kernels tile — and each block is evaluated with vectorized NumPy.
"""

from __future__ import annotations

import numpy as np

from repro.bitops.bitmatrix import BitMatrix
from repro.bitops.popcount import popcount_u64

#: Default intermediate-buffer budget per block, in bytes.
DEFAULT_BLOCK_BYTES = 1 << 26  # 64 MiB


def _block_rows(
    n_words: int, block_bytes: int, max_rows: int | None = None
) -> int:
    """Rows per operand block so the AND intermediate fits the budget.

    Clamped to ``max_rows`` (the actual operand row count) so degenerate
    operands — ``n_words == 0`` word-less matrices, or budgets far larger
    than the problem — never produce a block size wildly beyond the data.
    """
    # The intermediate is (rows_a x rows_b x n_words) uint64; choose a square
    # block: rows^2 * n_words * 8 <= block_bytes.
    rows = int((block_bytes / (8 * max(n_words, 1))) ** 0.5)
    rows = max(rows, 1)
    if max_rows is not None:
        rows = min(rows, max(int(max_rows), 1))
    return rows


def _gemm_popcount(
    a: BitMatrix, b: BitMatrix, op: str, block_bytes: int
) -> np.ndarray:
    if a.n_bits != b.n_bits:
        raise ValueError(
            f"operand bit widths differ: {a.n_bits} vs {b.n_bits}"
        )
    out = np.empty((a.n_rows, b.n_rows), dtype=np.int64)
    rows = _block_rows(
        a.n_words, block_bytes, max_rows=max(a.n_rows, b.n_rows)
    )
    ufunc = np.bitwise_and if op == "and" else np.bitwise_xor
    # One scratch intermediate for the whole (possibly batch-stacked) GEMM,
    # reused across blocks; interior blocks write it in place instead of
    # allocating a fresh (rows_a x rows_b x words) buffer per block.
    scratch = np.empty(
        (min(rows, a.n_rows), min(rows, b.n_rows), a.n_words), dtype=np.uint64
    )
    for i0 in range(0, a.n_rows, rows):
        a_block = a.data[i0 : i0 + rows]
        for j0 in range(0, b.n_rows, rows):
            b_block = b.data[j0 : j0 + rows]
            inter = scratch[: a_block.shape[0], : b_block.shape[0]]
            ufunc(a_block[:, None, :], b_block[None, :, :], out=inter)
            out[i0 : i0 + a_block.shape[0], j0 : j0 + b_block.shape[0]] = (
                popcount_u64(inter).sum(axis=-1, dtype=np.int64)
            )
    return out


def gemm_and_popcount(
    a: BitMatrix, b: BitMatrix, *, block_bytes: int = DEFAULT_BLOCK_BYTES
) -> np.ndarray:
    """``C[i, j] = POPC(a_i AND b_j)`` for all row pairs.

    Returns:
        ``(a.n_rows, b.n_rows)`` ``int64`` matrix.
    """
    return _gemm_popcount(a, b, "and", block_bytes)


def gemm_xor_popcount(
    a: BitMatrix, b: BitMatrix, *, block_bytes: int = DEFAULT_BLOCK_BYTES
) -> np.ndarray:
    """``C[i, j] = POPC(a_i XOR b_j)`` for all row pairs.

    Note: XOR popcounts over *padded* operands are identical to the unpadded
    ones because padding bits are zero in both operands (0 XOR 0 = 0), so the
    §3.4 translation stays exact.
    """
    return _gemm_popcount(a, b, "xor", block_bytes)
