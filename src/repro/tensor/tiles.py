"""CUTLASS-style tile configurations (paper §4.4).

The CUDA implementation tunes three nested tile shapes — threadblock, warp
and instruction (MMA) — for each microarchitecture.  We keep the same
structure: the tile config does not change functional results, but it
determines *tile quantization*: GEMM dimensions are padded up to tile
multiples, and the padded volume is what the tensor cores actually execute.
The device performance model charges simulated time for the padded volume,
which is how small-``N``/small-``B`` runs lose efficiency exactly as the
paper observes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TileConfig:
    """Nested tile shapes for a binary GEMM kernel.

    Each shape is ``(m, n, k)`` with ``k`` expressed in **bits**.

    Attributes:
        threadblock: tile computed by one thread block.
        warp: tile computed by one warp.
        instruction: tile of one MMA instruction.
    """

    threadblock: tuple[int, int, int]
    warp: tuple[int, int, int]
    instruction: tuple[int, int, int]

    def __post_init__(self) -> None:
        for name, shape in (
            ("threadblock", self.threadblock),
            ("warp", self.warp),
            ("instruction", self.instruction),
        ):
            if len(shape) != 3 or any(d <= 0 for d in shape):
                raise ValueError(f"{name} tile must be 3 positive ints, got {shape}")
        for axis in range(3):
            if self.threadblock[axis] % self.warp[axis]:
                raise ValueError(
                    f"threadblock tile {self.threadblock} not divisible by "
                    f"warp tile {self.warp} on axis {axis}"
                )
            if self.warp[axis] % self.instruction[axis]:
                raise ValueError(
                    f"warp tile {self.warp} not divisible by instruction "
                    f"tile {self.instruction} on axis {axis}"
                )

    def padded_shape(self, m: int, n: int, k_bits: int) -> tuple[int, int, int]:
        """GEMM dims rounded up to threadblock tile multiples (quantization)."""
        tb_m, tb_n, tb_k = self.threadblock
        pad = lambda v, t: ((v + t - 1) // t) * t  # noqa: E731 - tiny local helper
        return pad(m, tb_m), pad(n, tb_n), pad(k_bits, tb_k)

    def padded_ops(self, m: int, n: int, k_bits: int) -> int:
        """Fused-op count actually executed after tile quantization.

        One fused XOR+POPC / AND+POPC over one bit counts as 2 operations
        (multiply + add), matching the paper's TOPS accounting.
        """
        pm, pn, pk = self.padded_shape(m, n, k_bits)
        return 2 * pm * pn * pk

    def utilization(self, m: int, n: int, k_bits: int) -> float:
        """Useful fraction of the executed volume (1.0 = no quantization loss)."""
        useful = 2 * m * n * k_bits
        executed = self.padded_ops(m, n, k_bits)
        return useful / executed if executed else 0.0


#: Paper §4.4, Ampere: threadblock 128x256x1024, warp 64x64x1024,
#: instruction 16x8x256.
AMPERE_TILES = TileConfig(
    threadblock=(128, 256, 1024),
    warp=(64, 64, 1024),
    instruction=(16, 8, 256),
)

#: Paper §4.4, Turing: threadblock 128x128x1024, warp 64x32x1024,
#: instruction 8x8x128 ("the only instruction tile supported on Turing").
TURING_TILES = TileConfig(
    threadblock=(128, 128, 1024),
    warp=(64, 32, 1024),
    instruction=(8, 8, 128),
)
