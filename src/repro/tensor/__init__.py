"""Binary tensor-GEMM engines — the simulated 1-bit tensor-core substrate.

The paper maps contingency-table construction onto 1-bit tensor-core matrix
operations: ``C[i, j] = POPC(AND(A_i, B_j))`` (Ampere) or
``POPC(XOR(A_i, B_j))`` (Turing), with §3.4's translation layer recovering
AND-counts from XOR-counts.  This package reproduces both semantics exactly:

- :class:`AndPopcEngine` — native fused AND+POPC (Ampere-style).
- :class:`XorPopcEngine` — fused XOR+POPC plus the translation layer
  (Turing-style); its *raw* output is a true XOR popcount, so the
  compatibility path is exercised for real, not short-circuited.

Each engine offers two execution paths with identical integer results:

- ``mode="dense"`` unpacks bit-planes to float32 and calls BLAS ``matmul`` —
  the same "map bit counting onto a matrix-multiply unit" trick the paper
  plays, with BLAS standing in for the tensor cores; and
- ``mode="packed"`` performs a blocked popcount-GEMM over ``uint64`` words,
  the literal semantics of the CUTLASS 1-bit kernels.
"""

from repro.tensor.and_popc import AndPopcEngine
from repro.tensor.engine import BinaryTensorEngine, GemmShape, make_engine
from repro.tensor.tiles import TileConfig, AMPERE_TILES, TURING_TILES
from repro.tensor.xor_popc import XorPopcEngine, xor_to_and_counts

__all__ = [
    "AMPERE_TILES",
    "AndPopcEngine",
    "BinaryTensorEngine",
    "GemmShape",
    "TURING_TILES",
    "TileConfig",
    "XorPopcEngine",
    "make_engine",
    "xor_to_and_counts",
]
