"""Ampere-style fused AND+POPC engine.

``C[i, j] = POPC(AND(a_i, b_j))`` is literally the dot product of the two
0/1 bit rows, which is why the paper can feed the problem to tensor cores.
The dense path exploits exactly that identity on BLAS; the packed path
evaluates the bitwise definition.
"""

from __future__ import annotations

import numpy as np

from repro.bitops.bitmatrix import BitMatrix
from repro.tensor.engine import BinaryTensorEngine
from repro.tensor.gemm_packed import gemm_and_popcount

#: Largest integer float32 represents exactly; above this the dense path
#: switches to float64 accumulation.
_F32_EXACT_MAX = 1 << 24


def dense_acc_dtype(n_bits: int) -> np.dtype:
    """Accumulator dtype for a dense 0/1 matmul over ``n_bits``-wide rows."""
    return np.dtype(np.float32 if n_bits <= _F32_EXACT_MAX else np.float64)


def dense_dot_counts(
    a: BitMatrix, b: BitMatrix, *, memoize: bool = False
) -> np.ndarray:
    """AND-popcounts via a dense 0/1 matmul (BLAS-backed).

    Exactness: the accumulator dtype is chosen so every intermediate integer
    (bounded by the bit width ``K``) is exactly representable.  With
    ``memoize=True`` the unpacked planes are cached on the operands (see
    :meth:`BitMatrix.dense_operand`).
    """
    if a.n_bits != b.n_bits:
        raise ValueError(f"operand bit widths differ: {a.n_bits} vs {b.n_bits}")
    acc_dtype = dense_acc_dtype(a.n_bits)
    dense_a = a.dense_operand(acc_dtype, memoize=memoize)
    dense_b = b.dense_operand(acc_dtype, memoize=memoize)
    product = dense_a @ dense_b.T
    return np.rint(product).astype(np.int64)


class AndPopcEngine(BinaryTensorEngine):
    """Binary GEMM engine with native fused AND+POPC (Ampere model)."""

    name = "and_popc"
    native_op = "and"

    def matmul_popcount(self, a: BitMatrix, b: BitMatrix) -> np.ndarray:
        self._record(a, b)
        if self.mode == "dense":
            return dense_dot_counts(a, b, memoize=self.memoize_dense)
        return gemm_and_popcount(a, b, block_bytes=self.block_bytes)
