"""Instruction-level binary WMMA execution model.

The CUDA implementation issues 1-bit MMA instructions over fixed fragment
shapes (``8x8x128`` on Turing, ``16x8x256`` on Ampere, §4.4).  This module
executes a binary GEMM the way the hardware does along the reduction
dimension — iterating word-aligned ``k`` fragments and accumulating int32
partial counts — while tiling over ``m``/``n`` is accounted analytically
from the :class:`~repro.tensor.TileConfig`.

It serves two purposes:

- an independent execution path whose results must match the engines
  bit-for-bit (tested), and
- an instruction/cycle oracle: ``instructions * fused-ops-per-instruction``
  must equal the tile-quantized op count the performance model charges,
  which pins the accounting to an executable definition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitops.bitmatrix import BitMatrix, WORD_BITS
from repro.tensor.gemm_packed import gemm_and_popcount, gemm_xor_popcount
from repro.tensor.tiles import TileConfig


@dataclass(frozen=True)
class WmmaStats:
    """Execution statistics of one tile-level GEMM.

    Attributes:
        padded_shape: ``(m, n, k_bits)`` after threadblock-tile quantization.
        instructions: MMA instructions issued (over the padded volume).
        k_fragments: reduction-dimension fragments executed.
        fused_ops: total fused ops of the padded volume (2 ops per
            fused multiply-add equivalent, the paper's convention).
    """

    padded_shape: tuple[int, int, int]
    instructions: int
    k_fragments: int
    fused_ops: int


class WmmaGemm:
    """Fragment-wise binary GEMM executor.

    Args:
        tiles: tile configuration (instruction ``k`` must be word-aligned,
            which both §4.4 configurations are: 128 and 256 bits).
        op: ``"and"`` (Ampere semantics) or ``"xor"`` (Turing semantics).
    """

    def __init__(self, tiles: TileConfig, op: str = "and") -> None:
        if op not in ("and", "xor"):
            raise ValueError(f"op must be 'and' or 'xor', got {op!r}")
        inst_k = tiles.instruction[2]
        if inst_k % WORD_BITS:
            raise ValueError(
                f"instruction k={inst_k} bits is not word-aligned"
            )
        self.tiles = tiles
        self.op = op

    def gemm(self, a: BitMatrix, b: BitMatrix) -> tuple[np.ndarray, WmmaStats]:
        """Execute ``C[i, j] = POPC(op(a_i, b_j))`` fragment by fragment.

        Returns:
            ``(counts, stats)`` where ``counts`` is the ``(R_a, R_b)`` int64
            result over the *un-padded* rows and ``stats`` covers the padded
            execution.
        """
        if a.n_bits != b.n_bits:
            raise ValueError(
                f"operand bit widths differ: {a.n_bits} vs {b.n_bits}"
            )
        pm, pn, pk = self.tiles.padded_shape(a.n_rows, b.n_rows, a.n_bits)
        a_pad = self._pad(a, pm, pk)
        b_pad = self._pad(b, pn, pk)

        inst_m, inst_n, inst_k = self.tiles.instruction
        words_per_fragment = inst_k // WORD_BITS
        n_fragments = pk // inst_k
        acc = np.zeros((pm, pn), dtype=np.int64)
        kernel = gemm_and_popcount if self.op == "and" else gemm_xor_popcount
        for frag in range(n_fragments):
            w0 = frag * words_per_fragment
            w1 = w0 + words_per_fragment
            a_slice = BitMatrix(
                data=a_pad.data[:, w0:w1], n_bits=inst_k
            )
            b_slice = BitMatrix(
                data=b_pad.data[:, w0:w1], n_bits=inst_k
            )
            acc += kernel(a_slice, b_slice)

        instructions = (pm // inst_m) * (pn // inst_n) * n_fragments
        stats = WmmaStats(
            padded_shape=(pm, pn, pk),
            instructions=instructions,
            k_fragments=n_fragments,
            fused_ops=2 * pm * pn * pk,
        )
        return acc[: a.n_rows, : b.n_rows], stats

    @staticmethod
    def _pad(matrix: BitMatrix, rows: int, k_bits: int) -> BitMatrix:
        """Zero-pad a BitMatrix to ``rows`` x ``k_bits`` (word multiple)."""
        words = k_bits // WORD_BITS
        out = np.zeros((rows, words), dtype=np.uint64)
        out[: matrix.n_rows, : matrix.n_words] = matrix.data
        return BitMatrix(data=out, n_bits=k_bits)
