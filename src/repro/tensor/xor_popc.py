"""Turing-style fused XOR+POPC engine plus the §3.4 compatibility layer.

Turing tensor cores only fuse XOR with POPC, producing *mismatch* counts.
The paper recovers AND-counts with

    POPC(A AND B) = (POPC(A) + POPC(B) - POPC(A XOR B)) / 2,

reusing per-row popcounts across many GEMMs.  This module implements both
the raw XOR+POPC GEMM (so the translation is exercised on genuine mismatch
counts) and the translation itself.
"""

from __future__ import annotations

import numpy as np

from repro.bitops.bitmatrix import BitMatrix
from repro.tensor.engine import BinaryTensorEngine
from repro.tensor.gemm_packed import gemm_xor_popcount


def xor_to_and_counts(
    xor_counts: np.ndarray, a_popcounts: np.ndarray, b_popcounts: np.ndarray
) -> np.ndarray:
    """Translate XOR-popcounts to AND-popcounts (paper §3.4).

    Args:
        xor_counts: ``(R_a, R_b)`` matrix of ``POPC(a_i XOR b_j)``.
        a_popcounts: ``(R_a,)`` vector of ``POPC(a_i)``.
        b_popcounts: ``(R_b,)`` vector of ``POPC(b_j)``.

    Returns:
        ``(R_a, R_b)`` int64 matrix of ``POPC(a_i AND b_j)``.

    Raises:
        ValueError: if the inputs are inconsistent (the translated counts
            would not be non-negative integers) — a corrupted-popcount guard.
    """
    xor_counts = np.asarray(xor_counts, dtype=np.int64)
    a_pop = np.asarray(a_popcounts, dtype=np.int64)
    b_pop = np.asarray(b_popcounts, dtype=np.int64)
    if xor_counts.shape != (a_pop.shape[0], b_pop.shape[0]):
        raise ValueError(
            f"shape mismatch: xor_counts {xor_counts.shape} vs "
            f"popcounts ({a_pop.shape[0]}, {b_pop.shape[0]})"
        )
    doubled = a_pop[:, None] + b_pop[None, :] - xor_counts
    if doubled.size and ((doubled < 0).any() or (doubled & 1).any()):
        raise ValueError(
            "inconsistent XOR popcounts: POPC(A)+POPC(B)-POPC(A^B) must be "
            "an even non-negative integer"
        )
    return doubled >> 1


class XorPopcEngine(BinaryTensorEngine):
    """Binary GEMM engine with native fused XOR+POPC (Turing model).

    The public :meth:`matmul_popcount` returns AND-counts like every other
    engine, but internally it computes true XOR mismatch counts and runs the
    translation layer, so results *and* code path match the paper's
    Turing configuration.
    """

    name = "xor_popc"
    native_op = "xor"

    def raw_xor_popcount(self, a: BitMatrix, b: BitMatrix) -> np.ndarray:
        """The native hardware output: ``POPC(a_i XOR b_j)`` per row pair."""
        self._record(a, b)
        if self.mode == "dense":
            # POPC(a ^ b) = POPC(a) + POPC(b) - 2 * <a, b>; the dot product is
            # the BLAS stand-in for the tensor cores, the rest is exact integer
            # bookkeeping that reproduces the hardware's output.
            from repro.tensor.and_popc import dense_dot_counts

            dots = dense_dot_counts(a, b, memoize=self.memoize_dense)
            return (
                a.row_popcounts()[:, None] + b.row_popcounts()[None, :] - 2 * dots
            )
        return gemm_xor_popcount(a, b, block_bytes=self.block_bytes)

    def matmul_popcount(self, a: BitMatrix, b: BitMatrix) -> np.ndarray:
        xor_counts = self.raw_xor_popcount(a, b)
        return xor_to_and_counts(
            xor_counts, a.row_popcounts(), b.row_popcounts()
        )
