"""Sharded multi-process execution of a fourth-order search (§4.4).

The paper's multi-GPU design is communication-free: the outermost ``Wi``
block loop is divided across devices, each accumulates a local top-k,
and a cheap host reduction merges them at the end.  This package lifts
that decomposition one level — across **OS processes** (and, by running
one worker per node manually, across nodes):

- :mod:`repro.dist.plan` — partition the outer iterations into shards
  with exact coverage/disjointness guarantees;
- :mod:`repro.dist.worker` — execute one shard in one process (its own
  :class:`~repro.core.search.Epi4TensorSearch` over a restricted
  domain, a shard-qualified crash-safe journal, a shard artifact +
  manifest + metrics snapshot);
- :mod:`repro.dist.merge` — deterministically merge shard-local top-k
  states, metrics and manifests (bit-identical to an unsharded run);
- :mod:`repro.dist.coordinator` — launch the workers (spawn context),
  restart and journal-resume any that die, then merge.
"""

from repro.dist.coordinator import run_sharded
from repro.dist.merge import MergedRun, ShardMergeError, merge_shards, merge_topk
from repro.dist.plan import ShardPlan, ShardSpec, plan_shards
from repro.dist.worker import run_shard, shard_artifact_name, shard_journal_name

__all__ = [
    "MergedRun",
    "ShardMergeError",
    "ShardPlan",
    "ShardSpec",
    "merge_shards",
    "merge_topk",
    "plan_shards",
    "run_shard",
    "run_sharded",
    "shard_artifact_name",
    "shard_journal_name",
]
