"""Cross-shard prune-threshold exchange for branch-and-bound pruning.

Shards of a distributed run are communication-free for *results* (§3.6),
but the branch-and-bound gate (see :mod:`repro.scoring.bounds`) profits
from the tightest threshold anyone has found: a late-started shard that
inherits an early shard's top-k starts pruning immediately instead of
warming up from ``+inf``.

The exchange is a shared-directory protocol with no coordination:

- every shard periodically *publishes* its current global top-k as an
  atomically written (write → fsync → rename) JSON file
  ``threshold-{i}of{n}.json`` in the shared output directory;
- every shard periodically *reads* its peers' latest files and folds the
  candidates into a threshold-only reducer consulted by the prune gate.

Correctness needs no locking.  Every published candidate was really
scored by some shard, so the k-th best of any union of published sets is
``>=`` the final merged k-th best — a peer-informed threshold can only
prune quads the final merge would discard anyway.  Atomic replacement
means a concurrent reader sees either the old or the new complete file,
never a torn one; an unreadable or foreign file is simply skipped (a
crashed peer must never take a healthy shard down with it).  Peer
candidates feed *only* the prune threshold — they never enter a shard's
own reduction.  A peer-informed threshold can shrink a shard's *local*
tail (quads ranking in the local top-k but above the global k-th get
pruned), but never touches anything at or below the merged k-th score,
so the merged result is bit-identical with or without the exchange.
"""

from __future__ import annotations

import json
import os

from repro.core.solution import Solution

SCHEMA_VERSION = 1
KIND = "epi4tensor-threshold"


def threshold_file_name(index: int, count: int) -> str:
    return f"threshold-{index}of{count}.json"


class ThresholdExchange:
    """One shard's handle on the shared threshold directory.

    Args:
        directory: the shared output directory (created if missing).
        index / count: this shard's position — its own file is written
            under that name and excluded from :meth:`peer_solutions`.
        fingerprint: the *undomained* search fingerprint shared by every
            shard of the run; peer files carrying a different
            fingerprint (stale files from another run in a reused
            directory) are ignored.
    """

    def __init__(
        self,
        directory: str,
        index: int,
        count: int,
        *,
        fingerprint: str = "",
    ) -> None:
        self.directory = os.fspath(directory)
        self.index = int(index)
        self.count = int(count)
        self.fingerprint = fingerprint
        os.makedirs(self.directory, exist_ok=True)

    @property
    def path(self) -> str:
        """This shard's own threshold file path."""
        return os.path.join(
            self.directory, threshold_file_name(self.index, self.count)
        )

    def publish(self, solutions: list[Solution]) -> None:
        """Atomically publish this shard's current top-k."""
        from repro.dist.worker import _write_atomic

        payload = {
            "schema_version": SCHEMA_VERSION,
            "kind": KIND,
            "fingerprint": self.fingerprint,
            "shard": {"index": self.index, "count": self.count},
            "solutions": [s.to_pair() for s in solutions],
        }
        _write_atomic(
            self.path, json.dumps(payload, sort_keys=True) + "\n"
        )

    def peer_solutions(self) -> list[Solution]:
        """Every candidate currently published by the *other* shards.

        Unreadable, torn-looking, foreign-kind or foreign-fingerprint
        files are skipped silently: the exchange is an optimization and
        must never fail a healthy shard.
        """
        peers: list[Solution] = []
        for i in range(self.count):
            if i == self.index:
                continue
            path = os.path.join(
                self.directory, threshold_file_name(i, self.count)
            )
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    payload = json.load(fh)
            except (OSError, ValueError):
                continue
            if (
                not isinstance(payload, dict)
                or payload.get("kind") != KIND
                or payload.get("fingerprint") != self.fingerprint
            ):
                continue
            try:
                peers.extend(
                    Solution.from_pair(pair)
                    for pair in payload.get("solutions", [])
                )
            except (TypeError, ValueError):
                continue
        return peers
