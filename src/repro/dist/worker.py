"""Shard worker: run one shard of a search in one OS process.

The worker is a plain top-level function driven by a JSON-safe request
dict, so the coordinator can launch it through a ``spawn``-context
:class:`multiprocessing.Process` (no pickled closures, no inherited
state) and a cluster operator can run it per node via
``epi4tensor search --shards N --shard-index i``.

Each shard writes, into the shared output directory:

- ``shard-{i}of{n}.journal`` — the PR-6 crash-safe WAL, with a
  shard-qualified path *and* a domain-qualified fingerprint plus shard
  header metadata, so concurrent shards can never collide on a resume
  file and a journal can never be replayed into the wrong shard;
- ``shard-{i}of{n}.json`` — the shard artifact: identity, domain,
  shard-local top-k (bit-exact ``[score, packed]`` pairs), metrics
  snapshot and measured schedule, everything the merge needs;
- ``shard-{i}of{n}-manifest.json`` — a per-shard run manifest.

The artifact is written atomically (write → fsync → rename), so the
coordinator never observes a half-written artifact from a worker killed
mid-export — it sees either no artifact (shard incomplete, respawn and
journal-resume) or a complete one.
"""

from __future__ import annotations

import json
import os
import signal

from repro.core.solution import Solution

#: Chaos hook: ``"<shard-index>:<after-commits>"`` SIGKILLs that shard's
#: first worker process mid-commit (a torn frame is flushed first), once
#: — a marker file makes the respawned worker run clean.  Test-only.
CHAOS_KILL_ENV = "EPI4TENSOR_DIST_KILL"


def shard_artifact_name(index: int, count: int) -> str:
    return f"shard-{index}of{count}.json"


def shard_journal_name(index: int, count: int) -> str:
    return f"shard-{index}of{count}.journal"


def shard_manifest_name(index: int, count: int) -> str:
    return f"shard-{index}of{count}-manifest.json"


def build_request(
    *,
    dataset_path: str,
    out_dir: str,
    shard: dict,
    nb: int,
    config: dict | None = None,
    spec_name: str = "A100 PCIe",
    n_gpus: int = 1,
    trace: bool = False,
) -> dict:
    """Assemble a worker request (everything JSON-safe)."""
    return {
        "dataset_path": os.fspath(dataset_path),
        "out_dir": os.fspath(out_dir),
        "shard": dict(shard),
        "nb": int(nb),
        "config": dict(config or {}),
        "spec_name": spec_name,
        "n_gpus": int(n_gpus),
        "trace": bool(trace),
    }


def run_shard(request: dict) -> dict:
    """Execute one shard per ``request`` and write its artifacts.

    Returns the shard artifact dict (also written to disk).  Safe to
    call in-process (tests, ``--shard-index`` CLI mode) or as a spawned
    process target.
    """
    from repro.core.search import Epi4TensorSearch, SearchConfig
    from repro.datasets import load_dataset
    from repro.device.specs import gpu_by_name
    from repro.obs.manifest import (
        build_run_manifest,
        encoded_digest,
        solutions_digest,
    )
    from repro.perfmodel.workload import shard_tensor_ops

    shard = request["shard"]
    index = int(shard["index"])
    count = int(shard["count"])
    iterations = [int(wi) for wi in shard["iterations"]]
    out_dir = request["out_dir"]
    os.makedirs(out_dir, exist_ok=True)

    dataset = load_dataset(request["dataset_path"])
    # _config_dict stringifies non-finite floats for JSON; undo that.
    config_kwargs = {
        key: (
            float(value)
            if value in ("inf", "-inf", "nan") and key != "score"
            else value
        )
        for key, value in request["config"].items()
    }
    config = SearchConfig(**config_kwargs)
    spec = gpu_by_name(request["spec_name"])
    tracer = None
    if request.get("trace"):
        from repro.obs.trace import Tracer

        tracer = Tracer()
    search = Epi4TensorSearch(
        dataset,
        config,
        spec=spec,
        n_gpus=int(request.get("n_gpus", 1)),
        tracer=tracer,
    )
    if search.scheme.nb != int(request["nb"]):
        raise ValueError(
            f"shard {index}: dataset yields nb={search.scheme.nb}, plan "
            f"was built for nb={request['nb']}"
        )
    if config.prune_sync_rounds is not None:
        from repro.dist.threshold import ThresholdExchange

        # The undomained fingerprint is common to every shard of this
        # run, so stale threshold files in a reused directory (different
        # dataset/config) are ignored by the exchange.
        search.attach_threshold_exchange(
            ThresholdExchange(
                out_dir, index, count, fingerprint=search.fingerprint()
            )
        )

    journal_path = os.path.join(out_dir, shard_journal_name(index, count))
    restore_chaos = _arm_chaos_kill(index, out_dir)
    restore_meta = _install_journal_meta(index, count)
    try:
        span = (
            tracer.span("shard", index=index, count=count)
            if tracer is not None
            else None
        )
        if span is not None:
            with span:
                result = search.run(
                    journal_path=journal_path, outer_iterations=iterations
                )
        else:
            result = search.run(
                journal_path=journal_path, outer_iterations=iterations
            )
    finally:
        # The patches are process-wide; undo them so in-process callers
        # (inline coordinator, tests) leave the journal class pristine.
        restore_meta()
        restore_chaos()

    # Shard-mode-only series: plain runs keep their golden metric set.
    registry = result.metrics
    registry.set_gauge("epi4_shard_index", float(index))
    registry.set_gauge("epi4_shard_count", float(count))
    registry.inc("epi4_shard_iterations_total", float(len(iterations)))

    model = shard_tensor_ops(
        iterations, search.scheme.nb, config.block_size, result.n_samples
    )
    executed_now = sum(len(worker) for worker in result.executed_assignment)
    artifact = {
        "schema_version": 1,
        "kind": "epi4tensor-shard",
        "shard": {
            "index": index,
            "count": count,
            "strategy": shard.get("strategy", "unknown"),
            "iterations": iterations,
        },
        "nb": search.scheme.nb,
        "identity": shard_identity(search),
        "fingerprint": search.fingerprint(),
        "shard_fingerprint": search.fingerprint(iterations),
        "dataset": {"encoded_sha256": encoded_digest(search.encoded)},
        "top_k": config.top_k,
        "solutions": [s.to_pair() for s in result.top_solutions],
        "top_k_sha256": solutions_digest(result.top_solutions),
        "executed_iterations": executed_now,
        "replayed_iterations": int(
            registry.total("epi4_journal_replayed_total")
        ),
        "wall_seconds": result.wall_seconds,
        "schedule": {
            "assignment": result.schedule.assignment,
            "device_loads": result.schedule.device_loads,
            "makespan": result.schedule.makespan,
            "total_cost": result.schedule.total_cost,
        },
        "model": model,
        "counters": {
            "tensor_ops_raw": result.counters.total_tensor_ops_raw,
            "tensor_ops_by_kernel": dict(result.counters.tensor_ops_raw),
        },
        "metrics": registry.snapshot(),
    }
    _write_atomic(
        os.path.join(out_dir, shard_artifact_name(index, count)),
        json.dumps(artifact, sort_keys=True, indent=1) + "\n",
    )
    manifest = build_run_manifest(
        search,
        result,
        dataset=dataset,
        extra={"shard_index": index, "shard_count": count},
    )
    _write_atomic(
        os.path.join(out_dir, shard_manifest_name(index, count)),
        manifest.to_json(),
    )
    if tracer is not None:
        from repro.obs.exporters import export_run_artifacts

        export_run_artifacts(
            tracer=tracer,
            metrics=None,
            manifest=None,
            trace_out=os.path.join(out_dir, f"shard-{index}of{count}-trace.jsonl"),
        )
    return artifact


def shard_identity(search) -> dict:
    """Field-wise identity of a search configuration — the structured
    counterpart of the fingerprint string, so a merge-time mismatch can
    name the offending clause instead of diffing opaque strings."""
    return {
        "n_snps": search.scheme.n_snps,
        "n_real_snps": search.scheme.n_real_snps,
        "n_controls": search.encoded.n_controls,
        "n_cases": search.encoded.n_cases,
        "block_size": search.config.block_size,
        "engine": search.cluster.gpus[0].engine.name,
        "score": search._score_name,
        "top_k": search.config.top_k,
        "partition": search.config.partition,
        "n_gpus": search.cluster.n_gpus,
    }


def solutions_from_pairs(pairs) -> list[Solution]:
    """Decode a shard artifact's ``[[score, packed], ...]`` list."""
    return [Solution.from_pair(pair) for pair in pairs]


def _write_atomic(path: str, text: str) -> None:
    from repro.core.checkpoint import fsync_directory

    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    fsync_directory(os.path.dirname(path) or ".")


def _install_journal_meta(index: int, count: int):
    """Route this worker's journal opens through shard header metadata.

    Every journal the shard's search opens records (and on resume,
    verifies) ``{"shard_index": i, "shard_count": n}`` — a second line
    of defence behind the domain-qualified fingerprint.  Returns a
    restore callable that undoes the class patch.
    """
    from repro.core.journal import RoundJournal

    original = RoundJournal.open.__func__
    meta = {"shard_index": index, "shard_count": count}

    def open_with_meta(cls, path, fingerprint, compact_after=4096, **kwargs):
        kwargs.setdefault("meta", meta)
        return original(cls, path, fingerprint, compact_after, **kwargs)

    RoundJournal.open = classmethod(open_with_meta)

    def restore() -> None:
        RoundJournal.open = classmethod(original)

    return restore


def _arm_chaos_kill(index: int, out_dir: str):
    """Install the test-only SIGKILL-mid-commit hook when armed via
    :data:`CHAOS_KILL_ENV` for this shard index.

    After ``after`` durable commits, the next commit flushes a torn
    partial frame and SIGKILLs the process — the canonical mid-commit
    crash.  A marker file (written durably *before* the kill) makes the
    respawned worker run clean, so the chaos fires exactly once.
    Returns a restore callable (no-op when the hook was not armed).
    """
    spec = os.environ.get(CHAOS_KILL_ENV)
    armed = bool(spec)
    if armed:
        target, _, after_text = spec.partition(":")
        if int(target) != index:
            armed = False
        else:
            marker = os.path.join(out_dir, f"shard-{index}.killed")
            if os.path.exists(marker):
                armed = False
    if not armed:
        return lambda: None
    after = int(after_text or "1")
    from repro.core import journal as journal_mod

    original = journal_mod.RoundJournal._append_locked
    state = {"commits": 0}

    def chaotic_append(self, record):
        if record.get("type") == "commit":
            state["commits"] += 1
            if state["commits"] > after:
                with open(marker, "w", encoding="utf-8") as fh:
                    fh.write(spec + "\n")
                    fh.flush()
                    os.fsync(fh.fileno())
                # A torn frame: valid preamble bytes, truncated payload.
                self._fh.write(b"EJ\x40\x00\x00\x00")
                self._fh.flush()
                os.fsync(self._fh.fileno())
                os.kill(os.getpid(), signal.SIGKILL)
        original(self, record)

    journal_mod.RoundJournal._append_locked = chaotic_append

    def restore() -> None:
        journal_mod.RoundJournal._append_locked = original

    return restore
