"""Shard planner: partition the outer ``Wi`` loop across processes.

The unit of distribution is the same §3.6 unit the in-process dynamic
schedule uses — one outer iteration.  A plan assigns every iteration in
``[0, nb)`` to exactly one shard (coverage and disjointness are
*verified*, not assumed, at construction), and carries each shard's
closed-form work volume so measured-vs-modelled assertions hold per
shard, not just per run.

Two strategies:

- ``"contiguous"`` — cost-balanced runs of consecutive iterations
  (greedy: each shard takes iterations until it reaches the remaining
  average).  Contiguous domains maximize the cross-iteration operand
  reuse the cache exploits within one process.
- ``"strided"`` — shard ``i`` takes ``wi ≡ i (mod n)``.  The
  per-iteration volume decreases with ``wi``, so striding balances load
  without cost modelling (the classic round-robin deal).

Per-shard accounting reuses :class:`~repro.device.cluster.ScheduleResult`
with shards in the device role: :meth:`ShardPlan.schedule` scores the
plan's assignment against the closed-form iteration costs, so shard
imbalance is reported with the same vocabulary (loads, makespan,
speedup) as the in-process schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.cluster import ScheduleResult
from repro.perfmodel.workload import (
    outer_iteration_tensor_ops,
    shard_tensor_ops,
)

STRATEGIES = ("contiguous", "strided")


@dataclass(frozen=True)
class ShardSpec:
    """One shard's identity and workload.

    Attributes:
        index / count: this shard's position in the plan.
        strategy: the planning strategy that produced it.
        iterations: the outer iterations this shard executes (sorted).
        tensor_ops: closed-form tensor-op volume of those iterations.
        tensor4_ops: the cache-invariant 4-way component of that volume.
    """

    index: int
    count: int
    strategy: str
    iterations: tuple[int, ...]
    tensor_ops: int
    tensor4_ops: int

    def to_dict(self) -> dict:
        """JSON-safe view (worker requests, shard artifacts)."""
        return {
            "index": self.index,
            "count": self.count,
            "strategy": self.strategy,
            "iterations": list(self.iterations),
            "tensor_ops": self.tensor_ops,
            "tensor4_ops": self.tensor4_ops,
        }


@dataclass(frozen=True)
class ShardPlan:
    """A validated partition of ``[0, nb)`` into shards.

    Construction re-verifies the partition property — every outer
    iteration covered exactly once — so no caller can hold a plan that
    would drop or double-score a quad.
    """

    nb: int
    block_size: int
    n_samples: int
    strategy: str
    shards: tuple[ShardSpec, ...]

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for shard in self.shards:
            if not shard.iterations:
                raise ValueError(f"shard {shard.index} is empty")
            for wi in shard.iterations:
                if not 0 <= wi < self.nb:
                    raise ValueError(
                        f"shard {shard.index}: iteration {wi} outside "
                        f"[0, {self.nb})"
                    )
                if wi in seen:
                    raise ValueError(
                        f"shard {shard.index}: iteration {wi} assigned twice"
                    )
                seen.add(wi)
        if len(seen) != self.nb:
            missing = sorted(set(range(self.nb)) - seen)
            raise ValueError(
                f"plan does not cover every outer iteration; missing {missing}"
            )

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def total_tensor_ops(self) -> int:
        return sum(s.tensor_ops for s in self.shards)

    def shard(self, index: int) -> ShardSpec:
        if not 0 <= index < len(self.shards):
            raise ValueError(
                f"shard index {index} outside plan of {len(self.shards)}"
            )
        return self.shards[index]

    def schedule(self) -> ScheduleResult:
        """Score the plan with shards in the device role (loads,
        makespan, speedup — the standard accounting vocabulary)."""
        costs = [
            float(
                outer_iteration_tensor_ops(
                    wi, self.nb, self.block_size, self.n_samples
                )
            )
            for wi in range(self.nb)
        ]
        return ScheduleResult.from_executed(
            [list(s.iterations) for s in self.shards], costs
        )


def plan_shards(
    nb: int,
    n_shards: int,
    *,
    block_size: int,
    n_samples: int,
    strategy: str = "contiguous",
) -> ShardPlan:
    """Partition ``nb`` outer iterations into ``n_shards`` shards.

    Args:
        nb: number of SNP blocks (= outer iterations).
        n_shards: shard count; must be in ``[1, nb]`` (an empty shard
            would be a worker with nothing to do — refuse up front).
        block_size / n_samples: workload-model parameters for the
            per-shard cost closed forms.
        strategy: ``"contiguous"`` (cost-balanced runs) or ``"strided"``.

    Returns:
        A validated :class:`ShardPlan`.
    """
    if nb < 1:
        raise ValueError(f"nb must be >= 1, got {nb}")
    if not 1 <= n_shards <= nb:
        raise ValueError(
            f"n_shards must be in [1, {nb}] (one non-empty shard per "
            f"worker), got {n_shards}"
        )
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    if strategy == "strided":
        parts = [
            [wi for wi in range(nb) if wi % n_shards == s]
            for s in range(n_shards)
        ]
    else:
        costs = [
            float(outer_iteration_tensor_ops(wi, nb, block_size, n_samples))
            for wi in range(nb)
        ]
        parts = _balance_contiguous(costs, n_shards)
    shards = []
    for index, iterations in enumerate(parts):
        volume = shard_tensor_ops(iterations, nb, block_size, n_samples)
        shards.append(
            ShardSpec(
                index=index,
                count=n_shards,
                strategy=strategy,
                iterations=tuple(iterations),
                tensor_ops=volume["tensor_ops"],
                tensor4_ops=volume["tensor4_ops"],
            )
        )
    return ShardPlan(
        nb=nb,
        block_size=block_size,
        n_samples=n_samples,
        strategy=strategy,
        shards=tuple(shards),
    )


def _balance_contiguous(costs: list[float], n_shards: int) -> list[list[int]]:
    """Greedy cost-balanced contiguous partition.

    Each shard takes consecutive iterations until its load reaches the
    average of what remains over the shards still to fill — while always
    leaving at least one iteration per remaining shard, so every shard
    is non-empty by construction.
    """
    nb = len(costs)
    parts: list[list[int]] = []
    start = 0
    for s in range(n_shards):
        remaining_shards = n_shards - s
        if remaining_shards == 1:
            parts.append(list(range(start, nb)))
            break
        remaining_cost = sum(costs[start:])
        target = remaining_cost / remaining_shards
        end = start
        load = 0.0
        # Stop once adding the next iteration would overshoot the target
        # *further* than stopping short of it undershoots — but never eat
        # into the one-iteration-per-shard reserve of the tail.
        max_end = nb - (remaining_shards - 1)
        while end < max_end:
            step = costs[end]
            if load > 0 and abs(load + step - target) > abs(load - target):
                break
            load += step
            end += 1
        end = max(end, start + 1)
        parts.append(list(range(start, end)))
        start = end
    return parts
