"""Coordinator: launch shard workers, recover the dead, merge the rest.

Workers are separate OS processes (``spawn`` context — no inherited
locks or interpreter state, the same start method a real cluster
launcher gives you).  The coordinator tracks a bounded pool of worker
slots over the shard queue, and treats a worker death (non-zero exit,
SIGKILL, lost process) as a *recoverable* event: the shard is requeued
and a fresh worker resumes it **through its journal** — the PR-6 WAL
replays every durable commit, so exactly the uncommitted iterations are
re-executed and the shard's result is bit-identical to an undisturbed
run.  Only after ``max_restarts`` consecutive failures of the same
shard does the run abort.

``inline=True`` executes the shards sequentially in-process — same
planner, same worker function, same artifacts, same merge — for fast
deterministic tests and debugging without process machinery.
"""

from __future__ import annotations

import multiprocessing
import os

from repro.dist.merge import MergedRun, merge_shards
from repro.dist.plan import ShardPlan, plan_shards
from repro.dist.worker import build_request, run_shard, shard_artifact_name

#: Coordinator artifact names in the output directory.
MERGED_MANIFEST_NAME = "merged-manifest.json"
MERGED_METRICS_NAME = "merged-metrics.prom"
DATASET_NAME = "dataset.npz"


class ShardWorkerError(RuntimeError):
    """A shard worker kept dying past its restart budget."""


def run_sharded(
    dataset,
    config=None,
    *,
    n_shards: int,
    out_dir: str | os.PathLike,
    spec_name: str = "A100 PCIe",
    n_gpus: int = 1,
    strategy: str = "contiguous",
    max_procs: int | None = None,
    max_restarts: int = 2,
    inline: bool = False,
    trace: bool = False,
) -> MergedRun:
    """Execute ``dataset``'s search as ``n_shards`` communication-free
    shards and return the deterministically merged result.

    Args:
        dataset: a raw :class:`~repro.datasets.dataset.Dataset` (workers
            re-encode it identically from the ``.npz`` staged in
            ``out_dir``).
        config: :class:`~repro.core.search.SearchConfig` for every shard
            (defaults apply when ``None``).
        n_shards: shard count, in ``[1, nb]``.
        out_dir: shared output directory — journals, shard artifacts,
            per-shard manifests, and the merged manifest/metrics land
            here.
        spec_name / n_gpus: device model and per-worker GPU count.
        strategy: ``"contiguous"`` or ``"strided"`` (see
            :func:`repro.dist.plan.plan_shards`).
        max_procs: concurrent worker processes (default: all shards).
        max_restarts: times one shard may be respawned after its worker
            dies before the run aborts.
        inline: run the shard workers sequentially in this process.
        trace: have each worker record and export its span tree.

    Returns:
        :class:`~repro.dist.merge.MergedRun` — its ``top_k_sha256`` is
        bit-identical to the unsharded run's.
    """
    from repro.core.search import Epi4TensorSearch, SearchConfig
    from repro.datasets import save_dataset
    from repro.obs.manifest import _config_dict

    config = config or SearchConfig()
    out_dir = os.fspath(out_dir)
    os.makedirs(out_dir, exist_ok=True)

    # One probe construction (no run) pins the block scheme the workers
    # must agree on, and fails fast on config/dataset errors here rather
    # than in N child processes.
    from repro.device.specs import gpu_by_name

    probe = Epi4TensorSearch(
        dataset, config, spec=gpu_by_name(spec_name), n_gpus=n_gpus
    )
    nb = probe.scheme.nb
    plan = plan_shards(
        nb,
        n_shards,
        block_size=config.block_size,
        n_samples=probe.encoded.n_samples,
        strategy=strategy,
    )

    dataset_path = os.path.join(out_dir, DATASET_NAME)
    save_dataset(dataset_path, dataset)

    config_dict = _config_dict(config)
    requests = [
        build_request(
            dataset_path=dataset_path,
            out_dir=out_dir,
            shard=shard.to_dict(),
            nb=nb,
            config=config_dict,
            spec_name=spec_name,
            n_gpus=n_gpus,
            trace=trace,
        )
        for shard in plan.shards
    ]

    if inline:
        for request in requests:
            run_shard(request)
    else:
        _drive_workers(requests, out_dir, max_procs, max_restarts)

    merged = merge_shards(out_dir)
    _export_merged(merged, out_dir)
    return merged


def _drive_workers(
    requests: list[dict],
    out_dir: str,
    max_procs: int | None,
    max_restarts: int,
) -> None:
    """Slot-limited spawn pool with journal-resume restarts.

    A worker is *complete* only when its shard artifact exists (written
    atomically as the worker's last act) — exit code 0 without an
    artifact is treated as a failure too, so a worker dying between
    search and export is also recovered.
    """
    ctx = multiprocessing.get_context("spawn")
    slots = max(1, min(max_procs or len(requests), len(requests)))
    pending: list[dict] = list(requests)
    restarts: dict[int, int] = {}
    running: list[tuple[multiprocessing.Process, dict]] = []

    def artifact_done(request: dict) -> bool:
        shard = request["shard"]
        return os.path.exists(
            os.path.join(
                out_dir,
                shard_artifact_name(shard["index"], shard["count"]),
            )
        )

    while pending or running:
        while pending and len(running) < slots:
            request = pending.pop(0)
            process = ctx.Process(target=run_shard, args=(request,))
            process.start()
            running.append((process, request))
        # Reap any finished worker (bounded wait keeps the loop live).
        still: list[tuple[multiprocessing.Process, dict]] = []
        reaped = False
        for process, request in running:
            process.join(timeout=0.05)
            if process.is_alive():
                still.append((process, request))
                continue
            reaped = True
            index = request["shard"]["index"]
            if process.exitcode == 0 and artifact_done(request):
                continue
            used = restarts.get(index, 0)
            if used >= max_restarts:
                for other, _ in still:
                    other.terminate()
                raise ShardWorkerError(
                    f"shard {index} worker died (exit {process.exitcode}) "
                    f"{used + 1} time(s); restart budget ({max_restarts}) "
                    "exhausted"
                )
            restarts[index] = used + 1
            # Reassign: a fresh worker resumes through the shard journal,
            # re-executing exactly the uncommitted iterations.
            pending.append(request)
        running = still
        if not reaped and running:
            running[0][0].join(timeout=0.2)


def _export_merged(merged: MergedRun, out_dir: str) -> None:
    from repro.dist.worker import _write_atomic

    _write_atomic(
        os.path.join(out_dir, MERGED_MANIFEST_NAME), merged.manifest.to_json()
    )
    _write_atomic(
        os.path.join(out_dir, MERGED_METRICS_NAME),
        merged.metrics.to_prometheus(),
    )


def plan_for(
    dataset, config=None, *, n_shards: int, strategy: str = "contiguous"
) -> ShardPlan:
    """The plan :func:`run_sharded` would use (for reporting/benchmarks)."""
    from repro.core.search import Epi4TensorSearch, SearchConfig

    config = config or SearchConfig()
    probe = Epi4TensorSearch(dataset, config)
    return plan_shards(
        probe.scheme.nb,
        n_shards,
        block_size=config.block_size,
        n_samples=probe.encoded.n_samples,
        strategy=strategy,
    )
