"""Deterministic global merge of shard-local results.

Correctness argument (why the merged top-k is bit-identical to an
unsharded run):

1. The shard plan covers every outer iteration exactly once, so every
   unique quad is scored by exactly one shard — with exactly the bits
   and exactly the kernels the unsharded run would use (a shard *is*
   the unsharded search over a restricted domain; nothing about scoring
   depends on which other iterations run in the same process).
2. A quad that belongs to the global top-k necessarily belongs to the
   local top-k of the shard that scored it (its shard-local competitors
   are a subset of its global competitors), so the union of shard-local
   top-k lists contains the global top-k.
3. :class:`~repro.core.reduction.TopKReducer` is order-independent —
   sort by ``(score, packed)``, dedup by packed quad, truncate to k —
   so reducing that union yields the same ranked list regardless of
   shard count, shard order, or merge associativity.  Scores travel as
   JSON floats (``repr`` round-trip: bit-exact), so not one ULP is lost
   between processes.

Merging is refused loudly on any identity violation: mismatched shard
configurations (clause-indexed: the error names the shard *and* the
offending fingerprint clause), wrong shard counts, duplicate or missing
shards, non-partitioned iteration domains, or differing dataset
digests.
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass
from typing import Iterable

from repro.core.reduction import TopKReducer
from repro.core.solution import Solution
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    solutions_digest,
)
from repro.obs.metrics import MetricsRegistry, merge_shard_snapshots


class ShardMergeError(ValueError):
    """The shard artifacts do not form one coherent sharded run."""


#: Identity clauses compared across shards, in fingerprint order —
#: the structured counterparts of the ``M r c k B E S K P G`` clauses.
IDENTITY_CLAUSES = (
    "n_snps",
    "n_real_snps",
    "n_controls",
    "n_cases",
    "block_size",
    "engine",
    "score",
    "top_k",
    "partition",
    "n_gpus",
)


@dataclass(frozen=True)
class MergedRun:
    """The outcome of a deterministic cross-shard merge.

    Attributes:
        solutions: the merged ranked top-k (bit-identical to the
            unsharded run's).
        top_k_sha256: digest of that list.
        nb: outer-iteration count covered.
        n_shards: number of shards merged.
        shards: the shard artifact dicts, in shard-index order.
        metrics: the aggregated registry (counters summed — conservation
            laws hold globally).
        manifest: the merged global run manifest.
    """

    solutions: list[Solution]
    top_k_sha256: str
    nb: int
    n_shards: int
    shards: list[dict]
    metrics: MetricsRegistry
    manifest: RunManifest

    @property
    def best(self) -> Solution:
        return self.solutions[0] if self.solutions else Solution.worst()


def merge_topk(k: int, *solution_lists: Iterable[Solution]) -> list[Solution]:
    """Merge ranked shard-local top-k lists into the global top-k.

    Commutative, associative and idempotent (the property suite asserts
    all three): the reduction sorts by ``(score, packed)``, dedups by
    packed quad and truncates — no trace of argument order survives.
    """
    reducer = TopKReducer(k)
    for solutions in solution_lists:
        reducer.seed(solutions)
    return reducer.result()


def find_shard_artifacts(directory: str | os.PathLike) -> list[str]:
    """Shard artifact paths in ``directory`` (any shard count)."""
    pattern = os.path.join(os.fspath(directory), "shard-*of*.json")
    return sorted(p for p in glob.glob(pattern) if "-manifest" not in p)


def merge_shards(source: "str | os.PathLike | list[dict]") -> MergedRun:
    """Merge a sharded run from a directory of artifacts (or the
    artifact dicts themselves).

    Raises:
        ShardMergeError: on any identity, coverage or disjointness
            violation — the message names the offending shard index and,
            for configuration mismatches, the fingerprint clause.
    """
    if isinstance(source, (str, os.PathLike)):
        paths = find_shard_artifacts(source)
        if not paths:
            raise ShardMergeError(
                f"no shard artifacts (shard-*of*.json) found in {source}"
            )
        artifacts = []
        for path in paths:
            with open(path, "r", encoding="utf-8") as fh:
                artifacts.append(json.load(fh))
    else:
        artifacts = list(source)
        if not artifacts:
            raise ShardMergeError("no shard artifacts to merge")

    for artifact in artifacts:
        if artifact.get("kind") != "epi4tensor-shard":
            raise ShardMergeError(
                f"artifact kind {artifact.get('kind')!r} is not a shard "
                "artifact"
            )

    artifacts.sort(key=lambda a: int(a["shard"]["index"]))
    count = len(artifacts)
    reference = artifacts[0]

    # -- shard-set integrity: indices 0..n-1, each exactly once, every
    #    artifact agreeing on the count.
    indices = [int(a["shard"]["index"]) for a in artifacts]
    if indices != list(range(count)):
        raise ShardMergeError(
            f"shard indices {indices} do not form 0..{count - 1} "
            "(missing or duplicate shards)"
        )
    for artifact in artifacts:
        declared = int(artifact["shard"]["count"])
        if declared != count:
            raise ShardMergeError(
                f"shard {artifact['shard']['index']}: declares "
                f"{declared} shards, but {count} artifacts are present"
            )

    # -- identity: clause-indexed comparison against shard 0.
    for artifact in artifacts[1:]:
        index = artifact["shard"]["index"]
        for clause in IDENTITY_CLAUSES:
            have = artifact["identity"].get(clause)
            want = reference["identity"].get(clause)
            if have != want:
                raise ShardMergeError(
                    f"shard {index}: fingerprint clause {clause!r} is "
                    f"{have!r}, expected {want!r} (shard 0); refusing to "
                    "merge results of different searches"
                )
        if artifact["fingerprint"] != reference["fingerprint"]:
            raise ShardMergeError(
                f"shard {index}: fingerprint "
                f"{artifact['fingerprint']!r} != {reference['fingerprint']!r}"
            )
        if (
            artifact["dataset"]["encoded_sha256"]
            != reference["dataset"]["encoded_sha256"]
        ):
            raise ShardMergeError(
                f"shard {index}: dataset digest differs from shard 0 — "
                "the shards did not search the same data"
            )
        if artifact["nb"] != reference["nb"]:
            raise ShardMergeError(
                f"shard {index}: nb={artifact['nb']}, expected "
                f"{reference['nb']}"
            )

    # -- coverage/disjointness: the domains must partition [0, nb).
    nb = int(reference["nb"])
    owner: dict[int, int] = {}
    for artifact in artifacts:
        index = int(artifact["shard"]["index"])
        for wi in artifact["shard"]["iterations"]:
            wi = int(wi)
            if not 0 <= wi < nb:
                raise ShardMergeError(
                    f"shard {index}: iteration {wi} outside [0, {nb})"
                )
            if wi in owner:
                raise ShardMergeError(
                    f"shard {index}: iteration {wi} also claimed by "
                    f"shard {owner[wi]} — domains overlap"
                )
            owner[wi] = index
    missing = sorted(set(range(nb)) - set(owner))
    if missing:
        raise ShardMergeError(
            f"iterations {missing} are covered by no shard — merge would "
            "silently drop quads from the exhaustive search"
        )

    # -- the deterministic merge itself.
    k = int(reference["top_k"])
    merged = merge_topk(
        k,
        *[
            [Solution.from_pair(pair) for pair in artifact["solutions"]]
            for artifact in artifacts
        ],
    )
    digest = solutions_digest(merged)
    metrics = merge_shard_snapshots(a["metrics"] for a in artifacts)
    metrics.set_gauge("epi4_shard_count", float(count))
    manifest = build_merged_manifest(artifacts, merged, digest)
    return MergedRun(
        solutions=merged,
        top_k_sha256=digest,
        nb=nb,
        n_shards=count,
        shards=artifacts,
        metrics=metrics,
        manifest=manifest,
    )


def build_merged_manifest(
    artifacts: list[dict], merged: list[Solution], digest: str
) -> RunManifest:
    """The global manifest of a sharded run (same schema contract as a
    single-process manifest, ``kind: epi4tensor-merged``).

    Deterministic by construction: every field is derived from shard
    identity/domain/result data, never from timings or process ids —
    two sharded runs of the same plan serialize byte-identically.
    """
    reference = artifacts[0]
    best = merged[0] if merged else Solution.worst()
    data = {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "kind": "epi4tensor-merged",
        "config": {
            "identity": dict(reference["identity"]),
            "fingerprint": reference["fingerprint"],
        },
        "dataset": dict(reference["dataset"]),
        "execution": {
            "n_shards": len(artifacts),
            "nb": reference["nb"],
            "strategy": reference["shard"].get("strategy", "unknown"),
            "shards": [
                {
                    "index": a["shard"]["index"],
                    "iterations": [int(w) for w in a["shard"]["iterations"]],
                    "top_k_sha256": a["top_k_sha256"],
                    "model_tensor_ops": a.get("model", {}).get("tensor_ops"),
                }
                for a in artifacts
            ],
        },
        "versions": {
            "merge_schema": 1,
        },
        "results": {
            "top_k": len(merged),
            "best_quad": list(best.quad),
            "best_score_hex": float(best.score).hex(),
            "top_k_sha256": digest,
        },
    }
    return RunManifest(data)
