"""Analytic workload + calibrated performance model.

:mod:`repro.perfmodel.workload` counts exactly how much work (tensor ops,
combine ops, score cells, bytes) a search of given ``(M, N0, N1, B)``
performs — the same numbers the :class:`~repro.device.VirtualGPU` counters
accumulate, obtainable without running anything.

:mod:`repro.perfmodel.efficiency` and :mod:`repro.perfmodel.model` turn that
workload into projected runtimes/TOPS for the paper's GPUs, calibrated
against the anchor measurements the paper discloses (§4.5-§4.6).

:mod:`repro.perfmodel.figures` generates the full series behind Fig. 2,
Fig. 3 and Table 2.
"""

from repro.perfmodel.efficiency import tensor_efficiency
from repro.perfmodel.model import PerformancePrediction, predict_multi_gpu, predict_search
from repro.perfmodel.workload import SearchWorkload, outer_iteration_tensor_ops, search_workload

__all__ = [
    "PerformancePrediction",
    "SearchWorkload",
    "outer_iteration_tensor_ops",
    "predict_multi_gpu",
    "predict_search",
    "search_workload",
    "tensor_efficiency",
]
