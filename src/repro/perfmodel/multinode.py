"""Multi-node scaling projection (paper §6 ongoing work).

The paper's conclusion: "The proposed approach can, due to the nature of
the problem, scale well if targeting additional computer nodes.  For this
reason, ongoing work includes making multi-node implementations extending
the current multi-GPU implementation."

This module extends the §3.6 scheme one level up: outer-loop iterations are
dynamically scheduled over *all* GPUs of the cluster (no inter-node
communication is needed during the search — exactly the property that makes
the problem multi-node friendly), each node pays the intra-node chassis
derate, and the dataset reaches every node over the cluster interconnect
before the search starts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.cluster import ScheduleResult, schedule_dynamic
from repro.device.specs import A100_SXM4, GPUSpec
from repro.perfmodel.model import (
    multi_gpu_derate,
    predict_search,
)
from repro.perfmodel.workload import outer_iteration_tensor_ops

#: Default cluster interconnect (InfiniBand HDR), bytes/second.
INTERCONNECT_BPS = 25e9


@dataclass(frozen=True)
class MultiNodePrediction:
    """Projected multi-node search performance.

    Attributes:
        n_nodes / gpus_per_node: cluster shape.
        seconds: projected end-to-end time (broadcast + search makespan).
        tera_quads_per_second_scaled: the headline metric.
        speedup_vs_single_gpu: vs one GPU of the same kind.
        parallel_efficiency: ``speedup / total_gpus``.
        schedule: the flat dynamic schedule over all GPUs.
        broadcast_seconds: dataset distribution time (tree broadcast).
    """

    n_nodes: int
    gpus_per_node: int
    seconds: float
    tera_quads_per_second_scaled: float
    speedup_vs_single_gpu: float
    parallel_efficiency: float
    schedule: ScheduleResult
    broadcast_seconds: float

    @property
    def total_gpus(self) -> int:
        return self.n_nodes * self.gpus_per_node


def predict_shard_schedule(
    iterations: "list[int]",
    nb: int,
    block_size: int,
    n_samples: int,
    n_gpus: int,
) -> ScheduleResult:
    """Predict the dynamic schedule one shard's worker will realize.

    The distributed layer (:mod:`repro.dist`) hands each worker process a
    restricted outer-iteration domain; inside the process the standard
    §3.6 dynamic schedule balances that domain across the worker's GPUs.
    Replaying the same greedy assignment over the closed-form iteration
    weights predicts it exactly — ``bench_multinode`` asserts the measured
    per-shard ``ScheduleResult`` (total cost, and for the sequential path
    the full assignment) against this prediction.
    """
    costs = [
        float(outer_iteration_tensor_ops(wi, nb, block_size, n_samples))
        for wi in range(nb)
    ]
    return schedule_dynamic(costs, n_gpus, list(iterations))


def predict_multi_node(
    n_nodes: int,
    gpus_per_node: int,
    n_snps: int,
    n_samples: int,
    block_size: int = 32,
    *,
    spec: GPUSpec = A100_SXM4,
    interconnect_bps: float = INTERCONNECT_BPS,
) -> MultiNodePrediction:
    """Project an Epi4Tensor search on a GPU cluster.

    Work division stays at the outer (``Wi``) loop: iterations are handed to
    whichever GPU (on whichever node) is free — the natural extension of the
    OpenMP-dynamic scheme, feasible because the search requires zero
    inter-node traffic.  The dataset is tree-broadcast to the nodes first.

    Note the granularity limit this inherits: with ``nb`` outer iterations,
    at most ``nb`` GPUs can be busy; scaling to many nodes needs either more
    SNPs or splitting at the ``Xi`` loop (which this model treats as future
    refinement, as the paper does).
    """
    if n_nodes < 1 or gpus_per_node < 1:
        raise ValueError("n_nodes and gpus_per_node must be >= 1")
    single = predict_search(spec, n_snps, n_samples, block_size)
    nb = n_snps // block_size
    costs = [
        float(outer_iteration_tensor_ops(wi, nb, block_size, n_samples))
        for wi in range(nb)
    ]
    total_gpus = n_nodes * gpus_per_node
    schedule = schedule_dynamic(costs, total_gpus)
    per_gpu_tops = single.avg_tops * multi_gpu_derate(gpus_per_node)
    search_seconds = schedule.makespan / (per_gpu_tops * 1e12)

    import math

    # Binary-tree broadcast across nodes, then intra-node fan-out (the
    # §3.6 host-to-GPU transfer, negligible and folded into one PCIe pass).
    tree_steps = math.ceil(math.log2(n_nodes)) if n_nodes > 1 else 0
    broadcast_seconds = (
        tree_steps * single.workload.transfer_bytes / interconnect_bps
        + single.workload.transfer_bytes / 25e9
    )
    seconds = search_seconds + broadcast_seconds
    speedup = single.seconds / seconds
    return MultiNodePrediction(
        n_nodes=n_nodes,
        gpus_per_node=gpus_per_node,
        seconds=seconds,
        tera_quads_per_second_scaled=(
            single.workload.scaled_quads / seconds / 1e12
        ),
        speedup_vs_single_gpu=speedup,
        parallel_efficiency=speedup / total_gpus,
        schedule=schedule,
        broadcast_seconds=broadcast_seconds,
    )
