"""Projected performance of paper-scale searches on the modelled GPUs.

``predict_search`` combines the exact workload counts with the calibrated
efficiency model to project runtime, average tensor TOPS, and the paper's
headline metric (tera quads of SNPs per second, scaled to sample size) for
any ``(M, N, B, GPU)`` point — including the full grids behind Fig. 2 and
Fig. 3 which are far beyond what the CPU-hosted simulator can execute
functionally.

``predict_multi_gpu`` adds the §3.6 outer-loop dynamic schedule on top,
yielding strong-scaling curves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.cluster import ScheduleResult, schedule_dynamic
from repro.device.specs import GPUSpec
from repro.perfmodel.efficiency import tensor_efficiency
from repro.perfmodel.workload import (
    SearchWorkload,
    outer_iteration_tensor_ops,
    search_gemm_launches,
    search_workload,
)

#: Modelled host-to-device bandwidth (PCIe Gen4 x16, §3.6), bytes/second.
PCIE_BYTES_PER_SECOND = 25e9

#: Per-additional-GPU throughput derate in a shared chassis (host contention,
#: power/thermal budget): each GPU sustains ``1 / (1 + alpha * (g - 1))`` of
#: its single-GPU rate.  alpha = 0.018 reproduces the paper's measured
#: strong-scaling speedups 1.98x / 3.79x / 7.11x (2/4/8 GPUs, §4.6) to
#: within 1%.
MULTI_GPU_DERATE_ALPHA = 0.018


def multi_gpu_derate(n_gpus: int) -> float:
    """Sustained per-GPU rate fraction when ``n_gpus`` share one chassis."""
    if n_gpus < 1:
        raise ValueError(f"n_gpus must be >= 1, got {n_gpus}")
    return 1.0 / (1.0 + MULTI_GPU_DERATE_ALPHA * (n_gpus - 1))


@dataclass(frozen=True)
class PerformancePrediction:
    """Model output for one search configuration.

    Attributes:
        workload: the exact work accounting.
        spec: the GPU model.
        n_gpus: devices.
        efficiency: average achieved fraction of aggregate peak TOPS.
        avg_tops: average tensor TOPS over the whole run (paper's §4.2
            second metric).
        seconds: projected end-to-end time (search + transfers).
        tera_quads_per_second_scaled: the headline metric — unique quads x
            samples per second, in units of 1e12.
        schedule: multi-GPU schedule (``None`` for single-GPU predictions).
    """

    workload: SearchWorkload
    spec: GPUSpec
    n_gpus: int
    efficiency: float
    avg_tops: float
    seconds: float
    tera_quads_per_second_scaled: float
    schedule: ScheduleResult | None = None
    #: Strong-scaling speedup over one GPU of the same kind (scheduling
    #: imbalance and chassis derate included); 1.0 for single-GPU points.
    speedup_vs_single: float = 1.0
    #: Executed tensor-GEMM launches (all kernels) at the modelled
    #: ``batch_rounds``; 0 when the caller did not model launches.
    gemm_launches: int = 0
    #: Launch-overhead seconds charged on top of the FLOP time (0 unless
    #: ``launch_overhead_us`` was set).
    launch_seconds: float = 0.0


def predict_search(
    spec: GPUSpec,
    n_snps: int,
    n_samples: int,
    block_size: int = 32,
    *,
    n_streams: int = 1,
    sample_chunked: bool = False,
    n_real_snps: int | None = None,
    cache_operands: bool = False,
    batch_rounds: int = 1,
    launch_overhead_us: float = 0.0,
    survivor_fraction: float = 1.0,
) -> PerformancePrediction:
    """Project a single-GPU search.

    Args:
        spec: GPU model (see :mod:`repro.device.specs`).
        n_snps: padded SNP count (multiple of ``block_size``).
        n_samples: total samples (half cases / half controls assumed, as in
            the paper's datasets).
        block_size: ``B``.
        n_streams: concurrent evaluation rounds (paper's "P" configs).
        sample_chunked: split GEMMs at 262144 samples (removes the Turing
            large-``N`` cliff at a small bookkeeping cost).
        n_real_snps: unpadded SNP count for the useful-quads numerator.
        cache_operands: model an unbounded round-operand cache — repeated
            ``combine``/``tensorOp_3way`` launches become hits and drop out
            of the tensor-op totals (see
            :func:`repro.perfmodel.workload.search_workload`).
        batch_rounds: rounds fused per 4-way launch group — collapses the
            modelled launch count (see
            :func:`repro.perfmodel.workload.search_gemm_launches`) without
            touching the FLOP volume.
        launch_overhead_us: fixed per-launch overhead in microseconds,
            charged once per *executed* launch.  The default 0 keeps the
            FLOP-only model (and every pre-existing prediction) unchanged;
            a few us is typical of a CUDA kernel dispatch.
        survivor_fraction: branch-and-bound gate pass rate (see
            :mod:`repro.scoring.bounds` and §9 of
            ``docs/performance_model.md``).  Tensor-GEMM volume is
            bound-invariant — the corners feed the bound itself — so the
            projected *time* is unchanged; the workload carries the
            fraction so ``score_cells_pruned`` and ``bound_cells`` report
            the applyScore-side work the gate saves and adds.
    """
    wl = search_workload(
        n_snps,
        n_samples,
        block_size,
        n_real_snps=n_real_snps,
        cache_operands=cache_operands,
        survivor_fraction=survivor_fraction,
    )
    eff = tensor_efficiency(
        spec,
        n_samples,
        block_size,
        n_streams=n_streams,
        sample_chunked=sample_chunked,
    )
    launches = search_gemm_launches(
        n_snps // block_size,
        batch_rounds=batch_rounds,
        cache_operands=cache_operands,
    )
    n_launches = sum(launches.values())
    launch_seconds = n_launches * launch_overhead_us * 1e-6
    avg_tops = eff * spec.peak_tops
    search_seconds = wl.tensor_ops / (avg_tops * 1e12)
    transfer_seconds = wl.transfer_bytes / PCIE_BYTES_PER_SECOND
    seconds = search_seconds + transfer_seconds + launch_seconds
    return PerformancePrediction(
        workload=wl,
        spec=spec,
        n_gpus=1,
        efficiency=eff,
        avg_tops=avg_tops,
        seconds=seconds,
        tera_quads_per_second_scaled=wl.scaled_quads / seconds / 1e12,
        gemm_launches=n_launches,
        launch_seconds=launch_seconds,
    )


#: Modelled NVLink Gen3 bandwidth for partial-table merges (§3.6).
NVLINK_BYTES_PER_SECOND = 600e9


def predict_samples_partition(
    spec: GPUSpec,
    n_gpus: int,
    n_snps: int,
    n_samples: int,
    block_size: int = 32,
) -> PerformancePrediction:
    """Project the §4.6 *alternative* multi-GPU scheme: sample partitioning.

    Every GPU runs every round over ``N / g`` samples, so its GEMMs shrink
    along K and run at the efficiency of the reduced sample count; per
    round the partial corners must be merged across devices.  The paper:
    "dividing the samples between GPUs is expected to negatively impact the
    performance, unless processing datasets with significantly more samples
    than those considered" — this model makes that comparison quantitative.
    """
    if n_gpus < 1:
        raise ValueError(f"n_gpus must be >= 1, got {n_gpus}")
    wl = search_workload(n_snps, n_samples, block_size)
    per_gpu_samples = max(n_samples // n_gpus, 1)
    eff = tensor_efficiency(spec, per_gpu_samples, block_size)
    per_gpu_tops = eff * spec.peak_tops * multi_gpu_derate(n_gpus)
    # Tensor work divides evenly (each GPU holds 1/g of every GEMM's K dim).
    search_seconds = (wl.tensor_ops / n_gpus) / (per_gpu_tops * 1e12)
    # Per-round merge: the 16-cell corners of both classes from g-1 devices.
    merge_bytes = wl.n_rounds * (n_gpus - 1) * (16 * block_size**4) * 4 * 2
    merge_seconds = merge_bytes / NVLINK_BYTES_PER_SECOND
    seconds = (
        search_seconds
        + merge_seconds
        + wl.transfer_bytes / PCIE_BYTES_PER_SECOND
    )
    single = predict_search(spec, n_snps, n_samples, block_size)
    return PerformancePrediction(
        workload=wl,
        spec=spec,
        n_gpus=n_gpus,
        efficiency=(wl.tensor_ops / 1e12 / seconds) / (n_gpus * spec.peak_tops),
        avg_tops=wl.tensor_ops / 1e12 / seconds,
        seconds=seconds,
        tera_quads_per_second_scaled=wl.scaled_quads / seconds / 1e12,
        schedule=None,
        speedup_vs_single=single.seconds / seconds,
    )


def predict_multi_gpu(
    spec: GPUSpec,
    n_gpus: int,
    n_snps: int,
    n_samples: int,
    block_size: int = 32,
    *,
    n_streams: int = 1,
    sample_chunked: bool = False,
    partition: str = "outer",
) -> PerformancePrediction:
    """Project a multi-GPU search with the §3.6 dynamic outer-loop schedule.

    Per-GPU efficiency is the single-GPU model; the parallel runtime is the
    schedule makespan over the per-outer-iteration tensor volumes (plus the
    per-device dataset broadcast, which the paper notes is negligible).

    ``partition="samples"`` dispatches to :func:`predict_samples_partition`.
    """
    if n_gpus < 1:
        raise ValueError(f"n_gpus must be >= 1, got {n_gpus}")
    if partition not in ("outer", "samples"):
        raise ValueError(f"partition must be 'outer' or 'samples', got {partition!r}")
    if partition == "samples":
        return predict_samples_partition(
            spec, n_gpus, n_snps, n_samples, block_size
        )
    single = predict_search(
        spec,
        n_snps,
        n_samples,
        block_size,
        n_streams=n_streams,
        sample_chunked=sample_chunked,
    )
    nb = n_snps // block_size
    costs = [
        float(outer_iteration_tensor_ops(wi, nb, block_size, n_samples))
        for wi in range(nb)
    ]
    schedule = schedule_dynamic(costs, n_gpus)
    # Convert tensor-op makespan to seconds at the per-GPU modelled rate,
    # derated for chassis sharing.
    per_gpu_tops = single.avg_tops * multi_gpu_derate(n_gpus)
    seconds_search = schedule.makespan / (per_gpu_tops * 1e12)
    seconds = seconds_search + single.workload.transfer_bytes / PCIE_BYTES_PER_SECOND
    wl = single.workload
    total_tops_seconds = wl.tensor_ops / 1e12
    return PerformancePrediction(
        workload=wl,
        spec=spec,
        n_gpus=n_gpus,
        efficiency=(total_tops_seconds / seconds) / (n_gpus * spec.peak_tops),
        avg_tops=total_tops_seconds / seconds,
        seconds=seconds,
        tera_quads_per_second_scaled=wl.scaled_quads / seconds / 1e12,
        schedule=schedule,
        speedup_vs_single=single.seconds / seconds,
    )
