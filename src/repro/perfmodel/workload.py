"""Exact work accounting for a fourth-order search (no execution needed).

All counts follow the paper's conventions:

- one fused 1-bit op (AND+POPC or XOR+POPC over one bit) counts as **two**
  operations;
- a ``tensorOp_4way`` GEMM for a round is ``(4B^2) x (4B^2) x N_c`` bits per
  class;
- a ``tensorOp_3way`` sweep launched at loop level with iterator value
  ``t0`` is ``(4B^2) x 2(M - t0) x N_c`` bits per class (one sweep per
  ``Xi`` iteration for ``wx``, two per ``Yi`` iteration for ``wy``/``xy``).

These formulas are asserted against the :class:`~repro.device.VirtualGPU`
counters in the test suite, so the analytic model and the executed pipeline
cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

from repro.core.blocks import count_rounds, num_blocks, unique_combinations


@dataclass(frozen=True)
class SearchWorkload:
    """Total work of one search.

    Attributes:
        n_snps: padded SNP count ``M``.
        n_real_snps: unpadded SNP count.
        block_size: ``B``.
        n_samples: ``N = N0 + N1``.
        tensor4_ops: fused-op volume of all ``tensorOp_4way`` GEMMs (x2 per
            fused op).
        tensor3_ops: fused-op volume of all ``tensorOp_3way`` GEMMs.
        combine_bit_ops: bitwise AND volume of all ``combine`` launches.
        pairwise_ops: plane-dot volume of ``pairwPop``.
        score_cells: 81-cell-table cells completed and scored by the
            mask-first compacted ``applyScore`` (the default path): every
            *unique* combination is valid in exactly one round, so the
            total is ``81 * 2 * C(M_real, 4)``.  The legacy dense path
            materializes the full grid — see :attr:`score_cells_dense`.
        transfer_bytes: dataset bytes shipped to one device.
        n_rounds: evaluation rounds.
        quads_processed: positional quads (incl. repeats).
        unique_quads: ``C(M_real, 4)``.
        survivor_fraction: fraction of mask-valid quads the admissible
            branch-and-bound gate (see :mod:`repro.scoring.bounds`) lets
            through to completion+scoring.  ``1.0`` (the default) models
            the exhaustive / prune-off run; measured values come from
            ``epi4_applyscore_valid_total / (valid + pruned)``.  Pruning
            never changes results, so only :attr:`score_cells_pruned`
            and the bound-evaluation overhead depend on it.
    """

    n_snps: int
    n_real_snps: int
    block_size: int
    n_samples: int
    tensor4_ops: int
    tensor3_ops: int
    combine_bit_ops: int
    pairwise_ops: int
    score_cells: int
    transfer_bytes: int
    n_rounds: int
    quads_processed: int
    unique_quads: int
    survivor_fraction: float = 1.0

    @property
    def tensor_ops(self) -> int:
        """All tensor-core fused-op volume."""
        return self.tensor4_ops + self.tensor3_ops

    @property
    def score_cells_dense(self) -> int:
        """Cells materialized by the legacy dense ``applyScore`` path, which
        completes the full ``B^4`` grid of every round before masking."""
        return self.n_rounds * self.block_size**4 * 81 * 2

    @property
    def compaction_ratio(self) -> float:
        """Fraction of dense score cells the mask-first path actually
        completes and scores.  Equals :attr:`useful_fraction` because each
        unique combination is valid in exactly one round."""
        return self.score_cells / self.score_cells_dense

    @property
    def useful_fraction(self) -> float:
        return self.unique_quads / self.quads_processed

    @property
    def bound_cells(self) -> int:
        """Cells gathered and evaluated by the branch-and-bound gate:
        every mask-valid (= unique) quad is bounded once from its 48
        known cells per class (16 fourth-order corners + four
        one-index-is-2 fibers derived by marginal subtraction) before
        the gate decides.  The two per-class remainder terms reuse the
        same table views and are O(1) per quad — negligible next to the
        gather, so they are not counted separately.  The gate is a pure
        win whenever ``(1 - survivor_fraction) * 81 * 2`` exceeds this
        ``96`` cells/quad overhead, i.e. whenever more than ~59% of
        quads prune."""
        return self.unique_quads * 48 * 2

    @property
    def score_cells_pruned(self) -> int:
        """Cells completed and scored when the branch-and-bound gate
        passes only :attr:`survivor_fraction` of mask-valid quads
        (equals :attr:`score_cells` at the default 1.0)."""
        return int(round(self.score_cells * self.survivor_fraction))

    @property
    def scaled_quads(self) -> int:
        """Unique quads x samples — the numerator of the paper's headline
        metric ("quads of SNPs per second, scaled to sample size")."""
        return self.unique_quads * self.n_samples

    def tensor_ops_per_scaled_quad(self) -> float:
        """Tensor ops spent per useful quad-sample (inverse efficiency of
        the combination scheme; ~``32 / useful_fraction`` plus 3-way terms).
        """
        return self.tensor_ops / self.scaled_quads


def unique_block_triples(nb: int) -> int:
    """Number of unordered block triples ``(ai <= bi <= ci)``.

    With the cross-round triplet cache on (and an unbounded budget), each
    completed third-order table is computed once per class per unique block
    triple, so ``complete_threeway`` executions collapse from
    ``4 * 2 * count_rounds(nb)`` role slots to ``2 * unique_block_triples(nb)``
    (for padding-free configurations with ``B >= 4``, where no round is
    empty of valid quads).
    """
    return comb(nb + 2, 3)


def search_gemm_launches(
    nb: int,
    *,
    batch_rounds: int = 1,
    cache_operands: bool = False,
    paired_sweeps: bool | None = None,
) -> dict[str, int]:
    """Executed tensor-GEMM *launches* of a full search, by kernel.

    Launches are what the batched round pipeline collapses — the fused-op
    volume (:func:`search_workload`) is invariant, but each fused launch
    of ``batch_rounds`` stacked ``yz`` operands retires up to that many
    logical GEMM problems at one launch overhead.  Per ``(Wi, Xi)`` pair
    the ``T = nb - Xi`` tail yields ``C(T + 1, 2)`` rounds, chunked into
    ``ceil(rounds / batch_rounds)`` fused 4-way launches per class.

    Args:
        nb: number of SNP blocks.
        batch_rounds: rounds fused per 4-way launch group (1 = the seed
            loop, launch-for-launch).
        cache_operands: model an unbounded round-operand cache — every
            unique block-pair sweep executes exactly once per class, so
            the 3-way launch count is independent of batching.
        paired_sweeps: the pipelined loop fuses the Y-level ``wy``/``xy``
            sweeps (same tail) into one launch per class; defaults to
            ``batch_rounds > 1`` (the pipeline also runs, with paired
            sweeps, at ``batch_rounds == 1`` when stage overlap is on).
            Ignored when ``cache_operands`` is set.

    Returns:
        ``{"tensor3": launches, "tensor4": launches}``.  The matching
        per-problem totals (``KernelCounters.gemm_problems``) always equal
        the ``batch_rounds=1`` launch counts.
    """
    if nb < 1:
        raise ValueError(f"nb must be >= 1, got {nb}")
    if batch_rounds < 1:
        raise ValueError(f"batch_rounds must be >= 1, got {batch_rounds}")
    if paired_sweeps is None:
        paired_sweeps = batch_rounds > 1
    tensor4 = 0
    for xi in range(nb):
        rounds = comb(nb - xi + 1, 2)
        tensor4 += (xi + 1) * 2 * -(-rounds // batch_rounds)
    # wx sweeps: one per class per unique (wi <= xi) pair — also the
    # *total* cached-path count, since every sweep is pair-keyed.
    tensor3 = 2 * comb(nb + 1, 2)
    if not cache_operands:
        # wy + xy sweeps per (wi <= xi <= yi) triple: 4 separate launches
        # per triple in the seed loop, 2 fused ones in the pipeline.
        tensor3 += (2 if paired_sweeps else 4) * comb(nb + 2, 3)
    return {"tensor3": tensor3, "tensor4": tensor4}


def outer_iteration_tensor_ops(
    wi: int, nb: int, block_size: int, n_samples: int
) -> int:
    """Tensor-op volume of outer iteration ``Wi = wi`` (scheduling weight).

    This is the §3.6 unit of multi-GPU work division; the volume decreases
    with ``wi``, which the dynamic schedule balances.
    """
    if not 0 <= wi < nb:
        raise ValueError(f"wi must be in [0, {nb}), got {wi}")
    b = block_size
    m = nb * b
    ops = 0
    for xi in range(wi, nb):
        # wx sweep: (4B^2) x 2(M - xi*B) x N bits.
        ops += 2 * (4 * b * b) * (2 * (m - xi * b)) * n_samples
        for yi in range(xi, nb):
            # wy + xy sweeps: each (4B^2) x 2(M - yi*B) x N bits.
            ops += 2 * (2 * (4 * b * b)) * (2 * (m - yi * b)) * n_samples
            # One 4-way GEMM per Zi iteration: (4B^2) x (4B^2) x N bits.
            ops += (nb - yi) * 2 * (4 * b * b) * (4 * b * b) * n_samples
    return ops


def outer_iteration_tensor4_ops(
    wi: int, nb: int, block_size: int, n_samples: int
) -> int:
    """4-way GEMM volume of outer iteration ``Wi = wi``.

    Unlike the full :func:`outer_iteration_tensor_ops` weight, this term
    is **cache-invariant**: round work is per-quad unique, so the operand
    cache cannot elide any of it.  The distributed layer uses it to
    assert measured-vs-modelled shard volumes even for cache-enabled
    configurations, where 3-way sweep volume depends on cross-iteration
    hit patterns.
    """
    if not 0 <= wi < nb:
        raise ValueError(f"wi must be in [0, {nb}), got {wi}")
    b = block_size
    ops = 0
    for xi in range(wi, nb):
        for yi in range(xi, nb):
            ops += (nb - yi) * 2 * (4 * b * b) * (4 * b * b) * n_samples
    return ops


def shard_tensor_ops(
    iterations: "list[int] | tuple[int, ...]",
    nb: int,
    block_size: int,
    n_samples: int,
) -> dict[str, int]:
    """Closed-form work volume of one shard (a set of outer iterations).

    Returns ``{"tensor_ops": ..., "tensor4_ops": ...}`` — the full
    scheduling weight and its cache-invariant 4-way component, summed over
    the shard's iterations.  With the operand cache off, a shard's executed
    raw tensor-op counters equal ``tensor_ops`` exactly; with the cache on,
    only ``tensor4_ops`` is guaranteed (sweep volume depends on hits).
    """
    total = 0
    tensor4 = 0
    for wi in iterations:
        total += outer_iteration_tensor_ops(wi, nb, block_size, n_samples)
        tensor4 += outer_iteration_tensor4_ops(wi, nb, block_size, n_samples)
    return {"tensor_ops": total, "tensor4_ops": tensor4}


def search_workload(
    n_snps: int,
    n_samples: int,
    block_size: int,
    *,
    n_real_snps: int | None = None,
    cache_operands: bool = False,
    survivor_fraction: float = 1.0,
) -> SearchWorkload:
    """Exact totals for a search over ``M`` padded SNPs and ``N`` samples.

    Args:
        n_snps: padded SNP count (block multiple).
        n_samples: ``N0 + N1`` (class split does not change totals because
            every GEMM runs once per class over that class's bits).
        block_size: ``B``.
        n_real_snps: unpadded count (defaults to ``n_snps``).
        cache_operands: model an *unbounded* round-operand cache
            (:mod:`repro.core.operand_cache`).  Every combine and 3-way
            sweep is keyed by its unordered block pair, so with the cache
            on, each is **executed once**: ``combine`` volume collapses to
            ``C(nb+1, 2)`` unique pairs and ``tensorOp_3way`` volume to the
            ``wx``-shaped sum over unique ``(ai <= bi)`` pairs (the ``wy`` /
            ``xy`` re-sweeps and repeated ``yz`` combines become cache
            hits).  Round work (``tensorOp_4way``, ``applyScore``) is
            per-quad unique and unaffected.  These reduced totals are
            asserted against executed :class:`~repro.device.VirtualGPU`
            counters in the equivalence suite.
        survivor_fraction: branch-and-bound gate pass rate in ``(0, 1]``
            (see :attr:`SearchWorkload.survivor_fraction`); ``1.0``
            models the exhaustive run.  ``score_cells`` itself stays the
            exhaustive total — the pruned projection is the
            :attr:`SearchWorkload.score_cells_pruned` property.
    """
    if not 0.0 < survivor_fraction <= 1.0:
        raise ValueError(
            f"survivor_fraction must be in (0, 1], got {survivor_fraction}"
        )
    nb = num_blocks(n_snps, block_size)
    b = block_size
    m = n_snps
    real = n_snps if n_real_snps is None else n_real_snps

    tensor3 = 0
    tensor4 = 0
    combine_ops = 0
    n_rounds = count_rounds(nb)
    # Pair (wi, xi) loop volume.  One sweep + combine per unique unordered
    # block pair — which is also the *total* cached-path volume, because
    # every sweep/combine at every loop level is keyed by such a pair.
    for xi in range(nb):
        n_wi = xi + 1  # number of wi <= xi
        tensor3 += n_wi * 2 * (4 * b * b) * (2 * (m - xi * b)) * n_samples
        combine_ops += n_wi * (4 * b * b) * n_samples  # wx combine
    if not cache_operands:
        # Triple (wi, xi, yi) loop volume:
        for yi in range(nb):
            n_pairs = comb(yi + 2, 2)  # (wi <= xi <= yi) count
            tensor3 += (
                n_pairs * 2 * (2 * (4 * b * b)) * (2 * (m - yi * b)) * n_samples
            )
            combine_ops += n_pairs * 2 * (4 * b * b) * n_samples  # wy + xy
    # Rounds:
    tensor4 = n_rounds * 2 * (4 * b * b) * (4 * b * b) * n_samples
    if not cache_operands:
        combine_ops += n_rounds * (4 * b * b) * n_samples  # yz combine

    pairwise = 2 * (2 * m) * (2 * m) * n_samples  # plane-dot volume, both classes
    # Mask-first compacted applyScore: only *valid* positions are completed
    # and scored, and every unique combination is valid in exactly one round.
    score_cells = unique_combinations(real) * 81 * 2
    transfer = (2 * m * n_samples) // 8  # dataset bits -> bytes (both classes)

    return SearchWorkload(
        n_snps=m,
        n_real_snps=real,
        block_size=b,
        n_samples=n_samples,
        tensor4_ops=tensor4,
        tensor3_ops=tensor3,
        combine_bit_ops=combine_ops,
        pairwise_ops=pairwise,
        score_cells=score_cells,
        transfer_bytes=transfer,
        n_rounds=n_rounds,
        quads_processed=n_rounds * b**4,
        unique_quads=unique_combinations(real),
        survivor_fraction=survivor_fraction,
    )
