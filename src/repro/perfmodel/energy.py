"""Energy model: quad-samples per joule on the modelled devices.

The paper compares against HEDAcc [21], an FPGA approach "with a strong
emphasis on energy-efficiency", but reports throughput only.  Table 1
discloses each GPU's TDP and §4.5 observes the power cap is *always active*
during searches — i.e. the boards run essentially at their power limit.
That pins an energy model: ``energy = TDP x runtime`` (an upper bound that
is nearly tight under an active cap), from which we derive scaled quads per
joule for any configuration.

These are model estimates; no paper anchor exists to validate them, so the
test suite checks internal consistency only (monotonicity, cap behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.model import PerformancePrediction

#: Fraction of TDP drawn while the software power cap is active (§4.5 —
#: the cap throttles clocks *because* the board sits at the limit).
POWER_CAP_DRAW_FRACTION = 1.0


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy accounting for one projected search.

    Attributes:
        watts: modelled average board power (all GPUs).
        joules: total energy of the run.
        giga_quad_samples_per_joule: the efficiency metric — unique quads x
            samples per joule, in 1e9 units.
    """

    watts: float
    joules: float
    giga_quad_samples_per_joule: float


def estimate_energy(
    prediction: PerformancePrediction,
    *,
    draw_fraction: float = POWER_CAP_DRAW_FRACTION,
) -> EnergyEstimate:
    """Energy estimate for a projected (single- or multi-GPU) search.

    Args:
        prediction: output of ``predict_search`` / ``predict_multi_gpu``.
        draw_fraction: average draw as a fraction of TDP (1.0 under an
            active power cap).

    Returns:
        An :class:`EnergyEstimate`.
    """
    if not 0 < draw_fraction <= 1.0:
        raise ValueError(f"draw_fraction must be in (0, 1], got {draw_fraction}")
    watts = prediction.n_gpus * prediction.spec.tdp_w * draw_fraction
    joules = watts * prediction.seconds
    quads = prediction.workload.scaled_quads
    return EnergyEstimate(
        watts=watts,
        joules=joules,
        giga_quad_samples_per_joule=quads / joules / 1e9,
    )
