"""Tensor-throughput efficiency model, calibrated on the paper's anchors.

The average fraction of peak binary-tensor TOPS a full search achieves is
modelled as a product of independent, physically-motivated factors:

``kernel_sol``
    the kernel's speed-of-light ceiling at saturation (Nsight "speed of
    light": ~90% Ampere, ~65% Turing — §4.5);
``saturation(N)``
    ramp-up of GEMM efficiency with the K dimension (samples):
    ``N / (N + N_half)`` — small-sample runs cannot fill the tensor
    pipelines, which is why the paper's performance grows with ``N``;
``tile utilization``
    useful fraction of the tile-quantized 4-way GEMM volume (penalizes
    small blocks);
``large-N cliff``
    the Turing-specific throughput drop at 524288+ samples (§4.5), removed
    when sample-chunked execution is used;
``sustained clock``
    achieved/boost clock under the always-active power cap (§4.5), higher
    for the 400 W SXM4 part (§4.6);
``duty``
    fraction of device time the tensor kernels are busy (the remainder runs
    ``combine``/``applyScore``/... on the general-purpose cores; §4.5
    measures the tensor share at ~83% on Turing).

Streams (§4.4) lift the *saturation* factor only — overlapping rounds hides
ramp-up, which is exactly why the paper sees stream gains only for
small-sample datasets.
"""

from __future__ import annotations

from repro.device.specs import GPUSpec
from repro.device.streams import StreamModel

#: Fraction of device time spent inside the tensor kernels, per arch.
#: Turing: measured 82.85% (§4.5 profile).  Ampere: calibrated against the
#: 66% average-TOPS anchor (its faster scoring path and AND+POPC native ops
#: leave less non-tensor residue).
TENSOR_DUTY = {"turing": 0.8285, "ampere": 0.925}


def saturation(n_samples: int, half_samples: float) -> float:
    """GEMM ramp-up with the sample (K) dimension: ``N / (N + N_half)``."""
    if n_samples <= 0:
        raise ValueError(f"n_samples must be > 0, got {n_samples}")
    return n_samples / (n_samples + half_samples)


def fourway_tile_utilization(spec: GPUSpec, block_size: int, n_samples: int) -> float:
    """Useful fraction of the tile-quantized 4-way GEMM volume.

    The 4-way GEMM is ``(4B^2) x (4B^2) x N_class`` per class; both classes
    have ``~N/2`` samples in the paper's datasets.
    """
    rows = 4 * block_size * block_size
    k_bits = max(n_samples // 2, 1)
    return spec.tiles.utilization(rows, rows, k_bits)


def tensor_efficiency(
    spec: GPUSpec,
    n_samples: int,
    block_size: int = 32,
    *,
    n_streams: int = 1,
    sample_chunked: bool = False,
) -> float:
    """Average achieved fraction of peak tensor TOPS over a full search.

    Returns a value in ``(0, 1)``; multiply by :attr:`GPUSpec.peak_tops`
    for the average TOPS the paper reports.
    """
    # Split saturation into a ramp component (hideable by overlapping rounds
    # through streams) and a throughput component (not hideable).
    ramp = saturation(n_samples, spec.effective_ramp_half_samples)
    throughput = saturation(n_samples, spec.saturation_half_samples) / ramp
    streams = StreamModel(n_streams=n_streams)
    ramp = streams.effective_efficiency(ramp, sol_cap=1.0)
    eff = spec.kernel_sol * ramp * throughput
    eff *= fourway_tile_utilization(spec, block_size, n_samples)
    if (
        spec.large_n_cliff_samples is not None
        and n_samples >= spec.large_n_cliff_samples
        and not sample_chunked
    ):
        eff *= spec.large_n_cliff
    eff *= spec.sustained_clock_factor
    eff *= TENSOR_DUTY[spec.arch]
    return eff
