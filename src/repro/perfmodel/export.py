"""CSV export of every regenerated evaluation artifact.

Writes the series behind Table 1, Fig. 2, Fig. 3, Table 2 and the §4.5
ratios as CSV files — the machine-readable companions to
``EXPERIMENTS.md``, suitable for plotting or regression-tracking the model
outputs across versions.
"""

from __future__ import annotations

import csv
import os
from dataclasses import fields

from repro.perfmodel import figures


def _write_rows(path: str, rows: list[dict]) -> None:
    if not rows:
        raise ValueError(f"refusing to write empty CSV {path}")
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)


def _dataclass_rows(items) -> list[dict]:
    return [
        {f.name: getattr(item, f.name) for f in fields(item)} for item in items
    ]


def export_all(directory: str | os.PathLike) -> dict[str, str]:
    """Write every artifact's CSV into ``directory``.

    Returns:
        Mapping of artifact name to the file path written.
    """
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    written: dict[str, str] = {}

    def emit(name: str, rows: list[dict]) -> None:
        path = os.path.join(directory, f"{name}.csv")
        _write_rows(path, rows)
        written[name] = path

    emit("table1_systems", figures.table1_rows())
    emit("fig2_single_gpu", _dataclass_rows(figures.fig2_grid()))
    emit("fig3_multi_gpu", _dataclass_rows(figures.fig3_grid()))
    emit("table2_related_work", _dataclass_rows(figures.table2_rows()))
    emit("unique_ratios", _dataclass_rows(figures.unique_ratio_rows()))
    emit(
        "sycl_speedups",
        [
            {"comparison": key, "speedup": value}
            for key, value in figures.epi4tensor_vs_sycl_speedups().items()
        ],
    )
    return written
