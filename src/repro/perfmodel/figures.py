"""Series generators for every evaluation artifact of the paper.

Each function regenerates the data behind one table or figure:

- :func:`table1_rows` — the target-system catalog with derived peak TOPS.
- :func:`fig2_grid` — single-GPU performance on S1/S2 over the full
  ``M x N x engine x B x streams`` grid.
- :func:`fig3_grid` — S3 multi-GPU performance/scaling.
- :func:`table2_rows` — the related-work comparison.
- :func:`unique_ratio_rows` — the §4.5 useful-combination percentages
  (exact combinatorics, not modelled).

The benchmark harness prints these next to the paper's reported values;
see ``EXPERIMENTS.md`` for the recorded comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.blocks import useful_ratio
from repro.device.specs import A100_PCIE, A100_SXM4, GPUSpec, SYSTEMS, TITAN_RTX
from repro.perfmodel.model import (
    PerformancePrediction,
    predict_multi_gpu,
    predict_search,
)

#: Fig. 2 dataset grid (§4.3): SNP counts x sample counts.
FIG2_SNPS = (256, 512, 1024, 2048)
FIG2_SAMPLES = (32768, 65536, 131072, 262144, 524288)

#: Fig. 3 grid (§4.6).
FIG3_SNPS = (1024, 2048, 4096)
FIG3_SAMPLES = (262144, 524288)
FIG3_GPUS = (1, 2, 4, 8)


@dataclass(frozen=True)
class Fig2Row:
    """One bar of Fig. 2."""

    system: str
    gpu: str
    n_snps: int
    n_samples: int
    engine: str  # "xor" or "and"
    block_size: int
    n_streams: int
    tera_quads_per_second: float
    avg_tops: float


def fig2_grid(
    *,
    block_sizes: tuple[int, ...] = (32, 64),
    stream_counts: tuple[int, ...] = (1, 4),
) -> list[Fig2Row]:
    """Model the full single-GPU grid of Fig. 2.

    Engines: XOR+POPC on both systems, AND+POPC additionally on S2 (Ampere).
    The AND/XOR distinction does not change modelled throughput (the paper
    measures the translation overhead as insignificant — sub-1% on its
    anchor pairs), so paired rows differ only by a small constant factor
    representing the translation work, folded into the score phase.
    """
    rows: list[Fig2Row] = []
    #: Measured AND-vs-XOR gap on the paper's anchors: 90.9 vs 90.0 -> ~1%.
    xor_translation_factor = 0.990
    for system, spec in (("S1", TITAN_RTX), ("S2", A100_PCIE)):
        for m in FIG2_SNPS:
            for n in FIG2_SAMPLES:
                for b in block_sizes:
                    for s in stream_counts:
                        pred = predict_search(spec, m, n, b, n_streams=s)
                        engines = ["xor"] if spec.arch == "turing" else ["and", "xor"]
                        for engine in engines:
                            factor = (
                                1.0
                                if engine == "and" or spec.arch == "turing"
                                else xor_translation_factor
                            )
                            rows.append(
                                Fig2Row(
                                    system=system,
                                    gpu=spec.name,
                                    n_snps=m,
                                    n_samples=n,
                                    engine=engine,
                                    block_size=b,
                                    n_streams=s,
                                    tera_quads_per_second=(
                                        pred.tera_quads_per_second_scaled * factor
                                    ),
                                    avg_tops=pred.avg_tops,
                                )
                            )
    return rows


@dataclass(frozen=True)
class Fig3Row:
    """One bar of Fig. 3."""

    n_gpus: int
    n_snps: int
    n_samples: int
    tera_quads_per_second: float
    speedup: float
    avg_tops: float
    hours: float


def fig3_grid() -> list[Fig3Row]:
    """Model the S3 (8x A100 SXM4) multi-GPU grid of Fig. 3."""
    rows: list[Fig3Row] = []
    for m in FIG3_SNPS:
        for n in FIG3_SAMPLES:
            for g in FIG3_GPUS:
                pred = predict_multi_gpu(A100_SXM4, g, m, n, 32)
                rows.append(
                    Fig3Row(
                        n_gpus=g,
                        n_snps=m,
                        n_samples=n,
                        tera_quads_per_second=pred.tera_quads_per_second_scaled,
                        speedup=pred.speedup_vs_single,
                        avg_tops=pred.avg_tops,
                        hours=pred.seconds / 3600.0,
                    )
                )
    return rows


@dataclass(frozen=True)
class Table2Row:
    """One row of the related-work comparison (Table 2)."""

    approach: str
    hardware: str
    n_snps: int
    n_samples: int
    tera_quads_per_second: float
    source: str  # "paper-reported" or "model"


def table2_rows() -> list[Table2Row]:
    """Table 2: fourth-order approaches, tera quads/s scaled to samples.

    Related-art numbers are the values reported in the cited publications
    (we cannot rerun FPGA/Xeon testbeds); Epi4Tensor rows come from our
    calibrated model at the paper's dataset points.
    """
    rows = [
        Table2Row("BitEpi [2]", "2x Intel Xeon E5-2660 v3 (20 cores)", 500, 2000, 0.011, "paper-reported"),
        Table2Row("HEDAcc [21]", "Virtex-7 690T FPGA", 2000, 4000, 0.42, "paper-reported"),
        Table2Row("HEDAcc [21]", "Zynq-US+ FPGA", 2000, 4000, 0.35, "paper-reported"),
        Table2Row("HEDAcc [21]", "Zynq-7000 FPGA", 2000, 4000, 0.28, "paper-reported"),
        Table2Row("SYCL 4th-order [15]", "Titan RTX", 250, 80000, 2.25, "paper-reported"),
    ]
    ours = [
        ("Epi4Tensor (S1)", TITAN_RTX, 1, 2048, 262144),
        ("Epi4Tensor (S2)", A100_PCIE, 1, 2048, 524288),
        ("Epi4Tensor (S3)", A100_SXM4, 8, 4096, 524288),
    ]
    for label, spec, g, m, n in ours:
        pred = (
            predict_search(spec, m, n, 32)
            if g == 1
            else predict_multi_gpu(spec, g, m, n, 32)
        )
        hardware = spec.name if g == 1 else f"{g}x {spec.name} (HGX)"
        rows.append(
            Table2Row(
                label, hardware, m, n, pred.tera_quads_per_second_scaled, "model"
            )
        )
    return rows


def epi4tensor_vs_sycl_speedups() -> dict[str, float]:
    """The §5 headline speedups vs the SYCL state of the art [15].

    Returns a mapping with the four factors the paper quotes: 6.4x (same
    dataset + GPU), 12.4x (Titan best), 41.1x (A100 best), 372.1x (HGX).

    Each point uses the best parametrization, as the paper reports; for the
    small 250 x 80000 dataset that means concurrent evaluation rounds
    (streams), which the paper finds to pay off exactly for small-sample
    datasets.
    """
    sycl = 2.25
    same_dataset = max(
        predict_search(
            TITAN_RTX, 256, 80000, 32, n_real_snps=250, n_streams=s
        ).tera_quads_per_second_scaled
        for s in (1, 4)
    )
    return {
        "same_dataset_same_gpu": same_dataset / sycl,
        "titan_best": predict_search(TITAN_RTX, 2048, 262144, 32).tera_quads_per_second_scaled / sycl,
        "a100_best": predict_search(A100_PCIE, 2048, 524288, 32).tera_quads_per_second_scaled / sycl,
        "hgx_best": predict_multi_gpu(A100_SXM4, 8, 4096, 524288, 32).tera_quads_per_second_scaled / sycl,
    }


@dataclass(frozen=True)
class UniqueRatioRow:
    n_snps: int
    block_size: int
    percent_unique: float


def unique_ratio_rows() -> list[UniqueRatioRow]:
    """The §4.5 unique-combination percentages (exact, to compare verbatim)."""
    rows = []
    for b in (32, 64):
        for m in FIG2_SNPS:
            rows.append(
                UniqueRatioRow(
                    n_snps=m,
                    block_size=b,
                    percent_unique=100.0 * useful_ratio(m, b),
                )
            )
    return rows


def table1_rows() -> list[dict]:
    """Table 1 plus the §4.1 derived peak-TOPS column."""
    out = []
    for key, system in SYSTEMS.items():
        out.append(
            {
                "system": key,
                "cpu": system.cpu,
                "gpu": f"{system.n_gpus}x {system.gpu.name}" if system.n_gpus > 1 else system.gpu.name,
                "arch": system.gpu.arch,
                "tensor_cores": system.gpu.tensor_cores,
                "cuda_cores": system.gpu.cuda_cores,
                "boost_mhz": system.gpu.boost_clock_hz / 1e6,
                "memory_gb": system.gpu.memory_gb,
                "bandwidth_gbps": system.gpu.mem_bandwidth_gbps,
                "dram_gb": system.dram_gb,
                "os": system.operating_system,
                "driver": system.driver,
                "peak_binary_tops": system.peak_tops,
            }
        )
    return out


def prediction_for_point(
    gpu: GPUSpec, n_gpus: int, n_snps: int, n_samples: int, block_size: int = 32
) -> PerformancePrediction:
    """Convenience dispatcher used by the CLI and benches."""
    if n_gpus == 1:
        return predict_search(gpu, n_snps, n_samples, block_size)
    return predict_multi_gpu(gpu, n_gpus, n_snps, n_samples, block_size)
