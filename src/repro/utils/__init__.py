"""Small shared utilities: validation helpers, timers, deterministic RNG."""

from repro.utils.validation import (
    check_dtype,
    check_positive,
    check_range,
    check_shape,
)
from repro.utils.timing import Timer

__all__ = [
    "Timer",
    "check_dtype",
    "check_positive",
    "check_range",
    "check_shape",
]
