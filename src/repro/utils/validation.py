"""Argument validation helpers.

These raise early, with messages that name the offending argument, so that
errors surface at API boundaries instead of deep inside vectorized kernels.
"""

from __future__ import annotations

from typing import Any

import numpy as np


def check_positive(name: str, value: float, *, strict: bool = True) -> None:
    """Raise ``ValueError`` unless ``value`` is positive (or >= 0 if not strict)."""
    if strict and value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def check_range(name: str, value: float, lo: float, hi: float) -> None:
    """Raise ``ValueError`` unless ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")


def check_shape(name: str, array: np.ndarray, shape: tuple[Any, ...]) -> None:
    """Raise ``ValueError`` unless ``array.shape`` matches ``shape``.

    ``None`` entries in ``shape`` act as wildcards.
    """
    if array.ndim != len(shape):
        raise ValueError(
            f"{name} must have {len(shape)} dimensions, got shape {array.shape}"
        )
    for axis, want in enumerate(shape):
        if want is not None and array.shape[axis] != want:
            raise ValueError(
                f"{name} must have shape {shape}, got {array.shape}"
            )


def check_dtype(name: str, array: np.ndarray, dtype: type) -> None:
    """Raise ``TypeError`` unless ``array.dtype`` equals ``dtype``."""
    if array.dtype != np.dtype(dtype):
        raise TypeError(
            f"{name} must have dtype {np.dtype(dtype)}, got {array.dtype}"
        )
