"""Wall-clock timing helper used by the search driver and benchmarks."""

from __future__ import annotations

import time


class Timer:
    """Accumulating wall-clock timer.

    Usage::

        t = Timer()
        with t:
            work()
        print(t.elapsed)

    Re-entering accumulates, which lets callers time a phase that is spread
    over many loop iterations (e.g. all ``combine`` launches of a search).
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None, "Timer.__exit__ without __enter__"
        self.elapsed += time.perf_counter() - self._start
        self._start = None

    def reset(self) -> None:
        """Zero the accumulated time."""
        self.elapsed = 0.0
        self._start = None
