"""Wall-clock timing helper used by the search driver and benchmarks."""

from __future__ import annotations

import threading
import time


class Timer:
    """Accumulating wall-clock timer.

    Usage::

        t = Timer()
        with t:
            work()
        print(t.elapsed)

    Re-entering accumulates, which lets callers time a phase that is spread
    over many loop iterations (e.g. all ``combine`` launches of a search).

    Thread-safe: the start timestamp is thread-local (nested/concurrent
    ``with`` blocks are fine) and accumulation into :attr:`elapsed` is
    locked, so the parallel multi-device executor can charge one phase
    timer from several worker threads at once.  Under concurrency the
    accumulated value is *busy* time summed across threads, which can
    exceed wall-clock — exactly the per-phase attribution the profile
    report wants.
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._lock = threading.Lock()
        self._local = threading.local()

    def _starts(self) -> list[float]:
        starts = getattr(self._local, "starts", None)
        if starts is None:
            starts = []
            self._local.starts = starts
        return starts

    def __enter__(self) -> "Timer":
        self._starts().append(time.perf_counter())
        return self

    def __exit__(self, *exc: object) -> None:
        starts = self._starts()
        assert starts, "Timer.__exit__ without __enter__"
        delta = time.perf_counter() - starts.pop()
        with self._lock:
            self.elapsed += delta

    def reset(self) -> None:
        """Zero the accumulated time."""
        with self._lock:
            self.elapsed = 0.0
        self._local = threading.local()
