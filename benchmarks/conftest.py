"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one table or figure of the paper: it
*measures* the simulator on scaled-down workloads (absolute numbers are
CPU-simulator numbers, not GPU numbers) and *prints* the calibrated model's
projection next to the paper's reported values.  ``EXPERIMENTS.md`` records
the resulting comparison.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import Dataset, generate_random_dataset


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Print an aligned table into the captured benchmark output."""
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture(scope="session")
def bench_dataset_small() -> Dataset:
    """32 SNPs x 1024 samples — a quick functional workload."""
    return generate_random_dataset(32, 1024, seed=100)


@pytest.fixture(scope="session")
def bench_dataset_wide() -> Dataset:
    """64 SNPs x 512 samples — more blocks, same volume."""
    return generate_random_dataset(64, 512, seed=101)
