"""Ablation: XOR+POPC compatibility layer vs native AND+POPC (§3.4, §4.5).

Paper claim: on Ampere, running through the XOR+POPC + translation path
costs almost nothing (90.0 vs 90.9 tera quads/s, ~1%).  Here we run both
engines through the full measured pipeline and compare results (identical)
and wall time (same class).
"""

from repro.core.search import Epi4TensorSearch, SearchConfig

from conftest import print_table


def test_xor_vs_and_full_search(benchmark, bench_dataset_small):
    def run_both():
        results = {}
        for kind in ("and_popc", "xor_popc"):
            res = Epi4TensorSearch(
                bench_dataset_small,
                SearchConfig(block_size=8, engine_kind=kind),
            ).run()
            results[kind] = res
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1, warmup_rounds=0)
    assert results["and_popc"].solution == results["xor_popc"].solution
    print_table(
        "XOR compatibility layer vs native AND (paper: 90.0 vs 90.9, ~1%)",
        ["engine", "wall s", "result"],
        [
            [k, f"{r.wall_seconds:.3f}", str(r.best_quad)]
            for k, r in results.items()
        ],
    )
    # Same performance class: XOR path within 2x of AND on the simulator
    # (the GPU overhead is ~1%; the simulator pays extra Python-side
    # popcount bookkeeping).
    ratio = results["xor_popc"].wall_seconds / results["and_popc"].wall_seconds
    assert ratio < 2.0
