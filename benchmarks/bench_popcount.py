"""Microbenchmarks of the popcount kernels (hardware POPCNT vs byte LUT)."""

import numpy as np
import pytest

from repro.bitops.popcount import _popcount_u64_lut, popcount_rows, popcount_u64


@pytest.fixture(scope="module")
def words():
    rng = np.random.default_rng(1)
    return rng.integers(0, 2**63, size=(512, 512), dtype=np.uint64)


def test_popcount_fast(benchmark, words):
    out = benchmark(popcount_u64, words)
    assert out.shape == words.shape


def test_popcount_lut(benchmark, words):
    out = benchmark(_popcount_u64_lut, words)
    assert out.shape == words.shape


def test_popcount_rows(benchmark, words):
    out = benchmark(popcount_rows, words)
    assert out.shape == (512,)
