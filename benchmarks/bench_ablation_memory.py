"""Ablation: three-phase third-order construction vs single-phase [15] (§5).

The single-phase strategy needs ``2 * C(M,3) * 27 * 4`` bytes of device
memory; Epi4Tensor's working set is bounded by the per-sweep corners
(``8 * B^2 * M`` integers per class) plus the pairwise store.  This bench
tabulates both against the paper's GPU memory sizes, reproducing the
"restricts the type of datasets that can be processed" argument, and
measures that the pipeline actually runs where the single-phase baseline
refuses.
"""

import pytest

from repro.baselines import SinglePhaseBaseline, single_phase_memory_bytes
from repro.core.search import Epi4TensorSearch, SearchConfig
from repro.datasets import generate_random_dataset
from repro.device.specs import A100_PCIE, TITAN_RTX

from conftest import print_table


def epi4tensor_working_set_bytes(m: int, block_size: int = 32) -> int:
    """Device-resident bytes of the three-phase scheme (per class pair)."""
    # Three active 3-way sweeps of (B, B, <=M, 8) int32 corners + the
    # pairwise store (2 * M^2 * 9 int32) + dataset planes (negligible here).
    sweeps = 3 * 2 * block_size * block_size * m * 8 * 4
    pairs = 2 * m * m * 9 * 4
    return sweeps + pairs


def test_memory_scaling_table(benchmark):
    rows = []
    for m in (250, 512, 1024, 2048, 4096):
        single = single_phase_memory_bytes(m)
        ours = epi4tensor_working_set_bytes(m)
        fits_titan = "yes" if single <= TITAN_RTX.memory_gb * 1e9 else "NO"
        fits_a100 = "yes" if single <= A100_PCIE.memory_gb * 1e9 else "NO"
        rows.append(
            [
                m,
                f"{single / 1e9:.2f} GB",
                fits_titan,
                fits_a100,
                f"{ours / 1e9:.3f} GB",
            ]
        )
    print_table(
        "third-order storage: single-phase [15] vs Epi4Tensor working set",
        ["M", "single-phase", "fits 24GB", "fits 40GB", "epi4tensor"],
        rows,
    )
    # The §5 claim: at 2048 SNPs the single-phase store exceeds every GPU in
    # Table 1, while the three-phase working set stays tiny.
    assert single_phase_memory_bytes(2048) > 80e9
    assert epi4tensor_working_set_bytes(2048) < 1e9

    benchmark(epi4tensor_working_set_bytes, 4096)


def test_pipeline_runs_where_single_phase_refuses(benchmark):
    # A simulated 64 MB device: single-phase refuses at M=64, Epi4Tensor runs.
    ds = generate_random_dataset(64, 256, seed=3)
    limit = 64 * 1024 * 1024
    assert single_phase_memory_bytes(64) > limit / 1024  # sanity: nontrivial
    baseline = SinglePhaseBaseline(memory_limit_bytes=int(4e6))
    with pytest.raises(MemoryError):
        baseline.build_triplet_store(ds)

    def run():
        return Epi4TensorSearch(ds, SearchConfig(block_size=8)).run()

    res = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert res.best_score < float("inf")
