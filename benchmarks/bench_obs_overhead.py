"""Overhead check: the observability instrumentation must cost ~nothing
when disabled and stay cheap when enabled.

Three configurations of the same fixed-seed search are timed back to
back (median of repeats):

- ``off``     — default construction: the shared ``NULL_TRACER`` and a
  fresh metrics registry (metrics recording cannot be disabled; it *is*
  the accounting the result object reports, so it is part of the
  baseline by design);
- ``traced``  — a recording :class:`~repro.obs.trace.Tracer`;
- ``traced+`` — tracer plus artifact serialization (trace JSONL,
  Prometheus text, manifest JSON) to a throwaway directory.

Asserted bars:

- the no-op-tracer run stays within **2%** of itself across repeats
  (sanity that the measurement is stable enough to mean anything), and
  the recording tracer adds at most **15%** on this CPU-simulated
  workload (on a real GPU the kernels dwarf the span bookkeeping; the
  simulated kernels are plain NumPy, so this is a conservative ceiling);
- serialization of a full trace costs < 1 s.

The honest number this file prints — not asserts — is the per-span
cost: total spans recorded divided by the added wall time.

Set ``EPI4TENSOR_BENCH_SMALL=1`` for a CI-sized workload.
"""

from __future__ import annotations

import os
import statistics
import tempfile
import time
from pathlib import Path

from repro.core.search import Epi4TensorSearch, SearchConfig
from repro.datasets import generate_random_dataset
from repro.obs.exporters import export_run_artifacts
from repro.obs.manifest import build_run_manifest
from repro.obs.trace import NULL_TRACER, Tracer

from conftest import print_table

_SMALL = os.environ.get("EPI4TENSOR_BENCH_SMALL") == "1"
N_SNPS = 24 if _SMALL else 40
N_SAMPLES = 192 if _SMALL else 384
BLOCK = 8
REPEATS = 3


def _run_once(tracer):
    ds = generate_random_dataset(N_SNPS, N_SAMPLES, seed=33)
    search = Epi4TensorSearch(
        ds,
        SearchConfig(block_size=BLOCK, top_k=3),
        tracer=tracer,
    )
    start = time.perf_counter()
    result = search.run()
    elapsed = time.perf_counter() - start
    return search, result, elapsed


def _median_run(make_tracer):
    times, last = [], None
    for _ in range(REPEATS):
        last = _run_once(make_tracer())
        times.append(last[2])
    return statistics.median(times), last


def test_null_tracer_overhead_is_noise():
    base_s, _ = _median_run(lambda: NULL_TRACER)
    traced_s, (search, result, _) = _median_run(Tracer)
    tracer = search.tracer
    n_spans = len(tracer.records())
    assert n_spans > 0

    with tempfile.TemporaryDirectory() as tmp:
        ser_t0 = time.perf_counter()
        manifest = build_run_manifest(search, result)
        export_run_artifacts(
            tracer=tracer,
            metrics=search.metrics,
            manifest=manifest,
            trace_out=str(Path(tmp) / "trace.jsonl"),
            metrics_out=str(Path(tmp) / "metrics.prom"),
            manifest_out=str(Path(tmp) / "manifest.json"),
        )
        serialize_s = time.perf_counter() - ser_t0

    added = traced_s - base_s
    per_span_us = 1e6 * added / n_spans if added > 0 else 0.0
    print_table(
        "observability overhead",
        ["config", "median wall s", "vs off", "spans"],
        [
            ["off (NULL_TRACER)", f"{base_s:.3f}", "1.00x", "0"],
            [
                "traced",
                f"{traced_s:.3f}",
                f"{traced_s / base_s:.3f}x",
                str(n_spans),
            ],
            [
                "serialize artifacts",
                f"{serialize_s:.3f}",
                "-",
                f"~{per_span_us:.1f}us/span added",
            ],
        ],
    )

    # Recording tracer: generous ceiling for the CPU-simulated kernels.
    assert traced_s <= base_s * 1.15 + 0.05, (
        f"recording tracer overhead too high: {traced_s:.3f}s vs "
        f"{base_s:.3f}s baseline"
    )
    # Serializing all three artifacts is sub-second.
    assert serialize_s < 1.0
