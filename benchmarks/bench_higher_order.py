"""Ablation: interaction order 2 / 3 / 4 on the same substrate.

The paper's related art covers tensor-accelerated second/third order
[14, 16]; Epi4Tensor contributes fourth order and §6 targets higher orders.
This bench runs all three searches on one dataset and reports how the work
volume explodes with the order — the quantitative version of §1's
"depending on the interaction order ... can be very computationally
challenging".
"""

from math import comb

from repro.core.korder import search_second_order, search_third_order
from repro.core.search import Epi4TensorSearch, SearchConfig
from repro.datasets import generate_random_dataset

from conftest import print_table


def test_order_sweep(benchmark):
    ds = generate_random_dataset(24, 512, seed=17)

    def run_all():
        r2 = search_second_order(ds, block_size=8)
        r3 = search_third_order(ds, block_size=8)
        r4 = Epi4TensorSearch(ds, SearchConfig(block_size=8)).run()
        return r2, r3, r4

    r2, r3, r4 = benchmark.pedantic(run_all, rounds=1, iterations=1, warmup_rounds=0)
    rows = [
        ["2", comb(24, 2), f"{r2.tensor_ops:.2e}", f"{r2.wall_seconds:.3f}", str(r2.best_tuple)],
        ["3", comb(24, 3), f"{r3.tensor_ops:.2e}", f"{r3.wall_seconds:.3f}", str(r3.best_tuple)],
        [
            "4",
            comb(24, 4),
            f"{r4.counters.total_tensor_ops_raw:.2e}",
            f"{r4.wall_seconds:.3f}",
            str(r4.best_quad),
        ],
    ]
    print_table(
        "interaction-order sweep (24 SNPs x 512 samples)",
        ["order", "combos", "tensor ops", "wall s", "best"],
        rows,
    )
    assert r2.tensor_ops < r3.tensor_ops < r4.counters.total_tensor_ops_raw


def test_combination_growth(benchmark):
    """§1 context: combinations per order at the paper's dataset sizes."""

    def table():
        return {
            (m, k): comb(m, k) for m in (256, 2048) for k in (2, 3, 4)
        }

    counts = benchmark(table)
    print_table(
        "combinations to evaluate",
        ["M", "k=2", "k=3", "k=4"],
        [
            [m, counts[(m, 2)], counts[(m, 3)], counts[(m, 4)]]
            for m in (256, 2048)
        ],
    )
    # Each added order multiplies the combination count by ~M/k.
    assert counts[(2048, 4)] / counts[(2048, 2)] > 1e5
    assert counts[(2048, 4)] == 730862190080  # the §4.3 figure
