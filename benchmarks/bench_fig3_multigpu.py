"""Fig. 3: multi-GPU performance and strong scaling on S3 (8x A100 SXM4).

Model projections of the full grid with the paper's anchors (speedups
1.98x / 3.79x / 7.11x, headline 835.4 tera quads/s, 28947 TOPS), plus a
measured functional multi-device run verifying the dynamic schedule
partitions work correctly at any device count.
"""

from repro.core.search import Epi4TensorSearch, SearchConfig
from repro.device.specs import A100_SXM4
from repro.perfmodel import predict_multi_gpu
from repro.perfmodel.figures import fig3_grid

from conftest import print_table

PAPER_SPEEDUPS = {2: 1.98, 4: 3.79, 8: 7.11}


def test_fig3_model_grid(benchmark):
    rows = [
        [
            r.n_gpus,
            r.n_snps,
            r.n_samples,
            f"{r.tera_quads_per_second:.1f}",
            f"{r.speedup:.2f}",
            PAPER_SPEEDUPS.get(r.n_gpus, "") if (r.n_snps, r.n_samples) == (4096, 524288) else "",
            f"{r.avg_tops:.0f}",
            f"{r.hours:.2f}",
        ]
        for r in fig3_grid()
    ]
    print_table(
        "Fig. 3 (model) — S3 scaling; paper headline: 835.4 tera quads/s, "
        "28947 TOPS, 14.5h -> ~2h",
        ["gpus", "M", "N", "tera-q/s", "speedup", "paper", "TOPS", "hours"],
        rows,
    )

    def grid():
        return fig3_grid()

    assert len(benchmark(grid)) == 24


def test_fig3_scaling_improves_with_dataset_size(benchmark):
    """The paper's observation: strong scaling improves for larger M."""

    def speedups():
        return {
            m: predict_multi_gpu(A100_SXM4, 8, m, 524288, 32).speedup_vs_single
            for m in (1024, 2048, 4096)
        }

    s = benchmark(speedups)
    assert s[1024] <= s[2048] <= s[4096]


def test_fig3_measured_multi_device_run(benchmark, bench_dataset_wide):
    """Functional multi-device execution: same result, work partitioned."""

    def run():
        return [
            Epi4TensorSearch(
                bench_dataset_wide,
                SearchConfig(block_size=8),
                spec=A100_SXM4,
                n_gpus=g,
            ).run()
            for g in (1, 4)
        ]

    single, multi = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert single.solution == multi.solution
    loads = [c.total_tensor_ops_raw for c in multi.per_device_counters]
    print_table(
        "measured per-device tensor-op loads (dynamic schedule)",
        ["device", "tensor ops", "share"],
        [
            [i, f"{load:.3e}", f"{100 * load / sum(loads):.1f}%"]
            for i, load in enumerate(loads)
        ],
    )
    assert min(loads) > 0
