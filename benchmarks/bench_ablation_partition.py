"""Ablation: outer-loop vs sample-range multi-GPU partitioning (§4.6).

The paper evaluated alternative parallelization schemes and kept the
outer-loop dynamic schedule; it predicts sample division "is expected to
negatively impact the performance, unless processing datasets with
significantly more samples".  Measured part: both schemes produce identical
results and conserve total work.  Model part: the throughput gap and its
narrowing with sample count.
"""

from repro.core.search import Epi4TensorSearch, SearchConfig
from repro.datasets import generate_random_dataset
from repro.device.specs import A100_SXM4
from repro.perfmodel import predict_multi_gpu

from conftest import print_table


def test_model_partition_comparison(benchmark):
    def grid():
        out = {}
        for n in (262144, 524288, 4 * 524288, 16 * 524288):
            outer = predict_multi_gpu(A100_SXM4, 8, 2048, n, 32)
            samples = predict_multi_gpu(
                A100_SXM4, 8, 2048, n, 32, partition="samples"
            )
            out[n] = (
                outer.tera_quads_per_second_scaled,
                samples.tera_quads_per_second_scaled,
            )
        return out

    results = benchmark(grid)
    print_table(
        "outer-loop vs sample partitioning, 8x A100 SXM4 (model)",
        ["N", "outer", "samples", "samples/outer"],
        [
            [n, f"{o:.1f}", f"{s:.1f}", f"{s / o:.2f}"]
            for n, (o, s) in results.items()
        ],
    )
    ratios = [s / o for o, s in results.values()]
    # Outer partitioning wins at the evaluated sizes; the gap narrows as
    # samples grow — exactly the paper's prediction.
    assert all(r < 1.0 for r in ratios[:2])
    assert ratios == sorted(ratios)


def test_measured_partition_equivalence(benchmark):
    ds = generate_random_dataset(16, 512, seed=23)

    def run_both():
        outer = Epi4TensorSearch(
            ds, SearchConfig(block_size=4), spec=A100_SXM4, n_gpus=4
        ).run()
        samples = Epi4TensorSearch(
            ds,
            SearchConfig(block_size=4, partition="samples"),
            spec=A100_SXM4,
            n_gpus=4,
        ).run()
        return outer, samples

    outer, samples = benchmark.pedantic(
        run_both, rounds=1, iterations=1, warmup_rounds=0
    )
    assert outer.solution == samples.solution
    outer_loads = [c.total_tensor_ops_raw for c in outer.per_device_counters]
    sample_loads = [c.total_tensor_ops_raw for c in samples.per_device_counters]
    print_table(
        "per-device tensor-op loads",
        ["device", "outer partition", "sample partition"],
        [[i, f"{o:.2e}", f"{s:.2e}"] for i, (o, s) in enumerate(zip(outer_loads, sample_loads))],
    )
    assert sum(outer_loads) == sum(sample_loads)
