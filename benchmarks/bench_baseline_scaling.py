"""Baseline scaling shapes behind Table 2's metric.

The "quads/s scaled to sample size" metric rewards implementations whose
per-quad cost grows *sub-linearly* with N — bit-packed methods process 64
samples per word op, so their scaled throughput rises with N until other
costs dominate, while the dense baseline's scaled throughput is flat.
This bench measures both shapes on the executed implementations.
"""

import time

from repro.baselines import BitEpiBaseline, NaiveBaseline
from repro.datasets import generate_random_dataset

from conftest import print_table


def _scaled_rate(search_fn, ds, n_quads_hint: float) -> float:
    start = time.perf_counter()
    search_fn(ds)
    elapsed = time.perf_counter() - start
    return n_quads_hint * ds.n_samples / elapsed


def test_bitwise_baseline_scales_with_samples(benchmark):
    from math import comb

    quads = comb(10, 4)

    def sweep():
        out = {}
        for n in (256, 1024, 4096):
            ds = generate_random_dataset(10, n, seed=31)
            out[n] = {
                "bitepi": _scaled_rate(BitEpiBaseline().search, ds, quads),
                "naive": _scaled_rate(NaiveBaseline().search, ds, quads),
            }
        return out

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    print_table(
        "scaled throughput (quad-samples/s) vs N",
        ["N", "bitepi (bitwise)", "naive (dense)"],
        [
            [n, f"{r['bitepi']:.3e}", f"{r['naive']:.3e}"]
            for n, r in rates.items()
        ],
    )
    # Bit-packing amortizes: scaled throughput must grow substantially
    # from 256 to 4096 samples for the bitwise method...
    assert rates[4096]["bitepi"] > 2 * rates[256]["bitepi"]
    # ...and win over the dense method once words are full (at tiny N the
    # dense histogram's lower per-quad overhead can still lead).
    assert rates[4096]["bitepi"] > rates[4096]["naive"]
