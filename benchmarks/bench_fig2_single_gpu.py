"""Fig. 2: single-GPU performance on systems S1 (Titan RTX) and S2 (A100).

Two parts:

1. **Model projection** of the paper's full grid, printed next to the
   anchor values the paper quotes in §4.5 (who wins, by how much, where
   saturation sets in).
2. **Measured** simulator searches over a scaled-down grid, checking the
   *shape* claims hold on the executed pipeline too: AND+POPC and XOR+POPC
   deliver the same throughput class, and throughput (scaled quads per
   second) grows with dataset size.
"""

import pytest

from repro.core.search import Epi4TensorSearch, SearchConfig
from repro.datasets import generate_random_dataset
from repro.device.specs import A100_PCIE, TITAN_RTX
from repro.perfmodel import predict_search
from repro.perfmodel.figures import FIG2_SAMPLES, FIG2_SNPS

from conftest import print_table

#: Paper anchors from §4.5 (system, M, N) -> tera quads/s.
PAPER_ANCHORS = {
    ("S1", 2048, 262144): 27.8,
    ("S2", 2048, 262144): 78.78,
    ("S2", 2048, 524288): 90.9,
}


def test_fig2_model_grid(benchmark):
    """Project the full Fig. 2 grid; verify anchors and print it."""
    rows = []
    for system, spec in (("S1", TITAN_RTX), ("S2", A100_PCIE)):
        for m in FIG2_SNPS:
            for n in FIG2_SAMPLES:
                pred = predict_search(spec, m, n, 32)
                paper = PAPER_ANCHORS.get((system, m, n), "")
                rows.append(
                    [
                        system,
                        m,
                        n,
                        f"{pred.tera_quads_per_second_scaled:.2f}",
                        f"{pred.avg_tops:.0f}",
                        paper,
                    ]
                )
    print_table(
        "Fig. 2 (model) — tera quads/s scaled to samples",
        ["sys", "M", "N", "model", "avgTOPS", "paper"],
        rows,
    )

    def full_grid():
        return [
            predict_search(spec, m, n, 32).tera_quads_per_second_scaled
            for spec in (TITAN_RTX, A100_PCIE)
            for m in FIG2_SNPS
            for n in FIG2_SAMPLES
        ]

    grid = benchmark(full_grid)
    assert len(grid) == 2 * len(FIG2_SNPS) * len(FIG2_SAMPLES)


@pytest.mark.parametrize("engine_kind", ["and_popc", "xor_popc"])
def test_fig2_measured_engines(benchmark, engine_kind, bench_dataset_small):
    """Measured search throughput per engine (scaled-down workload)."""
    config = SearchConfig(block_size=8, engine_kind=engine_kind)

    def run():
        return Epi4TensorSearch(bench_dataset_small, config).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print(
        f"\nmeasured [{engine_kind}]: "
        f"{result.quads_per_second_scaled:.3e} quad-samples/s "
        f"(simulator wall clock)"
    )
    assert result.best_score < float("inf")


def test_fig2_measured_throughput_grows_with_samples(benchmark):
    """Shape check: scaled throughput improves with N (amortized overheads),
    the simulator-side analogue of the paper's saturation curve."""

    def sweep():
        out = {}
        for n in (256, 1024, 4096):
            ds = generate_random_dataset(24, n, seed=5)
            res = Epi4TensorSearch(ds, SearchConfig(block_size=8)).run()
            out[n] = res.quads_per_second_scaled
        return out

    rates = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    print_table(
        "measured scaled-throughput vs N (simulator)",
        ["N", "quad-samples/s"],
        [[n, f"{r:.3e}"] for n, r in rates.items()],
    )
    assert rates[4096] > rates[256]
