"""Ablation: block size B (§4.4/§4.5).

The paper's trade-off: larger blocks enlarge the GEMM operands (better
tensor throughput on real hardware) but evaluate more repeated quads.  The
measured part shows the wasted-work growth directly; the model part shows
where B=64 pays off (large M, small N) and where it does not.
"""

import pytest

from repro.core.blocks import useful_ratio
from repro.core.search import Epi4TensorSearch, SearchConfig
from repro.datasets import generate_random_dataset
from repro.device.specs import A100_PCIE
from repro.perfmodel import predict_search

from conftest import print_table


def test_model_b64_helps_large_m_small_n(benchmark):
    """§4.5: B=64 pays off most at 2048 SNPs x 32768 samples."""

    def grid():
        out = {}
        for m in (256, 2048):
            for n in (32768, 262144):
                p32 = predict_search(A100_PCIE, m, n, 32)
                p64 = predict_search(A100_PCIE, m, n, 64)
                out[(m, n)] = (
                    p64.tera_quads_per_second_scaled
                    / p32.tera_quads_per_second_scaled
                )
        return out

    gains = benchmark(grid)
    print_table(
        "model: B=64 vs B=32 throughput ratio",
        ["M", "N", "B64/B32"],
        [[m, n, f"{g:.3f}"] for (m, n), g in gains.items()],
    )
    # The extreme case of the paper: gain is maximal at (2048, 32768)
    # relative to the (256, 262144) corner.
    assert gains[(2048, 32768)] > gains[(256, 262144)]


@pytest.mark.parametrize("block_size", [4, 8, 16])
def test_measured_block_size(benchmark, block_size, bench_dataset_small):
    """Measured: same result at any B; wasted work grows with B."""

    def run():
        return Epi4TensorSearch(
            bench_dataset_small, SearchConfig(block_size=block_size)
        ).run()

    res = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    print(
        f"\nB={block_size}: useful={100 * res.block_scheme.useful_fraction:.1f}%, "
        f"tensor ops={res.counters.total_tensor_ops_raw:.3e}"
    )
    assert res.best_score < float("inf")


def test_useful_ratio_decreases_with_block_size(benchmark):
    def ratios():
        return [useful_ratio(1024, b) for b in (8, 16, 32, 64, 128)]

    values = benchmark(ratios)
    assert values == sorted(values, reverse=True)
