"""Table 1: the three target systems and their derived peak throughputs.

Prints the system catalog (with the §4.1 peak binary-TOPS derivation) and
benchmarks the device-layer accounting overhead to show it is negligible
relative to kernel work.
"""

from repro.datasets import encode_dataset
from repro.device import VirtualGPU
from repro.device.specs import A100_PCIE
from repro.perfmodel.figures import table1_rows

from conftest import print_table


def test_table1_catalog(benchmark, bench_dataset_small):
    rows = [
        [
            r["system"],
            r["gpu"],
            r["arch"],
            r["tensor_cores"],
            f"{r['boost_mhz']:.0f}",
            f"{r['memory_gb']:.0f}GB",
            f"{r['peak_binary_tops']:.0f}",
        ]
        for r in table1_rows()
    ]
    print_table(
        "Table 1 — target systems (paper peaks: 2088 / 4992 / 8x4992 TOPS)",
        ["sys", "gpu", "arch", "tcores", "MHz", "mem", "peak TOPS"],
        rows,
    )

    enc = encode_dataset(bench_dataset_small, block_size=8)

    def launch_round():
        gpu = VirtualGPU(A100_PCIE)
        gpu.transfer_to_device(enc.nbytes)
        wx = gpu.launch_combine(enc.controls, 0, 8, 8)
        yz = gpu.launch_combine(enc.controls, 16, 24, 8)
        gpu.launch_tensor4(wx, yz, 8)
        return gpu.counters.total_tensor_ops_raw

    ops = benchmark(launch_round)
    assert ops > 0
