"""Ablation: round-operand caching x host-thread parallelism.

Sweeps the two hot-path knobs introduced for production runs — the
byte-bounded operand cache (``cache_mb``: off -> tight -> unbounded) and
the host worker-thread count (1 -> 4) driving 4 virtual GPUs — on a
>=64-SNP dense workload, and reports wall seconds, cache hit rate,
executed tensor-op volume and ``quads_per_second_scaled``.  Every cell is
asserted bit-identical to the cold sequential reference.

Results append to ``BENCH_caching.json`` next to this file, one record per
invocation, so regressions are visible across commits.

Honesty note on the speedup column: the *executed* 3-way/combine volume
drops by >5x with the cache on (that is what a real GPU saves), but the
CPU-simulated wall clock is dominated by ``applyScore`` (per-quad unique,
not cacheable) and the host threads contend for the GIL.  The >=1.5x
wall-clock bar is therefore asserted only when the host has >=2 physical
cores; on a single-core host the assertion falls back to the hit-rate and
executed-volume bars, and the wall-clock ratio is merely reported.

Set ``EPI4TENSOR_BENCH_SMALL=1`` for a CI-sized workload.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.search import Epi4TensorSearch, SearchConfig
from repro.datasets import generate_random_dataset
from repro.perfmodel.workload import search_workload

from conftest import print_table

_SMALL = os.environ.get("EPI4TENSOR_BENCH_SMALL") == "1"
N_SNPS = 32 if _SMALL else 64
N_SAMPLES = 256 if _SMALL else 512
BLOCK = 8
N_GPUS = 4
RESULTS_PATH = Path(__file__).with_name("BENCH_caching.json")


def _host_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _run(ds, cache_mb, host_threads):
    config = SearchConfig(
        block_size=BLOCK,
        cache_mb=cache_mb,
        host_threads=host_threads,
        top_k=5,
    )
    search = Epi4TensorSearch(ds, config, n_gpus=N_GPUS)
    start = time.perf_counter()
    result = search.run()
    wall = time.perf_counter() - start
    return result, wall


def test_caching_and_threading_ablation(benchmark):
    ds = generate_random_dataset(N_SNPS, N_SAMPLES, seed=42)

    cells = [
        ("off", None, 1),
        ("tight", 0.05, 1),
        ("unbounded", float("inf"), 1),
        ("unbounded", float("inf"), 2),
        ("unbounded", float("inf"), 4),
    ]

    def sweep():
        out = []
        for label, cache_mb, threads in cells:
            out.append((label, cache_mb, threads, *_run(ds, cache_mb, threads)))
        return out

    runs = benchmark.pedantic(sweep, rounds=1, iterations=1)

    reference = runs[0][3]
    rows = []
    records = []
    base_wall = runs[0][4]
    for label, cache_mb, threads, result, wall in runs:
        # Hard correctness bar: bit-identical to the cold sequential run.
        assert result.solution == reference.solution
        assert result.top_solutions == reference.top_solutions
        stats = result.cache_stats
        hit_rate = stats.hit_rate if stats else 0.0
        tensor3 = result.counters.tensor_ops_raw["tensor3"]
        speedup = base_wall / wall if wall > 0 else float("inf")
        rows.append(
            [
                f"{label}/{threads}t",
                f"{wall:8.2f}",
                f"{100 * hit_rate:5.1f}%",
                f"{tensor3:.2e}",
                f"{result.quads_per_second_scaled:.3e}",
                f"{speedup:5.2f}x",
            ]
        )
        records.append(
            {
                "cache": label,
                "cache_mb": None if cache_mb is None else float(cache_mb),
                "host_threads": threads,
                "wall_seconds": wall,
                "hit_rate": hit_rate,
                "tensor3_ops_executed": tensor3,
                "quads_per_second_scaled": result.quads_per_second_scaled,
                "speedup_vs_off": speedup,
            }
        )

    print_table(
        f"operand cache x host threads (M={N_SNPS}, N={N_SAMPLES}, "
        f"B={BLOCK}, {N_GPUS} virtual GPUs, {_host_cores()} host cores)",
        ["config", "wall s", "hits", "tensor3 ops", "quads/s", "speedup"],
        rows,
    )

    # --- assertions ------------------------------------------------------ #
    unbounded_1t = records[2]
    assert unbounded_1t["hit_rate"] > 0.5, "cache must serve >50% of lookups"

    # Executed 3-way volume must collapse to the analytic unique-pair total.
    wl = search_workload(N_SNPS, N_SAMPLES, BLOCK, cache_operands=True)
    assert unbounded_1t["tensor3_ops_executed"] == wl.tensor3_ops
    full = search_workload(N_SNPS, N_SAMPLES, BLOCK)
    # The cut deepens with the block count (more enclosing triples per
    # pair): >4x at nb=4 (CI-small), >5x at nb>=8 (full run).
    cut_bar = 4 if _SMALL else 5
    assert full.tensor3_ops > cut_bar * wl.tensor3_ops

    best = max(r["speedup_vs_off"] for r in records[1:])
    if _host_cores() >= 2:
        assert best >= 1.5, (
            f"expected >=1.5x wall-clock speedup with caching + threads on a "
            f"{_host_cores()}-core host, got {best:.2f}x"
        )

    # --- persist --------------------------------------------------------- #
    history = []
    if RESULTS_PATH.exists():
        history = json.loads(RESULTS_PATH.read_text())
    history.append(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "n_snps": N_SNPS,
            "n_samples": N_SAMPLES,
            "block_size": BLOCK,
            "n_gpus": N_GPUS,
            "host_cores": _host_cores(),
            "small": _SMALL,
            "cells": records,
        }
    )
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n")
