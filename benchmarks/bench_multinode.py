"""§6 ongoing work: projected multi-node scaling + §3.6 broadcast claim.

Extends the calibrated model one level up (nodes of 8x A100 SXM4) and
quantifies the §3.6 statement that dataset distribution strategy cannot
matter at search scale.
"""

from repro.device.broadcast import (
    broadcast_host_serial,
    broadcast_p2p_allgather,
    broadcast_runtime_share,
)
from repro.perfmodel.multinode import predict_multi_node
from repro.perfmodel.workload import search_workload

from conftest import print_table


def test_multi_node_projection(benchmark):
    def grid():
        return {
            nodes: predict_multi_node(nodes, 8, 4096, 524288, 32)
            for nodes in (1, 2, 4, 8, 16)
        }

    preds = benchmark(grid)
    print_table(
        "projected multi-node scaling (8x A100 SXM4 per node, 4096x524288)",
        ["nodes", "gpus", "tera-q/s", "speedup", "par.eff", "hours"],
        [
            [
                n,
                p.total_gpus,
                f"{p.tera_quads_per_second_scaled:.0f}",
                f"{p.speedup_vs_single_gpu:.1f}",
                f"{p.parallel_efficiency:.2f}",
                f"{p.seconds / 3600:.3f}",
            ]
            for n, p in preds.items()
        ],
    )
    # Scaling continues across nodes but efficiency decays toward the
    # outer-loop granularity limit (128 iterations for M=4096, B=32).
    assert preds[8].speedup_vs_single_gpu > preds[2].speedup_vs_single_gpu
    assert preds[16].parallel_efficiency < preds[2].parallel_efficiency


def test_broadcast_strategies(benchmark):
    wl = search_workload(4096, 524288, 32)

    def estimates():
        return (
            broadcast_host_serial(wl.transfer_bytes, 8),
            broadcast_p2p_allgather(wl.transfer_bytes, 8),
        )

    serial, p2p = benchmark(estimates)
    pred = predict_multi_node(1, 8, 4096, 524288, 32)
    shares = broadcast_runtime_share(wl.transfer_bytes, 8, pred.seconds)
    print_table(
        "§3.6 dataset distribution (537 MB dataset, 8 GPUs)",
        ["strategy", "seconds", "share of runtime"],
        [
            ["host serial (paper default)", f"{serial.seconds:.3f}", f"{100 * shares['host_serial']:.4f}%"],
            ["PCIe + NVLink all-gather", f"{p2p.seconds:.3f}", f"{100 * shares['p2p_allgather']:.4f}%"],
        ],
    )
    # The paper's claim: the optimization "will not affect the overall
    # runtime" — both shares are noise.
    assert shares["host_serial"] < 0.001
    assert shares["p2p_allgather"] < 0.001
