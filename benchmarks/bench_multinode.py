"""§6 ongoing work: multi-node scaling — modelled *and* measured.

Two layers:

- the calibrated model extended one level up (nodes of 8x A100 SXM4)
  plus the §3.6 statement that dataset distribution strategy cannot
  matter at search scale;
- the **real sharded runner** (``repro.dist``): a matrix of shard
  counts/strategies executed end to end, each cell's measured per-shard
  schedule and tensor-op counters checked against
  :func:`repro.perfmodel.multinode.predict_shard_schedule` and the
  workload closed forms, and every cell's merged ``top_k_sha256``
  required to be one and the same digest.

Results append to ``BENCH_multinode.json`` next to this file.
Set ``EPI4TENSOR_BENCH_SMALL=1`` for a CI-sized workload.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.search import Epi4TensorSearch, SearchConfig
from repro.datasets import generate_random_dataset
from repro.device.broadcast import (
    broadcast_host_serial,
    broadcast_p2p_allgather,
    broadcast_runtime_share,
)
from repro.dist import run_sharded
from repro.obs.manifest import solutions_digest
from repro.perfmodel.multinode import predict_multi_node, predict_shard_schedule
from repro.perfmodel.workload import search_workload

from conftest import print_table

_SMALL = os.environ.get("EPI4TENSOR_BENCH_SMALL") == "1"
N_SNPS = 32 if _SMALL else 48   # nb = 8 / 12 outer iterations at B=4
N_SAMPLES = 96 if _SMALL else 128
BLOCK = 4
RESULTS_PATH = Path(__file__).with_name("BENCH_multinode.json")

#: (label, shard count, strategy, extra config, real worker processes?)
SHARD_CELLS = [
    ("1-shard", 1, "contiguous", {}, False),
    ("2-shard", 2, "contiguous", {}, False),
    ("4-shard", 4, "contiguous", {}, False),
    ("4-shard strided", 4, "strided", {}, False),
    ("2-shard cache-off", 2, "contiguous", {"cache_triplets": False}, False),
    ("2-shard spawn", 2, "contiguous", {}, True),
]


def test_multi_node_projection(benchmark):
    def grid():
        return {
            nodes: predict_multi_node(nodes, 8, 4096, 524288, 32)
            for nodes in (1, 2, 4, 8, 16)
        }

    preds = benchmark(grid)
    print_table(
        "projected multi-node scaling (8x A100 SXM4 per node, 4096x524288)",
        ["nodes", "gpus", "tera-q/s", "speedup", "par.eff", "hours"],
        [
            [
                n,
                p.total_gpus,
                f"{p.tera_quads_per_second_scaled:.0f}",
                f"{p.speedup_vs_single_gpu:.1f}",
                f"{p.parallel_efficiency:.2f}",
                f"{p.seconds / 3600:.3f}",
            ]
            for n, p in preds.items()
        ],
    )
    # Scaling continues across nodes but efficiency decays toward the
    # outer-loop granularity limit (128 iterations for M=4096, B=32).
    assert preds[8].speedup_vs_single_gpu > preds[2].speedup_vs_single_gpu
    assert preds[16].parallel_efficiency < preds[2].parallel_efficiency


def test_broadcast_strategies(benchmark):
    wl = search_workload(4096, 524288, 32)

    def estimates():
        return (
            broadcast_host_serial(wl.transfer_bytes, 8),
            broadcast_p2p_allgather(wl.transfer_bytes, 8),
        )

    serial, p2p = benchmark(estimates)
    pred = predict_multi_node(1, 8, 4096, 524288, 32)
    shares = broadcast_runtime_share(wl.transfer_bytes, 8, pred.seconds)
    print_table(
        "§3.6 dataset distribution (537 MB dataset, 8 GPUs)",
        ["strategy", "seconds", "share of runtime"],
        [
            ["host serial (paper default)", f"{serial.seconds:.3f}", f"{100 * shares['host_serial']:.4f}%"],
            ["PCIe + NVLink all-gather", f"{p2p.seconds:.3f}", f"{100 * shares['p2p_allgather']:.4f}%"],
        ],
    )
    # The paper's claim: the optimization "will not affect the overall
    # runtime" — both shares are noise.
    assert shares["host_serial"] < 0.001
    assert shares["p2p_allgather"] < 0.001


def test_sharded_runner_measured_vs_model(benchmark, tmp_path):
    ds = generate_random_dataset(N_SNPS, N_SAMPLES, seed=42)
    reference = Epi4TensorSearch(
        ds, SearchConfig(block_size=BLOCK, top_k=5)
    ).run()
    reference_digest = solutions_digest(reference.top_solutions)

    def sweep():
        runs = []
        for label, n_shards, strategy, extra, spawn in SHARD_CELLS:
            config = SearchConfig(block_size=BLOCK, top_k=5, **extra)
            out_dir = tmp_path / label.replace(" ", "_")
            start = time.perf_counter()
            merged = run_sharded(
                ds,
                config,
                n_shards=n_shards,
                out_dir=out_dir,
                strategy=strategy,
                inline=not spawn,
            )
            runs.append((label, merged, time.perf_counter() - start))
        return runs

    runs = benchmark.pedantic(sweep, rounds=1, iterations=1)

    nb = reference.block_scheme.nb
    rows, records = [], []
    for (label, n_shards, strategy, extra, spawn), (
        _,
        merged,
        wall,
    ) in zip(SHARD_CELLS, runs):
        shard_records = []
        max_rel_err = 0.0
        for artifact in merged.shards:
            iterations = [int(w) for w in artifact["shard"]["iterations"]]
            predicted = predict_shard_schedule(
                iterations, nb, BLOCK, N_SAMPLES, n_gpus=1
            )
            measured = artifact["schedule"]
            # The measured dynamic schedule must be the predicted one.
            assert measured["assignment"] == predicted.assignment, (
                f"{label}: shard {artifact['shard']['index']} schedule "
                "diverged from the perfmodel"
            )
            rel_err = abs(
                measured["total_cost"] - predicted.total_cost
            ) / max(predicted.total_cost, 1.0)
            max_rel_err = max(max_rel_err, rel_err)
            counters = artifact["counters"]
            model = artifact["model"]
            # Tensor4 volume is cache-invariant: exact in every cell.
            t4 = counters["tensor_ops_by_kernel"].get("tensor4", 0)
            assert t4 == model["tensor4_ops"], label
            # Total raw tensor ops match the closed form exactly when the
            # triplet cache is off (the guaranteed case; with the cache
            # on, reuse could in principle shift executed volume).
            if extra.get("cache_triplets", True) is False:
                assert counters["tensor_ops_raw"] == model["tensor_ops"], label
            shard_records.append(
                {
                    "index": artifact["shard"]["index"],
                    "iterations": iterations,
                    "measured_total_cost": measured["total_cost"],
                    "modeled_total_cost": predicted.total_cost,
                    "measured_tensor_ops": counters["tensor_ops_raw"],
                    "modeled_tensor_ops": model["tensor_ops"],
                    "tensor4_ops": model["tensor4_ops"],
                }
            )
        assert max_rel_err < 1e-9, f"{label}: cost drift {max_rel_err}"
        rows.append(
            [
                label,
                n_shards,
                strategy,
                "spawn" if spawn else "inline",
                f"{wall:7.2f}",
                merged.top_k_sha256[:12],
            ]
        )
        records.append(
            {
                "config": label,
                "n_shards": n_shards,
                "strategy": strategy,
                "spawn": spawn,
                "wall_seconds": wall,
                "top_k_sha256": merged.top_k_sha256,
                "shards": shard_records,
            }
        )

    print_table(
        f"sharded runner, measured vs model (M={N_SNPS}, N={N_SAMPLES}, "
        f"B={BLOCK}, nb={nb})",
        ["config", "shards", "strategy", "mode", "wall s", "digest"],
        rows,
    )

    # Bit-identity: every cell — any shard count, strategy, cache mode,
    # inline or spawn — produces the unsharded run's exact digest.
    digests = {rec["top_k_sha256"] for rec in records}
    assert digests == {reference_digest}, digests

    # --- persist --------------------------------------------------------- #
    history = []
    if RESULTS_PATH.exists():
        history = json.loads(RESULTS_PATH.read_text())
    history.append(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "n_snps": N_SNPS,
            "n_samples": N_SAMPLES,
            "block_size": BLOCK,
            "nb": nb,
            "small": _SMALL,
            "top_k_sha256": reference_digest,
            "cells": records,
        }
    )
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n")
