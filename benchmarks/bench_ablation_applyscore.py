"""Ablation: the fused ``applyScore`` hot path vs the dense legacy path.

Four configurations of the same workload:

- ``dense``          — the legacy full-grid completion + scoring
  (``score_path="dense"``), the pre-fusion baseline;
- ``fused``          — mask-first compaction + staged-lgamma scorer, no
  operand cache (every round completes its own third-order tables);
- ``fused+triplets`` — adds the cross-round completed-triplet cache
  (unbounded budget), so each block triple is completed once per sweep;
- ``fused+autotune`` — adds the calibration pass that picks
  ``max_chunk_cells`` on the actual dataset.

Reported per cell: total wall, the ``score``-phase wall (the applyScore
cost this PR attacks), the compaction ratio, the full3 cache hit rate and
the executed score-cell volume.  Hard bars:

- every cell's ranked top-k digest (``top_k_sha256``) is identical —
  the optimization must not move a single result bit;
- the fused ``score`` phase is >=1.5x faster than dense;
- the compaction ratio equals the block scheme's unique fraction;
- with the triplet cache on, ``complete_threeway`` executions collapse
  from O(role slots per round) to O(unique block triples).

Results append to ``BENCH_applyscore.json`` next to this file.
Set ``EPI4TENSOR_BENCH_SMALL=1`` for a CI-sized workload.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.search import Epi4TensorSearch, SearchConfig
from repro.obs.manifest import solutions_digest
from repro.datasets import generate_random_dataset
from repro.perfmodel.workload import search_workload, unique_block_triples

from conftest import print_table

_SMALL = os.environ.get("EPI4TENSOR_BENCH_SMALL") == "1"
N_SNPS = 32 if _SMALL else 48
N_SAMPLES = 128 if _SMALL else 256
BLOCK = 8
RESULTS_PATH = Path(__file__).with_name("BENCH_applyscore.json")

CELLS = [
    ("dense", dict(score_path="dense")),
    ("fused", dict(cache_triplets=False)),
    ("fused+triplets", dict(cache_mb=float("inf"))),
    ("fused+autotune", dict(cache_mb=float("inf"), autotune=True)),
]


def _run(ds, extra):
    # prune=False: this ablation's closed-form cell/compaction asserts
    # require the full compacted volume to execute (the bound gate has
    # its own ablation, bench_ablation_pruning.py).
    config = SearchConfig(block_size=BLOCK, top_k=5, prune=False, **extra)
    search = Epi4TensorSearch(ds, config)
    start = time.perf_counter()
    result = search.run()
    wall = time.perf_counter() - start
    return search, result, wall


def test_applyscore_ablation(benchmark):
    ds = generate_random_dataset(N_SNPS, N_SAMPLES, seed=42)

    def sweep():
        return [(label, *_run(ds, extra)) for label, extra in CELLS]

    runs = benchmark.pedantic(sweep, rounds=1, iterations=1)

    digests = {label: solutions_digest(r.top_solutions) for label, _, r, _ in runs}
    rows, records = [], []
    dense_score_wall = runs[0][2].phase_seconds["score"]
    for label, search, result, wall in runs:
        m = search.metrics
        score_wall = result.phase_seconds["score"]
        positions = m.total("epi4_applyscore_positions_total")
        valid = m.total("epi4_applyscore_valid_total")
        compaction = valid / positions if positions else None
        full3_exec = m.total("epi4_operand_executed_total", kind="full3")
        full3_srv = m.total("epi4_operand_cache_served_total", kind="full3")
        full3_req = full3_exec + full3_srv
        hit_rate = full3_srv / full3_req if full3_req else 0.0
        phase_speedup = dense_score_wall / score_wall if score_wall else 0.0
        rows.append(
            [
                label,
                f"{wall:7.2f}",
                f"{score_wall:7.2f}",
                f"{phase_speedup:5.2f}x",
                "-" if compaction is None else f"{100 * compaction:5.1f}%",
                f"{100 * hit_rate:5.1f}%",
                f"{result.counters.score_cells:.2e}",
            ]
        )
        records.append(
            {
                "config": label,
                "wall_seconds": wall,
                "score_phase_seconds": score_wall,
                "score_phase_speedup_vs_dense": phase_speedup,
                "compaction_ratio": compaction,
                "full3_executed": full3_exec,
                "full3_cache_served": full3_srv,
                "full3_hit_rate": hit_rate,
                "score_cells_executed": result.counters.score_cells,
                "top_k_sha256": digests[label],
            }
        )

    print_table(
        f"applyScore path ablation (M={N_SNPS}, N={N_SAMPLES}, B={BLOCK})",
        ["config", "wall s", "score s", "phase x", "compact", "full3 hits", "cells"],
        rows,
    )

    # --- assertions ------------------------------------------------------ #
    # Bit-identity: the optimization may not move a single ranked result.
    assert len(set(digests.values())) == 1, digests

    scheme = runs[0][2].block_scheme
    wl = search_workload(N_SNPS, N_SAMPLES, BLOCK)

    dense_rec, fused_rec, triplets_rec, autotune_rec = records
    # Dense accounting stays on the legacy full-grid volume; the fused
    # paths execute exactly the compacted (= unique) cell volume.
    assert dense_rec["score_cells_executed"] == wl.score_cells_dense
    for rec in (fused_rec, triplets_rec, autotune_rec):
        assert rec["score_cells_executed"] == wl.score_cells
        assert rec["compaction_ratio"] == scheme.useful_fraction

    # The headline bar: >=1.5x applyScore-phase reduction.
    for rec in (fused_rec, triplets_rec, autotune_rec):
        assert rec["score_phase_speedup_vs_dense"] >= 1.5, rec

    # Cross-round reuse: completions collapse to unique block triples.
    nb = scheme.n_snps // BLOCK
    assert triplets_rec["full3_executed"] == 2 * unique_block_triples(nb)
    assert triplets_rec["full3_executed"] < fused_rec["full3_executed"]
    assert triplets_rec["full3_hit_rate"] > 0.5

    # --- persist --------------------------------------------------------- #
    history = []
    if RESULTS_PATH.exists():
        history = json.loads(RESULTS_PATH.read_text())
    history.append(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "n_snps": N_SNPS,
            "n_samples": N_SAMPLES,
            "block_size": BLOCK,
            "small": _SMALL,
            "top_k_sha256": next(iter(set(digests.values()))),
            "cells": records,
        }
    )
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n")
