"""§4.5 in-text GPU-time breakdown.

The paper profiles a Titan RTX run (512 SNPs x 262144 samples): 82.85%
tensor contingency construction, 8.58% scoring (+XOR compat +inference),
8.41% combine, 0.15% pairwise, 0.01% transfers.

The CPU simulator's phase shares differ (completion/scoring is Python-side
work that the GPU does in registers), so this bench reports both the
measured simulator shares and the op-volume shares from the kernel
counters, whose *ordering* must match the paper's: tensor volume dominates
everything else.
"""

from repro.core.search import Epi4TensorSearch, SearchConfig
from repro.datasets import generate_random_dataset
from repro.device.specs import TITAN_RTX

from conftest import print_table

PAPER_SHARES = {
    "tensor (3way+4way)": 82.85,
    "score (+compat +inference)": 8.58,
    "combine": 8.41,
    "pairwise": 0.15,
    "transfer": 0.01,
}


def test_breakdown(benchmark):
    ds = generate_random_dataset(48, 2048, seed=9)

    def run():
        return Epi4TensorSearch(
            ds, SearchConfig(block_size=8), spec=TITAN_RTX
        ).run()

    res = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    p = res.phase_seconds
    measured = {
        "tensor (3way+4way)": p["tensor3"] + p["tensor4"],
        "score (+compat +inference)": p["score"],
        "combine": p["combine"],
        "pairwise": p["pairwise"],
    }
    total = sum(measured.values())
    rows = [
        [name, f"{100 * secs / total:.2f}%", f"{PAPER_SHARES[name]:.2f}%"]
        for name, secs in measured.items()
    ]
    print_table(
        "phase shares: simulator wall time vs paper GPU profile "
        "(Titan, 512x262144)",
        ["phase", "simulator", "paper GPU"],
        rows,
    )

    c = res.counters
    volume = {
        "tensor4 GEMM ops": c.tensor_ops_raw["tensor4"],
        "tensor3 GEMM ops": c.tensor_ops_raw["tensor3"],
        "combine bit ops": c.combine_bit_ops,
        "pairwise plane-dot ops": c.pairwise_ops,
        "transfer bytes x8": c.transfer_bytes * 8,
    }
    vtotal = sum(volume.values())
    print_table(
        "op-volume shares (device counters)",
        ["kernel", "ops", "share"],
        [[k, f"{v:.3e}", f"{100 * v / vtotal:.2f}%"] for k, v in volume.items()],
    )
    # Shape assertions mirroring the paper's ordering.
    tensor_volume = c.tensor_ops_raw["tensor4"] + c.tensor_ops_raw["tensor3"]
    assert tensor_volume > 0.8 * vtotal
    assert c.transfer_bytes * 8 < 0.001 * vtotal
