"""Energy projections: quad-samples per joule under the active power cap.

No paper anchors exist (the paper reports throughput only despite comparing
against an energy-focused FPGA approach), so this bench reports model
estimates and asserts internal consistency: energy efficiency follows
throughput efficiency, and Ampere's superior perf/W shows up.
"""

from repro.device.specs import A100_PCIE, A100_SXM4, TITAN_RTX
from repro.perfmodel import predict_multi_gpu, predict_search
from repro.perfmodel.energy import estimate_energy

from conftest import print_table


def test_energy_table(benchmark):
    def estimates():
        points = [
            ("Titan RTX", predict_search(TITAN_RTX, 2048, 262144, 32)),
            ("A100 PCIe", predict_search(A100_PCIE, 2048, 524288, 32)),
            ("A100 SXM4", predict_search(A100_SXM4, 2048, 524288, 32)),
            ("8x A100 SXM4", predict_multi_gpu(A100_SXM4, 8, 4096, 524288, 32)),
        ]
        return [(name, pred, estimate_energy(pred)) for name, pred in points]

    rows = benchmark(estimates)
    print_table(
        "modelled energy efficiency (TDP x runtime under active power cap)",
        ["system", "watts", "kJ / search", "giga quad-samples/J"],
        [
            [
                name,
                f"{e.watts:.0f}",
                f"{e.joules / 1e3:.0f}",
                f"{e.giga_quad_samples_per_joule:.0f}",
            ]
            for name, _, e in rows
        ],
    )
    by_name = {name: e for name, _, e in rows}
    # Ampere's perf/W advantage must materialize.
    assert (
        by_name["A100 PCIe"].giga_quad_samples_per_joule
        > by_name["Titan RTX"].giga_quad_samples_per_joule
    )
    # Multi-GPU pays a small energy-efficiency cost for the wall-time win.
    assert (
        by_name["8x A100 SXM4"].giga_quad_samples_per_joule
        <= by_name["A100 SXM4"].giga_quad_samples_per_joule * 1.05
    )
