"""Ablation: serialized vs concurrent evaluation rounds (§4.4/§4.5).

Paper: concurrent rounds (multiple CUDA streams) only improve performance
for small-sample datasets.  The stream model reproduces that; results are
unchanged by construction (streams only affect timing).
"""

from repro.device.specs import A100_PCIE, TITAN_RTX
from repro.perfmodel import predict_search

from conftest import print_table


def test_streams_help_small_samples_only(benchmark):
    def grid():
        out = {}
        for spec in (TITAN_RTX, A100_PCIE):
            for n in (32768, 131072, 524288):
                serial = predict_search(spec, 1024, n, 32, n_streams=1)
                parallel = predict_search(spec, 1024, n, 32, n_streams=4)
                out[(spec.name, n)] = (
                    parallel.tera_quads_per_second_scaled
                    / serial.tera_quads_per_second_scaled
                )
        return out

    gains = benchmark(grid)
    print_table(
        "concurrent rounds (P) vs serialized (S): throughput ratio (model)",
        ["gpu", "N", "P/S"],
        [[g, n, f"{v:.3f}"] for (g, n), v in gains.items()],
    )
    for gpu in ("Titan RTX", "A100 PCIe"):
        assert gains[(gpu, 32768)] > gains[(gpu, 524288)]
        assert gains[(gpu, 524288)] < 1.15  # negligible when saturated
