"""Microbenchmarks of the scoring subsystem.

The paper's argument (§2) that the statistical test does not dominate cost
rests on its sample-count-invariant evaluation; here we measure all four
scores on a round-sized batch of 81-cell tables, plus the lgamma-LUT
speedup over direct ``gammaln`` evaluation (§3.5).
"""

import numpy as np
import pytest
from scipy.special import gammaln

from repro.scoring import LgammaTable, make_score

BATCH = 8 * 8 * 8 * 8  # one B=8 round's quads


@pytest.fixture(scope="module")
def tables():
    rng = np.random.default_rng(2)
    t0 = rng.integers(0, 40, (BATCH, 3, 3, 3, 3))
    t1 = rng.integers(0, 40, (BATCH, 3, 3, 3, 3))
    return t0, t1


@pytest.mark.parametrize("name", ["k2", "chi2", "gtest", "mi"])
def test_score_batch(benchmark, tables, name):
    t0, t1 = tables
    fn = make_score(name)
    out = benchmark(fn, t0, t1, 4)
    assert out.shape == (BATCH,)


def test_lgamma_lut_vs_gammaln(benchmark, tables):
    t0, t1 = tables
    args = (t0 + t1 + 2).ravel()
    table = LgammaTable(int(args.max()))
    lut = benchmark(table, args)
    np.testing.assert_allclose(lut, gammaln(args))


def test_gammaln_direct(benchmark, tables):
    t0, t1 = tables
    args = (t0 + t1 + 2).ravel().astype(np.float64)
    benchmark(gammaln, args)
