"""Ablation: batched-GEMM round fusion and stream overlap.

Five configurations of the same workload (operand cache on throughout, so
the tensor3 sweep count is already minimal and the launch ablation
isolates the tensor4 round GEMMs this PR fuses):

- ``serial``          — ``batch_rounds=1``, no overlap: the legacy
  round-at-a-time loop, the pre-fusion baseline;
- ``batch=4/8/16``    — the batched pipeline at increasing fusion widths
  (launches collapse, logical problems stay constant);
- ``batch=8+overlap`` — adds double-buffered operand staging on a host
  stream (``n_streams=2``), overlapping staging with scoring.

Reported per cell: total wall, fused launch counts per kernel, the
launch-collapse factor vs serial, and the staged-overlap seconds.  Hard
bars:

- every cell's ranked top-k digest (``top_k_sha256``) is identical —
  fusion must not move a single result bit;
- each cell's executed launch counts equal the closed forms of
  :func:`~repro.perfmodel.workload.search_gemm_launches`;
- logical GEMM problems (``gemm_problems``) are batch-invariant: fusion
  changes how work is launched, never how much work exists;
- total launches collapse >= 4x at ``batch_rounds=8`` (5.01x at nb=12).

Results append to ``BENCH_batching.json`` next to this file.
Set ``EPI4TENSOR_BENCH_SMALL=1`` for a CI-sized workload.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.search import Epi4TensorSearch, SearchConfig
from repro.datasets import generate_random_dataset
from repro.obs.manifest import solutions_digest
from repro.perfmodel.workload import search_gemm_launches

from conftest import print_table

_SMALL = os.environ.get("EPI4TENSOR_BENCH_SMALL") == "1"
N_SNPS = 48  # nb=12 in both sizes: the collapse ratio needs the depth
N_SAMPLES = 128 if _SMALL else 256
BLOCK = 4
RESULTS_PATH = Path(__file__).with_name("BENCH_batching.json")

CELLS = [
    ("serial", dict(batch_rounds=1, overlap=False)),
    ("batch=4", dict(batch_rounds=4)),
    ("batch=8", dict(batch_rounds=8)),
    ("batch=16", dict(batch_rounds=16)),
    ("batch=8+overlap", dict(batch_rounds=8, n_streams=2)),
]


def _run(ds, extra):
    # prune=False: the closed-form launch counts assume eager sweep
    # staging; the bound gate stages sweeps lazily for survivors only.
    config = SearchConfig(
        block_size=BLOCK, top_k=5, cache_mb=float("inf"), prune=False, **extra
    )
    search = Epi4TensorSearch(ds, config)
    start = time.perf_counter()
    result = search.run()
    wall = time.perf_counter() - start
    return search, result, wall


def test_batching_ablation(benchmark):
    ds = generate_random_dataset(N_SNPS, N_SAMPLES, seed=42)

    def sweep():
        return [(label, *_run(ds, extra)) for label, extra in CELLS]

    runs = benchmark.pedantic(sweep, rounds=1, iterations=1)

    digests = {label: solutions_digest(r.top_solutions) for label, _, r, _ in runs}
    nb = runs[0][2].block_scheme.n_snps // BLOCK

    rows, records = [], []
    serial_launches = sum(
        runs[0][2].counters.launches[k] for k in ("tensor3", "tensor4")
    )
    for (label, extra), (_, search, result, wall) in zip(CELLS, runs):
        t3 = result.counters.launches["tensor3"]
        t4 = result.counters.launches["tensor4"]
        collapse = serial_launches / (t3 + t4)
        overlap_s = search.metrics.total("epi4_stage_overlap_seconds_total")
        rows.append(
            [
                label,
                f"{wall:7.2f}",
                t4,
                t3,
                t3 + t4,
                f"{collapse:5.2f}x",
                f"{overlap_s:7.3f}",
            ]
        )
        records.append(
            {
                "config": label,
                "batch_rounds": extra.get("batch_rounds", 1),
                "n_streams": extra.get("n_streams", 1),
                "wall_seconds": wall,
                "tensor4_launches": t4,
                "tensor3_launches": t3,
                "launch_collapse_vs_serial": collapse,
                "tensor4_problems": result.counters.gemm_problems["tensor4"],
                "stage_overlap_seconds": overlap_s,
                "top_k_sha256": digests[label],
            }
        )

    print_table(
        f"round batching ablation (M={N_SNPS}, N={N_SAMPLES}, B={BLOCK})",
        ["config", "wall s", "t4", "t3", "total", "collapse", "overlap s"],
        rows,
    )

    # --- assertions ------------------------------------------------------ #
    # Bit-identity: fusion may not move a single ranked result.
    assert len(set(digests.values())) == 1, digests

    # Executed launch counts match the analytic closed forms, per cell.
    for rec, (label, extra) in zip(records, CELLS):
        expected = search_gemm_launches(
            nb, batch_rounds=rec["batch_rounds"], cache_operands=True
        )
        assert rec["tensor4_launches"] == expected["tensor4"], label
        assert rec["tensor3_launches"] == expected["tensor3"], label

    # Logical problems are batch-invariant — fusion launches the same work.
    problems = {rec["tensor4_problems"] for rec in records}
    assert problems == {
        search_gemm_launches(nb, batch_rounds=1, cache_operands=True)["tensor4"]
    }

    # The headline bar: >=4x total launch collapse at batch_rounds=8.
    by_label = {rec["config"]: rec for rec in records}
    assert by_label["batch=8"]["launch_collapse_vs_serial"] >= 4.0
    assert by_label["batch=8+overlap"]["launch_collapse_vs_serial"] >= 4.0

    # --- persist --------------------------------------------------------- #
    history = []
    if RESULTS_PATH.exists():
        history = json.loads(RESULTS_PATH.read_text())
    history.append(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "n_snps": N_SNPS,
            "n_samples": N_SAMPLES,
            "block_size": BLOCK,
            "small": _SMALL,
            "top_k_sha256": next(iter(set(digests.values()))),
            "cells": records,
        }
    )
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n")
