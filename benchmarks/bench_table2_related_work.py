"""Table 2: comparison with related fourth-order approaches.

Two layers:

1. **Model + paper-reported** Table 2 rows (absolute tera-quads/s) with the
   §5 speedup factors vs the SYCL state of the art.
2. **Measured** baseline ladder on one small dataset: the naive dense
   search, the BitEpi-style CPU bitwise search, the single-phase ([15])
   strategy and the tensor pipeline, confirming the paper's *ordering*
   (tensor-mapped binary processing wins) on executed code.
"""

from repro.baselines import BitEpiBaseline, NaiveBaseline, SinglePhaseBaseline
from repro.core.search import Epi4TensorSearch, SearchConfig
from repro.datasets import generate_random_dataset
from repro.perfmodel.figures import epi4tensor_vs_sycl_speedups, table2_rows

from conftest import print_table

PAPER_SPEEDUPS = {
    "same_dataset_same_gpu": 6.4,
    "titan_best": 12.4,
    "a100_best": 41.1,
    "hgx_best": 372.1,
}


def test_table2_model(benchmark):
    rows = [
        [
            r.approach,
            r.hardware,
            f"{r.n_snps}x{r.n_samples}",
            f"{r.tera_quads_per_second:.3f}",
            r.source,
        ]
        for r in table2_rows()
    ]
    print_table(
        "Table 2 — tera quads/s scaled to samples",
        ["approach", "hardware", "dataset", "tera-q/s", "source"],
        rows,
    )
    speedups = epi4tensor_vs_sycl_speedups()
    print_table(
        "§5 speedups vs SYCL [15] (paper: 6.4 / 12.4 / 41.1 / 372.1)",
        ["comparison", "model", "paper"],
        [
            [k, f"{v:.1f}x", f"{PAPER_SPEEDUPS[k]}x"]
            for k, v in speedups.items()
        ],
    )
    assert benchmark(table2_rows)


def test_table2_measured_ladder(benchmark):
    """Executed performance ladder on a common small dataset."""
    ds = generate_random_dataset(16, 512, seed=7)
    import time

    def run_ladder():
        out = {}
        t0 = time.perf_counter()
        naive = NaiveBaseline().search(ds)
        out["naive dense"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        bitepi = BitEpiBaseline().search(ds)
        out["bitepi bitwise"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        single = SinglePhaseBaseline().search(ds)
        out["single-phase [15]"] = time.perf_counter() - t0
        t0 = time.perf_counter()
        tensor = Epi4TensorSearch(ds, SearchConfig(block_size=8)).run()
        out["epi4tensor"] = time.perf_counter() - t0
        assert naive == bitepi == single == tensor.solution
        return out

    times = benchmark.pedantic(run_ladder, rounds=1, iterations=1, warmup_rounds=0)
    scaled = ds.n_samples * 1820  # C(16,4) quads x N
    print_table(
        "measured ladder (16 SNPs x 512 samples; all find the same quad)",
        ["approach", "seconds", "quad-samples/s"],
        [[k, f"{v:.3f}", f"{scaled / v:.3e}"] for k, v in times.items()],
    )
    # The shape claim: the tensor-mapped pipeline beats the per-quad
    # implementations (naive and single-phase); BitEpi's plane reuse makes it
    # the fastest per-quad contender, exactly as in Table 2's ladder.
    assert times["epi4tensor"] < times["naive dense"]
    assert times["epi4tensor"] < times["single-phase [15]"]
