"""Ablation: sample-chunked GEMM execution (§4.5's Turing-cliff mitigation).

The paper suggests splitting >=524288-sample inputs into 262144-sample
matrices and adding the partial contingency tables element-wise.  Measured:
chunked execution returns identical results at moderate bookkeeping cost.
Model: chunking removes the Turing cliff.
"""

from repro.core.search import Epi4TensorSearch, SearchConfig
from repro.device.specs import TITAN_RTX
from repro.perfmodel import predict_search

from conftest import print_table


def test_model_chunking_removes_turing_cliff(benchmark):
    def predictions():
        plain = predict_search(TITAN_RTX, 2048, 524288, 32)
        chunked = predict_search(TITAN_RTX, 2048, 524288, 32, sample_chunked=True)
        below = predict_search(TITAN_RTX, 2048, 262144, 32)
        return plain, chunked, below

    plain, chunked, below = benchmark(predictions)
    print_table(
        "Turing 524288-sample cliff (model)",
        ["config", "tera-q/s"],
        [
            ["N=262144 (below cliff)", f"{below.tera_quads_per_second_scaled:.1f}"],
            ["N=524288 plain", f"{plain.tera_quads_per_second_scaled:.1f}"],
            ["N=524288 chunked", f"{chunked.tera_quads_per_second_scaled:.1f}"],
        ],
    )
    assert plain.tera_quads_per_second_scaled < below.tera_quads_per_second_scaled
    # Chunking recovers close to the below-cliff rate ("keeping close to the
    # highest performance achieved").
    assert (
        chunked.tera_quads_per_second_scaled
        > 0.9 * below.tera_quads_per_second_scaled
    )


def test_measured_chunked_equivalence(benchmark, bench_dataset_small):
    def run_both():
        plain = Epi4TensorSearch(
            bench_dataset_small, SearchConfig(block_size=8)
        ).run()
        chunked = Epi4TensorSearch(
            bench_dataset_small,
            SearchConfig(block_size=8, sample_chunk_bits=256),
        ).run()
        return plain, chunked

    plain, chunked = benchmark.pedantic(
        run_both, rounds=1, iterations=1, warmup_rounds=0
    )
    assert plain.solution == chunked.solution
    print(
        f"\nplain {plain.wall_seconds:.3f}s vs chunked {chunked.wall_seconds:.3f}s "
        f"(identical result {plain.best_quad})"
    )
