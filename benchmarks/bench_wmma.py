"""Microbenchmark: the instruction-level WMMA execution model.

Confirms (and times) that fragment-wise execution reproduces the engines'
results exactly, and that the issued-instruction count ties to the tile
quantization model the performance projections charge.
"""

import numpy as np
import pytest

from repro.bitops import BitMatrix
from repro.tensor import AMPERE_TILES, TURING_TILES
from repro.tensor.and_popc import dense_dot_counts
from repro.tensor.wmma import WmmaGemm


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(4)
    a = BitMatrix.from_bool(rng.random((128, 2048)) < 0.45)
    b = BitMatrix.from_bool(rng.random((128, 2048)) < 0.45)
    return a, b


@pytest.mark.parametrize(
    "tiles,label", [(TURING_TILES, "turing"), (AMPERE_TILES, "ampere")]
)
def test_wmma_fragment_execution(benchmark, operands, tiles, label):
    a, b = operands
    wmma = WmmaGemm(tiles, "and")
    out, stats = benchmark(wmma.gemm, a, b)
    np.testing.assert_array_equal(out, dense_dot_counts(a, b))
    print(
        f"\n{label}: {stats.instructions} MMA instructions over "
        f"{stats.k_fragments} k-fragments; padded {stats.padded_shape}"
    )
    assert stats.fused_ops == tiles.padded_ops(128, 128, 2048)
