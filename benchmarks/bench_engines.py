"""Microbenchmarks of the binary tensor-GEMM engines.

Measures the two execution paths (BLAS-dense vs packed popcount) and the
two hardware semantics (AND+POPC vs XOR+POPC + translation) on GEMM shapes
matching one evaluation round's 4-way kernel.
"""

import numpy as np
import pytest

from repro.bitops import BitMatrix
from repro.tensor import make_engine

#: Rows = 4*B^2 with B=8, K = 4096 samples: one small round's GEMM.
ROWS, K_BITS = 4 * 8 * 8, 4096


@pytest.fixture(scope="module")
def operands():
    rng = np.random.default_rng(0)
    a = BitMatrix.from_bool(rng.random((ROWS, K_BITS)) < 0.45)
    b = BitMatrix.from_bool(rng.random((ROWS, K_BITS)) < 0.45)
    return a, b


@pytest.mark.parametrize("kind", ["and_popc", "xor_popc"])
@pytest.mark.parametrize("mode", ["dense", "packed"])
def test_gemm_engine(benchmark, operands, kind, mode):
    a, b = operands
    engine = make_engine(kind, mode=mode)
    out = benchmark(engine.matmul_popcount, a, b)
    # Throughput context: fused ops of this GEMM.
    fused = 2 * ROWS * ROWS * K_BITS
    print(
        f"\n{kind}/{mode}: {fused / benchmark.stats['mean'] / 1e9:.2f} "
        "G fused-ops/s (simulator)"
    )
    assert out.shape == (ROWS, ROWS)


def test_xor_translation_overhead(benchmark, operands):
    """§3.4 claim: the XOR->AND translation adds no significant overhead.
    Here: translation cost relative to the raw GEMM is small."""
    a, b = operands
    engine = make_engine("xor_popc", mode="dense")
    xor_counts = engine.raw_xor_popcount(a, b)
    a_pop, b_pop = a.row_popcounts(), b.row_popcounts()

    from repro.tensor import xor_to_and_counts

    benchmark(xor_to_and_counts, xor_counts, a_pop, b_pop)
