"""Ablation: admissible K2 bound pruning (branch-and-bound gate).

Three configurations of the same workload:

- ``prune-off``      — the exhaustive fused path, every mask-valid
  position completed and scored (the pre-pruning baseline);
- ``prune-on``       — the 48-cell bound gate between mask compaction
  and completion, plus whole-round elision in the pipelined loop;
- ``prune-on+shard`` — the gate under the sharded coordinator (2 inline
  shards) with cross-shard threshold exchange every 4 rounds.

Reported per cell: total wall, scored cells, the fraction of mask-valid
quads pruned, rounds elided, and threshold-sync beats.  Hard bars:

- every cell's ranked top-k digest (``top_k_sha256``) is identical —
  pruning is a pure work eliminator, never a result perturbation;
- ``prune-on`` executes >=3x fewer score cells than ``prune-off``;
- conservation: scored + pruned quads == the baseline's scored quads.

Results append to ``BENCH_pruning.json`` next to this file.
Set ``EPI4TENSOR_BENCH_SMALL=1`` for a CI-sized workload.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.search import Epi4TensorSearch, SearchConfig
from repro.datasets import generate_random_dataset
from repro.dist import run_sharded
from repro.obs.manifest import solutions_digest

from conftest import print_table

_SMALL = os.environ.get("EPI4TENSOR_BENCH_SMALL") == "1"
N_SNPS = 32 if _SMALL else 48
N_SAMPLES = 128 if _SMALL else 256
BLOCK = 8
TOP_K = 10
RESULTS_PATH = Path(__file__).with_name("BENCH_pruning.json")


def _search(ds, prune):
    config = SearchConfig(
        block_size=BLOCK, top_k=TOP_K, prune=prune, batch_rounds=4
    )
    search = Epi4TensorSearch(ds, config)
    start = time.perf_counter()
    result = search.run()
    wall = time.perf_counter() - start
    return search.metrics, result.counters, result.top_solutions, wall


def _sharded(ds, tmp_dir):
    config = SearchConfig(
        block_size=BLOCK,
        top_k=TOP_K,
        prune=True,
        batch_rounds=4,
        prune_sync_rounds=4,
    )
    start = time.perf_counter()
    merged = run_sharded(
        ds, config, n_shards=2, out_dir=tmp_dir, inline=True
    )
    wall = time.perf_counter() - start
    return merged.metrics, None, merged.solutions, wall


def test_pruning_ablation(benchmark, tmp_path):
    ds = generate_random_dataset(N_SNPS, N_SAMPLES, seed=42)

    def sweep():
        return [
            ("prune-off", *_search(ds, prune=False)),
            ("prune-on", *_search(ds, prune=True)),
            ("prune-on+shard", *_sharded(ds, tmp_path)),
        ]

    runs = benchmark.pedantic(sweep, rounds=1, iterations=1)

    digests = {
        label: solutions_digest(solutions)
        for label, _, _, solutions, _ in runs
    }
    rows, records = [], []
    for label, metrics, counters, solutions, wall in runs:
        valid = metrics.total("epi4_applyscore_valid_total")
        pruned = metrics.total("epi4_prune_quads_total")
        elided = metrics.total("epi4_prune_rounds_total")
        syncs = metrics.total("epi4_prune_sync_total")
        scored_cells = int(valid) * 81 * 2
        prune_frac = pruned / (valid + pruned) if valid + pruned else 0.0
        rows.append(
            [
                label,
                f"{wall:7.2f}",
                f"{scored_cells:.2e}",
                f"{100 * prune_frac:5.1f}%",
                int(elided),
                int(syncs),
            ]
        )
        records.append(
            {
                "config": label,
                "wall_seconds": wall,
                "quads_scored": int(valid),
                "quads_pruned": int(pruned),
                "score_cells_executed": scored_cells,
                "prune_fraction": prune_frac,
                "rounds_elided": int(elided),
                "threshold_syncs": int(syncs),
                "top_k_sha256": digests[label],
            }
        )

    print_table(
        f"bound pruning ablation (M={N_SNPS}, N={N_SAMPLES}, B={BLOCK}, "
        f"k={TOP_K})",
        ["config", "wall s", "cells", "pruned", "elided", "syncs"],
        rows,
    )

    # --- assertions ------------------------------------------------------ #
    # Bit-identity: pruning may not move a single ranked result.
    assert len(set(digests.values())) == 1, digests

    off_rec, on_rec, shard_rec = records
    # Conservation: the gate accounts every baseline-scored quad exactly
    # once, as a survivor or as pruned.
    for rec in (on_rec, shard_rec):
        assert rec["quads_scored"] + rec["quads_pruned"] == (
            off_rec["quads_scored"]
        ), rec
    assert off_rec["quads_pruned"] == 0

    # The headline bar: >=3x scored-cell reduction from the bound gate.
    reduction = off_rec["score_cells_executed"] / on_rec["score_cells_executed"]
    assert reduction >= 3.0, reduction

    # The sharded cell exchanged thresholds.
    assert shard_rec["threshold_syncs"] > 0

    # --- persist --------------------------------------------------------- #
    history = []
    if RESULTS_PATH.exists():
        history = json.loads(RESULTS_PATH.read_text())
    history.append(
        {
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "n_snps": N_SNPS,
            "n_samples": N_SAMPLES,
            "block_size": BLOCK,
            "top_k": TOP_K,
            "small": _SMALL,
            "top_k_sha256": next(iter(set(digests.values()))),
            "scored_cell_reduction": reduction,
            "cells": records,
        }
    )
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n")
