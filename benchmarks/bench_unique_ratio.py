"""§4.5 in-text numbers: unique-combination percentages per (M, B).

These are exact combinatorics — the regenerated values must match the
paper's quoted percentages digit for digit.
"""

from repro.core.blocks import useful_ratio
from repro.perfmodel.figures import unique_ratio_rows

from conftest import print_table

PAPER = {
    (256, 32): 50.5, (512, 32): 69.6, (1024, 32): 83.0, (2048, 32): 90.9,
    (256, 64): 29.8, (512, 64): 51.1, (1024, 64): 70.0, (2048, 64): 83.2,
}


def test_unique_ratios_exact(benchmark):
    rows = []
    for r in unique_ratio_rows():
        paper = PAPER[(r.n_snps, r.block_size)]
        rows.append(
            [r.n_snps, r.block_size, f"{r.percent_unique:.1f}", paper]
        )
        assert round(r.percent_unique, 1) == paper
    print_table(
        "§4.5 unique-combination percentages (exact reproduction)",
        ["M", "B", "ours", "paper"],
        rows,
    )

    def compute_all():
        return [useful_ratio(m, b) for m in (256, 512, 1024, 2048) for b in (32, 64)]

    assert len(benchmark(compute_all)) == 8
