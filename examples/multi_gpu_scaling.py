#!/usr/bin/env python
"""Multi-GPU strong scaling: the paper's §3.6/§4.6 experiment in miniature.

Runs the same search on 1, 2, 4 and 8 simulated A100 SXM4 devices, shows
that results are bit-identical, how the dynamic outer-loop schedule divides
the work, and what the calibrated model projects for the paper-scale
dataset (4096 SNPs x 524288 samples: speedups 1.98x / 3.79x / 7.11x).

Run:  python examples/multi_gpu_scaling.py
"""

from repro import SearchConfig, generate_random_dataset, predict_multi_gpu
from repro.core.search import Epi4TensorSearch
from repro.device.specs import A100_SXM4


def main() -> None:
    dataset = generate_random_dataset(n_snps=64, n_samples=512, seed=31)
    print(f"dataset: {dataset}\n")

    print("functional runs (simulated devices, identical results required):")
    reference = None
    for n_gpus in (1, 2, 4, 8):
        result = Epi4TensorSearch(
            dataset, SearchConfig(block_size=8), spec=A100_SXM4, n_gpus=n_gpus
        ).run()
        if reference is None:
            reference = result.solution
        assert result.solution == reference, "devices must agree"
        loads = [c.total_tensor_ops_raw for c in result.per_device_counters]
        shares = ", ".join(f"{100 * l / sum(loads):.0f}%" for l in loads)
        print(
            f"  {n_gpus} GPU(s): quad {result.best_quad}, "
            f"outer iters/device {[len(a) for a in result.schedule.assignment]}, "
            f"op shares [{shares}]"
        )
    print(f"\nall device counts found: {reference}\n")

    print("model projection at paper scale (4096 SNPs x 524288 samples):")
    print("  gpus  tera-quads/s  speedup  (paper)   hours")
    paper = {1: "", 2: "1.98", 4: "3.79", 8: "7.11"}
    for n_gpus in (1, 2, 4, 8):
        pred = predict_multi_gpu(A100_SXM4, n_gpus, 4096, 524288, 32)
        print(
            f"  {n_gpus:4d}  {pred.tera_quads_per_second_scaled:12.1f}  "
            f"{pred.speedup_vs_single:7.2f}  {paper[n_gpus]:>7s}  "
            f"{pred.seconds / 3600:5.2f}"
        )


if __name__ == "__main__":
    main()
