#!/usr/bin/env python
"""Detection-power study across epistasis architectures.

For each penetrance model (threshold / parity / multiplicative) and effect
size, plants the interaction into replicated datasets and measures how
often the exhaustive fourth-order search ranks the causal quad first —
plus a permutation p-value for the detected quad.  This is the analysis a
geneticist would run to size a study before committing GPU-hours, and it
exercises the penetrance, search, top-k and significance APIs together.

Run:  python examples/power_study.py
"""

import numpy as np

from repro.core.search import Epi4TensorSearch, SearchConfig
from repro.datasets import PenetranceModel, generate_from_penetrance
from repro.scoring.significance import permutation_pvalue

N_SNPS = 12
N_SAMPLES = 2500
REPLICATES = 5
TRUTH = (1, 4, 7, 10)


def detection_power(model: PenetranceModel) -> tuple[float, float]:
    """(fraction of replicates where truth ranks #1, median p-value)."""
    hits = 0
    pvals = []
    for rep in range(REPLICATES):
        ds, truth = generate_from_penetrance(
            N_SNPS, N_SAMPLES, model, interacting_snps=TRUTH, seed=100 + rep
        )
        result = Epi4TensorSearch(
            ds, SearchConfig(block_size=4, top_k=3)
        ).run()
        if result.best_quad == truth:
            hits += 1
        pvals.append(
            permutation_pvalue(
                ds, result.best_quad, n_permutations=99, seed=rep
            ).p_value
        )
    return hits / REPLICATES, float(np.median(pvals))


def main() -> None:
    print(f"{N_SNPS} SNPs x {N_SAMPLES} samples, {REPLICATES} replicates per cell\n")
    print(f"{'model':<16s}{'effect':>7s}{'marginal':>10s}{'power':>7s}{'med p':>8s}")
    for name, factory in (
        ("threshold", PenetranceModel.threshold),
        ("parity", PenetranceModel.parity),
    ):
        for effect in (1.4, 2.0, 2.6):
            model = factory(baseline=0.25, effect_size=effect)
            power, med_p = detection_power(model)
            print(
                f"{name:<16s}{effect:7.1f}{model.marginal_effect(0):10.3f}"
                f"{power:7.0%}{med_p:8.3f}"
            )
    model = PenetranceModel.multiplicative(baseline=0.1, per_allele_factor=1.25)
    power, med_p = detection_power(model)
    print(
        f"{'multiplicative':<16s}{'':>7s}{model.marginal_effect(0):10.3f}"
        f"{power:7.0%}{med_p:8.3f}"
    )
    print(
        "\nreading: power rises with effect size; the parity model has "
        "near-zero\nmarginal effect (invisible to single-SNP scans) yet is "
        "fully detectable\nby the fourth-order search once the effect is "
        "strong enough."
    )


if __name__ == "__main__":
    main()
