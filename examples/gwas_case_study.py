#!/usr/bin/env python
"""Case study: detect a planted fourth-order interaction (the paper's §1
motivation — e.g. Alzheimer's is associated with fourth-order interactions).

Plants a ground-truth 4-SNP epistatic interaction in an otherwise-noise
dataset, then shows:

1. that *marginal* (single-SNP) tests rank the causal SNPs poorly or not at
   all — why high-order search is needed;
2. that the exhaustive fourth-order search recovers the exact quad;
3. the filter + exhaustive-refine pipeline from §5 (SNP candidate filtering
   followed by a full fourth-order search over the survivors).

Run:  python examples/gwas_case_study.py
"""

import numpy as np

from repro import generate_epistatic_dataset
from repro.contingency import contingency_table
from repro.core.filter import marginal_chi2_filter, refine_with_search
from repro.core.search import search_best_quad
from repro.scoring import ChiSquaredScore


def main() -> None:
    truth_snps = (3, 11, 17, 22)
    dataset, truth = generate_epistatic_dataset(
        n_snps=28,
        n_samples=4000,
        interacting_snps=truth_snps,
        effect_size=2.4,
        baseline_risk=0.25,
        model="parity",  # pure interaction: (near) zero marginal effects
        seed=7,
    )
    print(f"dataset         : {dataset}")
    print(f"planted quad    : {truth}")

    # --- 1. Marginal single-SNP scan -------------------------------------
    chi2 = ChiSquaredScore()
    marginal = np.array(
        [
            float(
                chi2(
                    contingency_table(dataset.class_genotypes(0)[[m]]),
                    contingency_table(dataset.class_genotypes(1)[[m]]),
                )
            )
            for m in range(dataset.n_snps)
        ]
    )
    ranking = np.argsort(marginal)[::-1]
    ranks_of_truth = [int(np.where(ranking == s)[0][0]) + 1 for s in truth]
    print(f"marginal ranks of causal SNPs: {ranks_of_truth} "
          f"(out of {dataset.n_snps}; interactions hide from marginal tests)")

    # --- 2. Exhaustive fourth-order search --------------------------------
    result = search_best_quad(dataset, block_size=7)
    print(f"exhaustive best : {result.best_quad} "
          f"(K2 {result.best_score:.2f}) "
          f"{'== planted quad' if result.best_quad == truth else '!= planted quad'}")

    # --- 3. Filter + refine (§5) ------------------------------------------
    # Filtering relies on marginal signal, so it is demonstrated on a
    # threshold-model interaction (which leaks marginal effects); the parity
    # dataset above is exactly the case where only the exhaustive search
    # works — the trade-off §5 discusses.
    ds2, truth2 = generate_epistatic_dataset(
        n_snps=28,
        n_samples=4000,
        interacting_snps=truth_snps,
        effect_size=2.4,
        baseline_risk=0.25,
        model="threshold",
        seed=7,
    )
    kept = marginal_chi2_filter(ds2, keep=12)
    print(f"\nthreshold-model dataset (marginal signal present):")
    print(f"filter keeps    : {sorted(kept.tolist())} "
          f"({'contains' if set(truth2) <= set(kept.tolist()) else 'MISSES'} "
          "the causal quad)")
    refined = refine_with_search(ds2, kept, block_size=4)
    print(f"refined best    : {refined.best_quad} "
          f"{'== planted quad' if refined.best_quad == truth2 else '!= planted quad'}")
    print(f"refine cost     : C({len(kept)},4) = "
          f"{refined.block_scheme.unique_quads} quads vs "
          f"C({ds2.n_snps},4) = {result.block_scheme.unique_quads} exhaustive")


if __name__ == "__main__":
    main()
