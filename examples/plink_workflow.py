#!/usr/bin/env python
"""The full "real tool" workflow on a PLINK study export.

Simulates what a user with an actual GWAS export does: load a PLINK
.ped/.map pair, run QC, pilot-subsample to estimate cost, run the
exhaustive fourth-order search with checkpointing, assess the winner's
significance and bootstrap stability, and archive a text report.

Run:  python examples/plink_workflow.py
"""

import tempfile
from pathlib import Path

from repro.core.search import Epi4TensorSearch, SearchConfig
from repro.datasets import generate_epistatic_dataset, load_plink, save_plink
from repro.datasets.qc import apply_qc
from repro.datasets.resample import bootstrap_best_quad, subsample
from repro.reporting import format_search_report
from repro.scoring.significance import permutation_pvalue


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="epi4tensor_"))

    # --- 0. A "study export": PLINK files on disk -------------------------
    study, truth = generate_epistatic_dataset(
        20, 2000, interacting_snps=(2, 8, 13, 18), effect_size=2.8,
        maf_range=(0.2, 0.4), seed=42,
    )
    prefix = workdir / "study"
    save_plink(prefix, study)
    print(f"study files : {prefix}.ped / {prefix}.map  (truth: {truth})")

    # --- 1. Load + QC -------------------------------------------------------
    dataset = load_plink(prefix, missing="drop")
    dataset, qc = apply_qc(dataset, min_maf=0.05)
    print(f"loaded      : {dataset}")
    print(f"{qc.summary()}")

    # --- 2. Pilot run on a subsample ---------------------------------------
    pilot = subsample(dataset, 400, seed=0)
    pilot_result = Epi4TensorSearch(pilot, SearchConfig(block_size=5)).run()
    print(
        f"pilot       : {pilot.n_samples} samples -> "
        f"{pilot_result.wall_seconds:.2f}s; full run estimated "
        f"~{pilot_result.wall_seconds * dataset.n_samples / pilot.n_samples:.2f}s"
    )

    # --- 3. Full search with checkpointing ---------------------------------
    ckpt = workdir / "search.ckpt"
    result = Epi4TensorSearch(
        dataset, SearchConfig(block_size=5, top_k=3)
    ).run(checkpoint_path=ckpt)
    print(f"best quad   : {result.best_quad} "
          f"({'== truth' if result.best_quad == truth else '!= truth'})")

    # --- 4. Significance + stability ----------------------------------------
    perm = permutation_pvalue(
        dataset, result.best_quad, n_permutations=99, seed=1
    )
    boot = bootstrap_best_quad(dataset, n_bootstrap=6, block_size=5, seed=1)
    print(f"p-value     : {perm.p_value:.3f} (99 permutations)")
    print(f"stability   : {boot.stability:.0%} of bootstrap resamples")

    # --- 5. Report -----------------------------------------------------------
    report_path = workdir / "report.txt"
    report_path.write_text(format_search_report(result, dataset))
    print(f"report      : {report_path}")
    print(f"checkpoint  : {ckpt} (delete to re-run from scratch)")


if __name__ == "__main__":
    main()
