#!/usr/bin/env python
"""Quickstart: run a fourth-order epistasis search end to end.

Generates a synthetic case-control dataset, runs the Epi4Tensor search on
the simulated A100 device, and prints the best quad with full execution
accounting — the 60-second tour of the public API.

Run:  python examples/quickstart.py
"""

from repro import SearchConfig, generate_random_dataset
from repro.core.search import Epi4TensorSearch


def main() -> None:
    # 1. A dataset: 48 SNPs x 1024 samples, half cases / half controls.
    dataset = generate_random_dataset(n_snps=48, n_samples=1024, seed=2024)
    print(f"dataset : {dataset}")

    # 2. Configure the search.  Block size 8 is appropriate for the CPU
    #    simulator; the paper uses 32 on real tensor cores.
    config = SearchConfig(block_size=8, score="k2")
    search = Epi4TensorSearch(dataset, config)

    # 3. Run the exhaustive fourth-order search.
    result = search.run()

    # 4. The answer: the most phenotype-associated quad of SNPs.
    w, x, y, z = result.best_quad
    print(f"best quad  : snp{w}, snp{x}, snp{y}, snp{z}")
    print(f"K2 score   : {result.best_score:.4f} (lower = stronger association)")

    # 5. Execution accounting — what the device "did".
    scheme = result.block_scheme
    print(f"rounds     : {scheme.n_rounds} evaluation rounds "
          f"({scheme.quads_processed:,} positional quads, "
          f"{100 * scheme.useful_fraction:.1f}% unique)")
    print(f"tensor ops : {result.counters.total_tensor_ops_raw:,} fused binary ops")
    print(f"wall time  : {result.wall_seconds:.2f}s on the CPU simulator")
    for phase, seconds in sorted(
        result.phase_seconds.items(), key=lambda kv: -kv[1]
    ):
        print(f"  {phase:<10s} {seconds:.3f}s")


if __name__ == "__main__":
    main()
