#!/usr/bin/env python
"""Architecture comparison: Turing (XOR+POPC) vs Ampere (AND+POPC).

Demonstrates the §3.4 compatibility layer: the Turing device model has no
native fused AND+POPC, so it runs genuine XOR+POPC GEMMs and translates the
mismatch counts — and still produces bit-identical results.  Also prints
the calibrated model's Fig. 2 anchor points for both architectures.

Run:  python examples/architecture_comparison.py
"""

import numpy as np

from repro import SearchConfig, generate_random_dataset, predict_search
from repro.bitops import BitMatrix
from repro.core.search import Epi4TensorSearch
from repro.device.specs import A100_PCIE, TITAN_RTX
from repro.tensor import AndPopcEngine, XorPopcEngine


def main() -> None:
    # --- the translation identity on raw engine outputs -------------------
    rng = np.random.default_rng(0)
    a = BitMatrix.from_bool(rng.random((8, 500)) < 0.4)
    b = BitMatrix.from_bool(rng.random((8, 500)) < 0.4)
    ampere_engine = AndPopcEngine("dense")
    turing_engine = XorPopcEngine("dense")
    and_counts = ampere_engine.matmul_popcount(a, b)
    xor_raw = turing_engine.raw_xor_popcount(a, b)
    translated = turing_engine.matmul_popcount(a, b)
    print("engine-level check (one GEMM):")
    print(f"  AND+POPC[0,:4]        = {and_counts[0, :4]}")
    print(f"  raw XOR+POPC[0,:4]    = {xor_raw[0, :4]}  (mismatch counts)")
    print(f"  translated AND[0,:4]  = {translated[0, :4]}")
    assert (translated == and_counts).all()
    print("  translation is exact.\n")

    # --- full searches on both device models ------------------------------
    dataset = generate_random_dataset(n_snps=40, n_samples=768, seed=55)
    print(f"dataset: {dataset}")
    turing = Epi4TensorSearch(
        dataset, SearchConfig(block_size=8), spec=TITAN_RTX
    ).run()
    ampere = Epi4TensorSearch(
        dataset, SearchConfig(block_size=8), spec=A100_PCIE
    ).run()
    print(f"  Titan RTX [{turing.engine_name}] : quad {turing.best_quad}")
    print(f"  A100 PCIe [{ampere.engine_name}]: quad {ampere.best_quad}")
    assert turing.solution == ampere.solution
    print("  identical results across architectures.\n")

    # --- model anchors ------------------------------------------------------
    print("model projections at the paper's anchor points (tera quads/s):")
    for spec, m, n, paper in (
        (TITAN_RTX, 2048, 262144, 27.8),
        (A100_PCIE, 2048, 262144, 78.78),
        (A100_PCIE, 2048, 524288, 90.9),
    ):
        pred = predict_search(spec, m, n, 32)
        print(
            f"  {spec.name:10s} M={m} N={n}: model "
            f"{pred.tera_quads_per_second_scaled:6.2f} vs paper {paper}"
        )


if __name__ == "__main__":
    main()
