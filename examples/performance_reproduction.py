#!/usr/bin/env python
"""Regenerate every evaluation artifact of the paper in one run.

Prints Table 1, the Fig. 2 and Fig. 3 series, Table 2 and the §4.5 in-text
numbers (unique-combination ratios, §5 speedups) from the calibrated
performance model, annotated with the paper's reported values where the
paper discloses them.  This is the script behind EXPERIMENTS.md.

Run:  python examples/performance_reproduction.py
"""

from repro.perfmodel.figures import (
    epi4tensor_vs_sycl_speedups,
    fig2_grid,
    fig3_grid,
    table1_rows,
    table2_rows,
    unique_ratio_rows,
)

PAPER_FIG2_ANCHORS = {
    ("S1", 2048, 262144, "xor"): 27.8,
    ("S2", 2048, 262144, "and"): 78.78,
    ("S2", 2048, 262144, "xor"): 78.01,
    ("S2", 2048, 524288, "and"): 90.9,
    ("S2", 2048, 524288, "xor"): 90.0,
}
PAPER_RATIOS = {
    (256, 32): 50.5, (512, 32): 69.6, (1024, 32): 83.0, (2048, 32): 90.9,
    (256, 64): 29.8, (512, 64): 51.1, (1024, 64): 70.0, (2048, 64): 83.2,
}
PAPER_SPEEDUPS = {
    "same_dataset_same_gpu": 6.4,
    "titan_best": 12.4,
    "a100_best": 41.1,
    "hgx_best": 372.1,
}


def main() -> None:
    print("=" * 72)
    print("Table 1 — target systems")
    print("=" * 72)
    for r in table1_rows():
        print(
            f"  {r['system']}: {r['gpu']:<14s} {r['tensor_cores']} tensor cores "
            f"@ {r['boost_mhz']:.0f} MHz -> peak {r['peak_binary_tops']:.0f} "
            f"binary TOPS (paper: 2088 S1 / 4992 S2 / 8x4992 S3)"
        )

    print("\n" + "=" * 72)
    print("Fig. 2 — single-GPU performance (B=32, serialized rounds)")
    print("=" * 72)
    print(f"  {'sys':4s}{'M':>6s}{'N':>8s}  {'eng':4s}{'model':>8s}{'paper':>8s}")
    for r in fig2_grid(block_sizes=(32,), stream_counts=(1,)):
        paper = PAPER_FIG2_ANCHORS.get(
            (r.system, r.n_snps, r.n_samples, r.engine), ""
        )
        print(
            f"  {r.system:4s}{r.n_snps:6d}{r.n_samples:8d}  {r.engine:4s}"
            f"{r.tera_quads_per_second:8.2f}{str(paper):>8s}"
        )

    print("\n" + "=" * 72)
    print("Fig. 3 — HGX A100 multi-GPU scaling")
    print("=" * 72)
    print(f"  {'gpus':5s}{'M':>6s}{'N':>8s}{'tera-q/s':>10s}{'speedup':>9s}{'hours':>7s}")
    for r in fig3_grid():
        print(
            f"  {r.n_gpus:5d}{r.n_snps:6d}{r.n_samples:8d}"
            f"{r.tera_quads_per_second:10.1f}{r.speedup:9.2f}{r.hours:7.2f}"
        )
    print("  paper anchors @ (4096, 524288): speedups 1.98 / 3.79 / 7.11, "
          "835.4 tera quads/s, 14.5h -> ~2h")

    print("\n" + "=" * 72)
    print("Table 2 — related work")
    print("=" * 72)
    for r in table2_rows():
        print(
            f"  {r.approach:<24s}{r.hardware:<34s}"
            f"{r.tera_quads_per_second:9.3f}  [{r.source}]"
        )
    print("\n  §5 speedups vs SYCL [15]:")
    for key, value in epi4tensor_vs_sycl_speedups().items():
        print(f"    {key:<24s} model {value:6.1f}x   paper {PAPER_SPEEDUPS[key]}x")

    print("\n" + "=" * 72)
    print("§4.5 unique-combination percentages (exact)")
    print("=" * 72)
    for r in unique_ratio_rows():
        paper = PAPER_RATIOS[(r.n_snps, r.block_size)]
        match = "==" if round(r.percent_unique, 1) == paper else "!="
        print(
            f"  M={r.n_snps:5d} B={r.block_size:2d}: "
            f"{r.percent_unique:5.1f}% {match} paper {paper}%"
        )


if __name__ == "__main__":
    main()
