"""Unit + property tests for the packed BitMatrix."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.bitops import BitMatrix, WORD_BITS
from repro.bitops.bitmatrix import words_for_bits

bool_matrices = hnp.arrays(
    dtype=np.bool_,
    shape=st.tuples(st.integers(1, 12), st.integers(1, 200)),
)


class TestWordsForBits:
    @pytest.mark.parametrize(
        "bits,words", [(0, 0), (1, 1), (64, 1), (65, 2), (128, 2), (129, 3)]
    )
    def test_values(self, bits, words):
        assert words_for_bits(bits) == words


class TestRoundTrip:
    @given(bool_matrices)
    def test_pack_unpack_identity(self, rows):
        bm = BitMatrix.from_bool(rows)
        np.testing.assert_array_equal(bm.to_bool(), rows)

    @given(bool_matrices)
    def test_padding_bits_are_zero(self, rows):
        bm = BitMatrix.from_bool(rows)
        total_bits = bm.row_popcounts().sum()
        assert total_bits == rows.sum()

    def test_float32_conversion(self):
        rows = np.array([[True, False, True]])
        np.testing.assert_array_equal(
            BitMatrix.from_bool(rows).to_float32(), [[1.0, 0.0, 1.0]]
        )


class TestConstruction:
    def test_zeros(self):
        bm = BitMatrix.zeros(3, 100)
        assert bm.n_rows == 3
        assert bm.n_bits == 100
        assert bm.row_popcounts().sum() == 0

    def test_rejects_wrong_word_count(self):
        with pytest.raises(ValueError, match="words cannot hold"):
            BitMatrix(data=np.zeros((2, 3), dtype=np.uint64), n_bits=64)

    def test_rejects_wrong_dtype(self):
        with pytest.raises(ValueError, match="uint64"):
            BitMatrix(data=np.zeros((2, 2), dtype=np.int64), n_bits=128)

    def test_rejects_negative_bits(self):
        with pytest.raises(ValueError, match="n_bits"):
            BitMatrix(data=np.zeros((2, 0), dtype=np.uint64), n_bits=-1)

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            BitMatrix.from_bool(np.zeros(5, dtype=bool))

    def test_nbytes(self):
        assert BitMatrix.zeros(4, 64).nbytes == 4 * 8


class TestOperations:
    @given(bool_matrices)
    def test_row_popcounts(self, rows):
        bm = BitMatrix.from_bool(rows)
        np.testing.assert_array_equal(bm.row_popcounts(), rows.sum(axis=1))

    def test_select_rows_view(self):
        rows = np.eye(4, 70, dtype=bool)
        bm = BitMatrix.from_bool(rows)
        sub = bm.select_rows(1, 3)
        np.testing.assert_array_equal(sub.to_bool(), rows[1:3])

    def test_select_rows_bounds(self):
        bm = BitMatrix.zeros(4, 10)
        with pytest.raises(IndexError):
            bm.select_rows(2, 5)

    @given(bool_matrices)
    def test_and_xor(self, rows):
        bm = BitMatrix.from_bool(rows)
        flipped = BitMatrix.from_bool(~rows)
        assert bm.bitwise_and(flipped).row_popcounts().sum() == 0
        np.testing.assert_array_equal(
            bm.bitwise_xor(flipped).row_popcounts(), np.full(rows.shape[0], rows.shape[1])
        )

    def test_and_shape_mismatch(self):
        with pytest.raises(ValueError, match="incompatible"):
            BitMatrix.zeros(2, 10).bitwise_and(BitMatrix.zeros(2, 11))


class TestSplitBits:
    @given(bool_matrices, st.sampled_from([64, 128, 256]))
    def test_split_preserves_bits(self, rows, chunk):
        bm = BitMatrix.from_bool(rows)
        chunks = bm.split_bits(chunk)
        assert sum(c.n_bits for c in chunks) == bm.n_bits
        reassembled = np.concatenate([c.to_bool() for c in chunks], axis=1)
        np.testing.assert_array_equal(reassembled, rows)

    def test_split_rejects_unaligned(self):
        with pytest.raises(ValueError, match="multiple of 64"):
            BitMatrix.zeros(1, 128).split_bits(100)

    def test_split_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="multiple of 64"):
            BitMatrix.zeros(1, 128).split_bits(0)
