"""Unit tests for the Dataset model."""

import numpy as np
import pytest

from repro.datasets import Dataset


def _dataset(m=5, n=10, seed=0):
    rng = np.random.default_rng(seed)
    return Dataset(
        genotypes=rng.integers(0, 3, (m, n), dtype=np.int8),
        phenotypes=rng.random(n) < 0.5,
    )


class TestConstruction:
    def test_dimensions(self):
        ds = _dataset(5, 10)
        assert ds.n_snps == 5
        assert ds.n_samples == 10
        assert ds.n_cases + ds.n_controls == 10

    def test_rejects_bad_genotype_values(self):
        with pytest.raises(ValueError, match="genotype values"):
            Dataset(
                genotypes=np.full((2, 3), 5, dtype=np.int8),
                phenotypes=np.zeros(3, dtype=bool),
            )

    def test_rejects_negative_genotypes(self):
        with pytest.raises(ValueError, match="genotype values"):
            Dataset(
                genotypes=np.full((2, 3), -1, dtype=np.int8),
                phenotypes=np.zeros(3, dtype=bool),
            )

    def test_rejects_mismatched_phenotypes(self):
        with pytest.raises(ValueError, match="one entry per sample"):
            Dataset(
                genotypes=np.zeros((2, 3), dtype=np.int8),
                phenotypes=np.zeros(4, dtype=bool),
            )

    def test_rejects_1d_genotypes(self):
        with pytest.raises(ValueError, match="2-D"):
            Dataset(
                genotypes=np.zeros(3, dtype=np.int8),
                phenotypes=np.zeros(3, dtype=bool),
            )

    def test_dtype_coercion(self):
        ds = Dataset(
            genotypes=np.ones((2, 3), dtype=np.int64),
            phenotypes=np.array([0, 1, 0]),
        )
        assert ds.genotypes.dtype == np.int8
        assert ds.phenotypes.dtype == np.bool_

    def test_immutability(self):
        ds = _dataset()
        with pytest.raises(ValueError):
            ds.genotypes[0, 0] = 2

    def test_default_snp_names(self):
        ds = _dataset(3, 4)
        assert ds.snp_names == ("snp0", "snp1", "snp2")

    def test_custom_snp_names_length_check(self):
        with pytest.raises(ValueError, match="snp_names"):
            Dataset(
                genotypes=np.zeros((2, 3), dtype=np.int8),
                phenotypes=np.zeros(3, dtype=bool),
                snp_names=("a",),
            )


class TestViews:
    def test_class_genotypes_partition(self):
        ds = _dataset(4, 20, seed=3)
        g0 = ds.class_genotypes(0)
        g1 = ds.class_genotypes(1)
        assert g0.shape == (4, ds.n_controls)
        assert g1.shape == (4, ds.n_cases)
        assert g0.shape[1] + g1.shape[1] == ds.n_samples

    def test_class_genotypes_content(self):
        ds = _dataset(4, 20, seed=3)
        np.testing.assert_array_equal(
            ds.class_genotypes(1), ds.genotypes[:, ds.phenotypes]
        )

    def test_class_genotypes_bad_class(self):
        with pytest.raises(ValueError, match="phenotype_class"):
            _dataset().class_genotypes(2)

    def test_n_class_samples(self):
        ds = _dataset(4, 20, seed=3)
        assert ds.n_class_samples(0) == ds.n_controls
        assert ds.n_class_samples(1) == ds.n_cases

    def test_subset_snps(self):
        ds = _dataset(6, 10, seed=1)
        sub = ds.subset_snps([4, 1])
        assert sub.n_snps == 2
        np.testing.assert_array_equal(sub.genotypes[0], ds.genotypes[4])
        assert sub.snp_names == ("snp4", "snp1")

    def test_repr(self):
        assert "M=5" in repr(_dataset(5, 10))
