"""Observability wiring of the search driver: span taxonomy, unified
metrics, and the per-device attribution fix.

The attribution regression this locks in: phase times and work counters
used to be accumulated into *shared* per-phase timers, so when threaded
device workers finished out of order the per-device breakdown was lost
(everything collapsed into one unattributed sum).  They are now recorded
at the call site as ``device``-labeled series in the
:class:`~repro.obs.metrics.MetricsRegistry`, which makes aggregation
commutative: any completion order yields identical aggregates.
"""

from __future__ import annotations

import pytest

from repro.core.search import Epi4TensorSearch, SearchConfig
from repro.datasets import generate_random_dataset
from repro.obs.metrics import MetricsRegistry, normalized_snapshot
from repro.obs.trace import Tracer, span_tree_shape


def _dataset(seed: int = 29):
    return generate_random_dataset(24, 96, seed=seed)


def _run(
    *, tracer=None, n_gpus=1, metrics=None, **cfg
) -> tuple[Epi4TensorSearch, "object"]:
    cfg.setdefault("block_size", 8)
    search = Epi4TensorSearch(
        _dataset(),
        SearchConfig(**cfg),
        n_gpus=n_gpus,
        tracer=tracer,
        metrics=metrics,
    )
    return search, search.run()


class TestSpanTaxonomy:
    def test_sequential_tree_matches_documented_shape(self):
        tr = Tracer()
        search, _ = _run(tracer=tr, host_threads=1)
        paths = span_tree_shape(tr.records())
        assert "encode#0" in paths
        assert "run#0" in paths
        assert "run#0/prepare#0" in paths
        assert "run#0/prepare#0/pairwise#0" in paths
        assert "run#0/reduce#0" in paths
        assert "run#0/device[0]#0" in paths
        assert "run#0/device[0]#0/outer[0]#0" in paths
        # every outer iteration appears exactly once
        outers = [p for p in paths if p.endswith("#0") and "/outer[" in p and p.count("/") == 2]
        assert len(outers) == search.scheme.nb

    def test_round_children(self):
        tr = Tracer()
        _run(tracer=tr, host_threads=1)
        paths = span_tree_shape(tr.records())
        prefix = "run#0/device[0]#0/outer[0]#0/round[0,0,0,0]#0"
        children = {
            p[len(prefix) + 1:] for p in paths if p.startswith(prefix + "/")
        }
        assert children == {
            "combine#0", "combine#1", "tensor4#0", "tensor4#1",
            "derive#0", "score#0", "reduce#0",
        }

    def test_round_count_matches_scheme(self):
        tr = Tracer()
        search, _ = _run(tracer=tr, host_threads=1)
        rounds = [p for p in span_tree_shape(tr.records()) if "/round[" in p]
        # each round path contributes itself + 7 children
        assert len([p for p in rounds if p.endswith("]#0")]) == search.scheme.n_rounds

    def test_threaded_device_spans_parent_under_run(self):
        tr = Tracer()
        _run(tracer=tr, host_threads=2, n_gpus=2, cache_mb=2)
        paths = span_tree_shape(tr.records())
        device_roots = [p for p in paths if p.startswith("device[")]
        assert device_roots == []  # never orphaned at the root
        assert "run#0/device[0]#0" in paths
        assert "run#0/device[1]#0" in paths

    def test_samples_partition_taxonomy(self):
        tr = Tracer()
        _run(tracer=tr, n_gpus=2, partition="samples")
        paths = span_tree_shape(tr.records())
        assert "run#0/device[0]#0" in paths
        assert any("/round[" in p for p in paths)

    def test_default_tracer_is_noop(self):
        search, result = _run(host_threads=1)
        assert search.tracer.records() == []
        assert result.solution is not None


class TestUnifiedMetrics:
    def test_operand_invariant_requests_eq_executed_plus_served(self):
        for cache_mb in (None, 2):
            search, _ = _run(cache_mb=cache_mb, host_threads=1)
            m = search.metrics
            for kind in ("combine", "sweep"):
                req = m.total("epi4_operand_requests_total", kind=kind)
                exe = m.total("epi4_operand_executed_total", kind=kind)
                srv = m.total("epi4_operand_cache_served_total", kind=kind)
                assert req == exe + srv
                assert req > 0
            if cache_mb:
                assert m.total("epi4_operand_cache_served_total") > 0

    def test_rounds_total_matches_scheme(self):
        search, _ = _run(host_threads=1)
        assert (
            search.metrics.total("epi4_rounds_total")
            == search.scheme.n_rounds
        )
        h = search.metrics.histogram("epi4_round_seconds", device="0")
        assert h is not None and h.total == search.scheme.n_rounds

    def test_phase_seconds_canonical_keys_preserved(self):
        _, result = _run(host_threads=1)
        assert set(result.phase_seconds) == {
            "encode", "pairwise", "combine", "tensor3", "tensor4", "score",
            "autotune",
        }
        for phase in ("pairwise", "combine", "tensor3", "tensor4", "score"):
            assert result.phase_seconds[phase] > 0

    def test_kernel_counters_absorbed_with_device_labels(self):
        search, result = _run(n_gpus=2, host_threads=1)
        m = search.metrics
        launches = m.sum_by("epi4_kernel_launches_total", "device")
        assert set(launches) == {"0", "1"}
        total = sum(
            sum(c.launches.values()) for c in result.per_device_counters
        )
        assert sum(launches.values()) == total
        assert m.total("epi4_transfer_bytes_total") == result.counters.transfer_bytes

    def test_wall_seconds_gauge_set(self):
        search, result = _run(host_threads=1)
        assert search.metrics.value("epi4_wall_seconds") == pytest.approx(
            result.wall_seconds
        )
        assert search.metrics.value(
            "epi4_quads_per_second_scaled"
        ) == pytest.approx(result.quads_per_second_scaled)

    def test_fresh_registry_per_run(self):
        search, _ = _run(host_threads=1)
        first = search.metrics.total("epi4_rounds_total")
        search.run()
        assert search.metrics.total("epi4_rounds_total") == first

    def test_user_registry_accumulates(self):
        registry = MetricsRegistry()
        search = Epi4TensorSearch(
            _dataset(),
            SearchConfig(block_size=8),
            metrics=registry,
        )
        search.run()
        once = registry.total("epi4_rounds_total")
        search.run()
        assert registry.total("epi4_rounds_total") == 2 * once
        assert search.metrics is registry


class TestPerDeviceAttribution:
    """The out-of-order completion fix (labeled series, not shared timers)."""

    def test_permuted_recording_orders_yield_identical_aggregates(self):
        # The exact samples a 2-device run records, committed in two
        # different completion orders — the registry must not care.
        samples = [
            ("epi4_phase_seconds_total", 0.25, {"phase": "tensor4", "device": "0"}),
            ("epi4_phase_seconds_total", 0.50, {"phase": "tensor4", "device": "1"}),
            ("epi4_phase_seconds_total", 0.125, {"phase": "score", "device": "0"}),
            ("epi4_rounds_total", 7, {"device": "0"}),
            ("epi4_rounds_total", 3, {"device": "1"}),
            ("epi4_operand_requests_total", 11, {"kind": "combine", "device": "1"}),
        ]
        a, b = MetricsRegistry(), MetricsRegistry()
        for name, value, labels in samples:
            a.inc(name, value, **labels)
        for name, value, labels in reversed(samples):
            b.inc(name, value, **labels)
        assert a.snapshot() == b.snapshot()
        assert a.to_prometheus() == b.to_prometheus()

    def test_threaded_run_keeps_per_device_phase_series(self):
        search, result = _run(
            n_gpus=2, host_threads=2, cache_mb=2, top_k=2
        )
        by_device = result.phase_seconds_by_device
        for phase in ("tensor4", "score"):
            devices = set(by_device[phase])
            # both workers recorded under their own label
            assert devices <= {"0", "1"}
            assert devices, f"no device series for {phase}"
        assert by_device["encode"] == {
            "host": pytest.approx(by_device["encode"]["host"])
        }

    def test_phase_totals_equal_sum_of_device_series(self):
        search, result = _run(n_gpus=2, host_threads=2, cache_mb=2)
        for phase, total in result.phase_seconds.items():
            per_device = result.phase_seconds_by_device.get(phase, {})
            assert total == pytest.approx(sum(per_device.values()))

    def test_normalized_snapshot_identical_seq_vs_threaded(self):
        # The budget must cover the full cacheable working set (including
        # the cross-round full3 triplet tables): below it, eviction counts
        # legitimately depend on thread interleaving.
        snaps = []
        # prune=False: prune counters depend on when the running top-k
        # threshold tightens, which thread interleaving perturbs.
        for threads in (1, 2):
            search, _ = _run(
                n_gpus=2, host_threads=threads, cache_mb=4, prune=False
            )
            snaps.append(normalized_snapshot(search.metrics))
        assert snaps[0] == snaps[1]

    def test_executed_assignment_covers_all_outer_iterations(self):
        search, result = _run(n_gpus=2, host_threads=2, cache_mb=2)
        ran = sorted(wi for worker in result.executed_assignment for wi in worker)
        assert ran == list(range(search.scheme.nb))
