"""Batched-GEMM round pipeline: fusion, overlap and launch accounting.

Three layers under test:

- the engine batch primitive (``matmul_popcount_batch``): stacked launches
  must be bit-identical to per-pair GEMMs, across engines and modes, and
  must record the fused problem count on their :class:`GemmShape`;
- the search pipeline (``batch_rounds`` / ``n_streams`` / ``overlap``):
  every configuration must reproduce the sequential seed results exactly —
  under faults, across partitions, and through checkpoint resume;
- the accounting: executed launch counts must match the analytic closed
  forms of :func:`repro.perfmodel.workload.search_gemm_launches`, while
  per-problem totals (``gemm_problems``) stay batch-invariant, and the
  operand ledger ``requests == executed + cache_served`` must hold under
  batching.
"""

import json

import numpy as np
import pytest

from repro.bitops.bitmatrix import BitMatrix
from repro.bitops.popcount import _popcount_u64_lut, popcount_u64
from repro.core.autotune import autotune_applyscore
from repro.core.search import Epi4TensorSearch, SearchConfig
from repro.datasets import generate_random_dataset
from repro.device.memory import estimate_search_memory
from repro.device.streams import HostStream, stage_lookahead
from repro.perfmodel.model import predict_search
from repro.perfmodel.workload import search_gemm_launches
from repro.tensor.engine import make_engine


def _run(ds, n_gpus=1, **cfg):
    search = Epi4TensorSearch(ds, SearchConfig(**cfg), n_gpus=n_gpus)
    return search, search.run()


def _solutions(result):
    return [(s.packed, s.score) for s in result.top_solutions]


def _rand_bits(rng, rows, bits):
    words = (bits + 63) // 64
    data = rng.integers(0, 2**63, size=(rows, words), dtype=np.uint64)
    if bits % 64:
        data[:, -1] &= (np.uint64(1) << np.uint64(bits % 64)) - np.uint64(1)
    return BitMatrix(data=data, n_bits=bits)


# --------------------------------------------------------------------- #
# Engine batch primitive


class TestMatmulPopcountBatch:
    @pytest.mark.parametrize("kind", ["and_popc", "xor_popc"])
    @pytest.mark.parametrize("mode", ["dense", "packed"])
    def test_bit_identical_to_per_pair(self, kind, mode):
        rng = np.random.default_rng(11)
        engine = make_engine(kind, mode=mode)
        a = _rand_bits(rng, 12, 130)
        rights = [_rand_bits(rng, r, 130) for r in (5, 9, 3)]
        # Shared left (fused), then a singleton with its own operands.
        other = (_rand_bits(rng, 4, 130), _rand_bits(rng, 6, 130))
        pairs = [(a, r) for r in rights] + [other]
        batched = engine.matmul_popcount_batch(pairs)
        engine.reset_shapes()
        for got, (x, y) in zip(batched, pairs):
            np.testing.assert_array_equal(got, engine.matmul_popcount(x, y))

    @pytest.mark.parametrize("kind", ["and_popc", "xor_popc"])
    def test_shared_right_stacks_lefts(self, kind):
        rng = np.random.default_rng(12)
        engine = make_engine(kind)
        b = _rand_bits(rng, 7, 192)
        lefts = [_rand_bits(rng, r, 192) for r in (4, 8)]
        batched = engine.matmul_popcount_batch([(left, b) for left in lefts])
        shapes = list(engine.last_shapes)
        engine.reset_shapes()
        assert [s.batch for s in shapes] == [2]
        assert shapes[0].m == sum(left.n_rows for left in lefts)
        for got, left in zip(batched, lefts):
            np.testing.assert_array_equal(
                got, engine.matmul_popcount(left, b)
            )

    def test_recorded_batch_counts(self):
        rng = np.random.default_rng(13)
        engine = make_engine("and_popc")
        a = _rand_bits(rng, 6, 64)
        rights = [_rand_bits(rng, 4, 64) for _ in range(5)]
        engine.matmul_popcount_batch([(a, r) for r in rights])
        assert [s.batch for s in engine.last_shapes] == [5]
        # fused_ops of the stacked launch covers all members.
        assert engine.last_shapes[0].n == 20

    def test_never_fuses_across_bit_widths(self):
        rng = np.random.default_rng(14)
        engine = make_engine("and_popc")
        a64 = _rand_bits(rng, 6, 64)
        r64 = _rand_bits(rng, 4, 64)
        a128 = _rand_bits(rng, 6, 128)
        r128 = _rand_bits(rng, 4, 128)
        with pytest.raises(ValueError):
            BitMatrix.vstack([r64, r128])
        out = engine.matmul_popcount_batch([(a64, r64), (a128, r128)])
        assert len(out) == 2
        assert all(s.batch == 1 for s in engine.last_shapes)


# --------------------------------------------------------------------- #
# Search pipeline bit-identity


GRID = [
    dict(batch_rounds=8),
    dict(batch_rounds=8, n_streams=2),
    dict(batch_rounds=1, n_streams=3),
    dict(batch_rounds=8, n_streams=2, overlap=False),
    dict(batch_rounds=8, cache_mb=float("inf")),
    dict(batch_rounds=4, sample_chunk_bits=64),
]


class TestPipelineBitIdentity:
    @pytest.mark.parametrize("engine_kind", ["and_popc", "xor_popc"])
    @pytest.mark.parametrize("mode", ["dense", "packed"])
    def test_engine_mode_grid(self, engine_kind, mode):
        ds = generate_random_dataset(16, 120, seed=21)
        base = dict(
            block_size=4, engine_kind=engine_kind, engine_mode=mode, top_k=4
        )
        _, ref = _run(ds, **base)
        for extra in GRID:
            _, got = _run(ds, **base, **extra)
            assert _solutions(got) == _solutions(ref), extra

    def test_multi_device_threaded_overlap(self):
        ds = generate_random_dataset(20, 128, seed=22)
        _, ref = _run(ds, block_size=4, top_k=3)
        _, got = _run(
            ds,
            n_gpus=2,
            block_size=4,
            top_k=3,
            batch_rounds=8,
            n_streams=2,
            host_threads=2,
        )
        assert _solutions(got) == _solutions(ref)

    def test_samples_partition(self):
        ds = generate_random_dataset(16, 160, seed=23)
        _, ref = _run(ds, block_size=4, top_k=3)
        _, got = _run(
            ds,
            n_gpus=2,
            block_size=4,
            top_k=3,
            partition="samples",
            batch_rounds=8,
            n_streams=2,
        )
        assert _solutions(got) == _solutions(ref)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_under_fault_injection(self, seed):
        ds = generate_random_dataset(16, 120, seed=24)
        _, ref = _run(ds, block_size=4, top_k=3)
        spec = f"transient:op=tensor4,count=2;corrupt:op=tensor4,count=1;seed={seed}"
        _, got = _run(
            ds,
            block_size=4,
            top_k=3,
            batch_rounds=8,
            n_streams=2,
            inject_faults=spec,
            max_retries=3,
        )
        assert _solutions(got) == _solutions(ref)

    def test_checkpoint_resume(self, tmp_path):
        ds = generate_random_dataset(16, 120, seed=25)
        base = dict(block_size=4, top_k=3, batch_rounds=8, n_streams=2)
        path = tmp_path / "batched.ckpt"
        search = Epi4TensorSearch(ds, SearchConfig(**base))
        full = search.run(checkpoint_path=path)
        payload = json.loads(path.read_text())
        assert sorted(payload["completed"]) == list(range(4))
        # Rewind to two committed iterations and resume.
        payload["completed"] = [0, 1]
        path.write_text(json.dumps(payload))
        resumed = Epi4TensorSearch(ds, SearchConfig(**base)).run(
            checkpoint_path=path
        )
        assert _solutions(resumed) == _solutions(full)
        # A resumed batched run also matches the sequential reference.
        _, ref = _run(ds, block_size=4, top_k=3)
        assert _solutions(resumed) == _solutions(ref)


# --------------------------------------------------------------------- #
# Launch accounting


class TestLaunchAccounting:
    @pytest.mark.parametrize("batch", [1, 4, 8])
    def test_launches_match_closed_forms(self, batch):
        ds = generate_random_dataset(24, 128, seed=31)
        _, res = _run(ds, block_size=4, batch_rounds=batch)
        nb = res.block_scheme.n_snps // 4
        expected = search_gemm_launches(nb, batch_rounds=batch)
        assert res.counters.launches["tensor4"] == expected["tensor4"]
        assert res.counters.launches["tensor3"] == expected["tensor3"]
        # Logical problem totals are batch-invariant and equal the
        # launch-per-problem seed counts.
        seed_launches = search_gemm_launches(nb, batch_rounds=1)
        assert res.counters.gemm_problems["tensor4"] == seed_launches["tensor4"]

    def test_cached_launches_match_closed_forms(self):
        ds = generate_random_dataset(24, 128, seed=31)
        _, res = _run(ds, block_size=4, batch_rounds=8, cache_mb=float("inf"))
        nb = res.block_scheme.n_snps // 4
        expected = search_gemm_launches(nb, batch_rounds=8, cache_operands=True)
        assert res.counters.launches["tensor4"] == expected["tensor4"]
        assert res.counters.launches["tensor3"] == expected["tensor3"]

    def test_overlap_only_uses_paired_sweeps(self):
        # batch_rounds=1 with overlap runs the pipeline, which pairs the
        # Y-level sweeps — the closed form models that with paired_sweeps.
        ds = generate_random_dataset(16, 120, seed=32)
        _, res = _run(ds, block_size=4, batch_rounds=1, n_streams=2)
        nb = res.block_scheme.n_snps // 4
        expected = search_gemm_launches(nb, batch_rounds=1, paired_sweeps=True)
        assert res.counters.launches["tensor3"] == expected["tensor3"]
        assert res.counters.launches["tensor4"] == expected["tensor4"]

    def test_launch_collapse_at_least_4x(self):
        nb = 12
        # tensor4 — the dominant kernel — collapses 6.5x at batch=8.
        seed = search_gemm_launches(nb, batch_rounds=1)
        batched = search_gemm_launches(nb, batch_rounds=8)
        assert seed["tensor4"] / batched["tensor4"] >= 4.0
        # With the operand cache on (tensor3 launches already minimal),
        # the *total* launch count also collapses >= 4x.
        seed_c = search_gemm_launches(nb, batch_rounds=1, cache_operands=True)
        batch_c = search_gemm_launches(nb, batch_rounds=8, cache_operands=True)
        assert sum(seed_c.values()) / sum(batch_c.values()) >= 4.0

    def test_operand_ledger_property(self):
        # requests == executed + cache_served, per operand kind, with and
        # without the cache, under batching + overlap.
        ds = generate_random_dataset(20, 128, seed=33)
        for cache_mb in (None, float("inf")):
            search, _ = _run(
                ds,
                block_size=4,
                batch_rounds=8,
                n_streams=2,
                cache_mb=cache_mb,
            )
            m = search.metrics
            for kind in ("combine", "sweep"):
                req = m.total("epi4_operand_requests_total", kind=kind)
                execd = m.total("epi4_operand_executed_total", kind=kind)
                served = m.total("epi4_operand_cache_served_total", kind=kind)
                assert req == execd + served, (cache_mb, kind)
                assert req > 0

    def test_gemm_metrics_exported(self):
        ds = generate_random_dataset(16, 120, seed=34)
        search, res = _run(ds, block_size=4, batch_rounds=8, n_streams=2)
        m = search.metrics
        assert m.total("epi4_gemm_launches_total", kernel="tensor4") == \
            res.counters.launches["tensor4"]
        assert m.total("epi4_gemm_problems_total", kernel="tensor4") == \
            res.counters.gemm_problems["tensor4"]
        # The overlap series exists (the stager may or may not have won
        # measurable overlap on a tiny workload, but the series records).
        assert "epi4_stage_overlap_seconds_total" in m.names()

    def test_stage_spans_recorded(self):
        from repro.obs.trace import Tracer

        ds = generate_random_dataset(16, 120, seed=35)
        tracer = Tracer()
        search = Epi4TensorSearch(
            ds,
            SearchConfig(block_size=4, batch_rounds=8, n_streams=2),
            tracer=tracer,
        )
        search.run()
        names = {r.name for r in tracer.records()}
        assert "stage" in names
        assert "round" in names
        # Stage spans parent under their outer iteration.
        stage_paths = {
            r.path for r in tracer.records() if r.name == "stage"
        }
        assert stage_paths and all("outer" in p for p in stage_paths)


# --------------------------------------------------------------------- #
# Satellites: popcount scratch, host stream, memory, model, autotune


class TestPopcountScratch:
    def test_lut_matches_reference(self):
        rng = np.random.default_rng(41)
        words = rng.integers(0, 2**63, size=(37, 5), dtype=np.uint64)
        np.testing.assert_array_equal(
            _popcount_u64_lut(words), popcount_u64(words)
        )

    def test_non_contiguous_input(self):
        rng = np.random.default_rng(42)
        words = rng.integers(0, 2**63, size=(16, 8), dtype=np.uint64)
        view = words[::2, 1::2]
        np.testing.assert_array_equal(
            _popcount_u64_lut(view), popcount_u64(np.ascontiguousarray(view))
        )

    def test_scratch_reused_not_reallocated(self):
        from repro.bitops import popcount as pc

        a = np.ones((8, 4), dtype=np.uint64)
        _popcount_u64_lut(a)
        buf1 = pc._LUT_SCRATCH.buf
        _popcount_u64_lut(a)
        assert pc._LUT_SCRATCH.buf is buf1  # same buffer, no churn
        _popcount_u64_lut(np.ones((64, 64), dtype=np.uint64))
        assert pc._LUT_SCRATCH.buf.size >= 64 * 64 * 8


class TestHostStream:
    def test_in_order_execution(self):
        order = []
        with HostStream("test-stream") as stream:
            futures = [
                stream.submit(lambda i=i: order.append(i)) for i in range(20)
            ]
            for f in futures:
                f.result()
        assert order == list(range(20))

    def test_exception_propagates(self):
        with HostStream() as stream:
            future = stream.submit(lambda: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                future.result()

    @pytest.mark.parametrize(
        "n_streams,expected", [(1, 0), (2, 1), (3, 2), (5, 4), (99, 4)]
    )
    def test_stage_lookahead(self, n_streams, expected):
        assert stage_lookahead(n_streams) == expected


class TestModelAndMemory:
    def test_memory_estimate_charges_stager(self):
        base = estimate_search_memory(32, 64, 64, 8)
        batched = estimate_search_memory(32, 64, 64, 8, batch_rounds=8)
        assert "round stager" not in base.components
        assert batched.components["round stager"] > 0
        assert batched.total_bytes > base.total_bytes

    def test_predict_search_launch_overhead(self):
        spec_kwargs = dict(n_snps=256, n_samples=4096, block_size=32)
        from repro.device.specs import A100_PCIE

        flat = predict_search(A100_PCIE, **spec_kwargs)
        taxed = predict_search(
            A100_PCIE, **spec_kwargs, launch_overhead_us=5.0
        )
        batched = predict_search(
            A100_PCIE, **spec_kwargs, batch_rounds=16, launch_overhead_us=5.0
        )
        assert flat.launch_seconds == 0.0
        assert taxed.launch_seconds > 0
        assert taxed.seconds > flat.seconds
        assert batched.gemm_launches < taxed.gemm_launches
        assert batched.launch_seconds < taxed.launch_seconds
        # FLOP time is invariant; only the launch tax moves.
        assert taxed.workload.tensor_ops == batched.workload.tensor_ops

    def test_gemm_problems_invariant(self):
        for nb in (3, 5, 12):
            seed = search_gemm_launches(nb, batch_rounds=1)
            for batch in (2, 4, 16):
                batched = search_gemm_launches(nb, batch_rounds=batch)
                assert batched["tensor4"] <= seed["tensor4"]
                assert batched["tensor3"] <= seed["tensor3"]


class TestAutotuneBatchAxis:
    def test_calibrates_and_adopts(self):
        ds = generate_random_dataset(16, 120, seed=51)
        search, res = _run(
            ds, block_size=4, top_k=3, batch_rounds=8, autotune=True
        )
        dec = search.autotune_decision
        assert dec is not None and dec.batch_rounds in dec.batch_timings
        assert search._tuned_batch_rounds == dec.batch_rounds
        gauge = search.metrics.value("epi4_applyscore_autotune_batch_rounds")
        assert gauge == dec.batch_rounds
        # Still bit-identical to the unbatched reference.
        _, ref = _run(ds, block_size=4, top_k=3)
        assert _solutions(res) == _solutions(ref)

    def test_axis_skipped_without_batching(self):
        ds = generate_random_dataset(16, 120, seed=51)
        search, _ = _run(ds, block_size=4, autotune=True)
        assert search.autotune_decision.batch_rounds is None
        assert search._tuned_batch_rounds == 1

    def test_calibration_engine_is_isolated(self):
        # The probe engine must not leak shapes into the live engine.
        ds = generate_random_dataset(16, 120, seed=52)
        search = Epi4TensorSearch(
            ds, SearchConfig(block_size=4, batch_rounds=8, autotune=True)
        )
        engine = search.cluster.gpus[0].engine
        decision = autotune_applyscore(
            search.encoded,
            __import__("repro.core.pairwise", fromlist=["pairw_pop"])
            .pairw_pop(search.encoded)
            .pairs,
            search._score_min,
            block_size=4,
            n_real_snps=search.scheme.n_real_snps,
            engine=engine,
            calibrate_batch=True,
        )
        assert decision.batch_rounds is not None
        assert engine.last_shapes == []


class TestDenseMemoization:
    def test_enabled_only_for_dense_batched(self):
        ds = generate_random_dataset(16, 120, seed=53)
        for mode, batch, expected in [
            ("dense", 8, True),
            ("dense", 1, False),
            ("packed", 8, False),
        ]:
            search, _ = _run(
                ds, block_size=4, engine_mode=mode, batch_rounds=batch
            )
            assert (
                search.cluster.gpus[0].engine.memoize_dense is expected
            ), (mode, batch)

    def test_memo_results_identical(self):
        rng = np.random.default_rng(54)
        a = _rand_bits(rng, 10, 200)
        b = _rand_bits(rng, 6, 200)
        plain = make_engine("and_popc")
        memo = make_engine("and_popc")
        memo.memoize_dense = True
        np.testing.assert_array_equal(
            plain.matmul_popcount(a, b), memo.matmul_popcount(a, b)
        )
        # Second call reuses the cached unpacking, same bits.
        np.testing.assert_array_equal(
            plain.matmul_popcount(a, b), memo.matmul_popcount(a, b)
        )
        assert a.dense_memo_nbytes > 0
