"""Unit tests for the round-operand cache (LRU, byte budget, single-flight)."""

import threading

import numpy as np
import pytest

from repro.core.operand_cache import UNBOUNDED, OperandCache


def _arr(nbytes: int) -> np.ndarray:
    assert nbytes % 8 == 0
    return np.zeros(nbytes // 8, dtype=np.int64)


class TestCreate:
    def test_none_disables(self):
        assert OperandCache.create(None) is None

    def test_zero_disables(self):
        assert OperandCache.create(0) is None

    def test_negative_disables(self):
        assert OperandCache.create(-5) is None

    def test_unbounded(self):
        cache = OperandCache.create(float("inf"))
        assert cache is not None
        assert cache.capacity_bytes == UNBOUNDED

    def test_mb_budget(self):
        cache = OperandCache.create(2.5)
        assert cache.capacity_bytes == 2.5e6

    def test_direct_zero_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity_bytes"):
            OperandCache(0)


class TestBasics:
    def test_miss_then_hit(self):
        cache = OperandCache(UNBOUNDED)
        calls = []
        value, hit, evicted = cache.get_or_compute(
            "k", lambda: calls.append(1) or _arr(64)
        )
        assert not hit and evicted == 0 and calls == [1]
        value2, hit2, _ = cache.get_or_compute("k", lambda: calls.append(2))
        assert hit2 and calls == [1]
        assert value2 is value

    def test_get_noncomputing(self):
        cache = OperandCache(UNBOUNDED)
        assert cache.get("missing") is None
        cache.get_or_compute("k", lambda: _arr(8))
        assert cache.get("k") is not None
        s = cache.stats
        assert s.hits == 1 and s.misses == 2  # get-miss + compute-miss

    def test_stats_and_len(self):
        cache = OperandCache(1024)
        cache.get_or_compute("a", lambda: _arr(256))
        cache.get_or_compute("b", lambda: _arr(256))
        cache.get_or_compute("a", lambda: _arr(256))
        s = cache.stats
        assert (s.hits, s.misses, s.evictions) == (1, 2, 0)
        assert s.current_bytes == 512 == s.peak_bytes
        assert s.hit_rate == pytest.approx(1 / 3)
        assert len(cache) == 2

    def test_custom_nbytes_extractor(self):
        cache = OperandCache(100)
        cache.get_or_compute(
            "chunks", lambda: [_arr(24), _arr(16)], nbytes=lambda v: 40
        )
        assert cache.stats.current_bytes == 40

    def test_values_frozen(self):
        cache = OperandCache(UNBOUNDED)
        value, _, _ = cache.get_or_compute("k", lambda: _arr(64))
        with pytest.raises(ValueError):
            value[0] = 1

    def test_clear_preserves_stats(self):
        cache = OperandCache(UNBOUNDED)
        cache.get_or_compute("a", lambda: _arr(8))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 1
        assert cache.stats.evictions == 1
        assert cache.stats.current_bytes == 0


class TestEviction:
    def test_lru_order(self):
        cache = OperandCache(3 * 64)
        for key in "abc":
            cache.get_or_compute(key, lambda: _arr(64))
        cache.get_or_compute("a", lambda: None)  # promote a
        _, _, evicted = cache.get_or_compute("d", lambda: _arr(64))
        assert evicted == 1
        assert cache.get("b") is None  # least recent went
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.get("d") is not None

    def test_budget_respected(self):
        cache = OperandCache(1000)
        for i in range(50):
            cache.get_or_compute(i, lambda: _arr(200))
        assert cache.stats.current_bytes <= 1000
        assert len(cache) == 5
        assert cache.stats.evictions == 45
        assert cache.stats.peak_bytes <= 1000

    def test_oversized_value_rejected_not_stored(self):
        cache = OperandCache(100)
        cache.get_or_compute("small", lambda: _arr(64))
        value, hit, evicted = cache.get_or_compute("huge", lambda: _arr(1024))
        assert not hit and evicted == 1  # rejection surfaces as an eviction
        assert value.nbytes == 1024  # still returned to the caller
        assert cache.get("huge") is None
        assert cache.get("small") is not None  # resident set untouched

    def test_multi_entry_eviction_count(self):
        cache = OperandCache(4 * 64)
        for key in "abcd":
            cache.get_or_compute(key, lambda: _arr(64))
        _, _, evicted = cache.get_or_compute("big", lambda: _arr(3 * 64))
        assert evicted == 3
        assert len(cache) == 2


class TestInvalidate:
    def test_removes_entry_and_accounts_bytes(self):
        cache = OperandCache(UNBOUNDED)
        cache.get_or_compute("a", lambda: _arr(64))
        cache.get_or_compute("b", lambda: _arr(128))
        assert cache.invalidate("a") is True
        assert cache.get("a") is None
        assert cache.get("b") is not None
        assert cache.stats.current_bytes == 128
        assert cache.stats.evictions == 1

    def test_absent_key_is_noop(self):
        cache = OperandCache(UNBOUNDED)
        cache.get_or_compute("a", lambda: _arr(64))
        assert cache.invalidate("missing") is False
        assert cache.stats.current_bytes == 64
        assert cache.stats.evictions == 0

    def test_recompute_after_invalidate(self):
        # The degraded-round purge: after invalidation the next request is
        # a miss and re-runs the factory.
        cache = OperandCache(UNBOUNDED)
        calls = []
        factory = lambda: (calls.append(1), _arr(64))[1]  # noqa: E731
        cache.get_or_compute("k", factory)
        cache.invalidate("k")
        _, hit, _ = cache.get_or_compute("k", factory)
        assert not hit
        assert len(calls) == 2


class TestSingleFlight:
    def test_concurrent_misses_compute_once(self):
        cache = OperandCache(UNBOUNDED)
        n_threads = 8
        calls = []
        gate = threading.Barrier(n_threads)
        results = []

        def factory():
            calls.append(threading.get_ident())
            return _arr(64)

        def worker():
            gate.wait()
            value, hit, _ = cache.get_or_compute("k", factory)
            results.append((id(value), hit))

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(calls) == 1  # exactly one computation
        assert len({vid for vid, _ in results}) == 1  # same object to all
        assert sum(1 for _, hit in results if not hit) == 1
        s = cache.stats
        assert s.misses == 1 and s.hits == n_threads - 1

    def test_factory_exception_releases_key(self):
        cache = OperandCache(UNBOUNDED)
        with pytest.raises(RuntimeError, match="boom"):
            cache.get_or_compute("k", lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        # The key must not be wedged: a retry computes normally.
        value, hit, _ = cache.get_or_compute("k", lambda: _arr(8))
        assert not hit and value.nbytes == 8

    def test_thread_hammer_distinct_keys(self):
        cache = OperandCache(64 * 10)  # small: forces eviction churn
        errors = []

        def worker(seed):
            rng = np.random.default_rng(seed)
            try:
                for _ in range(200):
                    key = int(rng.integers(0, 30))
                    value, _, _ = cache.get_or_compute(
                        key, lambda k=key: np.full(8, k, dtype=np.int64)
                    )
                    if not (value == key).all():
                        errors.append(f"corrupt value for {key}")
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(repr(exc))

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        s = cache.stats
        assert s.hits + s.misses == 6 * 200
        assert s.current_bytes <= 64 * 10
