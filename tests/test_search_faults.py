"""Acceptance tests: searches under injected faults are bit-identical.

The contract (ISSUE acceptance criteria): with fault injection enabled —
transient faults, a persistent device failure, and forced self-check
degradation — :meth:`Epi4TensorSearch.run` returns bit-identical
``top_solutions`` to the fault-free baseline across both engines and both
partitions, and the :class:`FaultLog` accounts for every injected fault.
A search with all-but-one device quarantined still completes; a
corrupted-checkpoint resume recovers without losing committed ``Wi``
iterations beyond the rotated backup.

The whole suite is marked ``faults`` so CI can replay it under a seed
matrix (``EPI4TENSOR_FAULT_SEED``).
"""

import os
import warnings

import pytest

from repro.core.checkpoint import SearchCheckpoint, search_fingerprint
from repro.core.resilience import SearchAbortedError
from repro.core.search import Epi4TensorSearch, SearchConfig
from repro.datasets import generate_random_dataset

pytestmark = pytest.mark.faults

#: CI replays this suite under several seeds; every seed must pass.
FAULT_SEED = int(os.environ.get("EPI4TENSOR_FAULT_SEED", "0"))


def _dataset(n_snps=8, n_samples=96, seed=5):
    return generate_random_dataset(n_snps, n_samples, seed=seed)


def _solutions(result):
    return [(s.score, s.packed) for s in result.top_solutions]


def _run(dataset, *, n_gpus=1, **config_kwargs):
    config_kwargs.setdefault("block_size", 4)
    config_kwargs.setdefault("top_k", 3)
    config_kwargs.setdefault("backoff_base_ms", 0.0)  # keep tests fast
    search = Epi4TensorSearch(
        dataset, SearchConfig(**config_kwargs), n_gpus=n_gpus
    )
    return search, search.run()


class TestBitIdenticalUnderFaults:
    @pytest.mark.parametrize("engine_kind", ["and_popc", "xor_popc"])
    @pytest.mark.parametrize("partition", ["outer", "samples"])
    def test_transient_faults_all_engines_and_partitions(
        self, engine_kind, partition
    ):
        ds = _dataset()
        n_gpus = 2 if partition == "samples" else 1
        _, baseline = _run(
            ds, n_gpus=n_gpus, engine_kind=engine_kind, partition=partition
        )
        spec = f"transient:op=tensor4,count=3;seed={FAULT_SEED}"
        search, faulty = _run(
            ds,
            n_gpus=n_gpus,
            engine_kind=engine_kind,
            partition=partition,
            inject_faults=spec,
            max_retries=3,
        )
        assert _solutions(faulty) == _solutions(baseline)
        assert faulty.fault_log.total_failures == 3
        assert faulty.fault_log.total_retries >= 3

    def test_persistent_device_failure_quarantines_and_matches(self):
        ds = _dataset(12, 96)
        _, baseline = _run(ds, n_gpus=2, host_threads=2)
        spec = f"persistent:device=1,at=3;seed={FAULT_SEED}"
        search, faulty = _run(
            ds,
            n_gpus=2,
            host_threads=2,
            inject_faults=spec,
            max_retries=1,
            quarantine_after=1,
        )
        assert _solutions(faulty) == _solutions(baseline)
        assert faulty.fault_log.quarantined_devices == [1]
        assert search.cluster.quarantined == {1}
        assert faulty.fault_log.total_requeues >= 1

    @pytest.mark.parametrize("selfcheck", [False, True])
    def test_corruption_degrades_round_and_matches(self, selfcheck):
        ds = _dataset()
        _, baseline = _run(ds, selfcheck=selfcheck)
        spec = f"corrupt:at=1;seed={FAULT_SEED}"
        search, faulty = _run(
            ds, selfcheck=selfcheck, inject_faults=spec
        )
        assert _solutions(faulty) == _solutions(baseline)
        assert faulty.fault_log.total_degraded_rounds == 1
        # Silent corruption never surfaces as a launch *failure*.
        assert faulty.fault_log.total_failures == 0

    def test_probabilistic_faults_seeded_from_environment(self):
        ds = _dataset()
        _, baseline = _run(ds, n_gpus=2, host_threads=2)
        spec = f"transient:op=tensor4,p=0.05;seed={FAULT_SEED}"
        search, faulty = _run(
            ds,
            n_gpus=2,
            host_threads=2,
            inject_faults=spec,
            max_retries=6,
            quarantine_after=50,
        )
        assert _solutions(faulty) == _solutions(baseline)
        # Deterministic per seed: a replay injects the same fault count.
        search2, faulty2 = _run(
            ds,
            n_gpus=2,
            host_threads=2,
            inject_faults=spec,
            max_retries=6,
            quarantine_after=50,
        )
        assert search2._injector.stats.total == search._injector.stats.total
        assert _solutions(faulty2) == _solutions(baseline)


class TestFaultAccounting:
    def test_every_injected_fault_is_accounted(self):
        ds = _dataset(12, 96)
        spec = (
            "transient:op=tensor4,count=2;"
            "corrupt:at=1;"
            f"persistent:device=1,at=20;seed={FAULT_SEED}"
        )
        search, result = _run(
            ds,
            n_gpus=2,
            host_threads=2,
            inject_faults=spec,
            max_retries=2,
            quarantine_after=1,
        )
        stats = search._injector.stats
        log = result.fault_log
        # Every raised launch fault surfaces as one recorded failure.
        assert stats.transient + stats.persistent == log.total_failures
        # Every silent corruption is caught and lands in a degraded round.
        assert stats.corrupt == 1
        assert log.total_degraded_rounds == 1
        # Device counters tally every injection (raised or silent).
        assert result.counters.faults_injected == stats.total
        assert log.any_activity

    def test_fault_free_run_reports_no_activity(self):
        ds = _dataset()
        search, result = _run(ds)
        assert result.fault_log is not None
        assert not result.fault_log.any_activity
        assert result.counters.faults_injected == 0


class TestDegradedFleet:
    def test_all_but_one_device_quarantined_still_completes(self):
        ds = _dataset(12, 96)
        _, baseline = _run(ds, n_gpus=3, host_threads=3)
        spec = (
            "persistent:device=1,at=1;persistent:device=2,at=1;"
            f"seed={FAULT_SEED}"
        )
        search, faulty = _run(
            ds,
            n_gpus=3,
            host_threads=3,
            inject_faults=spec,
            max_retries=0,
            quarantine_after=1,
        )
        assert _solutions(faulty) == _solutions(baseline)
        assert sorted(faulty.fault_log.quarantined_devices) == [1, 2]
        assert search.cluster.active_gpus == [search.cluster.gpus[0]]

    def test_single_device_persistent_failure_aborts(self):
        ds = _dataset()
        search = Epi4TensorSearch(
            ds,
            SearchConfig(
                block_size=4,
                inject_faults="persistent:device=0,at=1",
                max_retries=1,
                backoff_base_ms=0.0,
            ),
            n_gpus=1,
        )
        with pytest.raises(SearchAbortedError):
            search.run()

    def test_samples_partition_aborts_when_a_device_dies(self):
        # Sample chunks are irreplaceable: every device owns part of every
        # round, so a dead device ends the search after retries.  (Needs
        # >= 2 sample words per class so device 1 actually owns a chunk.)
        ds = _dataset(8, 256)
        search = Epi4TensorSearch(
            ds,
            SearchConfig(
                block_size=4,
                partition="samples",
                inject_faults="persistent:device=1,at=4",
                max_retries=1,
                backoff_base_ms=0.0,
            ),
            n_gpus=2,
        )
        with pytest.raises(SearchAbortedError):
            search.run()

    def test_fresh_run_after_aborted_run_is_clean(self):
        # Resilience state must reset per run(): disable injection and the
        # same search object completes normally.
        ds = _dataset()
        search = Epi4TensorSearch(
            ds,
            SearchConfig(
                block_size=4,
                inject_faults="persistent:device=0,at=1",
                max_retries=0,
                backoff_base_ms=0.0,
            ),
            n_gpus=1,
        )
        with pytest.raises(SearchAbortedError):
            search.run()
        search._fault_plan = None  # operator fixed the machine
        result = search.run()
        _, baseline = _run(ds, top_k=1)
        assert [(s.score, s.packed) for s in result.top_solutions] == [
            (s.score, s.packed) for s in baseline.top_solutions
        ][:1]


class TestCheckpointRecoveryUnderFaults:
    def test_corrupted_checkpoint_resume_recovers_committed_work(self, tmp_path):
        ds = _dataset(12, 96)  # 3 outer iterations => >= 2 checkpoint saves
        ckpt = tmp_path / "search.ckpt"
        config = dict(block_size=4, top_k=3, backoff_base_ms=0.0)
        _, baseline = _run(ds, **config)

        # Run 1: a fault storm on the last outer iteration aborts the
        # search after the earlier iterations have committed.
        search1 = Epi4TensorSearch(
            ds,
            SearchConfig(
                inject_faults="transient:iter=2,count=500",
                max_retries=1,
                **config,
            ),
            n_gpus=1,
        )
        with pytest.raises(SearchAbortedError):
            search1.run(checkpoint_path=ckpt)
        assert ckpt.exists()
        assert ckpt.with_suffix(".ckpt.bak").exists()

        # Pre-emption garbles the main checkpoint file.
        ckpt.write_text("{\"version\": 2, \"truncat")

        # The loader falls back to the rotated backup: committed work is
        # only lost as far back as the backup reaches (>= 1 iteration).
        fingerprint = search_fingerprint(
            search1.encoded.n_snps,
            search1.encoded.n_real_snps,
            search1.encoded.n_controls,
            search1.encoded.n_cases,
            4,
            search1.cluster.gpus[0].engine.name,
            search1._score_name,
            3,
            "outer",
            1,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # fallback warns, fresh would too
            with pytest.warns(RuntimeWarning, match="corrupted"):
                recovered = SearchCheckpoint.load(ckpt, fingerprint)
        assert recovered.completed  # committed iterations survived

        # Run 2: fault-free resume completes and matches the baseline.
        search2 = Epi4TensorSearch(
            ds, SearchConfig(**config), n_gpus=1
        )
        resumed = search2.run(checkpoint_path=ckpt)
        assert _solutions(resumed) == _solutions(baseline)


class TestHangWatchdog:
    """Acceptance: hang faults cancelled by the watchdog are recovered
    bit-identically, with watchdog activity visible in the metrics."""

    def test_hang_faults_bit_identical_with_deadline(self):
        ds = _dataset()
        _, baseline = _run(ds)
        spec = f"hang:op=tensor4,count=2;seed={FAULT_SEED}"
        search, faulty = _run(
            ds,
            inject_faults=spec,
            deadline_ms=50.0,
            max_retries=3,
        )
        assert _solutions(faulty) == _solutions(baseline)
        assert search.metrics.total("epi4_watchdog_trips_total") == 2
        assert search.fault_log.failures_by_kind().get("hang", 0) == 2

    def test_hang_spec_without_deadline_rejected_up_front(self):
        with pytest.raises(ValueError, match="deadline_ms"):
            SearchConfig(inject_faults="hang:op=tensor4", block_size=4)

    def test_deadline_without_hangs_is_harmless(self):
        ds = _dataset()
        _, baseline = _run(ds)
        search, timed = _run(ds, deadline_ms=60_000.0)
        assert _solutions(timed) == _solutions(baseline)
        assert search.fault_log.total_watchdog_trips == 0


class TestMemoryPressure:
    """Acceptance: oom faults walk the degradation ladder instead of
    aborting, and the reduced footprint never changes the result."""

    def test_oom_faults_bit_identical_via_ladder(self):
        ds = _dataset()
        _, baseline = _run(ds)
        spec = f"oom:op=tensor4,count=3;seed={FAULT_SEED}"
        search, faulty = _run(ds, inject_faults=spec, max_retries=0)
        assert _solutions(faulty) == _solutions(baseline)
        assert search.metrics.total("epi4_pressure_degrade_total") == 3
        # The ladder consumed no retry budget: no device failures logged.
        assert search.fault_log.failures_by_kind() == {}

    def test_ladder_exhaustion_propagates(self):
        from repro.core.pressure import LADDER
        from repro.device.memory import DeviceMemoryError

        ds = _dataset()
        spec = f"oom:op=tensor4,count={len(LADDER) + 2};seed={FAULT_SEED}"
        with pytest.raises(DeviceMemoryError):
            _run(ds, inject_faults=spec, max_retries=0)

    def test_pressure_off_propagates_oom_immediately(self):
        from repro.device.memory import DeviceMemoryError

        ds = _dataset()
        spec = f"oom:op=tensor4,count=1;seed={FAULT_SEED}"
        with pytest.raises(DeviceMemoryError):
            _run(ds, inject_faults=spec, pressure=False, max_retries=0)

    def test_relaxation_reexpands_after_clean_rounds(self):
        ds = _dataset(n_snps=16)
        spec = f"oom:op=tensor4,count=1;seed={FAULT_SEED}"
        search, result = _run(
            ds,
            inject_faults=spec,
            max_retries=0,
            pressure_relax_rounds=1,
        )
        _, baseline = _run(_dataset(n_snps=16))
        assert _solutions(result) == _solutions(baseline)
        assert search.fault_log.total_pressure_expands >= 1
        assert search.metrics.value("epi4_pressure_level") == 0.0


class TestQuarantineProbation:
    """Acceptance: a quarantined device serves probation and is either
    readmitted after a clean canary or retired for good."""

    def _probation_run(self, spec, **kwargs):
        ds = generate_random_dataset(32, 160, seed=11)
        kwargs.setdefault("max_retries", 0)
        kwargs.setdefault("quarantine_after", 1)
        kwargs.setdefault("probation_rounds", 1)
        kwargs.setdefault("host_threads", 2)
        return ds, *_run(ds, n_gpus=2, inject_faults=spec, **kwargs)

    def test_transient_offender_is_readmitted_after_canary(self):
        spec = f"transient:device=0,op=tensor4,count=2;seed={FAULT_SEED}"
        ds, search, result = self._probation_run(spec)
        _, baseline = _run(generate_random_dataset(32, 160, seed=11))
        assert _solutions(result) == _solutions(baseline)
        fl = search.fault_log
        assert fl.total_canaries >= 1
        assert fl.total_readmits == 1
        # The readmitted device went back to useful work.
        executed_by_dev0 = result.executed_assignment[0]
        assert executed_by_dev0, "device 0 never executed after readmission"

    def test_persistent_offender_retires_and_fleet_completes(self):
        spec = f"persistent:device=0,op=tensor4;seed={FAULT_SEED}"
        ds, search, result = self._probation_run(spec)
        _, baseline = _run(generate_random_dataset(32, 160, seed=11))
        assert _solutions(result) == _solutions(baseline)
        fl = search.fault_log
        # Every canary failed; the healthy device finished the queue.
        assert fl.total_readmits == 0
        assert 0 in fl.quarantined_devices
        assert sorted(
            wi for dev in result.executed_assignment for wi in dev
        ) == sorted(set(range(result.block_scheme.nb)))


class TestElasticConfigValidation:
    @pytest.mark.parametrize("bad", [0.0, -5.0])
    def test_bad_deadline_rejected(self, bad):
        with pytest.raises(ValueError, match="deadline_ms"):
            SearchConfig(deadline_ms=bad)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_bad_pressure_relax_rejected(self, bad):
        with pytest.raises(ValueError, match="pressure_relax_rounds"):
            SearchConfig(pressure_relax_rounds=bad)

    @pytest.mark.parametrize("bad", [0, -3])
    def test_bad_probation_rounds_rejected(self, bad):
        with pytest.raises(ValueError, match="probation_rounds"):
            SearchConfig(probation_rounds=bad)
