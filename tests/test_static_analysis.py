"""Tier-1 gate: the epi4lint analyzer holds zero findings on ``src/``.

This is the enforcement half of the analyzer: the whole source tree
must pass every determinism/concurrency/durability/coherence rule, any
suppression must carry a written reason, and seeding a violation into a
copy of a deterministic module must make the gate fail (so the gate is
demonstrably not vacuous).
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

from repro.analysis import analyze_paths
from repro.analysis.cli import main
from repro.analysis.registry import FAMILY_EXIT_BITS

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"


def _format(findings):
    return "\n".join(
        f"{f.path}:{f.line}:{f.col}: {f.rule} {f.message}" for f in findings
    )


class TestSourceTreeIsClean:
    def test_zero_findings_on_src(self):
        result = analyze_paths([str(SRC)], repo_root=str(REPO_ROOT))
        assert result.findings == [], (
            "epi4lint found violations in src/ — fix them or suppress "
            "with a written reason:\n" + _format(result.findings)
        )

    def test_every_suppression_carries_a_reason(self):
        result = analyze_paths([str(SRC)], repo_root=str(REPO_ROOT))
        for finding in result.suppressed:
            assert finding.suppress_reason, (
                f"suppressed finding without a reason: {finding}"
            )

    def test_scans_the_whole_tree(self):
        result = analyze_paths([str(SRC)], repo_root=str(REPO_ROOT))
        assert result.files_scanned >= 100
        assert len(result.rules_run) == 13


class TestCli:
    def test_clean_run_exits_zero(self, capsys):
        code = main([str(SRC), "--repo-root", str(REPO_ROOT)])
        out = capsys.readouterr().out
        assert code == 0
        assert "clean" in out

    def test_json_output_parses(self, capsys):
        code = main([str(SRC), "--repo-root", str(REPO_ROOT),
                     "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert code == 0
        assert doc["version"] == 1
        assert doc["findings"] == []
        assert doc["exit_code"] == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("EPI400", "EPI401", "EPI411", "EPI421", "EPI431"):
            assert rule_id in out

    def test_unknown_select_errors(self, capsys):
        assert main([str(SRC), "--select", "EPI999"]) == 2


class TestSeededViolationsFail:
    """Copy real modules, inject the canonical violations, and require
    the gate to catch them — proof the rules bind to this codebase."""

    def test_wallclock_seeded_into_merge(self, tmp_path, capsys):
        dist = tmp_path / "repro" / "dist"
        dist.mkdir(parents=True)
        text = (SRC / "repro" / "dist" / "merge.py").read_text()
        text += (
            "\n\nimport time as _seeded_clock\n\n"
            "def _seeded_stamp():\n"
            "    return _seeded_clock.time()\n"
        )
        (dist / "merge.py").write_text(text)
        code = main([str(tmp_path), "--select", "EPI401"])
        out = capsys.readouterr().out
        assert code == FAMILY_EXIT_BITS["determinism"]
        assert "EPI401" in out and "time.time()" in out

    def test_dropped_lock_seeded_into_reducer(self, tmp_path, capsys):
        core = tmp_path / "repro" / "core"
        core.mkdir(parents=True)
        text = (SRC / "repro" / "core" / "reduction.py").read_text()
        assert "with self._lock:" in text
        (core / "reduction.py").write_text(
            text.replace("with self._lock:", "if True:", 1)
        )
        code = main([str(tmp_path), "--select", "EPI411"])
        out = capsys.readouterr().out
        assert code == FAMILY_EXIT_BITS["concurrency"]
        assert "EPI411" in out and "TopKReducer" in out

    def test_dropped_fsync_seeded_into_exporters(self, tmp_path, capsys):
        obs = tmp_path / "repro" / "obs"
        obs.mkdir(parents=True)
        text = (SRC / "repro" / "obs" / "exporters.py").read_text()
        assert "os.fsync(fh.fileno())" in text
        (obs / "exporters.py").write_text(
            text.replace("os.fsync(fh.fileno())", "pass", 1)
        )
        code = main([str(tmp_path), "--select", "EPI421,EPI422,EPI423"])
        out = capsys.readouterr().out
        assert code == FAMILY_EXIT_BITS["durability"]
        assert "EPI421" in out

    def test_untouched_copies_stay_clean(self, tmp_path):
        """The seeded tests above fail because of the seeds, not because
        copying out of the tree breaks module resolution."""
        for rel in ("dist/merge.py", "core/reduction.py", "obs/exporters.py"):
            dest = tmp_path / "repro" / rel
            dest.parent.mkdir(parents=True, exist_ok=True)
            shutil.copyfile(SRC / "repro" / rel, dest)
        result = analyze_paths(
            [str(tmp_path)],
            select=["EPI401", "EPI411", "EPI421", "EPI422", "EPI423"],
            repo_root=None,
        )
        assert result.findings == [], _format(result.findings)
