"""Tests for permutation-based significance testing."""

import numpy as np
import pytest

from repro.datasets import generate_epistatic_dataset, generate_random_dataset
from repro.scoring.significance import (
    permutation_pvalue,
    search_max_statistic_pvalue,
)


class TestPerQuadPvalue:
    def test_planted_interaction_is_significant(self):
        ds, quad = generate_epistatic_dataset(
            10, 3000, interacting_snps=(0, 3, 6, 9), effect_size=2.6, seed=1
        )
        result = permutation_pvalue(ds, quad, n_permutations=99, seed=0)
        assert result.p_value <= 0.05

    def test_null_quad_is_not_significant(self):
        ds = generate_random_dataset(10, 500, seed=2)
        result = permutation_pvalue(ds, (1, 3, 5, 7), n_permutations=99, seed=0)
        assert result.p_value > 0.05

    def test_pvalue_never_zero(self):
        ds = generate_random_dataset(8, 100, seed=3)
        result = permutation_pvalue(ds, (0, 1, 2, 3), n_permutations=9, seed=0)
        assert result.p_value >= 1 / 10

    def test_null_distribution_shape(self):
        ds = generate_random_dataset(8, 100, seed=4)
        result = permutation_pvalue(ds, (0, 1, 2, 3), n_permutations=25, seed=0)
        assert result.null_scores.shape == (25,)
        assert np.isfinite(result.null_scores).all()
        assert np.isfinite(result.observed_score)

    def test_works_for_lower_orders(self):
        ds = generate_random_dataset(8, 200, seed=5)
        pair = permutation_pvalue(ds, (2, 5), n_permutations=19, seed=0)
        triple = permutation_pvalue(ds, (1, 4, 6), n_permutations=19, seed=0)
        assert 0 < pair.p_value <= 1
        assert 0 < triple.p_value <= 1

    def test_validation(self):
        ds = generate_random_dataset(8, 50, seed=0)
        with pytest.raises(ValueError, match="n_permutations"):
            permutation_pvalue(ds, (0, 1, 2, 3), n_permutations=0)
        with pytest.raises(ValueError, match="distinct"):
            permutation_pvalue(ds, (0, 0, 1, 2))

    def test_deterministic_with_seed(self):
        ds = generate_random_dataset(8, 120, seed=6)
        a = permutation_pvalue(ds, (0, 2, 4, 6), n_permutations=29, seed=42)
        b = permutation_pvalue(ds, (0, 2, 4, 6), n_permutations=29, seed=42)
        assert a.p_value == b.p_value
        np.testing.assert_array_equal(a.null_scores, b.null_scores)


class TestSearchMaxStatistic:
    def test_planted_interaction_survives_family_wise(self):
        ds, _ = generate_epistatic_dataset(
            8, 2500, interacting_snps=(0, 2, 4, 6), effect_size=3.0, seed=7
        )
        result = search_max_statistic_pvalue(
            ds, n_permutations=9, block_size=4, seed=0
        )
        assert result.p_value <= 0.1

    def test_pure_noise_best_quad_not_significant(self):
        ds = generate_random_dataset(8, 300, seed=8)
        result = search_max_statistic_pvalue(
            ds, n_permutations=19, block_size=4, seed=0
        )
        # The best-of-all-quads statistic on noise should look like the
        # permutation null.
        assert result.p_value > 0.05

    def test_validation(self):
        ds = generate_random_dataset(8, 50, seed=0)
        with pytest.raises(ValueError, match="n_permutations"):
            search_max_statistic_pvalue(ds, n_permutations=0)
