"""Crash-injection harness: SIGKILL + torn-journal resume is exactly-once.

Two layers, matching the acceptance criteria:

- **Truncation matrix** (in-process, exhaustive): the journal of a full
  reference run is truncated at *every* byte offset; each truncated copy
  is resumed and must reproduce the fault-free top-k bit-identically,
  with no outer iteration scored twice (every re-executed iteration is
  exactly one the truncation un-committed).
- **SIGKILL harness** (subprocess): a child process runs the search and
  kills itself with ``SIGKILL`` mid-commit — after N durable commits,
  with a configurable partial tail of the next frame flushed — leaving
  exactly the on-disk state a real crash would.  The parent resumes from
  the survivor journal and must converge to the same top-k.

The suite is marked ``chaos`` (a superset marker of ``faults``) so CI can
run it in a dedicated job over a seed matrix (``EPI4TENSOR_CHAOS_SEED``).
"""

import os
import signal
import subprocess
import sys
import warnings

import pytest

from repro.core.search import Epi4TensorSearch, SearchConfig
from repro.datasets import generate_random_dataset

pytestmark = [pytest.mark.faults, pytest.mark.chaos]

#: CI replays this suite under several dataset seeds; all must pass.
CHAOS_SEED = int(os.environ.get("EPI4TENSOR_CHAOS_SEED", "0"))

_N_SNPS = 20  # -> 5 outer iterations at block_size=4
_N_SAMPLES = 96
_BLOCK = 4
_TOP_K = 3


def _dataset():
    return generate_random_dataset(_N_SNPS, _N_SAMPLES, seed=11 + CHAOS_SEED)


def _config(**kwargs):
    kwargs.setdefault("block_size", _BLOCK)
    kwargs.setdefault("top_k", _TOP_K)
    return SearchConfig(**kwargs)


def _solutions(result):
    return [(s.score, s.packed) for s in result.top_solutions]


def _executed(result):
    return [wi for per_dev in result.executed_assignment for wi in per_dev]


class TestTruncationMatrix:
    def test_resume_from_every_byte_offset_is_exactly_once(self, tmp_path):
        ds = _dataset()
        reference = Epi4TensorSearch(ds, _config()).run()
        full = tmp_path / "full.journal"
        jres = Epi4TensorSearch(ds, _config()).run(journal_path=str(full))
        assert _solutions(jres) == _solutions(reference)
        data = full.read_bytes()
        nb = jres.block_scheme.nb
        # The acceptance floor: the sweep must cover >= 50 kill points.
        assert len(data) + 1 >= 50
        for cut in range(len(data) + 1):
            path = tmp_path / "cut.journal"
            path.write_bytes(data[:cut])
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                resumed = Epi4TensorSearch(ds, _config()).run(
                    journal_path=str(path)
                )
            assert _solutions(resumed) == _solutions(reference), (
                f"top-k diverged after truncation at byte {cut}"
            )
            executed = _executed(resumed)
            # Exactly-once: nothing ran twice, and re-executed work is
            # precisely the set the truncation un-committed.
            assert len(executed) == len(set(executed))
            replayed = resumed.metrics.total("epi4_journal_replayed_total")
            committed = resumed.metrics.total("epi4_journal_commits_total")
            assert replayed + len(executed) == nb, (
                f"byte {cut}: replayed+reexecuted != total work"
            )
            assert committed == len(executed)


_CHILD_SCRIPT = r"""
import os, signal, sys

import repro.core.journal as J
from repro.core.search import Epi4TensorSearch, SearchConfig
from repro.datasets import generate_random_dataset

kill_after = int(sys.argv[1])     # durable commits before the crash
partial_bytes = int(sys.argv[2])  # bytes of the fatal frame flushed
path = sys.argv[3]
seed = int(sys.argv[4])

orig_append = J.RoundJournal._append_locked
state = {"commits": 0}

def crashing_append(self, record):
    if record.get("type") == "commit":
        if state["commits"] >= kill_after:
            frame = J._frame(record)
            self._fh.write(frame[:partial_bytes])
            self._fh.flush()
            os.fsync(self._fh.fileno())
            os.kill(os.getpid(), signal.SIGKILL)
        state["commits"] += 1
    orig_append(self, record)

J.RoundJournal._append_locked = crashing_append
ds = generate_random_dataset(20, 96, seed=11 + seed)
Epi4TensorSearch(
    ds, SearchConfig(block_size=4, top_k=3)
).run(journal_path=path)
os._exit(3)  # unreachable when the kill point is inside the run
"""


class TestSigkillHarness:
    @pytest.mark.parametrize("kill_after", [0, 1, 3])
    @pytest.mark.parametrize("partial_bytes", [0, 5, 17])
    def test_sigkill_mid_commit_resumes_bit_identically(
        self, tmp_path, kill_after, partial_bytes
    ):
        ds = _dataset()
        reference = Epi4TensorSearch(ds, _config()).run()
        path = tmp_path / "crash.journal"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), _SRC) if p
        )
        proc = subprocess.run(
            [
                sys.executable,
                "-c",
                _CHILD_SCRIPT,
                str(kill_after),
                str(partial_bytes),
                str(path),
                str(CHAOS_SEED),
            ],
            env=env,
            capture_output=True,
            timeout=300,
        )
        assert proc.returncode == -signal.SIGKILL, (
            f"child survived its own kill point: rc={proc.returncode}, "
            f"stderr={proc.stderr.decode(errors='replace')[-500:]}"
        )
        # The survivor journal holds exactly `kill_after` durable commits
        # plus a torn tail of `partial_bytes` — the resumed run must drop
        # the tail and finish the remainder exactly once.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            resumed = Epi4TensorSearch(ds, _config()).run(
                journal_path=str(path)
            )
        assert _solutions(resumed) == _solutions(reference)
        executed = _executed(resumed)
        assert len(executed) == len(set(executed))
        assert len(executed) == resumed.block_scheme.nb - kill_after


_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


class TestShardedChaos:
    """SIGKILL a real shard worker mid-commit; the coordinator must
    respawn it, the respawned worker must journal-resume (re-executing
    exactly the uncommitted iterations), and the merged result must stay
    bit-identical to the unsharded run.  Drives genuine ``spawn``
    processes through :func:`repro.dist.run_sharded` with the
    ``EPI4TENSOR_DIST_KILL`` hook armed in the worker environment."""

    def test_sigkilled_worker_is_respawned_and_merge_is_bit_identical(
        self, tmp_path, monkeypatch
    ):
        from repro.dist import run_sharded
        from repro.obs.manifest import solutions_digest

        ds = _dataset()
        reference = Epi4TensorSearch(ds, _config()).run()
        # Shard 1 of a 2-shard contiguous plan holds several iterations
        # (nb=5); kill its first worker mid-commit after one durable
        # commit, so the respawn must both replay and re-execute.
        monkeypatch.setenv("EPI4TENSOR_DIST_KILL", "1:1")
        merged = run_sharded(
            ds,
            _config(),
            n_shards=2,
            out_dir=tmp_path,
            max_restarts=2,
        )
        assert merged.top_k_sha256 == solutions_digest(
            reference.top_solutions
        )
        # The chaos hook fired exactly once (durable marker present)...
        assert (tmp_path / "shard-1.killed").exists()
        # ...and the respawned worker actually resumed through the
        # journal rather than restarting from scratch.
        shard1 = merged.shards[1]
        assert shard1["replayed_iterations"] >= 1
        assert (
            shard1["replayed_iterations"] + shard1["executed_iterations"]
            == len(shard1["shard"]["iterations"])
        )
        # The undisturbed shard ran clean.
        assert merged.shards[0]["replayed_iterations"] == 0

    def test_restart_budget_exhaustion_raises(self, tmp_path, monkeypatch):
        from repro.dist import run_sharded
        from repro.dist.coordinator import ShardWorkerError
        from repro.dist.worker import CHAOS_KILL_ENV

        ds = _dataset()
        monkeypatch.setenv(CHAOS_KILL_ENV, "0:0")
        # Remove the fired-once marker before each respawn so every
        # incarnation of shard 0 dies, exhausting the budget.
        import repro.dist.coordinator as coord

        original = coord._drive_workers

        def relentless(requests, out_dir, max_procs, max_restarts):
            import glob as _glob
            import threading
            import time

            def reaper():
                for _ in range(400):
                    for marker in _glob.glob(
                        os.path.join(out_dir, "*.killed")
                    ):
                        try:
                            os.remove(marker)
                        except OSError:
                            pass
                    time.sleep(0.05)

            thread = threading.Thread(target=reaper, daemon=True)
            thread.start()
            return original(requests, out_dir, max_procs, max_restarts)

        monkeypatch.setattr(coord, "_drive_workers", relentless)
        with pytest.raises(ShardWorkerError, match="shard 0.*budget"):
            run_sharded(
                ds, _config(), n_shards=2, out_dir=tmp_path, max_restarts=1
            )
